"""Freeze the parity worlds' summaries under tests/golden/parity/.

Run once, from the repo root, *before* a behaviour-preserving refactor
of the per-link hot paths::

    PYTHONPATH=src:tests python tools/capture_parity_goldens.py

The vectorized-parity suite (tests/experiments/test_vectorized_parity.py)
then holds the refactored code to these exact summaries.  Do NOT
regenerate after a refactor unless a deliberate, reviewed behaviour
change is being landed — regeneration is the moment parity claims die.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO))

from dcrobot.experiments.runner import run_world, summarize_world  # noqa: E402
from tests.experiments.parity_worlds import (  # noqa: E402
    parity_configs,
    summary_to_plain,
)


def main() -> None:
    out_dir = REPO / "tests" / "golden" / "parity"
    out_dir.mkdir(parents=True, exist_ok=True)
    for name, config in parity_configs().items():
        started = time.perf_counter()
        summary = summarize_world(run_world(config))
        plain = summary_to_plain(summary)
        path = out_dir / f"{name}.json"
        path.write_text(json.dumps(plain, indent=1, sort_keys=True) + "\n")
        print(f"{name}: {summary.incidents} incidents, "
              f"availability={summary.availability_mean:.6f}, "
              f"{time.perf_counter() - started:.1f}s -> {path.name}")


if __name__ == "__main__":
    main()
