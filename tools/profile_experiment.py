"""Profile one simulated world: where do the sim's wall-clock
microseconds go?

Builds a representative world from an experiment's own configuration
(E13's hardened controller at the 1x chaos operating point, or E14's
crash-and-replay run), attaches a
:class:`~dcrobot.obs.profile.SimProfiler` to the engine, runs the full
horizon, and prints per-event-type step accounting plus the top-N
callback hotspots.

Usage::

    PYTHONPATH=src python tools/profile_experiment.py e13 \
        [--seed N] [--horizon-days D] [--top N]

Profiling is measurement only — it reads the same deterministic world
the experiment would run, so hotspot *counts* are reproducible even
though wall-clock numbers vary machine to machine.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from dcrobot.experiments import e13_chaos_resilience, e14_crash_recovery
from dcrobot.experiments.runner import build_world, summarize_world
from dcrobot.obs.profile import SimProfiler

#: Experiment id -> (module, representative trial params).
PROFILES = {
    "e13": (e13_chaos_resilience,
            {"mode": "hardened", "chaos_scale": 1.0,
             "failure_scale": 4.0}),
    "e14": (e14_crash_recovery,
            {"mode": "replay", "failure_scale": 6.0}),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python tools/profile_experiment.py",
        description="Profile one experiment's simulated world: "
                    "per-event-type step accounting and callback "
                    "hotspots.")
    parser.add_argument("experiment", choices=sorted(PROFILES),
                        help="which experiment's world to profile")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--horizon-days", type=float, default=20.0,
                        metavar="D", help="simulated horizon (default 20)")
    parser.add_argument("--top", type=int, default=10, metavar="N",
                        help="hotspot rows to print (default 10)")
    return parser


def profile_world(experiment: str, seed: int = 0,
                  horizon_days: float = 20.0) -> SimProfiler:
    """Build the experiment's representative world, run it profiled."""
    module, base_params = PROFILES[experiment]
    params = dict(base_params, horizon_days=horizon_days)
    config = module._world_config(params, seed)
    result = build_world(config)
    if experiment == "e14":
        # Mirror the e14 trial: arm a crash at a per-seed random time.
        arm_rng = np.random.default_rng(seed + 1400)
        arm_at = float(arm_rng.uniform(0.15, 0.75)) \
            * config.horizon_seconds
        result.sim.process(e14_crash_recovery._saboteur(
            result, result.supervisor, params["mode"], arm_at))
    profiler = SimProfiler().attach(result.sim)
    result.sim.run(until=config.horizon_seconds)
    profiler.detach(result.sim)
    summary = summarize_world(result)
    print(f"world: {experiment} seed={seed} "
          f"horizon={horizon_days:g}d — {summary.incidents} incidents, "
          f"{summary.closed_incidents} closed\n")
    return profiler


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    profiler = profile_world(args.experiment, seed=args.seed,
                             horizon_days=args.horizon_days)
    print(profiler.report(top=args.top))
    return 0


if __name__ == "__main__":
    sys.exit(main())
