"""Dependency-free line-coverage measurement for selected packages.

CI enforces the coverage ratchet with pytest-cov; this tool exists so
the floor can be chosen (and re-checked) in environments where only the
standard library is available.  It traces ``sys.settrace`` line events
for files under the target packages, compares them against the
executable lines in each file's compiled code objects, and prints a
per-file and per-package report.

Usage::

    PYTHONPATH=src python tools/measure_coverage.py [pytest args...]

Defaults to ``-q -m "not slow"`` when no pytest args are given.  The
numbers track pytest-cov closely but not exactly (no branch analysis,
no ``# pragma: no cover`` exclusions) — set the CI floor a few points
below what this reports.
"""

from __future__ import annotations

import dis
import os
import sys
import threading
from types import CodeType
from typing import Dict, Set

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TARGETS = ("src/dcrobot/core", "src/dcrobot/chaos",
           "src/dcrobot/obs", "src/dcrobot/traffic",
           "src/dcrobot/twin", "src/dcrobot/robots",
           "src/dcrobot/shard", "src/dcrobot/service")


def _target_files():
    for target in TARGETS:
        root = os.path.join(REPO, target)
        for dirpath, _dirs, files in os.walk(root):
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


def _executable_lines(code: CodeType) -> Set[int]:
    lines = {line for _offset, line in dis.findlinestarts(code)
             if line is not None}
    for const in code.co_consts:
        if isinstance(const, CodeType):
            lines |= _executable_lines(const)
    return lines


def main(argv) -> int:
    import pytest

    executable: Dict[str, Set[int]] = {}
    for path in _target_files():
        with open(path, "r", encoding="utf-8") as handle:
            code = compile(handle.read(), path, "exec")
        executable[path] = _executable_lines(code)

    hit: Dict[str, Set[int]] = {path: set() for path in executable}
    watched = set(executable)

    def local_trace(frame, event, _arg):
        if event == "line":
            hit[frame.f_code.co_filename].add(frame.f_lineno)
        return local_trace

    def global_trace(frame, event, _arg):
        if event == "call" and frame.f_code.co_filename in watched:
            return local_trace
        return None

    threading.settrace(global_trace)
    sys.settrace(global_trace)
    try:
        exit_code = pytest.main(argv or ["-q", "-m", "not slow"])
    finally:
        sys.settrace(None)
        threading.settrace(None)

    print()
    totals: Dict[str, list] = {}
    for path in sorted(executable):
        relative = os.path.relpath(path, REPO)
        package = next(t for t in TARGETS if relative.startswith(t))
        lines = executable[path]
        covered = len(hit[path] & lines)
        totals.setdefault(package, [0, 0])
        totals[package][0] += covered
        totals[package][1] += len(lines)
        percent = 100.0 * covered / len(lines) if lines else 100.0
        print(f"{relative:56s} {covered:4d}/{len(lines):4d} "
              f"{percent:5.1f}%")
    grand = [0, 0]
    for package, (covered, total) in sorted(totals.items()):
        grand[0] += covered
        grand[1] += total
        print(f"{package:56s} {covered:4d}/{total:4d} "
              f"{100.0 * covered / total:5.1f}%")
    print(f"{'TOTAL':56s} {grand[0]:4d}/{grand[1]:4d} "
          f"{100.0 * grand[0] / grand[1]:5.1f}%")
    return int(exit_code)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
