"""Unit tests for telemetry delivery chaos (drop / dup / corrupt)."""

import numpy as np

from dcrobot.chaos import ChaosConfig, ChaosFaultKind, TelemetryChaos
from dcrobot.network import LinkState
from dcrobot.telemetry import TelemetryMonitor
from dcrobot.telemetry.events import Symptom, TelemetryEvent

from tests.conftest import make_world


def interceptor(**probs):
    return TelemetryChaos(ChaosConfig(**probs),
                          rng=np.random.default_rng(3))


def down_event():
    return TelemetryEvent(time=2000.0, link_id="L1",
                          symptom=Symptom.LINK_DOWN, detail="hard down")


def test_drop_swallows_the_delivery():
    chaos = interceptor(telemetry_drop_prob=1.0)
    assert chaos(down_event()) == []
    assert chaos.log.count(ChaosFaultKind.TELEMETRY_DROP) == 1


def test_dup_delivers_the_same_event_twice():
    chaos = interceptor(telemetry_dup_prob=1.0)
    delivered = chaos(down_event())
    assert len(delivered) == 2
    assert delivered[0] is delivered[1]
    assert chaos.log.count(ChaosFaultKind.TELEMETRY_DUP) == 1


def test_corrupt_scrambles_the_symptom_but_never_the_link_id():
    chaos = interceptor(telemetry_corrupt_prob=1.0)
    for _ in range(20):
        event = down_event()
        (delivered,) = chaos(event)
        assert delivered.link_id == event.link_id
        assert delivered.symptom is not event.symptom
        assert "corrupted from link-down" in delivered.detail
    assert chaos.log.count(ChaosFaultKind.TELEMETRY_CORRUPT) == 20


def test_clean_path_passes_the_event_through_unchanged():
    chaos = interceptor()
    event = down_event()
    assert chaos(event) == [event]
    assert chaos.log.total == 0


def test_monitor_scan_with_drop_still_mutes_but_delivers_nothing():
    world = make_world()
    monitor = TelemetryMonitor(world.fabric, poll_seconds=60.0)
    monitor.add_interceptor(interceptor(telemetry_drop_prob=1.0))
    heard = []
    monitor.subscribe(heard.append)

    link = world.links[0]
    link.set_state(0.0, LinkState.DOWN)
    delivered = monitor.scan(2000.0)

    # Detection happened (and muted the link), but the delivery — and
    # therefore the controller — never saw it: the lost-report case the
    # mute TTL exists to recover from.
    assert delivered == []
    assert heard == []
    assert len(monitor.events) == 1
    assert monitor.is_muted(link.id, 2000.0)


def test_mute_ttl_turns_a_dropped_report_into_a_late_one():
    world = make_world()
    monitor = TelemetryMonitor(world.fabric, poll_seconds=60.0,
                               mute_ttl_seconds=3600.0)
    chaos = TelemetryChaos(ChaosConfig(telemetry_drop_prob=1.0),
                           rng=np.random.default_rng(3))
    monitor.add_interceptor(chaos)
    heard = []
    monitor.subscribe(heard.append)

    link = world.links[0]
    link.set_state(0.0, LinkState.DOWN)
    assert monitor.scan(2000.0) == []    # detected, dropped, muted
    assert monitor.scan(3000.0) == []    # still muted: nothing re-fires

    # After the TTL the mute expires; stop dropping and the symptom is
    # re-detected and finally delivered.
    chaos.config = ChaosConfig()
    delivered = monitor.scan(2000.0 + 3601.0)
    assert len(delivered) == 1
    assert heard == delivered
    assert delivered[0].symptom is Symptom.LINK_DOWN


def test_monitor_scan_with_dup_invokes_subscriber_twice():
    world = make_world()
    monitor = TelemetryMonitor(world.fabric, poll_seconds=60.0)
    monitor.add_interceptor(interceptor(telemetry_dup_prob=1.0))
    heard = []
    monitor.subscribe(heard.append)

    world.links[0].set_state(0.0, LinkState.DOWN)
    delivered = monitor.scan(2000.0)
    assert len(delivered) == 2
    assert heard == delivered
    # One *detection* regardless of how many deliveries it fanned into.
    assert len(monitor.events) == 1
