"""Unit tests for the chaos-injection configuration."""

import pytest

from dcrobot.chaos import ChaosConfig
from dcrobot.chaos.config import _PROB_FIELDS


def test_default_config_injects_nothing():
    config = ChaosConfig()
    assert not config.any_enabled
    for name in _PROB_FIELDS:
        assert getattr(config, name) == 0.0


def test_any_enabled_flips_on_any_single_prob():
    for name in _PROB_FIELDS:
        config = ChaosConfig(**{name: 0.01})
        assert config.any_enabled, name


@pytest.mark.parametrize("name", _PROB_FIELDS)
@pytest.mark.parametrize("bad", [-0.1, 1.5])
def test_probabilities_must_be_in_unit_interval(name, bad):
    with pytest.raises(ValueError, match=name):
        ChaosConfig(**{name: bad})


@pytest.mark.parametrize("name,bad", [
    ("robot_stall_seconds", (-1.0, 10.0)),
    ("robot_crash_recovery_seconds", (100.0, 10.0)),
    ("partial_residual_oxidation", (0.5, 0.1)),
    ("ack_delay_seconds", (-5.0, -1.0)),
])
def test_magnitude_ranges_must_be_ordered_and_nonnegative(name, bad):
    with pytest.raises(ValueError, match=name):
        ChaosConfig(**{name: bad})


def test_scaled_multiplies_probs_and_caps_at_one():
    config = ChaosConfig(ack_loss_prob=0.4, telemetry_drop_prob=0.1,
                         robot_stall_seconds=(1.0, 2.0))
    doubled = config.scaled(3.0)
    assert doubled.ack_loss_prob == 1.0  # 1.2 capped
    assert doubled.telemetry_drop_prob == pytest.approx(0.3)
    # Magnitudes are not the sweep knob; they stay put.
    assert doubled.robot_stall_seconds == (1.0, 2.0)


def test_scaled_zero_disables_everything():
    assert not ChaosConfig.moderate().scaled(0.0).any_enabled


def test_scaled_rejects_negative_factor():
    with pytest.raises(ValueError, match="factor"):
        ChaosConfig().scaled(-1.0)


def test_moderate_preset_turns_every_injector_on():
    config = ChaosConfig.moderate()
    # The robot-death battery (die / zombie / battery-lie) is
    # deliberately absent from moderate(): those faults need a robot
    # health model attached, have their own preset (robot_failures),
    # and turning them on here would shift the chaos RNG stream of
    # every moderate() world.
    exempt = {"robot_die_prob", "robot_zombie_prob", "battery_lie_prob"}
    for name in _PROB_FIELDS:
        if name in exempt:
            assert getattr(config, name) == 0.0, name
            continue
        assert 0.0 < getattr(config, name) <= 1.0, name


def test_robot_failures_preset_enables_only_robot_faults():
    config = ChaosConfig.robot_failures()
    robot = {"robot_stall_prob", "robot_crash_prob", "robot_die_prob",
             "robot_zombie_prob", "battery_lie_prob"}
    for name in _PROB_FIELDS:
        if name in robot:
            assert 0.0 < getattr(config, name) <= 1.0, name
        else:
            assert getattr(config, name) == 0.0, name
