"""Control-plane fault injection: the crash/pause/restart injector."""

import numpy as np
import pytest

from dcrobot.chaos import (
    ChaosConfig,
    ChaosEngine,
    ChaosFaultKind,
    ChaosLog,
    ControllerChaos,
)
from dcrobot.sim.engine import Simulation
from dcrobot.sim.rng import RandomStreams


class FakeController:
    def __init__(self):
        self.crashed = False
        self.node_id = "primary"


class FakeSupervisor:
    """Records the injector's calls; restart revives the controller."""

    def __init__(self):
        self.controller = FakeController()
        self.crashes = 0
        self.restarts = 0
        self.partitions = []

    def crash_primary(self, reason=""):
        self.crashes += 1
        self.controller.crashed = True

    def partition_primary(self, duration):
        self.partitions.append(duration)

    def restart_primary(self, reason=""):
        self.restarts += 1
        self.controller.crashed = False


def injector(sim, supervisor, **config):
    return ControllerChaos(sim, ChaosConfig(**config), supervisor,
                           np.random.default_rng(0), ChaosLog(),
                           check_seconds=100.0)


def test_crash_fires_once_then_yields_to_recovery():
    sim = Simulation()
    supervisor = FakeSupervisor()
    chaos = injector(sim, supervisor, controller_crash_prob=1.0)
    sim.process(chaos.run())
    sim.run(until=1000.0)

    # The first check kills the controller; while it stays down the
    # injector skips its rolls (recovery gets room to work).
    assert supervisor.crashes == 1
    assert chaos.injected == 1
    assert chaos.log.count(ChaosFaultKind.CONTROLLER_CRASH) == 1


def test_restart_fires_every_check_on_a_revived_controller():
    sim = Simulation()
    supervisor = FakeSupervisor()
    chaos = injector(sim, supervisor, controller_restart_prob=1.0)
    sim.process(chaos.run())
    sim.run(until=1000.0)

    # restart_primary revives the controller, so every check rolls.
    assert supervisor.restarts == 9
    assert chaos.log.count(ChaosFaultKind.CONTROLLER_RESTART) == 9


def test_pause_partitions_for_a_sampled_duration():
    sim = Simulation()
    supervisor = FakeSupervisor()
    chaos = injector(sim, supervisor, controller_pause_prob=1.0,
                     controller_pause_seconds=(500.0, 500.0))
    sim.process(chaos.run())
    sim.run(until=400.0)

    # The paused controller keeps running (a zombie, not a corpse), so
    # later checks keep rolling.
    assert supervisor.partitions == [500.0, 500.0, 500.0]
    assert supervisor.crashes == 0
    assert chaos.log.count(ChaosFaultKind.CONTROLLER_PAUSE) == 3
    faults = chaos.log.faults
    assert faults[0].target == "primary"
    assert "500s" in faults[0].detail


def test_check_interval_must_be_positive():
    with pytest.raises(ValueError, match="check_seconds"):
        ControllerChaos(Simulation(), ChaosConfig(), FakeSupervisor(),
                        np.random.default_rng(0), ChaosLog(),
                        check_seconds=0.0)


def test_engine_attach_supervisor_registers_the_injector():
    sim = Simulation()
    engine = ChaosEngine(sim, ChaosConfig(controller_crash_prob=1.0),
                         RandomStreams(7))
    supervisor = FakeSupervisor()
    chaos = engine.attach_supervisor(supervisor, check_seconds=50.0)
    assert engine.controller_chaos is chaos
    sim.run(until=200.0)
    assert supervisor.crashes == 1
    assert engine.summary().get("controller-crash") == 1
