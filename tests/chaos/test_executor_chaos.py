"""Unit tests for acknowledgement chaos at the executor boundary."""

import numpy as np

from dcrobot.chaos import ChaosConfig, ChaosFaultKind, ChaoticExecutor
from dcrobot.core.actions import RepairAction, WorkOrder
from dcrobot.sim import Simulation


class InnerStub:
    """Minimal executor: acks every order after a fixed delay."""

    executor_id = "inner"
    capabilities = frozenset({RepairAction.RESEAT})

    def __init__(self, sim, ack_after=100.0):
        self.sim = sim
        self.ack_after = ack_after
        self.submitted = []

    def submit(self, order):
        self.submitted.append(order)
        done = self.sim.event()

        def finish():
            yield self.sim.timeout(self.ack_after)
            done.succeed(f"outcome-{order.order_id}")

        self.sim.process(finish())
        return done

    def can_execute(self, action):
        return action in self.capabilities

    def covers(self, rack_id):
        return True

    def announce_touches(self, order):
        return ["neighbour"]


def wrap(sim, inner, **probs):
    return ChaoticExecutor(sim, inner, ChaosConfig(**probs),
                           rng=np.random.default_rng(7))


def order():
    return WorkOrder(link_id="L1", action=RepairAction.RESEAT,
                     created_at=0.0)


def test_no_chaos_passes_the_inner_ack_through():
    sim = Simulation()
    inner = InnerStub(sim)
    chaotic = wrap(sim, inner)
    done = chaotic.submit(order())
    sim.run()
    assert done.triggered and done.ok
    assert done.value.startswith("outcome-")
    assert sim.now == 100.0
    assert chaotic.lost_acks == 0 and chaotic.delayed_acks == 0


def test_ack_loss_swallows_the_ack_but_not_the_work():
    sim = Simulation()
    inner = InnerStub(sim)
    chaotic = wrap(sim, inner, ack_loss_prob=1.0)
    done = chaotic.submit(order())
    sim.run()
    # The physical work still happened (the inner ack fired into the
    # void); what the caller holds never triggers.
    assert len(inner.submitted) == 1
    assert sim.now == 100.0
    assert not done.triggered
    assert chaotic.lost_acks == 1
    assert chaotic.log.count(ChaosFaultKind.ACK_LOST) == 1


def test_ack_delay_defers_the_ack_value_intact():
    sim = Simulation()
    inner = InnerStub(sim)
    chaotic = wrap(sim, inner, ack_delay_prob=1.0,
                   ack_delay_seconds=(500.0, 500.0))
    done = chaotic.submit(order())
    sim.run()
    assert done.triggered and done.ok
    assert done.value.startswith("outcome-")
    assert sim.now == 600.0  # 100s work + 500s ack delay
    assert chaotic.delayed_acks == 1
    assert chaotic.log.count(ChaosFaultKind.ACK_DELAYED) == 1


def test_ack_delay_is_drawn_within_bounds():
    sim = Simulation()
    inner = InnerStub(sim)
    chaotic = wrap(sim, inner, ack_delay_prob=1.0,
                   ack_delay_seconds=(1000.0, 2000.0))
    done = chaotic.submit(order())
    sim.run(until=done)
    assert 1100.0 <= sim.now <= 2100.0


def test_executor_interface_is_delegated_untouched():
    sim = Simulation()
    inner = InnerStub(sim)
    chaotic = wrap(sim, inner, ack_loss_prob=1.0)
    assert chaotic.executor_id == "inner"
    assert chaotic.capabilities == inner.capabilities
    assert chaotic.can_execute(RepairAction.RESEAT)
    assert not chaotic.can_execute(RepairAction.CLEAN)
    assert chaotic.covers("rack-0")
    assert chaotic.announce_touches(order()) == ["neighbour"]
    # Unknown attributes fall through to the wrapped executor.
    assert chaotic.submitted is inner.submitted


def test_chaos_draws_are_seed_deterministic():
    def run_once():
        sim = Simulation()
        inner = InnerStub(sim)
        chaotic = ChaoticExecutor(
            sim, inner,
            ChaosConfig(ack_loss_prob=0.3, ack_delay_prob=0.3),
            rng=np.random.default_rng(42))
        for _ in range(20):
            chaotic.submit(order())
        sim.run()
        return chaotic.lost_acks, chaotic.delayed_acks, sim.now

    assert run_once() == run_once()
    lost, delayed, _now = run_once()
    assert lost > 0 and delayed > 0
