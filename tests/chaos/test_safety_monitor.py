"""Unit tests for the invariant-checking safety monitor."""

import pytest

from dcrobot.chaos import SafetyMonitor
from dcrobot.core import MaintenanceController, ReactivePolicy, RepairAction
from dcrobot.core.actions import WorkOrder
from dcrobot.core.controller import Incident
from dcrobot.telemetry import TelemetryMonitor

from tests.conftest import make_world


class StubExecutor:
    """Does nothing; exists so the controller constructor is happy."""

    executor_id = "stub"

    def __init__(self):
        self.busy_links = {}

    def can_execute(self, action):
        return True

    def covers(self, rack_id):
        return True

    def announce_touches(self, order):
        return []

    def submit(self, order):
        raise AssertionError("safety tests never dispatch")


def build(world, **kwargs):
    stub = StubExecutor()
    controller = MaintenanceController(
        world.sim, world.fabric, world.health,
        TelemetryMonitor(world.fabric),
        ReactivePolicy(world.fabric), humans=stub)
    safety = SafetyMonitor(world.sim, controller, executors=[stub],
                           **kwargs).attach()
    return controller, safety, stub


def tick(world, steps=3, dt=10.0):
    """Schedule ``steps`` events so the step hook fires that often."""
    for index in range(steps):
        world.sim.timeout(dt * (index + 1))
    world.sim.run()


def claim(controller, link, executor="stub"):
    order = WorkOrder(link_id=link.id, action=RepairAction.RESEAT,
                      created_at=controller.sim.now)
    entry = controller._claim(order, executor)
    return order, entry


def test_constructor_validates_knobs(world):
    controller, _safety, _stub = build(world)
    with pytest.raises(ValueError, match="check_interval"):
        SafetyMonitor(world.sim, controller, check_interval_seconds=-1)
    with pytest.raises(ValueError, match="stuck_after"):
        SafetyMonitor(world.sim, controller, stuck_after_seconds=0)


def test_clean_world_reports_clean(world):
    _controller, safety, _stub = build(world)
    tick(world, steps=4)
    assert safety.checks_run == 4
    assert safety.violations == []
    report = safety.report()
    assert report.clean()
    assert report.stuck_order_count == 0


def test_double_owner_fires_once_at_onset(world):
    controller, safety, _stub = build(world)
    link = world.links[0]
    claim(controller, link)
    _order, second = claim(controller, link)

    tick(world, steps=3)
    kinds = [violation.kind for violation in safety.violations]
    assert kinds == [SafetyMonitor.DOUBLE_OWNER]  # persistent != repeated
    assert safety.violations[0].target == link.id

    # Clearing and re-breaking the invariant is a fresh onset.
    controller._release(second)
    tick(world, steps=2)
    _order, _again = claim(controller, link)
    tick(world, steps=2)
    kinds = [violation.kind for violation in safety.violations]
    assert kinds == [SafetyMonitor.DOUBLE_OWNER] * 2


def test_maintenance_orphan_detected(world):
    controller, safety, _stub = build(world)
    link = world.links[0]
    world.health.begin_maintenance(link, 0.0)
    tick(world, steps=2)
    assert [violation.kind for violation in safety.violations] \
        == [SafetyMonitor.MAINTENANCE_ORPHAN]
    assert safety.violations[0].target == link.id


def test_maintenance_with_a_claim_or_a_touching_executor_is_fine(world):
    controller, safety, stub = build(world)
    link_claimed, link_touched = world.links[0], world.links[1]
    world.health.begin_maintenance(link_claimed, 0.0)
    world.health.begin_maintenance(link_touched, 0.0)
    claim(controller, link_claimed)
    stub.busy_links[link_touched.id] = 1
    tick(world, steps=2)
    assert safety.violations == []


def test_drain_orphan_detected(world):
    controller, safety, _stub = build(world)
    link = world.links[0]
    order = WorkOrder(link_id=link.id, action=RepairAction.RESEAT,
                      created_at=0.0)
    # Drains held for an order nobody has in flight: leaked capacity.
    controller.scheduler._drained_for_order[order.order_id] = [link.id]
    tick(world, steps=2)
    assert [violation.kind for violation in safety.violations] \
        == [SafetyMonitor.DRAIN_ORPHAN]
    assert safety.violations[0].target == str(order.order_id)


def test_escalation_regression_detected_incrementally(world):
    controller, safety, _stub = build(world)
    link = world.links[0]
    incident = Incident(link_id=link.id, opened_at=0.0, symptom="x")
    controller.open_incidents[link.id] = incident
    incident.attempt_history.append((0.0, RepairAction.CLEAN))
    tick(world, steps=2)
    assert safety.violations == []

    # Walking down the ladder is the violation...
    incident.attempt_history.append((20.0, RepairAction.RESEAT))
    tick(world, steps=2)
    kinds = [violation.kind for violation in safety.violations]
    assert kinds == [SafetyMonitor.ESCALATION_REGRESSION]

    # ...and the audit cursor never re-reports the same prefix, while
    # continuing upward stays legal.
    incident.attempt_history.append(
        (40.0, RepairAction.REPLACE_TRANSCEIVER))
    tick(world, steps=2)
    assert len(safety.violations) == 1


def test_stuck_orders_gauge_and_interval_throttling(world):
    controller, safety, _stub = build(
        world, stuck_after_seconds=100.0, check_interval_seconds=25.0)
    link = world.links[0]
    claim(controller, link)

    tick(world, steps=30, dt=10.0)  # 30 steps over 300s of sim time
    # Interval throttle: far fewer audits than steps.
    assert safety.checks_run <= 300.0 / 25.0 + 1
    stuck = safety.stuck_orders()
    assert len(stuck) == 1 and stuck[0].link_id == link.id
    report = safety.report()
    assert report.stuck_order_count == 1
    assert report.clean()  # stuck is a gauge, not a violation


def test_detach_stops_auditing(world):
    _controller, safety, _stub = build(world)
    tick(world, steps=2)
    assert safety.checks_run == 2
    safety.detach()
    tick(world, steps=3)
    assert safety.checks_run == 2
