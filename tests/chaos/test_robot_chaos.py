"""Unit tests for mid-operation robot faults.

Covers the original stall/crash/partial battery and the robot-death
battery (die / zombie / battery-lie) that feeds the fleet health model.
"""

import numpy as np

from dcrobot.chaos import ChaosConfig, RobotChaos
from dcrobot.chaos.faults import ChaosFaultKind
from dcrobot.chaos.robot import RobotChaosPlan
from dcrobot.core.actions import RepairAction, WorkOrder
from dcrobot.network import LinkState
from dcrobot.robots import RobotFleet

from tests.conftest import make_world


def make_fleet(world, **probs):
    fleet = RobotFleet(world.sim, world.fabric, world.health,
                       world.physics, rng=np.random.default_rng(5))
    if probs:
        fleet.chaos = RobotChaos(ChaosConfig(**probs),
                                 rng=np.random.default_rng(11))
    return fleet


def reseat(link):
    return WorkOrder(link_id=link.id, action=RepairAction.RESEAT,
                     created_at=0.0)


def run_one(world, fleet, order):
    done = fleet.submit(order)
    world.sim.run(until=done)
    return done.value


def test_plan_is_drawn_up_front_and_crash_suppresses_partial():
    chaos = RobotChaos(
        ChaosConfig(robot_crash_prob=1.0, partial_completion_prob=1.0,
                    robot_stall_prob=1.0,
                    robot_stall_seconds=(60.0, 60.0)),
        rng=np.random.default_rng(0))
    plan = chaos.plan_for(reseat_order := WorkOrder(
        link_id="L", action=RepairAction.RESEAT, created_at=0.0), 0.0)
    assert plan.crash and not plan.partial  # no lie from a dead robot
    assert plan.stall_seconds == 60.0
    assert plan.any
    assert not RobotChaosPlan().any
    assert reseat_order.link_id == "L"


def test_stall_delays_the_operation_by_the_stall_time():
    baseline = make_world()
    plain = run_one(baseline, make_fleet(baseline),
                    reseat(baseline.links[0]))

    world = make_world()
    fleet = make_fleet(world, robot_stall_prob=1.0,
                       robot_stall_seconds=(3600.0, 3600.0))
    stalled = run_one(world, fleet, reseat(world.links[0]))

    assert stalled.completed == plain.completed
    assert stalled.duration >= plain.duration + 3599.0


def test_crash_aborts_reports_failure_and_releases_the_link():
    world = make_world()
    fleet = make_fleet(world, robot_crash_prob=1.0,
                       robot_crash_recovery_seconds=(1800.0, 1800.0))
    link = world.links[0]
    outcome = run_one(world, fleet, reseat(link))

    assert not outcome.completed
    assert outcome.needs_human
    assert "crashed mid-operation" in outcome.notes
    # The link was handed back before the recovery period, and the
    # occupancy registry is clean.
    assert link.state is not LinkState.MAINTENANCE
    assert fleet.busy_links == {}
    assert outcome.duration >= 1800.0


def test_partial_completion_reports_success_but_leaves_residue():
    world = make_world()
    fleet = make_fleet(world, partial_completion_prob=1.0,
                       partial_residual_oxidation=(0.5, 0.5))
    link = world.links[0]
    before = max(link.transceiver_at("a").oxidation,
                 link.transceiver_at("b").oxidation)
    outcome = run_one(world, fleet, reseat(link))

    # The robot's lie: ack says completed, physics says otherwise.
    assert outcome.completed
    after = max(link.transceiver_at("a").oxidation,
                link.transceiver_at("b").oxidation)
    assert after >= before + 0.45


def test_die_plan_draws_onset_inside_bounds_and_is_logged():
    chaos = RobotChaos(
        ChaosConfig(robot_die_prob=1.0,
                    robot_die_work_seconds=(30.0, 120.0)),
        rng=np.random.default_rng(3))
    plan = chaos.plan_for(
        WorkOrder(link_id="L", action=RepairAction.RESEAT,
                  created_at=0.0), 5.0)
    assert plan.die and plan.any
    assert 30.0 <= plan.die_after_seconds <= 120.0
    assert chaos.log.count(ChaosFaultKind.ROBOT_DIE) == 1
    fault = chaos.log.faults[-1]
    assert fault.time == 5.0
    assert fault.target == "L"
    assert "dies" in fault.detail


def test_zombie_and_battery_lie_draws_are_logged():
    chaos = RobotChaos(
        ChaosConfig(robot_zombie_prob=1.0,
                    robot_zombie_seconds=(600.0, 600.0),
                    battery_lie_prob=1.0,
                    battery_lie_charge=(0.05, 0.05)),
        rng=np.random.default_rng(3))
    plan = chaos.plan_for(
        WorkOrder(link_id="L", action=RepairAction.RESEAT,
                  created_at=0.0), 0.0)
    assert plan.zombie and plan.zombie_seconds == 600.0
    assert plan.battery_lie and plan.battery_lie_charge == 0.05
    assert chaos.log.count(ChaosFaultKind.ROBOT_ZOMBIE) == 1
    assert chaos.log.count(ChaosFaultKind.BATTERY_LIE) == 1


def test_die_suppresses_the_zombie_and_battery_lie_draws():
    """A unit that dies at the rack cannot also go dark-and-return or
    mis-report its battery: death wins, the other draws are skipped."""
    chaos = RobotChaos(
        ChaosConfig(robot_die_prob=1.0,
                    robot_die_work_seconds=(60.0, 60.0),
                    robot_zombie_prob=1.0, battery_lie_prob=1.0),
        rng=np.random.default_rng(3))
    plan = chaos.plan_for(
        WorkOrder(link_id="L", action=RepairAction.RESEAT,
                  created_at=0.0), 0.0)
    assert plan.die
    assert not plan.zombie
    assert not plan.battery_lie
    assert chaos.log.count(ChaosFaultKind.ROBOT_ZOMBIE) == 0
    assert chaos.log.count(ChaosFaultKind.BATTERY_LIE) == 0


def test_legacy_configs_consume_a_bit_identical_rng_stream():
    """The robot-death battery must not perturb the chaos stream of a
    config that predates it: with its probabilities at zero, plan_for
    consumes exactly the draws the legacy stall/crash/partial code did
    (the chaos goldens depend on this)."""
    config = ChaosConfig(robot_stall_prob=0.5,
                         robot_stall_seconds=(10.0, 20.0),
                         robot_crash_prob=0.5,
                         robot_crash_recovery_seconds=(30.0, 40.0),
                         partial_completion_prob=0.5)
    chaos = RobotChaos(config, rng=np.random.default_rng(42))
    replica = np.random.default_rng(42)
    order = WorkOrder(link_id="L", action=RepairAction.RESEAT,
                      created_at=0.0)
    for _ in range(50):
        chaos.plan_for(order, 0.0)
        # The legacy draw sequence, replicated verbatim.
        if replica.random() < config.robot_stall_prob:
            replica.uniform(*config.robot_stall_seconds)
        if replica.random() < config.robot_crash_prob:
            replica.uniform(*config.robot_crash_recovery_seconds)
        else:
            replica.random()  # the partial draw happens only sans crash
        assert (chaos.rng.bit_generator.state
                == replica.bit_generator.state)


def test_busy_links_tracks_the_physical_touch_window():
    world = make_world()
    fleet = make_fleet(world)
    link = world.links[0]
    seen_busy = []
    world.sim.add_step_hook(
        lambda now: seen_busy.append(dict(fleet.busy_links)))

    run_one(world, fleet, reseat(link))
    assert any(snapshot.get(link.id) == 1 for snapshot in seen_busy)
    assert fleet.busy_links == {}
