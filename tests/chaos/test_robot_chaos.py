"""Unit tests for mid-operation robot faults (stall/crash/partial)."""

import numpy as np

from dcrobot.chaos import ChaosConfig, RobotChaos
from dcrobot.chaos.robot import RobotChaosPlan
from dcrobot.core.actions import RepairAction, WorkOrder
from dcrobot.network import LinkState
from dcrobot.robots import RobotFleet

from tests.conftest import make_world


def make_fleet(world, **probs):
    fleet = RobotFleet(world.sim, world.fabric, world.health,
                       world.physics, rng=np.random.default_rng(5))
    if probs:
        fleet.chaos = RobotChaos(ChaosConfig(**probs),
                                 rng=np.random.default_rng(11))
    return fleet


def reseat(link):
    return WorkOrder(link_id=link.id, action=RepairAction.RESEAT,
                     created_at=0.0)


def run_one(world, fleet, order):
    done = fleet.submit(order)
    world.sim.run(until=done)
    return done.value


def test_plan_is_drawn_up_front_and_crash_suppresses_partial():
    chaos = RobotChaos(
        ChaosConfig(robot_crash_prob=1.0, partial_completion_prob=1.0,
                    robot_stall_prob=1.0,
                    robot_stall_seconds=(60.0, 60.0)),
        rng=np.random.default_rng(0))
    plan = chaos.plan_for(reseat_order := WorkOrder(
        link_id="L", action=RepairAction.RESEAT, created_at=0.0), 0.0)
    assert plan.crash and not plan.partial  # no lie from a dead robot
    assert plan.stall_seconds == 60.0
    assert plan.any
    assert not RobotChaosPlan().any
    assert reseat_order.link_id == "L"


def test_stall_delays_the_operation_by_the_stall_time():
    baseline = make_world()
    plain = run_one(baseline, make_fleet(baseline),
                    reseat(baseline.links[0]))

    world = make_world()
    fleet = make_fleet(world, robot_stall_prob=1.0,
                       robot_stall_seconds=(3600.0, 3600.0))
    stalled = run_one(world, fleet, reseat(world.links[0]))

    assert stalled.completed == plain.completed
    assert stalled.duration >= plain.duration + 3599.0


def test_crash_aborts_reports_failure_and_releases_the_link():
    world = make_world()
    fleet = make_fleet(world, robot_crash_prob=1.0,
                       robot_crash_recovery_seconds=(1800.0, 1800.0))
    link = world.links[0]
    outcome = run_one(world, fleet, reseat(link))

    assert not outcome.completed
    assert outcome.needs_human
    assert "crashed mid-operation" in outcome.notes
    # The link was handed back before the recovery period, and the
    # occupancy registry is clean.
    assert link.state is not LinkState.MAINTENANCE
    assert fleet.busy_links == {}
    assert outcome.duration >= 1800.0


def test_partial_completion_reports_success_but_leaves_residue():
    world = make_world()
    fleet = make_fleet(world, partial_completion_prob=1.0,
                       partial_residual_oxidation=(0.5, 0.5))
    link = world.links[0]
    before = max(link.transceiver_at("a").oxidation,
                 link.transceiver_at("b").oxidation)
    outcome = run_one(world, fleet, reseat(link))

    # The robot's lie: ack says completed, physics says otherwise.
    assert outcome.completed
    after = max(link.transceiver_at("a").oxidation,
                link.transceiver_at("b").oxidation)
    assert after >= before + 0.45


def test_busy_links_tracks_the_physical_touch_window():
    world = make_world()
    fleet = make_fleet(world)
    link = world.links[0]
    seen_busy = []
    world.sim.add_step_hook(
        lambda now: seen_busy.append(dict(fleet.busy_links)))

    run_one(world, fleet, reseat(link))
    assert any(snapshot.get(link.id) == 1 for snapshot in seen_busy)
    assert fleet.busy_links == {}
