"""Characterization tests pinning FleetPlanner's ranking arithmetic.

The twin planner shares a module with the fleet planner; these tests
pin the fleet planner's exact analytic outputs (M/M/c pipeline:
incident rate -> travel -> Erlang-C wait -> recommendation) on a
fixed topology and rate scale, so any refactor of ``core/planner.py``
that shifts a prediction — even in the last few ulps — fails loudly
instead of silently re-ranking fleets.
"""

import numpy as np
import pytest

from dcrobot.core import FleetPlanner
from dcrobot.failures import FailureRates
from dcrobot.topology import build_fattree

EXACT = dict(rel=1e-12)


@pytest.fixture
def planner():
    topology = build_fattree(k=4, rng=np.random.default_rng(2))
    return FleetPlanner(topology, rates=FailureRates().scaled(200.0))


def test_model_inputs_are_pinned(planner):
    assert planner.incident_rate_per_second() == pytest.approx(
        0.0004299439754607448, **EXACT)
    assert planner.mean_travel_seconds() == pytest.approx(
        80.88, **EXACT)
    assert planner.service_seconds() == pytest.approx(
        330.88, **EXACT)


def test_predict_pipeline_is_pinned(planner):
    single = planner.predict(1)
    assert single.predicted_wait_seconds == pytest.approx(
        54.87786018728761, **EXACT)
    assert single.predicted_repair_seconds == pytest.approx(
        385.75786018728763, **EXACT)
    assert single.utilization == pytest.approx(
        0.14225986260045123, **EXACT)
    assert single.cleaners == 1
    assert single.incident_rate_per_hour == pytest.approx(
        1.5477983116586813, **EXACT)

    pair = planner.predict(2)
    assert pair.predicted_wait_seconds == pytest.approx(
        1.6825894891152866, **EXACT)
    assert pair.predicted_repair_seconds == pytest.approx(
        332.5625894891153, **EXACT)
    assert pair.utilization == pytest.approx(
        0.07112993130022562, **EXACT)

    quad = planner.predict(4)
    assert quad.predicted_wait_seconds == pytest.approx(
        0.001316437193556967, **EXACT)
    assert quad.cleaners == 2


def test_recommend_rank_walk_is_pinned(planner):
    # The smallest fleet meeting the target wins the walk.
    plan = planner.recommend(target_repair_seconds=1800.0)
    assert plan.manipulators == 1
    assert plan.predicted_repair_seconds == pytest.approx(
        385.75786018728763, **EXACT)
    # A target between predict(1) and predict(2) ranks 2 first.
    tighter = planner.recommend(target_repair_seconds=340.0)
    assert tighter.manipulators == 2
    assert tighter.predicted_repair_seconds == pytest.approx(
        332.5625894891153, **EXACT)


def test_recommend_miss_returns_largest_considered(planner):
    # No fleet <= 2 meets 200 s; the caller sees the best miss.
    miss = planner.recommend(target_repair_seconds=200.0,
                             max_manipulators=2)
    assert miss.manipulators == 2
    assert miss.predicted_repair_seconds == pytest.approx(
        332.5625894891153, **EXACT)
    assert miss.predicted_repair_seconds > 200.0
