"""Closed-loop tests: telemetry -> controller -> executor -> verify."""

import numpy as np
import pytest

from dcrobot.core import (
    AutomationLevel,
    ControllerConfig,
    MaintenanceController,
    MaintenanceServiceAPI,
    ProactivePolicy,
    ReactivePolicy,
    RepairAction,
)
from dcrobot.core.actions import Priority
from dcrobot.humans import TechnicianParams, TechnicianPool
from dcrobot.network import LinkState
from dcrobot.robots import FleetConfig, RobotFleet
from dcrobot.telemetry import TelemetryMonitor

from tests.conftest import make_world

HOUR = 3600.0
FAST_DISPATCH = {Priority.HIGH: 600.0, Priority.NORMAL: 1800.0}


def wire_controller(world, level=AutomationLevel.L0_NO_AUTOMATION,
                    policy_cls=ReactivePolicy, technicians=2,
                    fleet_config=None, seed=31, humans=True,
                    config=None):
    """Stand up monitor + executors + controller + health process."""
    monitor = TelemetryMonitor(world.fabric, poll_seconds=60.0)
    pool = None
    if humans:
        pool = TechnicianPool(
            world.sim, world.fabric, world.health, world.physics,
            count=technicians,
            params=TechnicianParams(
                dispatch_median_seconds=FAST_DISPATCH,
                dispatch_sigma=0.1),
            rng=np.random.default_rng(seed))
    fleet = None
    if level >= AutomationLevel.L2_PARTIAL_AUTOMATION:
        fleet = RobotFleet(world.sim, world.fabric, world.health,
                           world.physics,
                           config=fleet_config or FleetConfig(),
                           rng=np.random.default_rng(seed + 1))
    controller = MaintenanceController(
        world.sim, world.fabric, world.health, monitor,
        policy=policy_cls(world.fabric),
        level=level, humans=pool, fleet=fleet,
        config=config or ControllerConfig(
            verification_delay_seconds=300.0))
    controller.start()
    world.sim.process(world.health.run(world.sim))
    world.sim.process(monitor.run(world.sim))
    return monitor, pool, fleet, controller


def test_controller_requires_an_executor(world):
    monitor = TelemetryMonitor(world.fabric)
    with pytest.raises(ValueError):
        MaintenanceController(world.sim, world.fabric, world.health,
                              monitor, ReactivePolicy(world.fabric))


def test_reactive_loop_fixes_firmware_wedge_via_humans(world):
    _monitor, pool, _fleet, controller = wire_controller(world)
    link = world.links[0]
    link.transceiver_a.firmware_stuck = True
    world.sim.run(until=2 * 86400.0)
    assert link.state is LinkState.UP
    assert len(controller.closed_incidents) == 1
    incident = controller.closed_incidents[0]
    assert incident.resolved
    assert incident.attempt_history[0][1] is RepairAction.RESEAT
    assert incident.time_to_repair > 0
    assert pool.outcomes


def test_escalation_reaches_cleaning_for_dirt(world):
    _monitor, pool, _fleet, controller = wire_controller(world)
    link = world.links[0]
    # Heavy dirt: reseat won't fix it, cleaning will.
    link.cable.end_a.add_contamination(0.9)
    link.cable.end_b.add_contamination(0.9)
    world.sim.run(until=12 * 86400.0)
    assert controller.closed_incidents
    incident = controller.closed_incidents[0]
    actions = [action for _t, action in incident.attempt_history]
    assert RepairAction.RESEAT in actions
    assert RepairAction.CLEAN in actions
    assert link.cable.worst_contamination < 0.25


def test_escalation_reaches_replacement_for_hw_fault(world):
    _monitor, pool, _fleet, controller = wire_controller(world)
    link = world.links[0]
    link.transceiver_b.fail_hardware()
    world.sim.run(until=20 * 86400.0)
    assert controller.closed_incidents
    actions = [action for _t, action in
               controller.closed_incidents[0].attempt_history]
    assert RepairAction.REPLACE_TRANSCEIVER in actions
    assert link.state is LinkState.UP


def test_l3_routes_basic_repairs_to_robots(world):
    _monitor, pool, fleet, controller = wire_controller(
        world, level=AutomationLevel.L3_HIGH_AUTOMATION)
    link = world.links[0]
    link.transceiver_a.firmware_stuck = True
    world.sim.run(until=1 * 86400.0)
    assert link.state is LinkState.UP
    incident = controller.closed_incidents[0]
    assert incident.attempts[0].executor_id == "robots"
    # Robot repair: the service window is minutes, not days.
    assert incident.time_to_repair < 2 * HOUR
    assert pool is not None and not pool.outcomes


def test_l3_still_uses_humans_for_cable_replacement(world):
    _monitor, pool, fleet, controller = wire_controller(
        world, level=AutomationLevel.L3_HIGH_AUTOMATION)
    link = world.links[0]
    link.cable.damage()
    world.sim.run(until=30 * 86400.0)
    assert controller.closed_incidents
    cable_attempts = [
        outcome for incident in controller.closed_incidents
        for outcome in incident.attempts
        if outcome.order.action is RepairAction.REPLACE_CABLE]
    assert cable_attempts
    assert all(outcome.executor_id == "technicians"
               for outcome in cable_attempts)


def test_l2_supervision_accumulates(world):
    _monitor, _pool, _fleet, controller = wire_controller(
        world, level=AutomationLevel.L2_PARTIAL_AUTOMATION)
    link = world.links[0]
    link.transceiver_a.firmware_stuck = True
    world.sim.run(until=3 * 86400.0)
    assert controller.closed_incidents
    assert controller.supervision_seconds > 0


def test_unresolvable_without_spares():
    world = make_world(spare_transceivers=0, spare_cables=0)
    _monitor, _pool, _fleet, controller = wire_controller(
        world, config=ControllerConfig(verification_delay_seconds=300.0,
                                       max_attempts=6))
    link = world.links[0]
    link.transceiver_a.fail_hardware()
    world.sim.run(until=40 * 86400.0)
    assert controller.unresolved_incidents
    assert link.state is LinkState.DOWN


def test_proactive_sweep_executes_in_quiet_window(world):
    _monitor, pool, _fleet, controller = wire_controller(
        world, policy_cls=lambda fabric: ProactivePolicy(
            fabric, trigger_count=1))
    link = world.links[0]
    link.transceiver_a.firmware_stuck = True
    world.sim.run(until=4 * 86400.0)
    # The reseat fix arms a sweep over sibling links.
    assert controller.proactive_outcomes
    sweep = controller.proactive_outcomes[0]
    assert sweep.order.action is RepairAction.RESEAT
    assert "sweep" in sweep.order.symptom
    # Executed inside the 01:00-05:00 quiet window.
    day_seconds = sweep.started_at % 86400.0
    assert 1 * HOUR <= day_seconds <= 5 * HOUR + 2 * HOUR


def test_api_status_and_planned_touches(world):
    _monitor, _pool, _fleet, controller = wire_controller(world)
    api = MaintenanceServiceAPI(controller)
    status = api.status()
    assert status.links_total == len(world.links)
    assert status.open_incidents == 0
    assert api.incident_for(world.links[0].id) is None
    touches = api.planned_touches(world.links[0].id)
    assert isinstance(touches, list)
    with pytest.raises(KeyError):
        api.request_maintenance("link-nope")


def test_api_request_maintenance_runs(world):
    _monitor, pool, _fleet, controller = wire_controller(world)
    api = MaintenanceServiceAPI(controller)
    assert api.request_maintenance(world.links[2].id,
                                   action=RepairAction.RESEAT,
                                   urgent=True)
    world.sim.run(until=2 * 86400.0)
    assert controller.proactive_outcomes
    assert controller.proactive_outcomes[0].order.link_id \
        == world.links[2].id
