"""Unit tests for retry/backoff policies and the circuit breaker."""

import numpy as np
import pytest

from dcrobot.core import (
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    ResilienceConfig,
    RetryPolicy,
)

HOUR = 3600.0


# -- RetryPolicy --------------------------------------------------------------

def test_backoff_schedule_is_exponential_then_capped():
    policy = RetryPolicy(max_retries=6, base_delay_seconds=100.0,
                         multiplier=2.0, max_delay_seconds=1000.0)
    assert policy.schedule() == [100.0, 200.0, 400.0, 800.0,
                                 1000.0, 1000.0]
    assert policy.backoff_seconds(50) == 1000.0


def test_backoff_rejects_negative_retry_index():
    with pytest.raises(ValueError, match="retry_index"):
        RetryPolicy().backoff_seconds(-1)


@pytest.mark.parametrize("kwargs,match", [
    ({"max_retries": -1}, "max_retries"),
    ({"base_delay_seconds": -1.0}, "base_delay_seconds"),
    ({"multiplier": 0.5}, "multiplier"),
    ({"base_delay_seconds": 100.0, "max_delay_seconds": 50.0},
     "max_delay_seconds"),
    ({"jitter_fraction": 1.0}, "jitter_fraction"),
    ({"jitter_fraction": -0.1}, "jitter_fraction"),
])
def test_retry_policy_validation(kwargs, match):
    with pytest.raises(ValueError, match=match):
        RetryPolicy(**kwargs)


def test_jittered_backoff_stays_within_declared_bounds():
    policy = RetryPolicy(max_retries=4, jitter_fraction=0.25)
    rng = np.random.default_rng(123)
    for retry_index in range(4):
        low, high = policy.jitter_bounds(retry_index)
        for _ in range(50):
            delay = policy.jittered_backoff(retry_index, rng)
            assert low <= delay <= high


def test_zero_jitter_is_exactly_the_base_schedule():
    policy = RetryPolicy(jitter_fraction=0.0)
    rng = np.random.default_rng(0)
    for retry_index in range(3):
        assert policy.jittered_backoff(retry_index, rng) \
            == policy.backoff_seconds(retry_index)


# -- CircuitBreaker -----------------------------------------------------------

def test_breaker_trips_at_the_failure_threshold():
    breaker = CircuitBreaker(BreakerPolicy(failure_threshold=3,
                                           cooldown_seconds=HOUR))
    assert breaker.allows(0.0)
    breaker.record_failure(10.0)
    breaker.record_failure(20.0)
    assert breaker.state is BreakerState.CLOSED
    assert breaker.allows(25.0)
    breaker.record_failure(30.0)
    assert breaker.state is BreakerState.OPEN
    assert breaker.trips == 1
    assert not breaker.allows(30.0 + HOUR - 1.0)


def test_open_breaker_grants_exactly_one_probe_per_cooldown():
    breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1,
                                           cooldown_seconds=HOUR))
    breaker.record_failure(0.0)
    assert breaker.state is BreakerState.OPEN
    assert breaker.allows(HOUR + 1.0)       # the half-open probe
    assert breaker.state is BreakerState.HALF_OPEN
    assert not breaker.allows(HOUR + 2.0)   # probe still outstanding


def test_probe_failure_retrips_with_a_fresh_cooldown():
    breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1,
                                           cooldown_seconds=HOUR))
    breaker.record_failure(0.0)
    assert breaker.allows(HOUR + 10.0)
    breaker.record_failure(HOUR + 10.0)
    assert breaker.state is BreakerState.OPEN
    assert breaker.trips == 2
    assert breaker.opened_at == HOUR + 10.0
    assert not breaker.allows(HOUR + 20.0)
    assert breaker.allows(2 * HOUR + 10.0)


def test_probe_success_closes_and_resets_the_failure_count():
    breaker = CircuitBreaker(BreakerPolicy(failure_threshold=2,
                                           cooldown_seconds=HOUR))
    breaker.record_failure(0.0)
    breaker.record_failure(1.0)
    assert breaker.allows(HOUR + 1.0)
    breaker.record_success(HOUR + 2.0)
    assert breaker.state is BreakerState.CLOSED
    assert breaker.consecutive_failures == 0
    # One fresh failure is not enough to trip again.
    breaker.record_failure(HOUR + 3.0)
    assert breaker.state is BreakerState.CLOSED


def test_success_interleaving_prevents_a_trip():
    breaker = CircuitBreaker(BreakerPolicy(failure_threshold=3,
                                           cooldown_seconds=HOUR))
    for time in range(10):
        breaker.record_failure(float(time))
        breaker.record_failure(float(time) + 0.5)
        breaker.record_success(float(time) + 0.9)
    assert breaker.state is BreakerState.CLOSED
    assert breaker.trips == 0


def test_transitions_are_logged_for_reporting():
    breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1,
                                           cooldown_seconds=HOUR))
    breaker.record_failure(5.0)
    breaker.allows(HOUR + 6.0)
    breaker.record_success(HOUR + 7.0)
    assert [state for _t, state in breaker.transitions] == [
        BreakerState.OPEN, BreakerState.HALF_OPEN, BreakerState.CLOSED]


@pytest.mark.parametrize("kwargs,match", [
    ({"failure_threshold": 0}, "failure_threshold"),
    ({"cooldown_seconds": 0.0}, "cooldown_seconds"),
])
def test_breaker_policy_validation(kwargs, match):
    with pytest.raises(ValueError, match=match):
        BreakerPolicy(**kwargs)


# -- ResilienceConfig ---------------------------------------------------------

def test_resilience_config_defaults_and_validation():
    config = ResilienceConfig()
    assert config.work_order_timeout_seconds == 8.0 * HOUR
    # Humans run on ticket timescales; their budget must dwarf the
    # robot one or every legitimate human repair churns into retries.
    assert config.human_order_timeout_seconds \
        > 4 * config.work_order_timeout_seconds
    assert config.verify_before_retry
    with pytest.raises(ValueError, match="work_order_timeout"):
        ResilienceConfig(work_order_timeout_seconds=0.0)
    with pytest.raises(ValueError, match="human_order_timeout"):
        ResilienceConfig(human_order_timeout_seconds=-1.0)
