"""Unit tests for the fleet planner and audit/authorization layer."""

import numpy as np
import pytest

from dcrobot.core import (
    AuditLog,
    AuthorizationError,
    FleetPlanner,
    MaintenanceAuthorizer,
    RepairAction,
    erlang_c,
)
from dcrobot.failures import FailureRates
from dcrobot.robots import MobilityScope
from dcrobot.topology import build_fattree


@pytest.fixture
def topo():
    return build_fattree(k=4, rng=np.random.default_rng(2))


# -- erlang C ----------------------------------------------------------------

def test_erlang_c_bounds():
    assert erlang_c(1, 0.0) == 0.0
    assert erlang_c(4, 4.0) == 1.0  # saturated
    assert erlang_c(4, 8.0) == 1.0  # overloaded
    assert 0.0 < erlang_c(2, 1.0) < 1.0


def test_erlang_c_monotone_in_servers():
    load = 3.0
    values = [erlang_c(servers, load) for servers in range(4, 10)]
    assert values == sorted(values, reverse=True)


def test_erlang_c_validation():
    with pytest.raises(ValueError):
        erlang_c(0, 1.0)
    with pytest.raises(ValueError):
        erlang_c(1, -1.0)


# -- planner -----------------------------------------------------------------

def test_planner_inputs(topo):
    planner = FleetPlanner(topo, rates=FailureRates().scaled(4.0))
    assert planner.incident_rate_per_second() > 0
    assert planner.mean_travel_seconds() > 0
    assert planner.service_seconds() > planner.mean_travel_seconds()


def test_planner_prediction_improves_with_fleet_size(topo):
    planner = FleetPlanner(topo, rates=FailureRates().scaled(200.0))
    small = planner.predict(1)
    large = planner.predict(8)
    assert large.predicted_repair_seconds \
        <= small.predicted_repair_seconds
    assert large.utilization < small.utilization


def test_planner_recommend_meets_target(topo):
    planner = FleetPlanner(topo, rates=FailureRates().scaled(50.0))
    plan = planner.recommend(target_repair_seconds=1200.0)
    assert plan.predicted_repair_seconds <= 1200.0
    assert plan.manipulators >= 1
    assert plan.cleaners >= 1
    config = plan.to_fleet_config()
    assert config.manipulators == plan.manipulators
    assert config.scope is MobilityScope.HALL


def test_planner_overload_reports_saturation(topo):
    planner = FleetPlanner(topo, rates=FailureRates().scaled(1e7))
    plan = planner.predict(2)
    assert plan.utilization == 1.0
    assert plan.predicted_repair_seconds == float("inf")


def test_planner_validation(topo):
    with pytest.raises(ValueError):
        FleetPlanner(topo, mean_operation_seconds=0.0)
    planner = FleetPlanner(topo)
    with pytest.raises(ValueError):
        planner.recommend(target_repair_seconds=0.0)


def test_planner_prediction_matches_simulation(topo):
    """The analytic plan must land in the same regime as a real run:
    the simulated robot-stage repair time should be within ~3x of the
    prediction (queueing model vs full physics)."""
    from dcrobot.core import AutomationLevel
    from dcrobot.experiments import WorldConfig, run_world
    from dcrobot.robots import FleetConfig

    rates = FailureRates().scaled(4.0)
    planner = FleetPlanner(topo, rates=rates)
    plan = planner.predict(2)
    result = run_world(WorldConfig(
        horizon_days=20.0, seed=8, failure_scale=4.0,
        level=AutomationLevel.L3_HIGH_AUTOMATION,
        fleet_config=FleetConfig(manipulators=2, cleaners=1)))
    robot_repairs = [
        outcome.duration for incident in result.controller.closed_incidents
        for outcome in incident.attempts
        if outcome.executor_id == "robots" and outcome.completed]
    assert robot_repairs, "no robot repairs happened"
    measured = float(np.mean(robot_repairs))
    assert measured < 3 * plan.predicted_repair_seconds + 600


# -- audit log ------------------------------------------------------------------

def test_audit_chain_verifies():
    log = AuditLog()
    log.append(1.0, "svc-a", "reseat", "link-1", True)
    log.append(2.0, "svc-b", "clean", "link-2", False, detail="denied")
    assert log.verify_chain()
    assert len(log.entries_for("link-1")) == 1


def test_audit_tamper_detected():
    import dataclasses

    log = AuditLog()
    log.append(1.0, "svc-a", "reseat", "link-1", True)
    log.append(2.0, "svc-a", "reseat", "link-1", True)
    log.records[0] = dataclasses.replace(log.records[0],
                                         principal="mallory")
    assert not log.verify_chain()


def test_audit_chain_links_records():
    log = AuditLog()
    first = log.append(1.0, "a", "x", "l", True)
    second = log.append(2.0, "a", "x", "l", True)
    assert second.previous_hash == first.entry_hash
    assert first.previous_hash == AuditLog.GENESIS


# -- authorization ----------------------------------------------------------------

def test_token_scoping():
    authorizer = MaintenanceAuthorizer()
    authorizer.issue("tenant-a", [RepairAction.RESEAT],
                     link_scope=["link-0"])
    assert authorizer.check(1.0, "tenant-a", RepairAction.RESEAT,
                            "link-00001")
    assert not authorizer.check(1.0, "tenant-a", RepairAction.CLEAN,
                                "link-00001")
    assert not authorizer.check(1.0, "tenant-a", RepairAction.RESEAT,
                                "link-99999")
    assert not authorizer.check(1.0, "tenant-b", RepairAction.RESEAT,
                                "link-00001")


def test_token_expiry_and_revocation():
    authorizer = MaintenanceAuthorizer()
    authorizer.issue("ops", list(RepairAction), expires_at=100.0)
    assert authorizer.check(50.0, "ops", RepairAction.CLEAN, "link-1")
    assert not authorizer.check(150.0, "ops", RepairAction.CLEAN,
                                "link-1")
    fresh = authorizer.issue("ops", list(RepairAction))
    assert authorizer.check(200.0, "ops", RepairAction.CLEAN, "link-1")
    authorizer.revoke(fresh)
    assert not authorizer.check(201.0, "ops", RepairAction.CLEAN,
                                "link-1")


def test_authorize_raises_and_audits():
    authorizer = MaintenanceAuthorizer()
    with pytest.raises(AuthorizationError):
        authorizer.authorize(1.0, "mallory",
                             RepairAction.REPLACE_SWITCHGEAR, "link-1")
    records = authorizer.audit.records
    assert len(records) == 1
    assert not records[0].allowed
    assert authorizer.audit.verify_chain()


def test_every_check_is_audited():
    authorizer = MaintenanceAuthorizer()
    authorizer.issue("ops", [RepairAction.RESEAT])
    authorizer.check(1.0, "ops", RepairAction.RESEAT, "link-1")
    authorizer.check(2.0, "ops", RepairAction.CLEAN, "link-1")
    assert len(authorizer.audit.records) == 2
    assert [record.allowed for record in authorizer.audit.records] \
        == [True, False]
