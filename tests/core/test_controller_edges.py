"""Controller edge cases: null policies, attempt budgets, executor
selection corners."""

from dcrobot.core import (
    AutomationLevel,
    ControllerConfig,
    RepairAction,
)
from dcrobot.experiments import WorldConfig, build_world
from dcrobot.network import LinkState

DAY = 86400.0


def test_null_policy_leaves_faults_alone():
    world = build_world(WorldConfig(
        horizon_days=5.0, seed=41, failure_scale=0.0, policy="none",
        dust_rate_per_day=0.0, aging_rate_per_day=0.0))
    link = list(world.fabric.links.values())[0]
    link.transceiver_a.fail_hardware()
    world.health.evaluate_link(link, 0.0)
    world.sim.run(until=5.0 * DAY)
    assert link.state is LinkState.DOWN
    assert not world.controller.closed_incidents
    # The monitor re-arms after each ignored event (no mute leak).
    assert not world.monitor.is_muted(link.id)


def test_attempt_budget_marks_unresolvable():
    world = build_world(WorldConfig(
        horizon_days=60.0, seed=42, failure_scale=0.0,
        dust_rate_per_day=0.0, aging_rate_per_day=0.0,
        spare_transceivers=0, spare_cables=0,
        controller_config=ControllerConfig(
            verification_delay_seconds=300.0, max_attempts=3)))
    link = list(world.fabric.links.values())[0]
    link.port_b.hw_fault = True  # only switchgear replacement fixes
    # Sabotage: switchgear "replacement" keeps failing because we
    # re-break the port after each fix.
    world.health.evaluate_link(link, 0.0)

    def saboteur(sim=world.sim):
        while True:
            yield sim.timeout(3600.0)
            link.port_b.hw_fault = True

    world.sim.process(saboteur())
    world.sim.run(until=60.0 * DAY)
    assert world.controller.unresolved_incidents
    incident = world.controller.unresolved_incidents[0]
    assert incident.attempt_count <= 3 + 1  # budget (+1 human retry)
    assert incident.unresolvable_reason


def test_unplaced_node_falls_back_to_humans():
    world = build_world(WorldConfig(
        horizon_days=1.0, seed=43, failure_scale=0.0,
        level=AutomationLevel.L3_HIGH_AUTOMATION))
    fabric = world.fabric
    from dcrobot.network import SwitchRole

    floating = fabric.add_switch(SwitchRole.TOR, radix=2)  # no rack
    anchored = fabric.add_switch(
        SwitchRole.TOR, radix=2,
        rack_id=fabric.layout.rack_at(0, 0).id)
    link = fabric.connect(floating.id, anchored.id)
    executor = world.controller._select_executor(
        RepairAction.RESEAT, link)
    assert executor is world.controller.humans


def test_repair_history_shared_across_incidents():
    world = build_world(WorldConfig(
        horizon_days=40.0, seed=44, failure_scale=0.0,
        dust_rate_per_day=0.0, aging_rate_per_day=0.0,
        level=AutomationLevel.L3_HIGH_AUTOMATION))
    link = next(ln for ln in world.fabric.links.values()
                if ln.cable.cleanable)
    # Two separate wedges: incident 2 must start from the ladder's
    # *continuation*, not from scratch... unless the first was
    # effective, in which case both are reseats.  Force ineffective
    # first repair with persistent dirt.
    link.cable.end_a.add_contamination(0.95, cores=[0])
    world.sim.run(until=40.0 * DAY)
    history = world.controller.repair_history.get(link.id, [])
    actions = [action for _t, action in history]
    assert RepairAction.RESEAT in actions
    assert RepairAction.CLEAN in actions
    assert actions.index(RepairAction.RESEAT) \
        < actions.index(RepairAction.CLEAN)


def test_fleet_only_controller_requires_fleet_capability():
    world = build_world(WorldConfig(
        horizon_days=20.0, seed=45, failure_scale=0.0,
        dust_rate_per_day=0.0, aging_rate_per_day=0.0,
        level=AutomationLevel.L4_FULL_AUTOMATION))
    assert world.controller.humans is None
    link = list(world.fabric.links.values())[0]
    link.cable.damage()
    world.health.evaluate_link(link, 0.0)
    world.sim.run(until=20.0 * DAY)
    # L4 fleet replaces cables itself.
    cable_repairs = [
        outcome for incident in world.controller.closed_incidents
        for outcome in incident.attempts
        if outcome.order.action is RepairAction.REPLACE_CABLE]
    assert cable_repairs
    assert all(outcome.executor_id == "robots"
               for outcome in cable_repairs)
    assert link.state is LinkState.UP
