"""Unit tests for shared repair physics and skill profiles."""

import pytest

from dcrobot.core.actions import RepairAction
from dcrobot.core.repairs import (
    ROBOT_SKILL,
    TECHNICIAN_SKILL,
    SkillProfile,
)
from dcrobot.network import CableKind, LinkState

from tests.conftest import make_world

PERFECT = SkillProfile(
    inspection_false_negative=0.0,
    clean_effectiveness=0.95,
    clean_smear_probability=0.0,
    max_clean_rounds=5,
    botch_probability=0.0,
)


def test_skill_profile_validation():
    with pytest.raises(ValueError):
        SkillProfile(1.5, 0.5, 0.0, 1, 0.0)
    with pytest.raises(ValueError):
        SkillProfile(0.0, 0.5, 0.0, 0, 0.0)


def test_robot_skill_beats_technician_skill():
    assert (ROBOT_SKILL.inspection_false_negative
            < TECHNICIAN_SKILL.inspection_false_negative)
    assert ROBOT_SKILL.botch_probability < TECHNICIAN_SKILL.botch_probability


def test_reseat_clears_oxidation_and_firmware(world):
    link = world.links[0]
    link.transceiver_a.oxidation = 0.8
    link.transceiver_b.firmware_stuck = True
    note = world.physics.do_reseat(link, now=100.0, skill=PERFECT)
    assert "reseated" in note
    assert link.transceiver_a.oxidation < 0.2
    assert not link.transceiver_b.firmware_stuck


def test_reseat_botch_changes_nothing(world):
    link = world.links[0]
    link.transceiver_a.firmware_stuck = True
    always_botch = SkillProfile(0.0, 0.9, 0.0, 3, 1.0)
    note = world.physics.do_reseat(link, 0.0, always_botch)
    assert "botched" in note
    assert link.transceiver_a.firmware_stuck


def test_clean_removes_dirt_and_verifies(world):
    link = world.links[0]
    link.cable.end_a.add_contamination(0.7)
    link.transceiver_a.receptacle.add_contamination(0.5)
    verified, note = world.physics.do_clean(link, 0.0, PERFECT)
    assert verified
    assert link.cable.end_a.passes_inspection()
    assert link.transceiver_a.receptacle.passes_inspection()
    assert link.cable.attached_a and link.cable.attached_b


def test_clean_rejects_integrated_cable():
    world = make_world(kind=CableKind.AOC)
    verified, note = world.physics.do_clean(world.links[0], 0.0, PERFECT)
    assert not verified
    assert "not cleanable" in note


def test_clean_cannot_fix_scratch(world):
    link = world.links[0]
    link.cable.end_a.scratch(0)
    verified, _note = world.physics.do_clean(link, 0.0, PERFECT)
    assert not verified


def test_pick_suspect_side_prefers_visible_fault(world):
    link = world.links[0]
    link.transceiver_b.fail_hardware()
    assert world.physics.pick_suspect_side(link) == "b"
    link2 = world.links[1]
    link2.transceiver_b.oxidation = 0.5
    assert world.physics.pick_suspect_side(link2) == "b"
    assert world.physics.pick_suspect_side(world.links[2]) == "a"


def test_replace_transceiver_uses_spare(world):
    link = world.links[0]
    link.transceiver_a.fail_hardware()
    old_id = link.transceiver_a.id
    ok, note = world.physics.do_replace_transceiver(link, now=50.0)
    assert ok
    assert link.transceiver_a.id != old_id
    assert not link.transceiver_a.hw_fault
    assert old_id in note


def test_replace_transceiver_without_spares_fails():
    world = make_world(spare_transceivers=0)
    link = world.links[0]
    link.transceiver_a.fail_hardware()
    ok, note = world.physics.do_replace_transceiver(link, 0.0)
    assert not ok
    assert "no spare" in note
    assert link.transceiver_a.hw_fault  # unchanged


def test_replace_cable_swaps_and_rebundles(world):
    link = world.links[0]
    link.cable.damage()
    old_id = link.cable.id
    ok, _note = world.physics.do_replace_cable(link, now=10.0)
    assert ok
    assert link.cable.id != old_id
    assert not link.cable.damaged
    # New cable joins a bundle; old one is unassigned.
    assert world.fabric.bundles.bundle_of(link.cable.id) is not None
    assert world.fabric.bundles.bundle_of(old_id) is None


def test_replace_cable_without_stock():
    world = make_world(spare_cables=0)
    link = world.links[0]
    ok, note = world.physics.do_replace_cable(link, 0.0)
    assert not ok


def test_replace_switchgear_clears_port_fault(world):
    link = world.links[0]
    link.port_a.hw_fault = True
    ok, note = world.physics.do_replace_switchgear(link, 0.0)
    assert ok
    assert not link.port_a.hw_fault
    assert link.port_a.id in note


def test_perform_dispatches_every_action(world):
    link = world.links[0]
    for action in RepairAction:
        completed, note = world.physics.perform(
            action, link, 0.0, PERFECT)
        assert isinstance(completed, bool)
        assert isinstance(note, str)


def test_full_repair_cycle_restores_link(world):
    link = world.links[0]
    link.transceiver_a.firmware_stuck = True
    world.health.evaluate_link(link, 0.0)
    assert link.state is LinkState.DOWN
    world.health.begin_maintenance(link, 10.0)
    world.physics.perform(RepairAction.RESEAT, link, 20.0, PERFECT)
    world.health.release_from_maintenance(link, 30.0)
    assert link.state is LinkState.UP


def test_reach_in_records_cascade(world):
    from dcrobot.failures import HUMAN_HANDS

    report = world.physics.reach_in(world.links[0], HUMAN_HANDS, now=0.0)
    assert report is world.cascade.reports[-1]
