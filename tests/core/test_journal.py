"""Write-ahead journal: append discipline, snapshots, durable stores."""

import pytest

from dcrobot.core.journal import (
    JOURNAL_SCHEMA_VERSION,
    FileJournalStore,
    JournalRecord,
    MemoryJournalStore,
    RecordKind,
    WriteAheadJournal,
)


def test_appends_are_sequenced_and_typed():
    journal = WriteAheadJournal()
    first = journal.append(10.0, RecordKind.INCIDENT_OPENED,
                           link_id="link-1", symptom="link-down")
    second = journal.append(20.0, RecordKind.ORDER_DISPATCHED,
                            order_id=1, link_id="link-1")
    assert (first.seq, second.seq) == (0, 1)
    assert journal.next_seq == 2
    assert journal.record_count == 2
    records = journal.records()
    assert [r.kind for r in records] == [RecordKind.INCIDENT_OPENED,
                                         RecordKind.ORDER_DISPATCHED]
    assert records[0].payload["link_id"] == "link-1"


def test_non_durable_payloads_are_rejected_at_append_time():
    journal = WriteAheadJournal()

    class Live:
        pass

    with pytest.raises(TypeError, match="non-durable"):
        journal.append(0.0, RecordKind.INCIDENT_OPENED, thing=Live())
    with pytest.raises(TypeError, match="not a string"):
        journal.append(0.0, RecordKind.INCIDENT_OPENED,
                       mapping={1: "x"})
    # Nothing half-written: the failed appends left no record behind.
    assert journal.record_count == 0


def test_tail_returns_latest_snapshot_and_records_after_it():
    journal = WriteAheadJournal()
    journal.append(1.0, RecordKind.INCIDENT_OPENED, link_id="a")
    journal.snapshot(2.0, {"open_incidents": []})
    journal.append(3.0, RecordKind.INCIDENT_OPENED, link_id="b")
    journal.snapshot(4.0, {"open_incidents": ["b"]})
    journal.append(5.0, RecordKind.INCIDENT_CLOSED, link_id="b")

    snapshot, tail = journal.tail()
    assert snapshot is not None
    assert snapshot.payload["state"] == {"open_incidents": ["b"]}
    assert snapshot.payload["schema_version"] == JOURNAL_SCHEMA_VERSION
    assert [r.kind for r in tail] == [RecordKind.INCIDENT_CLOSED]
    assert journal.snapshot_count == 2


def test_tail_without_snapshot_is_the_whole_journal():
    journal = WriteAheadJournal()
    journal.append(1.0, RecordKind.INCIDENT_OPENED, link_id="a")
    snapshot, tail = journal.tail()
    assert snapshot is None
    assert len(tail) == 1


def test_memory_store_survives_journal_object_death():
    store = MemoryJournalStore()
    journal = WriteAheadJournal(store)
    journal.append(1.0, RecordKind.INCIDENT_OPENED, link_id="a")
    journal.snapshot(2.0, {"x": 1})
    del journal  # the "controller crash"

    reborn = WriteAheadJournal(store)
    assert reborn.next_seq == 2  # sequence continues, never reuses
    assert reborn.snapshot_count == 1
    assert [r.kind for r in reborn.records()] == [
        RecordKind.INCIDENT_OPENED, RecordKind.SNAPSHOT]


def test_record_json_round_trip():
    record = JournalRecord(seq=7, time=123.5,
                           kind=RecordKind.ORDER_CONCLUDED,
                           payload={"order_id": 3, "link_id": "l",
                                    "nested": [1, 2.5, None, True]})
    assert JournalRecord.from_json(record.to_json()) == record


def test_file_store_round_trips_and_tolerates_torn_tail(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    store = FileJournalStore(path, fsync=False)
    journal = WriteAheadJournal(store)
    journal.append(1.0, RecordKind.INCIDENT_OPENED, link_id="a")
    journal.append(2.0, RecordKind.INCIDENT_CLOSED, link_id="a")
    store.close()

    # Simulate a crash mid-append: a torn, unparseable final line.
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"seq": 2, "time": 3.0, "kin')

    recovered = WriteAheadJournal(FileJournalStore(path, fsync=False))
    records = recovered.records()
    assert [r.kind for r in records] == [RecordKind.INCIDENT_OPENED,
                                         RecordKind.INCIDENT_CLOSED]
    assert recovered.next_seq == 2
