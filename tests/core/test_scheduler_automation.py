"""Unit tests for the impact-aware scheduler and automation levels."""

import pytest

from dcrobot.core import (
    AutomationLevel,
    ImpactAwareScheduler,
    LEVEL_SPECS,
    RepairAction,
    SchedulerConfig,
    WorkOrder,
    spec_for,
)
from dcrobot.traffic import EcmpRouter

HOUR = 3600.0


def test_scheduler_config_validation():
    with pytest.raises(ValueError):
        SchedulerConfig(quiet_window_start_hour=5,
                        quiet_window_end_hour=4)
    with pytest.raises(ValueError):
        SchedulerConfig(quiet_window_start_hour=-1,
                        quiet_window_end_hour=4)


def test_quiet_window_timing():
    scheduler = ImpactAwareScheduler(
        config=SchedulerConfig(quiet_window_start_hour=1,
                               quiet_window_end_hour=5))
    # Midnight: window opens at 01:00.
    assert scheduler.seconds_until_quiet_window(0.0) == HOUR
    # 02:00: inside the window.
    assert scheduler.seconds_until_quiet_window(2 * HOUR) == 0.0
    assert scheduler.in_quiet_window(2 * HOUR)
    # 06:00: wait until tomorrow 01:00.
    assert scheduler.seconds_until_quiet_window(6 * HOUR) \
        == pytest.approx(19 * HOUR)
    # Next day 02:00 is again inside.
    assert scheduler.in_quiet_window(26 * HOUR)


def test_drain_and_undrain_cycle(world):
    router = EcmpRouter(world.fabric)
    scheduler = ImpactAwareScheduler(router=router)
    target = world.links[0]
    neighbor = world.links[1]
    order = WorkOrder(target.id, RepairAction.RESEAT, created_at=0.0,
                      announced_touches=[neighbor.id])
    drained = scheduler.before_repair(order)
    assert set(drained) == {target.id, neighbor.id}
    assert router.drained_links == {target.id, neighbor.id}
    scheduler.after_repair(order)
    assert router.drained_links == set()


def test_drain_announced_can_be_disabled(world):
    router = EcmpRouter(world.fabric)
    scheduler = ImpactAwareScheduler(
        router=router, config=SchedulerConfig(drain_announced=False))
    order = WorkOrder(world.links[0].id, RepairAction.RESEAT,
                      created_at=0.0,
                      announced_touches=[world.links[1].id])
    drained = scheduler.before_repair(order)
    assert drained == [world.links[0].id]


def test_scheduler_without_router_is_noop(world):
    scheduler = ImpactAwareScheduler(router=None)
    order = WorkOrder(world.links[0].id, RepairAction.RESEAT,
                      created_at=0.0)
    assert scheduler.before_repair(order) == []
    scheduler.after_repair(order)  # no error


# -- automation levels -------------------------------------------------------------

def test_all_five_levels_present():
    assert len(LEVEL_SPECS) == 5
    for level in AutomationLevel:
        assert spec_for(level).level is level


def test_level_progression_monotone():
    # Robot action sets grow, supervision shrinks, L0/L1 have no robots.
    l0, l1, l2, l3, l4 = [spec_for(level) for level in AutomationLevel]
    assert l0.robot_actions == frozenset()
    assert l1.robot_actions == frozenset()
    assert l2.robot_actions < l4.robot_actions
    assert l2.robot_actions == l3.robot_actions
    assert l2.supervision_ratio > l3.supervision_ratio \
        > l4.supervision_ratio
    assert l4.robot_actions == frozenset(RepairAction)


def test_l1_and_up_have_assist_devices():
    assert not spec_for(AutomationLevel.L0_NO_AUTOMATION) \
        .operator_assist_devices
    assert spec_for(AutomationLevel.L1_OPERATOR_ASSISTANCE) \
        .operator_assist_devices


def test_l2_has_approval_latency():
    assert spec_for(AutomationLevel.L2_PARTIAL_AUTOMATION) \
        .approval_latency_seconds > 0
    assert spec_for(AutomationLevel.L3_HIGH_AUTOMATION) \
        .approval_latency_seconds == 0
