"""ControllerSupervisor end-to-end: restart recovery, standby
takeover with fencing, and the journal-less coldstart baseline —
driven through scripted executors that expose the real executors'
recovery surface (fencing guard + surviving work-order queue)."""

import numpy as np

from dcrobot.core import (
    AutomationLevel,
    ControllerConfig,
    MaintenanceController,
    ReactivePolicy,
)
from dcrobot.core.actions import RepairOutcome
from dcrobot.core.journal import WriteAheadJournal
from dcrobot.core.leadership import (
    FencingGuard,
    LeaseConfig,
    LeaseCoordinator,
)
from dcrobot.core.recovery import ControllerSupervisor
from dcrobot.telemetry import TelemetryMonitor
from dcrobot.telemetry.detectors import DetectorParams

from tests.core.test_controller_resilience import (
    ScriptedExecutor,
    fast_resilience,
)


def _at(sim, when, action):
    """Generator: run ``action`` at absolute sim time ``when``."""
    yield sim.timeout(when)
    action()


class RecoverableScriptedExecutor(ScriptedExecutor):
    """Scripted executor with the recovery surface of the real ones:
    a fencing guard and a ``pending_acks`` work-order queue that
    survives the controller object's death."""

    def __init__(self, sim, world, executor_id, script=("fix",)):
        super().__init__(sim, world, executor_id, script)
        self.fence = None
        self.pending_acks = {}
        self.rejected_orders = []

    def submit(self, order):
        if self.fence is not None and not self.fence.admit(
                order.fencing_token, time=self.sim.now,
                order_id=order.order_id, link_id=order.link_id):
            self.rejected_orders.append(order)
            done = self.sim.event()
            done.succeed(RepairOutcome(
                order=order, executor_id=self.executor_id,
                started_at=self.sim.now, finished_at=self.sim.now,
                completed=False, rejected=True,
                notes="stale fencing token"))
            return done
        done = super().submit(order)
        self.pending_acks[order.order_id] = done
        return done


def build_recoverable(world, *, journal=None, leadership=False,
                      script=("fix",)):
    """A supervised stub world: monitor polling for real, one human
    executor, and a factory the supervisor uses to build successors."""
    monitor = TelemetryMonitor(
        world.fabric, params=DetectorParams(down_grace_seconds=60.0),
        poll_seconds=60.0)
    humans = RecoverableScriptedExecutor(
        world.sim, world, "stub-humans", script)
    coordinator = None
    if leadership:
        coordinator = LeaseCoordinator(LeaseConfig(), journal)
        humans.fence = FencingGuard()

    def factory(node_id):
        return MaintenanceController(
            world.sim, world.fabric, world.health, monitor,
            ReactivePolicy(world.fabric),
            level=AutomationLevel.L0_NO_AUTOMATION,
            humans=humans,
            config=ControllerConfig(verification_delay_seconds=60.0,
                                    resilience=fast_resilience()),
            rng=np.random.default_rng(2),
            journal=journal, node_id=node_id)

    supervisor = ControllerSupervisor(
        world.sim, factory("primary"), factory,
        coordinator=coordinator, journal=journal)
    supervisor.start()
    supervisor.controller.start()
    world.sim.process(monitor.run(world.sim))
    return monitor, humans, supervisor


def break_link(world, link):
    link.transceiver_a.firmware_stuck = True
    world.health.evaluate_link(link, world.sim.now)


def test_restart_mid_flight_adopts_without_redispatch(world):
    journal = WriteAheadJournal()
    _m, humans, supervisor = build_recoverable(world, journal=journal)
    break_link(world, world.links[0])
    # Detection at the t=60 scan dispatches immediately; the scripted
    # ack lands at t=120.  Restart dead-centre in that window.
    world.sim.process(_at(world.sim, 90.0,
                          lambda: supervisor.restart_primary("test")))
    world.sim.run(until=4000.0)

    successor = supervisor.controller
    assert supervisor.crashes == 1
    assert supervisor.recoveries == 1
    assert supervisor.adopted_order_count == 1
    assert len(humans.submitted) == 1  # adopted, never re-dispatched
    assert successor.recovered_incident_count == 1
    assert len(successor.closed_incidents) == 1
    assert successor.closed_incidents[0].resolved
    assert successor.active_orders == {}


def test_restart_during_backoff_resumes_the_incident(world):
    journal = WriteAheadJournal()
    _m, humans, supervisor = build_recoverable(
        world, journal=journal, script=("lost", "fix"))
    link = world.links[0]
    break_link(world, link)
    # Dispatch at t=60, the ack is lost, the human-order timeout fires
    # at t=1260 and schedules a 120s-backoff retry for t=1380.  The
    # crash at t=1320 lands in the backoff window: incident open,
    # nothing in flight, retry timer dead with its controller.
    world.sim.process(_at(world.sim, 1320.0,
                          lambda: supervisor.restart_primary("test")))
    world.sim.run(until=8000.0)

    successor = supervisor.controller
    assert supervisor.adopted_order_count == 0
    assert successor.recovered_incident_count == 1
    assert successor.timeout_count == 1  # the counter survived
    # Recovery re-verified the link, re-armed telemetry, and the
    # re-detection drove the second (scripted "fix") dispatch.
    assert len(humans.submitted) == 2
    assert len(successor.closed_incidents) == 1
    assert successor.closed_incidents[0].resolved
    assert successor.active_orders == {}


def test_partition_promotes_standby_and_fences_the_zombie(world):
    journal = WriteAheadJournal()
    _m, humans, supervisor = build_recoverable(
        world, journal=journal, leadership=True)
    zombie = supervisor.controller
    assert zombie.fencing_token == 1
    # Cut the primary off from the lock service.  It keeps running and
    # stays subscribed to telemetry, but its lease silently expires and
    # the watchdog promotes a standby with a fresh fencing token.
    world.sim.process(_at(world.sim, 1000.0,
                          lambda: supervisor.partition_primary(7200.0)))
    # Break a link after the takeover: both controllers see the
    # detection and both dispatch — the classic split-brain moment.
    world.sim.process(_at(
        world.sim, 2400.0,
        lambda: break_link(world, world.links[0])))
    world.sim.run(until=9000.0)

    successor = supervisor.controller
    assert successor is not zombie
    assert successor.node_id.startswith("standby-")
    assert supervisor.failovers == 1
    assert successor.fencing_token == 2
    # The zombie's dispatch was refused at the executor and it
    # self-fenced; only the successor's order ran physically.
    assert len(humans.rejected_orders) == 1
    assert humans.rejected_orders[0].fencing_token == 1
    assert zombie.crashed
    assert "fenced" in zombie.crash_reason
    assert len(humans.submitted) == 1  # zero double-dispatch
    assert humans.submitted[0].fencing_token == 2
    assert len(successor.closed_incidents) == 1


def test_coldstart_without_journal_loses_the_muted_link(world):
    monitor, humans, supervisor = build_recoverable(
        world, script=("lost",))
    link = world.links[0]
    break_link(world, link)
    world.sim.process(_at(world.sim, 90.0,
                          lambda: supervisor.restart_primary("test")))
    world.sim.run(until=2 * 86400.0)

    successor = supervisor.controller
    assert supervisor.failovers == 1
    assert supervisor.recoveries == 0  # no journal: nothing to replay
    assert successor.recovered_incident_count == 0
    # The predecessor muted the link at detection; the journal-less
    # successor has no record it exists.  Detection never re-fires, no
    # order is ever re-dispatched: the repair is silently lost — the
    # E14 coldstart baseline's failure mode.
    assert len(humans.submitted) == 1
    assert successor.open_incidents == {}
    assert successor.closed_incidents == []
    assert monitor.is_muted(link.id, world.sim.now)
