"""Characterization tests pinning plan_rewiring / RoboticRewirer.

Pins the planner's ordering policy at its edges — the forced-partition
escape hatch, additions-first preference, parallel-edge safety — plus
the plan/report surfaces and the rewirer's failure modes, so the
campus work (which reuses these classes per hall) can't drift them.
"""

import numpy as np
import pytest

from dcrobot.core.reconfigure import (
    RewirePlan,
    RewireStep,
    RoboticRewirer,
    StepKind,
    _pair,
    plan_rewiring,
)
from dcrobot.network import Fabric, HallLayout, SwitchRole
from dcrobot.robots import FleetConfig, RobotFleet

from tests.conftest import make_world


def ring_fabric(nodes=3, radix=3):
    fabric = Fabric(layout=HallLayout(rows=1, racks_per_row=max(nodes, 2)),
                    rng=np.random.default_rng(0))
    switches = [fabric.add_switch(
        SwitchRole.NODE, radix=radix,
        rack_id=fabric.layout.rack_at(0, index).id)
        for index in range(nodes)]
    return fabric, [switch.id for switch in switches]


def test_pair_canonicalizes_order():
    assert _pair("b", "a") == ("a", "b")
    assert _pair("a", "b") == ("a", "b")
    assert _pair("x", "x") == ("x", "x")


def test_plan_and_step_reprs():
    step = RewireStep(StepKind.ADD, None, ("sw-a", "sw-b"))
    assert repr(step) == "<RewireStep add sw-a<->sw-b>"
    plan = RewirePlan(steps=[
        step, RewireStep(StepKind.REMOVE, "L1", ("sw-a", "sw-b"))])
    assert plan.additions == 1 and plan.removals == 1
    assert repr(plan) == "<RewirePlan -1 +1 steps=2>"


def test_forced_partition_branch_still_emits_removal():
    # A path a-b-c where the target drops the bridge edge b-c: no safe
    # removal exists and no addition is pending, so the planner takes
    # the forced branch and accepts the partition rather than stalling.
    fabric, ids = ring_fabric()
    fabric.connect(ids[0], ids[1])
    fabric.connect(ids[1], ids[2])
    plan = plan_rewiring(fabric, [(ids[0], ids[1])],
                         protect_connectivity=True)
    assert plan.infeasible == []
    assert [step.kind for step in plan.steps] == [StepKind.REMOVE]
    assert plan.steps[0].endpoints == _pair(ids[1], ids[2])


def test_parallel_edge_removal_is_always_safe():
    # Two parallel a-b links: removing one can never disconnect, so it
    # is not deferred even under protection.
    fabric, ids = ring_fabric(nodes=2)
    fabric.connect(ids[0], ids[1])
    fabric.connect(ids[0], ids[1])
    plan = plan_rewiring(fabric, [(ids[0], ids[1])],
                         protect_connectivity=True)
    assert [step.kind for step in plan.steps] == [StepKind.REMOVE]


def test_additions_run_before_safe_removals_when_ports_allow():
    # Ring of three with spare radix: target swaps edge 2-0 for a
    # parallel 0-1.  Ports are free, so the ADD is ordered first (it
    # only improves connectivity) and the removal follows.
    fabric, ids = ring_fabric(radix=4)
    fabric.connect(ids[0], ids[1])
    fabric.connect(ids[1], ids[2])
    fabric.connect(ids[2], ids[0])
    target = [(ids[0], ids[1]), (ids[1], ids[2]), (ids[0], ids[1])]
    plan = plan_rewiring(fabric, target)
    kinds = [step.kind for step in plan.steps]
    assert kinds == [StepKind.ADD, StepKind.REMOVE]


def test_self_loop_addition_needs_two_free_ports():
    fabric, ids = ring_fabric(nodes=2, radix=2)
    fabric.connect(ids[0], ids[1])
    # ids[0] has one free port: a self-loop (needs 2) is infeasible,
    # even though an ordinary addition would fit.
    plan = plan_rewiring(
        fabric, [(ids[0], ids[1]), (ids[0], ids[0])])
    assert len(plan.infeasible) == 1
    assert plan.infeasible[0].endpoints == (ids[0], ids[0])


def test_unprotected_planner_removes_bridges_immediately():
    fabric, ids = ring_fabric()
    fabric.connect(ids[0], ids[1])
    fabric.connect(ids[1], ids[2])
    plan = plan_rewiring(fabric, [(ids[0], ids[1])],
                         protect_connectivity=False)
    assert [step.kind for step in plan.steps] == [StepKind.REMOVE]


def test_rewirer_rejects_unplaced_nodes():
    world = make_world(links=2)
    fleet = RobotFleet(world.sim, world.fabric, world.health,
                       world.physics,
                       config=FleetConfig(manipulators=1, cleaners=0),
                       rng=np.random.default_rng(4))
    rewirer = RoboticRewirer(world.sim, world.fabric, fleet)
    orphan = world.fabric.add_switch(SwitchRole.TOR, radix=2,
                                     rack_id=None)
    with pytest.raises(ValueError, match="unplaced"):
        rewirer._rack_of(orphan.id)


def test_rewirer_report_times_cable_laying():
    # One pure addition: total time must cover at least the cable run
    # at lay speed plus termination — the §3.3 "robots don't lay
    # fiber yet" cost model.
    world = make_world(links=3)
    fabric = world.fabric
    a, b = world.switch_a.id, world.switch_b.id
    third = fabric.add_switch(SwitchRole.TOR, radix=2,
                              rack_id=fabric.layout.rack_at(0, 1).id)
    # Swap one a<->b link for a<->third: one REMOVE frees a's port,
    # then one ADD lays the new cable.
    target = [(a, b)] * 2 + [(a, third.id)]
    plan = plan_rewiring(fabric, target)
    assert plan.infeasible == []
    assert plan.removals == 1 and plan.additions == 1
    fleet = RobotFleet(world.sim, fabric, world.health, world.physics,
                       config=FleetConfig(manipulators=1, cleaners=0),
                       rng=np.random.default_rng(4))
    lay_speed = 0.05
    rewirer = RoboticRewirer(world.sim, fabric, fleet,
                             lay_speed_m_s=lay_speed,
                             terminate_seconds=60.0)
    report = world.sim.run(until=rewirer.execute(plan))
    assert report.steps_executed == len(plan.steps)
    assert len(report.added_link_ids) == plan.additions
    assert len(report.removed_link_ids) == plan.removals
    assert report.total_seconds \
        >= fabric.cable_length(a, third.id) / lay_speed + 60.0
