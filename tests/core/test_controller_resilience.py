"""Hardened-controller behaviour: timeouts, retries, idempotency,
late acks, circuit breaking, and graceful degradation — driven through
scripted stub executors so every ack path is exercised deterministically.
"""

import numpy as np

from dcrobot.core import (
    AutomationLevel,
    BreakerPolicy,
    ControllerConfig,
    MaintenanceController,
    ReactivePolicy,
    RepairAction,
    ResilienceConfig,
    RetryPolicy,
)
from dcrobot.core.actions import RepairOutcome
from dcrobot.core.resilience import BreakerState
from dcrobot.telemetry import TelemetryMonitor
from dcrobot.telemetry.events import Symptom, TelemetryEvent

from tests.conftest import make_world

HOUR = 3600.0


class ScriptedExecutor:
    """Executor whose ack behaviour is scripted per submission.

    Script entries:
      * ``"fix"``        — physically repair the link, ack completed.
      * ``"fail"``       — ack completed=False.
      * ``"needs_human"``— ack completed=False, needs_human=True.
      * ``"lost"``       — never ack (the event never fires).
      * ``"lost-fix"``   — physically repair, but never ack.
      * ``("late-fix", t)`` — physically repair and ack after ``t``s.
    The script's last entry repeats for any further submissions.
    """

    def __init__(self, sim, world, executor_id, script=("fix",)):
        self.sim = sim
        self.world = world
        self.executor_id = executor_id
        self.script = list(script)
        self.cursor = 0
        self.submitted = []
        self.busy_links = {}

    def can_execute(self, action):
        return True

    def covers(self, rack_id):
        return True

    def announce_touches(self, order):
        return []

    def _next_step(self):
        step = self.script[min(self.cursor, len(self.script) - 1)]
        self.cursor += 1
        return step

    def _heal(self, order):
        link = self.world.fabric.links[order.link_id]
        link.transceiver_a.firmware_stuck = False

    def _outcome(self, order, completed, needs_human=False):
        return RepairOutcome(
            order=order, executor_id=self.executor_id,
            started_at=order.created_at, finished_at=self.sim.now,
            completed=completed, needs_human=needs_human)

    def submit(self, order):
        self.submitted.append(order)
        step = self._next_step()
        delay = 60.0
        if isinstance(step, tuple):
            step, delay = step
        done = self.sim.event()

        def finish():
            yield self.sim.timeout(delay)
            if step in ("fix", "lost-fix", "late-fix"):
                self._heal(order)
            if step in ("lost", "lost-fix"):
                return  # the ack fires into the void
            done.succeed(self._outcome(
                order, completed=step in ("fix", "late-fix"),
                needs_human=step == "needs_human"))

        self.sim.process(finish())
        return done


def fast_resilience(**overrides):
    defaults = dict(
        work_order_timeout_seconds=600.0,
        human_order_timeout_seconds=1200.0,
        retry=RetryPolicy(max_retries=2, base_delay_seconds=120.0,
                          multiplier=2.0, max_delay_seconds=600.0,
                          jitter_fraction=0.0),
        breaker=BreakerPolicy(failure_threshold=2,
                              cooldown_seconds=12 * HOUR))
    defaults.update(overrides)
    return ResilienceConfig(**defaults)


def build(world, resilience, humans_script=("fix",), fleet_script=None,
          level=AutomationLevel.L0_NO_AUTOMATION):
    monitor = TelemetryMonitor(world.fabric, poll_seconds=60.0)
    humans = ScriptedExecutor(world.sim, world, "stub-humans",
                              humans_script)
    fleet = None
    if fleet_script is not None:
        fleet = ScriptedExecutor(world.sim, world, "stub-robots",
                                 fleet_script)
    controller = MaintenanceController(
        world.sim, world.fabric, world.health, monitor,
        ReactivePolicy(world.fabric), level=level,
        humans=humans, fleet=fleet,
        config=ControllerConfig(verification_delay_seconds=60.0,
                                resilience=resilience),
        rng=np.random.default_rng(2))
    return monitor, humans, fleet, controller


def break_and_report(world, controller, link):
    link.transceiver_a.firmware_stuck = True
    world.health.evaluate_link(link, world.sim.now)
    controller.on_event(TelemetryEvent(
        time=world.sim.now, link_id=link.id,
        symptom=Symptom.LINK_DOWN))


def test_timeout_then_retry_recovers_a_lost_ack(world):
    _m, humans, _f, controller = build(
        world, fast_resilience(), humans_script=("lost", "fix"))
    link = world.links[0]
    break_and_report(world, controller, link)
    world.sim.run(until=2 * 86400.0)

    assert len(humans.submitted) == 2
    assert controller.timeout_count == 1
    assert controller.retry_count == 1
    assert len(controller.lost_ack_orders) == 1
    assert len(controller.closed_incidents) == 1
    assert controller.closed_incidents[0].resolved
    assert controller.active_orders == {}  # nothing leaked


def test_dispatches_never_exceed_the_retry_budget(world):
    _m, humans, _f, controller = build(
        world, fast_resilience(), humans_script=("lost",))
    link = world.links[0]
    break_and_report(world, controller, link)
    world.sim.run(until=2 * 86400.0)

    # 1 initial dispatch + max_retries re-dispatches, then the
    # controller re-arms telemetry rather than spinning.
    assert len(humans.submitted) == 1 + 2
    assert controller.timeout_count == 3
    incident = controller.open_incidents[link.id]
    assert not incident.in_flight
    assert not controller.monitor.is_muted(link.id)
    assert controller.active_orders == {}


def test_idempotency_guard_skips_redispatch_when_the_link_healed(world):
    _m, humans, _f, controller = build(
        world, fast_resilience(), humans_script=("lost-fix",))
    link = world.links[0]
    break_and_report(world, controller, link)
    world.sim.run(until=86400.0)

    # The repair landed; only its ack was lost.  One dispatch, no
    # double repair, incident verified closed.
    assert len(humans.submitted) == 1
    assert controller.timeout_count == 1
    assert controller.idempotent_skips == 1
    assert len(controller.closed_incidents) == 1


def test_disabling_the_guard_redispatches_even_after_the_fix(world):
    _m, humans, _f, controller = build(
        world, fast_resilience(verify_before_retry=False),
        humans_script=("lost-fix", "fix"))
    link = world.links[0]
    break_and_report(world, controller, link)
    world.sim.run(until=86400.0)

    assert len(humans.submitted) == 2  # the double repair we avoid
    assert controller.idempotent_skips == 0
    assert len(controller.closed_incidents) == 1


def test_late_ack_is_still_accounted(world):
    _m, humans, _f, controller = build(
        world, fast_resilience(),
        humans_script=(("late-fix", 2000.0), "fix"))
    link = world.links[0]
    break_and_report(world, controller, link)
    world.sim.run(until=86400.0)

    assert controller.timeout_count >= 1
    assert controller.late_ack_count == 1
    assert controller.late_outcomes[0].completed
    assert len(controller.closed_incidents) == 1


def test_breaker_benches_a_failing_fleet_and_degrades_to_humans(world):
    _m, humans, fleet, controller = build(
        world, fast_resilience(), humans_script=("fix",),
        fleet_script=("fail",),
        level=AutomationLevel.L3_HIGH_AUTOMATION)
    link = world.links[0]
    break_and_report(world, controller, link)
    world.sim.run(until=86400.0)

    assert len(fleet.submitted) == 2           # threshold trips at 2
    assert controller.fleet_breaker.trips == 1
    assert controller.fleet_breaker.state is BreakerState.OPEN
    assert controller.automation_degraded
    assert controller.degraded_dispatches == 1
    assert len(humans.submitted) == 1          # graceful degradation
    assert len(controller.closed_incidents) == 1


def test_needs_human_follow_up_runs_under_the_human_timeout(world):
    _m, humans, fleet, controller = build(
        world, fast_resilience(), humans_script=("fix",),
        fleet_script=("needs_human",),
        level=AutomationLevel.L3_HIGH_AUTOMATION)
    link = world.links[0]
    break_and_report(world, controller, link)
    world.sim.run(until=86400.0)

    assert len(fleet.submitted) == 1
    assert len(humans.submitted) == 1
    incident = controller.closed_incidents[0]
    assert incident.resolved
    assert incident.attempt_count == 2  # robot try + human follow-up


def test_timeout_budget_is_per_executor(world):
    resilience = fast_resilience()
    _m, humans, fleet, controller = build(
        world, resilience, fleet_script=("fix",),
        level=AutomationLevel.L3_HIGH_AUTOMATION)
    assert controller._timeout_for(humans) == 1200.0
    assert controller._timeout_for(fleet) == 600.0


def test_legacy_controller_leaks_a_stuck_order_on_ack_loss(world):
    _m, humans, _f, controller = build(
        world, resilience=None, humans_script=("lost",))
    link = world.links[0]
    break_and_report(world, controller, link)
    world.sim.run(until=5 * 86400.0)

    # The naive loop blocks forever on the lost ack: the claim never
    # releases, the incident never concludes — the failure mode the
    # resilience layer exists to prevent.
    assert len(humans.submitted) == 1
    assert controller.timeout_count == 0
    assert link.id in controller.active_orders
    assert link.id in controller.open_incidents
    assert controller.open_incidents[link.id].in_flight


def test_exhausted_ladder_escalates_to_human_instead_of_looping(world):
    _m, _h, _f, controller = build(world, fast_resilience())
    link = world.links[0]
    now = world.sim.now
    controller.repair_history[link.id] = [
        (now, action) for action in RepairAction]
    break_and_report(world, controller, link)
    world.sim.run(until=HOUR)

    assert len(controller.unresolved_incidents) == 1
    assert controller.unresolved_incidents[0].unresolvable_reason \
        == "escalation ladder exhausted"


def test_ladder_never_regresses_within_one_incident(world):
    _m, humans, _f, controller = build(world, fast_resilience())
    link = world.links[0]
    break_and_report(world, controller, link)
    world.sim.run(until=HOUR)
    incident = controller.closed_incidents[0]

    # Fabricate the long-lived-incident case: its own history holds a
    # high stage, but the escalation window has expired so the ladder
    # would restart at RESEAT.
    incident.attempt_history.append(
        (world.sim.now, RepairAction.REPLACE_CABLE))
    controller.open_incidents[link.id] = incident
    controller.repair_history[link.id] = []
    break_and_report(world, controller, link)
    world.sim.run(until=2 * HOUR)

    assert incident in controller.unresolved_incidents
    assert incident.unresolvable_reason == "escalation ladder exhausted"
    assert len(humans.submitted) == 1  # no second, regressive dispatch
