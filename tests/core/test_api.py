"""Unit tests for the service API, including the authorization hook."""

import pytest

from dcrobot.core import (
    AuthorizationError,
    AutomationLevel,
    MaintenanceAuthorizer,
    MaintenanceServiceAPI,
    RepairAction,
)
from dcrobot.experiments import WorldConfig, build_world

DAY = 86400.0


@pytest.fixture
def world():
    return build_world(WorldConfig(
        horizon_days=3.0, seed=33, failure_scale=0.0,
        dust_rate_per_day=0.0, aging_rate_per_day=0.0,
        level=AutomationLevel.L3_HIGH_AUTOMATION))


def test_open_api_accepts_any_principal(world):
    api = MaintenanceServiceAPI(world.controller)
    link_id = next(iter(world.fabric.links))
    assert api.request_maintenance(link_id, urgent=True,
                                   principal="whoever")


def test_authorized_api_enforces_tokens(world):
    authorizer = MaintenanceAuthorizer()
    authorizer.issue("storage-service", [RepairAction.RESEAT])
    api = MaintenanceServiceAPI(world.controller, authorizer=authorizer)
    link_id = next(iter(world.fabric.links))

    assert api.request_maintenance(link_id,
                                   action=RepairAction.RESEAT,
                                   urgent=True,
                                   principal="storage-service")
    with pytest.raises(AuthorizationError):
        api.request_maintenance(link_id,
                                action=RepairAction.REPLACE_CABLE,
                                urgent=True,
                                principal="storage-service")
    with pytest.raises(AuthorizationError):
        api.request_maintenance(link_id, urgent=True,
                                principal="mallory")
    # Every decision was audited and the chain holds.
    assert len(authorizer.audit.records) == 3
    assert authorizer.audit.verify_chain()


def test_authorized_request_actually_runs(world):
    authorizer = MaintenanceAuthorizer()
    authorizer.issue("ops", [RepairAction.RESEAT])
    api = MaintenanceServiceAPI(world.controller, authorizer=authorizer)
    link = next(iter(world.fabric.links.values()))
    api.request_maintenance(link.id, action=RepairAction.RESEAT,
                            urgent=True, principal="ops")
    world.sim.run(until=1.0 * DAY)
    assert world.controller.proactive_outcomes
    assert link.transceiver_a.reseat_count >= 1


def test_duplicate_request_rejected_while_incident_open(world):
    api = MaintenanceServiceAPI(world.controller)
    link = next(iter(world.fabric.links.values()))
    link.transceiver_a.firmware_stuck = True
    world.health.evaluate_link(link, 0.0)
    # Let telemetry open an incident first.
    world.sim.run(until=3600.0)
    if link.id in world.controller.open_incidents:
        assert not api.request_maintenance(link.id)


def test_status_reflects_run(world):
    api = MaintenanceServiceAPI(world.controller)
    link = next(iter(world.fabric.links.values()))
    link.transceiver_a.firmware_stuck = True
    world.health.evaluate_link(link, 0.0)
    world.sim.run(until=1.0 * DAY)
    status = api.status()
    assert status.closed_incidents == 1
    assert status.mean_time_to_repair_seconds > 0
    assert status.links_down == 0
