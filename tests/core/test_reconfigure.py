"""Unit tests for robotic topology reconfiguration."""

import numpy as np
import pytest

from dcrobot.core.reconfigure import (
    RoboticRewirer,
    StepKind,
    plan_rewiring,
)
from dcrobot.robots import FleetConfig, RobotFleet

from tests.conftest import make_world


def current_pairs(fabric):
    from collections import Counter

    return Counter(tuple(sorted(link.endpoint_ids))
                   for link in fabric.links.values())


def make_fleet(world, manipulators=2):
    return RobotFleet(world.sim, world.fabric, world.health,
                      world.physics,
                      config=FleetConfig(manipulators=manipulators,
                                         cleaners=0),
                      rng=np.random.default_rng(4))


def test_disconnect_removes_link(world):
    link = world.links[0]
    count_before = len(world.fabric.links)
    removed = world.fabric.disconnect(link.id)
    assert removed is link
    assert len(world.fabric.links) == count_before - 1
    assert not link.port_a.occupied and not link.port_b.occupied
    assert world.fabric.bundles.bundle_of(link.cable.id) is None
    assert link not in world.fabric.links_of(link.port_a.parent_id)
    with pytest.raises(KeyError):
        world.fabric.disconnect(link.id)


def test_plan_noop_when_target_matches(world):
    target = [link.endpoint_ids for link in world.fabric.links.values()]
    plan = plan_rewiring(world.fabric, target)
    assert plan.steps == []
    assert plan.infeasible == []


def test_plan_pure_addition(world):
    a, b = world.switch_a.id, world.switch_b.id
    target = [link.endpoint_ids
              for link in world.fabric.links.values()]
    # Switches have spare radix in the fixture? radix == links, so no.
    # Remove one link from target and add it back twice is infeasible;
    # instead drop one and expect one REMOVE.
    plan = plan_rewiring(world.fabric, target[:-1])
    assert plan.removals == 1 and plan.additions == 0


def test_plan_swap_respects_port_budget():
    # Fully-wired pair of switches: an add is only possible after a
    # remove frees ports — the plan must order the remove first.
    world = make_world(links=4)
    fabric = world.fabric
    a, b = world.switch_a.id, world.switch_b.id
    third = fabric.add_switch(
        __import__("dcrobot.network", fromlist=["SwitchRole"])
        .SwitchRole.TOR, radix=4,
        rack_id=fabric.layout.rack_at(0, 1).id)
    target = [(a, b)] * 3 + [(a, third.id)]
    plan = plan_rewiring(fabric, target)
    assert plan.infeasible == []
    kinds = [step.kind for step in plan.steps]
    # The REMOVE that frees a's port precedes the ADD.
    assert kinds.index(StepKind.REMOVE) < kinds.index(StepKind.ADD)


def test_plan_rejects_unknown_nodes(world):
    with pytest.raises(KeyError):
        plan_rewiring(world.fabric, [("sw-nope", world.switch_a.id)])


def test_plan_infeasible_addition_reported(world):
    # All ports busy on both switches and nothing to remove that's not
    # also in the target: adding one more parallel link can't happen.
    a, b = world.switch_a.id, world.switch_b.id
    target = [link.endpoint_ids
              for link in world.fabric.links.values()] + [(a, b)]
    plan = plan_rewiring(world.fabric, target)
    assert len(plan.infeasible) == 1


def test_rewirer_executes_plan():
    world = make_world(links=4)
    fabric = world.fabric
    from dcrobot.network import SwitchRole

    third = fabric.add_switch(SwitchRole.TOR, radix=4,
                              rack_id=fabric.layout.rack_at(0, 1).id)
    a, b = world.switch_a.id, world.switch_b.id
    target = [(a, b)] * 3 + [(a, third.id), (b, third.id)]
    plan = plan_rewiring(fabric, target)
    fleet = make_fleet(world)
    rewirer = RoboticRewirer(world.sim, fabric, fleet)
    report = world.sim.run(until=rewirer.execute(plan))

    assert report.steps_executed == len(plan.steps)
    assert report.total_seconds > 0
    assert current_pairs(fabric) == {
        (a, b): 3,
        tuple(sorted((a, third.id))): 1,
        tuple(sorted((b, third.id))): 1,
    }
    # Rewiring consumed robot time (cable laying dominates).
    assert any(robot.busy_seconds > 0 for robot in fleet.manipulators)


def test_rewirer_validation(world):
    fleet = make_fleet(world)
    with pytest.raises(ValueError):
        RoboticRewirer(world.sim, world.fabric, fleet,
                       lay_speed_m_s=0.0)


def test_connectivity_protection_orders_removals():
    # A ring of three switches; target removes one ring edge and adds a
    # chord.  With protection, the plan must not leave the graph
    # partitioned at any prefix.
    import networkx as nx

    from dcrobot.network import Fabric, HallLayout, SwitchRole

    fabric = Fabric(layout=HallLayout(rows=1, racks_per_row=4),
                    rng=np.random.default_rng(0))
    switches = [fabric.add_switch(
        SwitchRole.NODE, radix=3,
        rack_id=fabric.layout.rack_at(0, index).id)
        for index in range(3)]
    ids = [s.id for s in switches]
    fabric.connect(ids[0], ids[1])
    fabric.connect(ids[1], ids[2])
    fabric.connect(ids[2], ids[0])
    # Target: path 0-1-2 plus a parallel 0-1 (drop 2-0, add 0-1).
    target = [(ids[0], ids[1]), (ids[1], ids[2]), (ids[0], ids[1])]
    plan = plan_rewiring(fabric, target, protect_connectivity=True)
    assert plan.infeasible == []
    # Replay and check connectivity at every prefix.
    graph = nx.MultiGraph()
    graph.add_nodes_from(ids)
    for link in fabric.links.values():
        graph.add_edge(*link.endpoint_ids)
    for step in plan.steps:
        a, b = step.endpoints
        if step.kind is StepKind.ADD:
            graph.add_edge(a, b)
        else:
            graph.remove_edge(a, b)
        assert nx.is_connected(nx.Graph(graph))
