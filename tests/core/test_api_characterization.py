"""Characterization tests pinning the pre-refactor facade behaviour.

The S21 service plane re-plumbs the query path of
:class:`~dcrobot.core.api.MaintenanceServiceAPI` (vectorized link
counts, materialized snapshots).  These tests pin the *existing*
surface — status shape and values, ``incident_for``,
``planned_touches``, the authorizer-denied + audit-logged command
path — so the refactor is observable as a no-op to every current
caller.
"""

import dataclasses

import pytest

from dcrobot.core import (
    AuthorizationError,
    AutomationLevel,
    MaintenanceAuthorizer,
    MaintenanceServiceAPI,
    RepairAction,
)
from dcrobot.core.api import full_scan_status, link_state_counts
from dcrobot.experiments import WorldConfig, build_world, run_world
from dcrobot.network.enums import LinkState

DAY = 86400.0


@pytest.fixture
def quiet_world():
    """A world with failure physics off: nothing moves on its own."""
    return build_world(WorldConfig(
        horizon_days=3.0, seed=33, failure_scale=0.0,
        dust_rate_per_day=0.0, aging_rate_per_day=0.0,
        level=AutomationLevel.L3_HIGH_AUTOMATION))


@pytest.fixture(scope="module")
def eventful_world():
    """A short chaos-free run with real failures and repairs."""
    return run_world(WorldConfig(
        horizon_days=4.0, seed=5, failure_scale=2.0,
        level=AutomationLevel.L3_HIGH_AUTOMATION))


# -- status (query path) ------------------------------------------------------


def test_status_matches_full_scan_after_eventful_run(eventful_world):
    """The vectorized status equals the legacy per-object scan,
    field for field, on a world where repairs actually happened."""
    api = MaintenanceServiceAPI(eventful_world.live_controller)
    assert api.status() == api.status_scan()
    assert api.status() == full_scan_status(
        eventful_world.live_controller)


def test_status_counts_known_down_links(quiet_world):
    api = MaintenanceServiceAPI(quiet_world.controller)
    before = api.status()
    assert before.links_down == 0
    assert before.links_total == len(quiet_world.fabric.links)

    links = list(quiet_world.fabric.links.values())[:3]
    for link in links:
        link.set_state(0.0, LinkState.DOWN)
    after = api.status()
    assert after.links_down == 3
    assert after == api.status_scan()


def test_link_state_counts_falls_back_without_columns(quiet_world):
    """Fabric-shaped objects without a consistent columnar store take
    the legacy object walk."""

    class Bare:
        state = None
        links = quiet_world.fabric.links

    down, total = link_state_counts(Bare())
    scan = full_scan_status(quiet_world.controller)
    assert (down, total) == (scan.links_down, scan.links_total)


def test_status_reports_controller_ledgers(eventful_world):
    controller = eventful_world.live_controller
    status = MaintenanceServiceAPI(controller).status()
    assert status.open_incidents == len(controller.open_incidents)
    assert status.closed_incidents == len(controller.closed_incidents)
    assert status.unresolved_incidents == len(
        controller.unresolved_incidents)
    assert status.proactive_operations == len(
        controller.proactive_outcomes)
    times = controller.repair_times()
    if times:
        assert status.mean_time_to_repair_seconds == pytest.approx(
            sum(times) / len(times))
    else:
        assert status.mean_time_to_repair_seconds is None


# -- incident_for / planned_touches ------------------------------------------


def test_incident_for_open_and_absent(quiet_world):
    api = MaintenanceServiceAPI(quiet_world.controller)
    link = next(iter(quiet_world.fabric.links.values()))
    assert api.incident_for(link.id) is None

    link.transceiver_a.firmware_stuck = True
    quiet_world.health.evaluate_link(link, 0.0)
    quiet_world.sim.run(until=3600.0)
    if link.id in quiet_world.controller.open_incidents:
        incident = api.incident_for(link.id)
        assert incident is not None
        assert incident.link_id == link.id


def test_planned_touches_announces_neighbourhood(quiet_world):
    api = MaintenanceServiceAPI(quiet_world.controller)
    link_id = next(iter(quiet_world.fabric.links))
    touches = api.planned_touches(link_id,
                                  action=RepairAction.RESEAT)
    # The announcement is the set of *neighbour* links a repair may
    # disturb: a list of known link ids (possibly empty for an
    # unbundled link), never an error.
    assert isinstance(touches, list)
    assert all(touch in quiet_world.fabric.links
               for touch in touches)


# -- authorizer + audit (command path) ----------------------------------------


def test_denied_command_is_audited_and_does_nothing(quiet_world):
    authorizer = MaintenanceAuthorizer()
    authorizer.issue("ops", [RepairAction.RESEAT])
    api = MaintenanceServiceAPI(quiet_world.controller,
                                authorizer=authorizer)
    link_id = next(iter(quiet_world.fabric.links))

    with pytest.raises(AuthorizationError):
        api.request_maintenance(link_id, urgent=True,
                                principal="mallory")
    # The denial is on the hash chain, and nothing was scheduled.
    records = authorizer.audit.entries_for(link_id)
    assert [record.allowed for record in records] == [False]
    assert authorizer.audit.verify_chain()
    assert not quiet_world.controller.open_incidents
    quiet_world.sim.run(until=1.0 * DAY)
    assert not quiet_world.controller.proactive_outcomes


def test_unknown_link_raises_before_authorization(quiet_world):
    authorizer = MaintenanceAuthorizer()
    api = MaintenanceServiceAPI(quiet_world.controller,
                                authorizer=authorizer)
    with pytest.raises(KeyError):
        api.request_maintenance("no-such-link", urgent=True)
    assert not authorizer.audit.records


def test_status_is_a_frozen_snapshot(eventful_world):
    status = MaintenanceServiceAPI(eventful_world.live_controller
                                   ).status()
    with pytest.raises(dataclasses.FrozenInstanceError):
        status.links_down = 0
