"""Characterization tests for the escalation ladder's window queries.

Pins down ``highest_recent_stage`` and ``is_exhausted`` — the hardened
controller's decision inputs — over windowed, partial, and
non-applicable histories.
"""

from dcrobot.core import RepairAction
from dcrobot.core.escalation import EscalationConfig, EscalationLadder
from dcrobot.network import CableKind

from tests.conftest import make_world

DAY = 86400.0


def ladder(window_days=14.0, stages=None):
    config = (EscalationConfig(window_seconds=window_days * DAY)
              if stages is None else
              EscalationConfig(ladder=stages,
                               window_seconds=window_days * DAY))
    return EscalationLadder(config)


def full_history(now=0.0):
    return [(now + float(index), action)
            for index, action in enumerate(RepairAction)]


def test_highest_recent_stage_of_empty_history_is_minus_one():
    assert ladder().highest_recent_stage([], now=0.0) == -1


def test_highest_recent_stage_only_counts_the_window():
    steps = ladder(window_days=7.0)
    history = [(0.0, RepairAction.REPLACE_SWITCHGEAR),  # expired
               (10.0 * DAY, RepairAction.CLEAN)]        # in window
    assert steps.highest_recent_stage(history, now=12.0 * DAY) == 1
    # Move the clock so both fall inside the window.
    assert steps.highest_recent_stage(history, now=6.0 * DAY) == 4


def test_highest_recent_stage_ignores_actions_off_the_ladder():
    steps = ladder(stages=(RepairAction.RESEAT, RepairAction.CLEAN))
    history = [(0.0, RepairAction.REPLACE_CABLE),  # not on this ladder
               (1.0, RepairAction.RESEAT)]
    assert steps.highest_recent_stage(history, now=2.0) == 0


def test_fresh_link_is_never_exhausted(world):
    link = world.links[0]
    assert not ladder().is_exhausted(link, [], now=0.0)


def test_every_stage_tried_in_window_is_exhausted(world):
    link = world.links[0]
    assert ladder().is_exhausted(link, full_history(), now=DAY)


def test_window_expiry_resets_exhaustion(world):
    link = world.links[0]
    assert not ladder(window_days=7.0).is_exhausted(
        link, full_history(), now=30.0 * DAY)


def test_reaching_the_top_stage_alone_exhausts(world):
    link = world.links[0]
    history = [(0.0, RepairAction.REPLACE_SWITCHGEAR)]
    assert ladder().is_exhausted(link, history, now=DAY)


def test_partial_walk_is_not_exhausted(world):
    link = world.links[0]
    history = [(0.0, RepairAction.RESEAT), (1.0, RepairAction.CLEAN)]
    assert not ladder().is_exhausted(link, history, now=DAY)


def test_exhaustion_skips_stages_the_link_cannot_use():
    # A remaining stage only blocks exhaustion if the link can use it:
    # with ladder (RESEAT, CLEAN), a reseated integrated cable (AOC,
    # not cleanable) is done; a cleanable MPO one is not.
    steps = ladder(stages=(RepairAction.RESEAT, RepairAction.CLEAN))
    history = [(0.0, RepairAction.RESEAT)]
    sealed = make_world(kind=CableKind.AOC).links[0]
    assert steps.is_exhausted(sealed, history, now=DAY)
    cleanable = make_world(kind=CableKind.MPO).links[0]
    assert not steps.is_exhausted(cleanable, history, now=DAY)


def test_next_action_and_exhaustion_agree(world):
    """next_action restarts exactly when is_exhausted flips true."""
    steps = ladder()
    link = world.links[0]
    history = []
    for expected in steps.stages_for(link):
        assert not steps.is_exhausted(link, history, now=DAY)
        action = steps.next_action(link, history, now=DAY)
        assert action is expected
        history.append((DAY, action))
    assert steps.is_exhausted(link, history, now=DAY)
    # Legacy wrap-around: the ladder starts over on new hardware.
    assert steps.next_action(link, history, now=DAY) \
        is RepairAction.RESEAT
