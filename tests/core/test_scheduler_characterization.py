"""Characterization tests pinning ImpactAwareScheduler behavior.

The campus refactor leans on the scheduler exactly as-is (every hall
shard instantiates its own), so this suite pins the current contract —
quiet-window edge arithmetic, the columnar-traffic drain path, and the
outstanding-drain ledger — against accidental drift.
"""

import pytest

from dcrobot.core import (
    ImpactAwareScheduler,
    RepairAction,
    SchedulerConfig,
    WorkOrder,
)
from dcrobot.core.scheduler import SECONDS_PER_DAY
from dcrobot.traffic import EcmpRouter

HOUR = 3600.0


def order_for(link_id, touches=()):
    return WorkOrder(link_id, RepairAction.RESEAT, created_at=0.0,
                     announced_touches=list(touches))


class RecordingTraffic:
    """Duck-typed columnar traffic engine: drain/undrain log."""

    def __init__(self):
        self.calls = []

    def drain(self, link_id):
        self.calls.append(("drain", link_id))

    def undrain(self, link_id):
        self.calls.append(("undrain", link_id))


# -- quiet-window edges ---------------------------------------------------

def test_quiet_window_boundaries_are_half_open():
    scheduler = ImpactAwareScheduler(config=SchedulerConfig(
        quiet_window_start_hour=1, quiet_window_end_hour=5))
    # [start, end): the opening instant is inside, the closing instant
    # is not.
    assert scheduler.in_quiet_window(1 * HOUR)
    assert not scheduler.in_quiet_window(5 * HOUR)
    # One tick before closing is still inside.
    assert scheduler.in_quiet_window(5 * HOUR - 1.0)
    # At the closing instant the wait wraps to tomorrow's window.
    assert scheduler.seconds_until_quiet_window(5 * HOUR) \
        == SECONDS_PER_DAY - 5 * HOUR + 1 * HOUR


def test_quiet_window_supports_fractional_hours_and_midnight_end():
    scheduler = ImpactAwareScheduler(config=SchedulerConfig(
        quiet_window_start_hour=22.5, quiet_window_end_hour=24))
    assert scheduler.seconds_until_quiet_window(0.0) == 22.5 * HOUR
    assert scheduler.in_quiet_window(23 * HOUR)
    # Midnight itself belongs to the next day, outside the window.
    assert not scheduler.in_quiet_window(24 * HOUR)


def test_quiet_window_uses_time_of_day_not_absolute_time():
    scheduler = ImpactAwareScheduler(config=SchedulerConfig(
        quiet_window_start_hour=1, quiet_window_end_hour=5))
    for day in (0, 1, 7, 365):
        base = day * SECONDS_PER_DAY
        assert scheduler.in_quiet_window(base + 2 * HOUR)
        assert scheduler.seconds_until_quiet_window(base) == HOUR


def test_quiet_window_validation_rejects_degenerate_windows():
    with pytest.raises(ValueError):
        SchedulerConfig(quiet_window_start_hour=3,
                        quiet_window_end_hour=3)
    with pytest.raises(ValueError):
        SchedulerConfig(quiet_window_start_hour=1,
                        quiet_window_end_hour=25)


# -- columnar traffic drain path ------------------------------------------

def test_traffic_only_scheduler_drains_and_undrains(world):
    traffic = RecordingTraffic()
    scheduler = ImpactAwareScheduler(traffic=traffic)
    target, neighbor = world.links[0], world.links[1]
    order = order_for(target.id, [neighbor.id])
    drained = scheduler.before_repair(order)
    # A traffic engine alone (no object router) still gets drains —
    # and the drained-id list is reported just as with a router.
    assert drained == [target.id, neighbor.id]
    assert traffic.calls == [("drain", target.id),
                             ("drain", neighbor.id)]
    scheduler.after_repair(order)
    assert traffic.calls[2:] == [("undrain", target.id),
                                 ("undrain", neighbor.id)]


def test_router_and_traffic_both_receive_each_drain(world):
    traffic = RecordingTraffic()
    router = EcmpRouter(world.fabric)
    scheduler = ImpactAwareScheduler(router=router, traffic=traffic)
    order = order_for(world.links[0].id)
    scheduler.before_repair(order)
    assert router.drained_links == {world.links[0].id}
    assert traffic.calls == [("drain", world.links[0].id)]
    scheduler.after_repair(order)
    assert router.drained_links == set()


def test_duplicate_announced_touch_drained_twice(world):
    # Characterize, don't judge: the target repeated in
    # announced_touches is drained (and undrained) once per mention.
    traffic = RecordingTraffic()
    scheduler = ImpactAwareScheduler(traffic=traffic)
    target = world.links[0]
    order = order_for(target.id, [target.id])
    assert scheduler.before_repair(order) \
        == [target.id, target.id]
    assert traffic.calls.count(("drain", target.id)) == 2


# -- outstanding-drain ledger ---------------------------------------------

def test_outstanding_drains_ledger_lifecycle(world):
    router = EcmpRouter(world.fabric)
    scheduler = ImpactAwareScheduler(router=router)
    first = order_for(world.links[0].id, [world.links[1].id])
    second = order_for(world.links[2].id)
    scheduler.before_repair(first)
    scheduler.before_repair(second)
    ledger = scheduler.outstanding_drains()
    assert ledger == {
        first.order_id: [world.links[0].id, world.links[1].id],
        second.order_id: [world.links[2].id]}
    # The ledger is a snapshot: mutating it never touches the
    # scheduler's own books.
    ledger[first.order_id].clear()
    scheduler.after_repair(first)
    assert router.drained_links == {world.links[2].id}
    assert scheduler.outstanding_drains() == {
        second.order_id: [world.links[2].id]}
    scheduler.after_repair(second)
    assert scheduler.outstanding_drains() == {}


def test_after_repair_for_unknown_order_is_noop(world):
    router = EcmpRouter(world.fabric)
    scheduler = ImpactAwareScheduler(router=router)
    known = order_for(world.links[0].id)
    scheduler.before_repair(known)
    scheduler.after_repair(order_for(world.links[1].id))  # never drained
    assert router.drained_links == {world.links[0].id}
    # ... and double-completion releases nothing twice.
    scheduler.after_repair(known)
    scheduler.after_repair(known)
    assert router.drained_links == set()
