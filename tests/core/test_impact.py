"""Congestion gate (impact-aware maintenance scheduling) tests."""

import numpy as np
import pytest

from dcrobot.core.actions import Priority
from dcrobot.core.impact import CongestionGate, ImpactConfig
from dcrobot.network import LinkState, SwitchRole
from dcrobot.sim import Simulation
from dcrobot.topology import build_leafspine
from dcrobot.traffic import TrafficState


@pytest.fixture
def topo():
    return build_leafspine(leaves=4, spines=2, uplinks_per_pair=1,
                           rng=np.random.default_rng(0))


@pytest.fixture
def traffic(topo):
    endpoints = topo.switches(SwitchRole.LEAF)
    return TrafficState(topo.fabric, endpoints,
                        rng=np.random.default_rng(7))


def offer_hot_window(traffic, count=400):
    """All flows source at leaf 0: its two uplinks run hot."""
    rng = np.random.default_rng(1)
    n = len(traffic.endpoints)
    src = np.zeros(count, dtype=np.int64)
    dst = 1 + rng.integers(n - 1, size=count)
    sizes = np.full(count, 200_000_000, dtype=np.int64)
    ids = np.arange(count, dtype=np.int64)
    # A 1-second accounting period: 80 GB offered vs 2x 400G uplinks
    # (100 GB/s of group capacity) — comfortably past any threshold.
    return traffic.offer_window(src, dst, sizes, ids, 1.0)


def hot_uplink(topo):
    leaf = topo.switches(SwitchRole.LEAF)[0]
    return topo.fabric.links_of(leaf)[0]


# -- config -----------------------------------------------------------------

def test_impact_config_validation():
    with pytest.raises(ValueError):
        ImpactConfig(hot_utilization=0.0)
    with pytest.raises(ValueError):
        ImpactConfig(max_defer_seconds=-1.0)
    with pytest.raises(ValueError):
        ImpactConfig(recheck_seconds=0.0)


# -- should_defer -----------------------------------------------------------

def test_gate_without_traffic_never_defers():
    gate = CongestionGate(traffic=None)
    assert gate.projected_utilization("any") == 0.0
    assert not gate.should_defer("any")


def test_gate_defers_hot_links_only(topo, traffic):
    gate = CongestionGate(traffic, ImpactConfig(hot_utilization=0.7))
    link = hot_uplink(topo)
    # No observed traffic yet: nothing to protect.
    assert not gate.should_defer(link.id)
    offer_hot_window(traffic)
    assert gate.projected_utilization(link.id) > 0.7
    assert gate.should_defer(link.id)
    assert not gate.should_defer("no-such-link")


def test_high_priority_is_exempt(topo, traffic):
    gate = CongestionGate(traffic, ImpactConfig(hot_utilization=0.7))
    offer_hot_window(traffic)
    link = hot_uplink(topo)
    assert gate.should_defer(link.id, Priority.NORMAL)
    assert not gate.should_defer(link.id, Priority.HIGH)
    strict = CongestionGate(traffic, ImpactConfig(
        hot_utilization=0.7, exempt_high_priority=False))
    assert strict.should_defer(link.id, Priority.HIGH)


def test_non_carrier_links_are_not_deferred(topo, traffic):
    gate = CongestionGate(traffic, ImpactConfig(hot_utilization=0.7))
    offer_hot_window(traffic)
    link = hot_uplink(topo)
    link.set_state(0.0, LinkState.DOWN)
    # A dead link's bytes already moved; deferring helps nobody.
    assert not gate.should_defer(link.id)


# -- wait_while_hot ---------------------------------------------------------

def test_wait_until_congestion_clears(topo, traffic):
    gate = CongestionGate(traffic, ImpactConfig(
        hot_utilization=0.7, max_defer_seconds=3600.0,
        recheck_seconds=100.0))
    offer_hot_window(traffic)
    link = hot_uplink(topo)
    sim = Simulation()

    def repair(sim):
        yield from gate.wait_while_hot(sim, link.id)
        return sim.now

    def trough(sim):
        # The hotspot drains away after 250 s of simulated time.
        yield sim.timeout(250.0)
        traffic.last_offered[:] = 0.0

    proc = sim.process(repair(sim))
    sim.process(trough(sim))
    sim.run()
    assert proc.value == 300.0  # three 100 s rechecks, then go
    assert gate.deferrals == 3
    assert gate.overrides == 0
    assert gate.defer_seconds == 300.0


def test_defer_budget_exhaustion_overrides(topo, traffic):
    gate = CongestionGate(traffic, ImpactConfig(
        hot_utilization=0.7, max_defer_seconds=250.0,
        recheck_seconds=100.0))
    offer_hot_window(traffic)
    link = hot_uplink(topo)
    sim = Simulation()

    def repair(sim):
        yield from gate.wait_while_hot(sim, link.id)
        return sim.now

    proc = sim.process(repair(sim))
    sim.run()
    # 100 + 100 + 50 exhausts the budget; the repair then runs hot.
    assert proc.value == 250.0
    assert gate.overrides == 1
    assert gate.deferrals == 3
