"""Lease coordination and fencing: the split-brain protections."""

import pytest

from dcrobot.core.journal import RecordKind, WriteAheadJournal
from dcrobot.core.leadership import (
    FencingGuard,
    LeaseConfig,
    LeaseCoordinator,
)


def coordinator(**overrides):
    defaults = dict(ttl_seconds=900.0, heartbeat_seconds=300.0)
    defaults.update(overrides)
    return LeaseCoordinator(LeaseConfig(**defaults))


def test_lease_config_validates_timing():
    with pytest.raises(ValueError, match="ttl"):
        LeaseConfig(ttl_seconds=0.0)
    with pytest.raises(ValueError, match="heartbeat"):
        LeaseConfig(ttl_seconds=100.0, heartbeat_seconds=100.0)


def test_acquire_renew_and_expiry():
    lease = coordinator()
    token = lease.try_acquire("primary", now=0.0)
    assert token == 1
    assert lease.holder_at(899.0) == "primary"
    assert lease.renew("primary", now=500.0)
    assert lease.holder_at(1300.0) == "primary"  # renewed to 1400
    assert lease.holder_at(1400.0) is None       # silent -> expired
    assert not lease.renew("primary", now=1400.0)


def test_live_lease_blocks_other_nodes():
    lease = coordinator()
    lease.try_acquire("primary", now=0.0)
    assert lease.try_acquire("standby", now=100.0) is None
    # ...until it expires.
    assert lease.try_acquire("standby", now=901.0) == 2


def test_tokens_are_monotonic_even_for_same_node_reacquisition():
    lease = coordinator()
    assert lease.try_acquire("primary", now=0.0) == 1
    # A restarted primary re-acquires its own lease but MUST get a
    # fresh token: its pre-crash orders are still in executor queues.
    assert lease.try_acquire("primary", now=10.0) == 2
    assert lease.try_acquire("standby", now=1000.0) == 3
    assert [token for _, _, token in lease.acquisitions] == [1, 2, 3]


def test_release_frees_the_lease():
    lease = coordinator()
    lease.try_acquire("primary", now=0.0)
    assert not lease.release("standby", now=1.0)
    assert lease.release("primary", now=1.0)
    assert lease.holder_at(2.0) is None
    assert lease.try_acquire("standby", now=2.0) == 2


def test_acquisitions_are_journalled():
    journal = WriteAheadJournal()
    lease = LeaseCoordinator(LeaseConfig(), journal)
    lease.try_acquire("primary", now=0.0)
    lease.try_acquire("standby", now=2000.0)  # expired takeover
    kinds = [record.kind for record in journal.records()]
    assert kinds == [RecordKind.LEASE_ACQUIRED,
                     RecordKind.LEASE_LOST,
                     RecordKind.LEASE_ACQUIRED]
    last = journal.records()[-1]
    assert last.payload["node"] == "standby"
    assert last.payload["token"] == 2


def test_guard_admits_tokenless_orders():
    guard = FencingGuard()
    guard.advance(5)
    assert guard.admit(None)  # leadership disabled: nothing to fence
    assert guard.rejections == []


def test_guard_rejects_stale_tokens_and_records_them():
    guard = FencingGuard()
    assert guard.admit(3, time=10.0, order_id=1, link_id="l1")
    assert guard.highest_seen == 3
    assert not guard.admit(2, time=20.0, order_id=2, link_id="l2")
    rejection = guard.rejections[0]
    assert (rejection.order_id, rejection.token,
            rejection.highest_seen) == (2, 2, 3)
    # Equal and newer tokens pass.
    assert guard.admit(3, time=30.0)
    assert guard.admit(7, time=40.0)
    assert guard.highest_seen == 7


def test_advance_fences_before_the_first_successor_dispatch():
    guard = FencingGuard()
    assert guard.admit(1, time=0.0)  # the old primary's normal traffic
    guard.advance(2)                 # takeover handshake
    # The zombie's next order is refused even though the successor has
    # not dispatched anything yet.
    assert not guard.admit(1, time=5.0, order_id=9, link_id="lz")
