"""Journal replay and controller state restoration."""

import pytest

from dcrobot.core.journal import RecordKind, WriteAheadJournal
from dcrobot.core.recovery import (
    JournalReplayError,
    replay_journal,
    restore_controller,
)
from tests.core.test_controller_resilience import (
    ScriptedExecutor,
    break_and_report,
    build,
    fast_resilience,
)
from tests.conftest import make_world


def _opened(journal, time, link_id, symptom="link-down"):
    journal.append(time, RecordKind.INCIDENT_OPENED, link_id=link_id,
                   opened_at=time, symptom=symptom, priority="NORMAL")


def _dispatched(journal, time, order_id, link_id, action="reseat",
                executor_id="stub-humans", proactive=False):
    journal.append(time, RecordKind.ORDER_DISPATCHED, order_id=order_id,
                   link_id=link_id, action=action, priority="NORMAL",
                   symptom="link-down", created_at=time,
                   announced_touches=[], fencing_token=None,
                   executor_id=executor_id, dispatched_at=time,
                   deadline=None, proactive=proactive)


def _concluded(journal, time, order_id, link_id, proactive=False):
    journal.append(time, RecordKind.ORDER_CONCLUDED, order_id=order_id,
                   link_id=link_id, proactive=proactive)


def test_replay_of_empty_journal_is_empty_state():
    state = replay_journal(WriteAheadJournal())
    assert state.open_incidents == []
    assert state.active_orders == {}
    assert state.fencing_token is None
    assert state.replayed_records == 0


def test_replay_folds_an_incident_lifecycle():
    journal = WriteAheadJournal()
    _opened(journal, 10.0, "link-1")
    _dispatched(journal, 20.0, 1, "link-1", action="reseat")
    _concluded(journal, 80.0, 1, "link-1")
    _dispatched(journal, 100.0, 2, "link-1", action="clean")

    state = replay_journal(journal)
    assert len(state.open_incidents) == 1
    incident = state.open_incidents[0]
    # The concluded order became a consumed attempt; the in-flight one
    # is waiting in active_orders for adoption.
    assert incident["attempt_count"] == 1
    assert incident["attempt_history"] == [[80.0, "reseat"]]
    assert list(state.active_orders) == [2]
    assert state.active_orders[2]["action"] == "clean"
    assert state.repair_history == {"link-1": [(80.0, "reseat")]}


def test_replay_moves_closed_and_unresolvable_incidents():
    journal = WriteAheadJournal()
    _opened(journal, 1.0, "link-1")
    _opened(journal, 2.0, "link-2")
    journal.append(50.0, RecordKind.INCIDENT_CLOSED, link_id="link-1",
                   opened_at=1.0, symptom="link-down",
                   priority="NORMAL", attempt_count=1,
                   attempt_history=[[40.0, "reseat"]], in_flight=False,
                   resolved=True, closed_at=50.0,
                   unresolvable_reason=None)
    journal.append(60.0, RecordKind.INCIDENT_UNRESOLVABLE,
                   link_id="link-2", opened_at=2.0, symptom="link-down",
                   priority="NORMAL", attempt_count=8,
                   attempt_history=[], in_flight=False, resolved=False,
                   closed_at=None,
                   unresolvable_reason="attempt budget exhausted")
    state = replay_journal(journal)
    assert state.open_incidents == []
    assert state.closed_incidents[0]["link_id"] == "link-1"
    assert state.unresolved_incidents[0]["link_id"] == "link-2"


def test_replay_counts_timeouts_retries_and_lease_tokens():
    journal = WriteAheadJournal()
    journal.append(1.0, RecordKind.ORDER_TIMED_OUT, order_id=1,
                   link_id="l")
    journal.append(2.0, RecordKind.RETRY_SCHEDULED, order_id=1,
                   link_id="l", retry_index=0, delay_seconds=120.0)
    journal.append(3.0, RecordKind.LEASE_ACQUIRED, node="primary",
                   token=4, expires_at=903.0)
    state = replay_journal(journal)
    assert state.counters["timeout_count"] == 1
    assert state.counters["retry_count"] == 1
    assert state.fencing_token == 4


def test_replay_starts_from_the_latest_snapshot():
    journal = WriteAheadJournal()
    _opened(journal, 1.0, "pre-snapshot-link")
    journal.snapshot(100.0, {
        "node_id": "primary", "time": 100.0, "fencing_token": None,
        "open_incidents": [], "closed_incidents": [],
        "unresolved_incidents": [], "active_orders": [],
        "repair_history": {}, "counters": {"timeout_count": 5},
        "breaker": None})
    _opened(journal, 150.0, "post-snapshot-link")

    state = replay_journal(journal)
    # The pre-snapshot record is compacted away by the snapshot; only
    # the tail is folded on top of the snapshot state.
    assert [p["link_id"] for p in state.open_incidents] \
        == ["post-snapshot-link"]
    assert state.counters["timeout_count"] == 5
    assert state.replayed_records == 1
    assert state.snapshot_seq == 1


def test_replay_refuses_a_foreign_schema_version():
    journal = WriteAheadJournal()
    journal.append(1.0, RecordKind.SNAPSHOT, schema_version=999,
                   state={})
    with pytest.raises(JournalReplayError, match="schema"):
        replay_journal(journal)


def test_restore_round_trips_a_live_controller(world):
    """Crash a controller mid-flight; a successor restored from its
    journal carries the incident, the claim (same order id), and the
    counters."""
    journal = WriteAheadJournal()
    monitor, humans, _f, controller = build(
        world, fast_resilience(), humans_script=("lost", "fix"))
    controller.journal = journal
    link = world.links[0]
    break_and_report(world, controller, link)
    # Run past the first human-order timeout (at 1200s) into the
    # retry's in-flight window (redispatch at 1320s, ack at 1380s):
    # timed out once, one retry scheduled, second order in flight.
    world.sim.run(until=1350.0)
    assert controller.timeout_count == 1
    original_claim = next(iter(controller.active_orders[link.id]))
    controller.crash("test crash")

    fresh_world_monitor = monitor  # shared infrastructure survives
    successor = build(world, fast_resilience(),
                      humans_script=("fix",))[3]
    successor.monitor = fresh_world_monitor
    successor.journal = journal
    state = replay_journal(journal)
    adopted = restore_controller(successor, state,
                                 {"stub-humans": humans})

    assert successor.timeout_count == 1
    assert successor.retry_count == 1
    assert successor.recovered_incident_count == 1
    incident = successor.open_incidents[link.id]
    assert incident.in_flight
    # The consumed attempt budget survived even though the outcome
    # objects died with the old controller.
    assert incident.attempt_count >= 1
    [(claim, adopted_incident, executor)] = adopted
    assert claim.order.order_id == original_claim.order.order_id
    assert adopted_incident is incident
    assert executor is humans


def test_restore_skips_orders_whose_executor_is_gone(world):
    journal = WriteAheadJournal()
    _opened(journal, 1.0, world.links[0].id)
    _dispatched(journal, 2.0, 1, world.links[0].id,
                executor_id="departed-executor")
    successor = build(world, fast_resilience())[3]
    state = replay_journal(journal)
    adopted = restore_controller(successor, state, {})
    assert adopted == []
    assert successor.active_orders == {}
    # The incident itself is still recovered (telemetry re-arm deals
    # with the link).
    assert world.links[0].id in successor.open_incidents
