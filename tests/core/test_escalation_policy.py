"""Unit tests for the escalation ladder and maintenance policies."""

import pytest

from dcrobot.core import (
    EscalationConfig,
    EscalationLadder,
    PredictivePolicy,
    ProactivePolicy,
    ReactivePolicy,
    RepairAction,
    Priority,
)
from dcrobot.network import CableKind
from dcrobot.telemetry import Symptom, TelemetryEvent

from tests.conftest import make_world

DAY = 86400.0


# -- escalation ---------------------------------------------------------------

def test_config_validation():
    with pytest.raises(ValueError):
        EscalationConfig(ladder=())
    with pytest.raises(ValueError):
        EscalationConfig(ladder=(RepairAction.RESEAT,
                                 RepairAction.RESEAT))
    with pytest.raises(ValueError):
        EscalationConfig(window_seconds=0)


def test_first_incident_gets_reseat(world):
    ladder = EscalationLadder()
    assert ladder.next_action(world.links[0], [], now=0.0) \
        is RepairAction.RESEAT


def test_ladder_walks_paper_order(world):
    # §3.2 order: reseat -> clean -> replace transceiver -> replace
    # cable -> replace switchgear.
    ladder = EscalationLadder()
    link = world.links[0]  # MPO: cleanable
    history = []
    expected = [RepairAction.RESEAT, RepairAction.CLEAN,
                RepairAction.REPLACE_TRANSCEIVER,
                RepairAction.REPLACE_CABLE,
                RepairAction.REPLACE_SWITCHGEAR]
    for step, want in enumerate(expected):
        action = ladder.next_action(link, history, now=step * 3600.0)
        assert action is want
        history.append((step * 3600.0, action))


def test_clean_skipped_for_integrated_cable():
    world = make_world(kind=CableKind.AOC)
    ladder = EscalationLadder()
    link = world.links[0]
    history = [(0.0, RepairAction.RESEAT)]
    assert ladder.next_action(link, history, now=3600.0) \
        is RepairAction.REPLACE_TRANSCEIVER
    assert RepairAction.CLEAN not in ladder.stages_for(link)


def test_window_expiry_restarts_ladder(world):
    ladder = EscalationLadder(EscalationConfig(window_seconds=7 * DAY))
    link = world.links[0]
    history = [(0.0, RepairAction.RESEAT), (DAY, RepairAction.CLEAN)]
    # Within window: escalate; after window: restart.
    assert ladder.next_action(link, history, now=2 * DAY) \
        is RepairAction.REPLACE_TRANSCEIVER
    assert ladder.next_action(link, history, now=30 * DAY) \
        is RepairAction.RESEAT


def test_exhausted_ladder_wraps(world):
    ladder = EscalationLadder()
    link = world.links[0]
    history = [(float(i), action) for i, action in enumerate(RepairAction)]
    assert ladder.next_action(link, history, now=10.0) \
        is RepairAction.RESEAT


def test_alternative_ladder_order(world):
    # Ablation: clean-first ladder.
    config = EscalationConfig(ladder=(
        RepairAction.CLEAN, RepairAction.RESEAT,
        RepairAction.REPLACE_TRANSCEIVER))
    ladder = EscalationLadder(config)
    assert ladder.next_action(world.links[0], [], 0.0) \
        is RepairAction.CLEAN


# -- reactive policy -----------------------------------------------------------

def event(link_id, symptom=Symptom.LINK_DOWN, time=100.0):
    return TelemetryEvent(time, link_id, symptom)


def test_reactive_priorities(world):
    policy = ReactivePolicy(world.fabric)
    down = policy.on_symptom(event("l0", Symptom.LINK_DOWN))
    flap = policy.on_symptom(event("l0", Symptom.LINK_FLAPPING))
    assert down.priority is Priority.HIGH
    assert flap.priority is Priority.NORMAL
    assert down.action is None  # ladder decides
    assert policy.periodic(0.0) == []


# -- proactive policy -------------------------------------------------------------

def test_proactive_sweep_arms_after_repeat_reseat_fixes(world):
    policy = ProactivePolicy(world.fabric, trigger_count=2)
    link0, link1 = world.links[0], world.links[1]
    policy.record_repair(link0, RepairAction.RESEAT, True, now=100.0)
    assert policy.periodic(200.0) == []
    policy.record_repair(link1, RepairAction.RESEAT, True, now=300.0)
    requests = policy.periodic(400.0)
    # All other links on the shared switches get proactive reseats.
    assert requests
    assert all(r.proactive for r in requests)
    assert all(r.action is RepairAction.RESEAT for r in requests)
    assert link1.id not in [r.link_id for r in requests]


def test_ineffective_or_other_actions_do_not_count(world):
    policy = ProactivePolicy(world.fabric, trigger_count=2)
    policy.record_repair(world.links[0], RepairAction.RESEAT, False, 0.0)
    policy.record_repair(world.links[1], RepairAction.CLEAN, True, 1.0)
    policy.record_repair(world.links[2], RepairAction.RESEAT, True, 2.0)
    assert policy.periodic(10.0) == []


def test_sweep_cooldown(world):
    policy = ProactivePolicy(world.fabric, trigger_count=1,
                             sweep_cooldown_seconds=10 * DAY)
    policy.record_repair(world.links[0], RepairAction.RESEAT, True, 0.0)
    first = policy.periodic(1.0)
    assert first
    policy.record_repair(world.links[1], RepairAction.RESEAT, True, DAY)
    assert policy.periodic(DAY + 1) == []  # cooling down


def test_memory_window_forgets_old_fixes(world):
    policy = ProactivePolicy(world.fabric, trigger_count=2,
                             memory_seconds=1 * DAY)
    policy.record_repair(world.links[0], RepairAction.RESEAT, True, 0.0)
    policy.record_repair(world.links[1], RepairAction.RESEAT, True,
                         5 * DAY)
    assert policy.periodic(5 * DAY + 1) == []


def test_trigger_validation(world):
    with pytest.raises(ValueError):
        ProactivePolicy(world.fabric, trigger_count=0)


# -- predictive policy ---------------------------------------------------------------

def test_predictive_requests_above_threshold(world):
    scores = {world.links[0].id: 0.9, world.links[1].id: 0.1}
    policy = PredictivePolicy(
        world.fabric,
        scorer=lambda link, now: scores.get(link.id, 0.0),
        threshold=0.5)
    requests = policy.periodic(0.0)
    assert [r.link_id for r in requests] == [world.links[0].id]
    # Cleanable MPO link gets a clean.
    assert requests[0].action is RepairAction.CLEAN
    assert requests[0].proactive


def test_predictive_cooldown(world):
    policy = PredictivePolicy(world.fabric,
                              scorer=lambda link, now: 1.0,
                              threshold=0.5,
                              cooldown_seconds=DAY)
    first = policy.periodic(0.0)
    assert len(first) == len(world.links)
    assert policy.periodic(3600.0) == []
    assert len(policy.periodic(2 * DAY)) == len(world.links)


def test_predictive_reseat_for_sealed_cables():
    world = make_world(kind=CableKind.AOC)
    policy = PredictivePolicy(world.fabric,
                              scorer=lambda link, now: 1.0)
    requests = policy.periodic(0.0)
    assert all(r.action is RepairAction.RESEAT for r in requests)


def test_predictive_threshold_validation(world):
    with pytest.raises(ValueError):
        PredictivePolicy(world.fabric, scorer=lambda ln, n: 0.0,
                         threshold=0.0)
