"""Shared test fixtures: a small wired world with full failure physics."""

import dataclasses
import os
import random

import numpy as np
import pytest

from dcrobot.core.repairs import RepairPhysics
from dcrobot.failures import CascadeModel, Environment, HealthModel
from dcrobot.network import (
    CableKind,
    Fabric,
    FormFactor,
    HallLayout,
    SwitchRole,
)
from dcrobot.sim import Simulation


@dataclasses.dataclass
class World:
    """Everything a maintenance test needs, wired together."""

    sim: Simulation
    fabric: Fabric
    links: list
    environment: Environment
    health: HealthModel
    cascade: CascadeModel
    physics: RepairPhysics
    switch_a: object
    switch_b: object


def make_world(links=4, seed=17, kind=CableKind.MPO, rows=1,
               racks_per_row=2, spare_transceivers=10, spare_cables=5):
    """A two-switch world with ``links`` parallel MPO links and spares."""
    rng = np.random.default_rng(seed)
    fabric = Fabric(layout=HallLayout(rows=rows,
                                      racks_per_row=racks_per_row),
                    rng=rng)
    a = fabric.add_switch(SwitchRole.TOR, radix=max(links, 2),
                          rack_id=fabric.layout.rack_at(0, 0).id)
    b = fabric.add_switch(SwitchRole.TOR, radix=max(links, 2),
                          rack_id=fabric.layout.rack_at(
                              rows - 1, racks_per_row - 1).id)
    made = [fabric.connect(a.id, b.id, kind=kind) for _ in range(links)]
    fabric.stock_spares(
        {factor: spare_transceivers for factor in FormFactor},
        cables=spare_cables)
    sim = Simulation()
    environment = Environment(diurnal_amplitude_c=0.0)
    health = HealthModel(fabric, environment,
                         rng=np.random.default_rng(seed + 1))
    cascade = CascadeModel(fabric, health, environment,
                           rng=np.random.default_rng(seed + 2))
    physics = RepairPhysics(fabric, health, cascade,
                            rng=np.random.default_rng(seed + 3))
    return World(sim=sim, fabric=fabric, links=made,
                 environment=environment, health=health, cascade=cascade,
                 physics=physics, switch_a=a, switch_b=b)


@pytest.fixture
def world():
    return make_world()


def pytest_collection_modifyitems(config, items):
    """Flake sweep: ``PYTEST_SHUFFLE_SEED=<int>`` runs the suite in a
    deterministic random order (pytest-randomly is not a dependency).

    Shuffling at module granularity keeps module-scoped fixtures
    shared while still exercising every cross-module order
    dependency; a failure reproduces with the same seed.
    """
    seed = os.environ.get("PYTEST_SHUFFLE_SEED")
    if not seed:
        return
    rng = random.Random(int(seed))
    modules = {}
    for item in items:
        modules.setdefault(item.nodeid.split("::", 1)[0],
                           []).append(item)
    order = list(modules)
    rng.shuffle(order)
    items[:] = [item for name in order for item in modules[name]]
