"""Unit tests for HallShard and per-hall config derivation."""

import pytest

from dcrobot.chaos.config import ChaosConfig
from dcrobot.core.automation import AutomationLevel
from dcrobot.experiments.runner import WorldConfig, build_world
from dcrobot.shard import HALL_SEED_STRIDE, HallShard, hall_config


def small_config(**overrides):
    base = dict(horizon_days=1.0, seed=7, failure_scale=2.0,
                level=AutomationLevel.L3_HIGH_AUTOMATION)
    base.update(overrides)
    return WorldConfig(**base)


def test_hall_zero_keeps_campus_seed():
    config = small_config(halls=3)
    hall0 = hall_config(config, 0)
    assert hall0.seed == config.seed
    assert hall0.halls == 1
    assert hall0.hall_overrides is None and hall0.boundary is None
    # Everything else passes through untouched.
    assert hall0.horizon_days == config.horizon_days
    assert hall0.failure_scale == config.failure_scale


def test_later_halls_stride_their_seeds():
    config = small_config(halls=4)
    for hall_id in range(4):
        derived = hall_config(config, hall_id)
        assert derived.seed == config.seed \
            + HALL_SEED_STRIDE * hall_id
    with pytest.raises(ValueError):
        hall_config(config, -1)


def test_hall_overrides_apply_to_their_hall_only():
    chaos = ChaosConfig.moderate()
    config = small_config(
        halls=3, hall_overrides={1: {"chaos": chaos, "safety": True}})
    assert hall_config(config, 0).chaos is None
    hall1 = hall_config(config, 1)
    assert hall1.chaos is chaos and hall1.safety
    assert hall_config(config, 2).chaos is None


def test_build_world_refuses_campus_configs():
    with pytest.raises(ValueError, match="CampusWorld"):
        build_world(small_config(halls=2))


def test_shard_requires_hall_local_config():
    with pytest.raises(ValueError, match="hall_config"):
        HallShard(0, small_config(halls=2))


def test_shard_lifecycle_and_summary_stamp():
    shard = HallShard(2, hall_config(small_config(halls=5), 2),
                      campus_halls=5)
    assert not shard.built
    with pytest.raises(RuntimeError):
        shard.fabric
    shard.build()
    assert shard.built and shard.build_wall_seconds > 0
    first = shard.result
    shard.build()  # idempotent
    assert shard.result is first
    summary = shard.run()
    assert summary.hall == 2 and summary.halls == 5
    assert summary.seed == 7 + 2 * HALL_SEED_STRIDE
    assert shard.run_wall_seconds > 0
    assert shard.wall_seconds == pytest.approx(
        shard.build_wall_seconds + shard.run_wall_seconds)
    assert 0.0 < shard.smi <= 1.0
    # run() is idempotent too: the world is not re-run.
    assert shard.run() is summary
