"""The federation layer: deterministic boundary schedule, least-loaded
incident routing, epoch registry, metrics merging, and — the core
shard contract — chaos/failover on one hall never perturbing its
siblings."""

import dataclasses

import pytest

from dcrobot.chaos.config import ChaosConfig
from dcrobot.core.automation import AutomationLevel
from dcrobot.experiments.runner import DAY, WorldConfig
from dcrobot.shard import (
    BoundaryConfig,
    BoundaryShard,
    CampusFederation,
    FederationRegistry,
    campus_smi,
    merge_metric_snapshots,
    run_campus,
)


def _federation(seed=3, halls=3, horizon_days=30.0, **config):
    boundary = BoundaryShard(halls, BoundaryConfig(**config))
    return CampusFederation(boundary, seed=seed,
                            horizon_seconds=horizon_days * DAY)


def _campus_config(**overrides):
    base = dict(horizon_days=4.0, seed=11, failure_scale=3.0,
                level=AutomationLevel.L3_HIGH_AUTOMATION, halls=3)
    base.update(overrides)
    return WorldConfig(**base)


# -- schedule determinism -------------------------------------------------

def test_same_seed_same_schedule():
    first = _federation(failure_rate_per_day=2.0).run()
    second = _federation(failure_rate_per_day=2.0).run()
    assert first.incidents, "want a non-trivial schedule"
    assert ([dataclasses.asdict(i) for i in first.incidents]
            == [dataclasses.asdict(i) for i in second.incidents])
    assert first.offered_bytes == second.offered_bytes
    assert first.routed_by_hall == second.routed_by_hall


def test_different_seeds_diverge():
    first = _federation(seed=3, failure_rate_per_day=2.0).run()
    second = _federation(seed=4, failure_rate_per_day=2.0).run()
    assert first.offered_bytes != second.offered_bytes


def test_report_accounting():
    federation = _federation(failure_rate_per_day=2.0)
    report = federation.run()
    assert report.windows == int(
        federation.horizon_seconds
        // federation.config.window_seconds)
    assert report.concluded + report.open == len(report.incidents)
    assert sum(report.routed_by_hall.values()) == len(report.incidents)
    assert report.delivered_bytes + report.lost_bytes \
        == pytest.approx(report.offered_bytes)
    assert report.conservation_error < 1e-9 * max(
        report.offered_bytes, 1.0)
    # Concluded incidents land their repairs; their links are live
    # again unless a later incident re-failed them.
    for incident in report.incidents:
        if incident.concluded:
            assert incident.concluded_at <= federation.horizon_seconds


def test_routing_prefers_less_loaded_endpoint():
    route = CampusFederation._route
    assert route((0, 1), {0: 5, 1: 2}) == 1
    assert route((0, 1), {0: 2, 1: 5}) == 0
    # Ties go to the lower hall id.
    assert route((1, 2), {1: 3, 2: 3}) == 1
    assert route((0, 2), {}) == 0


# -- epoch registry -------------------------------------------------------

def test_registry_tracks_monotone_epochs():
    registry = FederationRegistry()
    assert registry.epoch(0) == 0
    assert registry.observe(0, 1) and registry.observe(0, 3)
    assert registry.observe(0, 3)  # re-announcing is fine
    assert registry.epoch(0) == 3 and not registry.regressions


def test_registry_trips_on_regression():
    registry = FederationRegistry()
    registry.observe(1, 4)
    assert not registry.observe(1, 2)
    assert registry.regressions == [(1, 2, 4)]
    assert registry.epoch(1) == 4  # regression never lowers the view
    assert "regressions=1" in repr(registry)


# -- metrics merging ------------------------------------------------------

def _counter_snapshot(value, labels=None):
    return {
        "kind": "metrics", "schema_version": 1,
        "metrics": {
            "incidents_total": {
                "kind": "counter", "help": "incidents",
                "samples": [{"labels": labels or {}, "value": value}],
            }}}


def test_merge_counters_sums_per_label_set():
    merged = merge_metric_snapshots([
        _counter_snapshot(2.0, {"hall": "0"}),
        _counter_snapshot(3.0, {"hall": "0"}),
        _counter_snapshot(7.0, {"hall": "1"}),
    ])
    samples = merged["metrics"]["incidents_total"]["samples"]
    assert [(s["labels"], s["value"]) for s in samples] == [
        ({"hall": "0"}, 5.0), ({"hall": "1"}, 7.0)]


def test_merge_histograms_sums_counts_and_buckets():
    def snap(count, total, buckets):
        return {"kind": "metrics", "schema_version": 1,
                "metrics": {"repair_hours": {
                    "kind": "histogram", "help": "h",
                    "buckets": [1.0, 4.0],
                    "samples": [{"labels": {}, "count": count,
                                 "sum": total,
                                 "bucket_counts": buckets}]}}}
    merged = merge_metric_snapshots([snap(2, 3.0, [1, 1, 0]),
                                     snap(4, 9.0, [0, 2, 2])])
    sample = merged["metrics"]["repair_hours"]["samples"][0]
    assert sample["count"] == 6 and sample["sum"] == 12.0
    assert sample["bucket_counts"] == [1, 3, 2]


def test_merge_rejects_mismatched_buckets():
    base = {"kind": "metrics", "schema_version": 1,
            "metrics": {"repair_hours": {
                "kind": "histogram", "help": "h", "buckets": [1.0],
                "samples": []}}}
    other = {"kind": "metrics", "schema_version": 1,
             "metrics": {"repair_hours": {
                 "kind": "histogram", "help": "h", "buckets": [2.0],
                 "samples": []}}}
    with pytest.raises(ValueError, match="bucket layouts"):
        merge_metric_snapshots([base, other])


def test_merge_handles_missing_snapshots():
    assert merge_metric_snapshots([]) is None
    assert merge_metric_snapshots([None, None]) is None
    merged = merge_metric_snapshots([None, _counter_snapshot(1.0)])
    samples = merged["metrics"]["incidents_total"]["samples"]
    assert samples[0]["value"] == 1.0


# -- campus SMI -----------------------------------------------------------

def test_campus_smi_is_link_weighted():
    boundary = BoundaryShard(2, BoundaryConfig(links_per_pair=2))
    # Halls: SMI 1.0 over 6 links, 0.5 over 2; boundary: 1.0 over 2.
    value = campus_smi([1.0, 0.5], [6, 2], boundary)
    assert value == pytest.approx((6.0 + 1.0 + 2.0) / 10.0)
    boundary.fail("xh:0-1:0")
    degraded = campus_smi([1.0, 0.5], [6, 2], boundary)
    assert degraded == pytest.approx((6.0 + 1.0 + 1.0) / 10.0)
    assert campus_smi([], [], BoundaryShard(1)) == 1.0


# -- cross-shard isolation ------------------------------------------------

def _plain(summary):
    return dataclasses.asdict(summary)


@pytest.mark.slow
def test_chaos_on_one_hall_leaves_siblings_identical():
    """Chaos confined to hall 0 by hall_overrides: halls 1 and 2 end
    bit-identical to an undisturbed control campus."""
    control = run_campus(_campus_config())
    chaotic = run_campus(_campus_config(hall_overrides={0: {
        "chaos": ChaosConfig.moderate(), "safety": True,
        "mute_ttl_seconds": 2.0 * DAY}}))
    assert _plain(chaotic.hall_summaries[1]) \
        == _plain(control.hall_summaries[1])
    assert _plain(chaotic.hall_summaries[2]) \
        == _plain(control.hall_summaries[2])
    # ... and the chaos hall itself genuinely diverged.
    assert _plain(chaotic.hall_summaries[0]) \
        != _plain(control.hall_summaries[0])


@pytest.mark.slow
def test_failover_on_one_hall_is_independent():
    """Leadership + controller chaos on hall 1 only: that hall runs
    its own S14 failovers (epoch >= 1 in the federation registry)
    while halls 0 and 2 stay bit-identical to the control campus."""
    control = run_campus(_campus_config())
    campus = run_campus(_campus_config(hall_overrides={1: {
        "chaos": ChaosConfig.moderate(), "leadership": True,
        "controller_chaos": True,
        "controller_chaos_check_seconds": 1800.0}}))
    assert campus.hall_epochs[1] >= 1
    assert campus.hall_epochs[0] == 0 and campus.hall_epochs[2] == 0
    assert _plain(campus.hall_summaries[0]) \
        == _plain(control.hall_summaries[0])
    assert _plain(campus.hall_summaries[2]) \
        == _plain(control.hall_summaries[2])
    summary_1 = campus.hall_summaries[1]
    assert summary_1.fencing_token == campus.hall_epochs[1]
    assert summary_1.failovers >= 0  # supervisor attached and counted
