"""Unit tests for the campus boundary shard (cross-hall links)."""

import pytest

from dcrobot.shard import (
    BoundaryConfig,
    BoundaryShard,
    boundary_pairs,
)


def test_boundary_pairs_shapes():
    assert boundary_pairs(1) == []
    assert boundary_pairs(2) == [(0, 1)]
    # 3+ halls form a ring: consecutive pairs plus the wrap link.
    assert boundary_pairs(3) == [(0, 1), (1, 2), (0, 2)]
    assert boundary_pairs(5) == [(0, 1), (1, 2), (2, 3), (3, 4),
                                 (0, 4)]


def test_single_hall_has_no_boundary():
    shard = BoundaryShard(1)
    assert shard.links == {}
    assert shard.live_fraction() == 1.0
    assert shard.smi_factor() == 1.0
    assert shard.conservation_error() == 0.0


def test_link_construction_and_lookup():
    config = BoundaryConfig(links_per_pair=3, capacity_gbps=100.0)
    shard = BoundaryShard(4, config)
    assert len(shard.links) == 4 * 3  # ring of 4 pairs, 3-wide fans
    fan = shard.links_between(0, 1)
    assert [link.lid for link in fan] == [
        "xh:0-1:0", "xh:0-1:1", "xh:0-1:2"]
    # Order of hall arguments does not matter.
    assert shard.links_between(1, 0) == fan
    assert all(link.capacity_bps == 100.0e9 for link in fan)
    assert shard.hall_links(0) == (shard.links_between(0, 1)
                                   + shard.links_between(0, 3))


def test_offer_spreads_evenly_over_live_links():
    shard = BoundaryShard(2, BoundaryConfig(links_per_pair=2))
    delivered = shard.offer(0, 1, 1000.0, 5)
    assert delivered == 1000.0
    a, b = shard.links_between(0, 1)
    assert a.bytes_total == b.bytes_total == 500.0
    # Integer flows conserve exactly: remainder goes to the first lid.
    assert a.flows_total == 3 and b.flows_total == 2
    assert shard.delivered_flows == shard.offered_flows == 5


def test_drained_and_failed_links_carry_nothing():
    shard = BoundaryShard(2, BoundaryConfig(links_per_pair=3))
    shard.drain("xh:0-1:0")
    shard.fail("xh:0-1:1")
    shard.offer(0, 1, 900.0, 3)
    assert shard.link("xh:0-1:0").bytes_total == 0.0
    assert shard.link("xh:0-1:1").bytes_total == 0.0
    assert shard.link("xh:0-1:2").bytes_total == 900.0
    assert shard.lost_bytes == 0.0


def test_whole_fan_down_counts_lost():
    shard = BoundaryShard(2, BoundaryConfig(links_per_pair=2))
    shard.fail("xh:0-1:0")
    shard.drain("xh:0-1:1")
    delivered = shard.offer(0, 1, 700.0, 2)
    assert delivered == 0.0
    assert shard.lost_bytes == 700.0 and shard.lost_flows == 2
    assert shard.delivered_bytes == 0.0
    # Repair + undrain restore delivery.
    shard.repair("xh:0-1:0")
    shard.undrain("xh:0-1:1")
    shard.offer(0, 1, 700.0, 2)
    assert shard.delivered_bytes == 700.0
    assert shard.conservation_error() < 1e-9


def test_hall_attribution_halves_each_link():
    shard = BoundaryShard(3, BoundaryConfig(links_per_pair=1))
    shard.offer(0, 1, 100.0, 1)
    shard.offer(1, 2, 60.0, 1)
    shard.offer(0, 2, 40.0, 1)
    assert shard.hall_attributed_bytes(0) == pytest.approx(70.0)
    assert shard.hall_attributed_bytes(1) == pytest.approx(80.0)
    assert shard.hall_attributed_bytes(2) == pytest.approx(50.0)
    total = sum(shard.hall_attributed_bytes(h) for h in range(3))
    assert total == pytest.approx(shard.delivered_bytes)


def test_live_fraction_tracks_state():
    shard = BoundaryShard(2, BoundaryConfig(links_per_pair=4))
    assert shard.live_fraction() == 1.0
    shard.fail("xh:0-1:0")
    shard.drain("xh:0-1:1")
    assert shard.live_fraction() == 0.5
    assert shard.smi_factor() == 0.5


def test_validation():
    with pytest.raises(ValueError):
        BoundaryShard(0)
    with pytest.raises(ValueError):
        BoundaryConfig(links_per_pair=0)
    with pytest.raises(ValueError):
        BoundaryConfig(window_seconds=0.0)
    with pytest.raises(ValueError):
        BoundaryConfig(failure_rate_per_day=-1.0)
    shard = BoundaryShard(2)
    with pytest.raises(ValueError):
        shard.offer(0, 1, -1.0, 0)
    with pytest.raises(KeyError):
        shard.drain("xh:9-9:0")
