"""1-hall CampusWorld == legacy single-hall World, bit for bit.

The campus layer must be pure composition: wrapping a world as a
1-hall campus may not change its summary, its RNG stream consumption,
or its parity-golden snapshots.  Three guarantees:

* **golden parity** — a 1-hall campus reproduces the pinned
  pre-refactor ``tests/golden/parity`` summaries exactly (the same
  files the vectorized-parity suite holds the legacy path to);
* **live parity** — a live double-run (legacy ``run_world`` vs 1-hall
  campus) agrees field-for-field *and* leaves every world RNG stream
  in the identical end state;
* **execution parity** — a serial campus and a process-pool campus
  produce bit-identical summaries.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from dcrobot.experiments.runner import run_world, summarize_world
from dcrobot.shard import CampusWorld, hall_config, run_campus

from tests.experiments.parity_worlds import (
    parity_configs,
    summary_to_plain,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                          "golden", "parity")

CONFIGS = parity_configs()

#: Golden comparisons re-run whole worlds, so pin a representative
#: subset: the plain L0 world, the chaos+safety+resilience stack, the
#: journal+supervisor stack, and the dust-heavy flap/RNG path.
GOLDEN_SUBSET = ("e1_l0", "e13_chaos", "e14_journal", "gray_dust")


def _golden(name: str) -> dict:
    path = os.path.join(GOLDEN_DIR, f"{name}.json")
    with open(path) as handle:
        return json.load(handle)


@pytest.mark.parametrize("name", GOLDEN_SUBSET)
def test_one_hall_campus_matches_parity_golden(name):
    config = dataclasses.replace(CONFIGS[name], halls=1)
    campus = run_campus(config)
    actual = summary_to_plain(campus.hall_summaries[0])
    assert actual == _golden(name), (
        f"1-hall campus drifted from pinned golden {name!r}")


@pytest.mark.parametrize("name", ["e13_chaos", "e5_proactive"])
def test_live_double_run_summary_and_rng_parity(name):
    config = CONFIGS[name]
    legacy = run_world(hall_config(config, 0))
    campus = CampusWorld(dataclasses.replace(config, halls=1))
    summary = campus.run()
    # Field-for-field summary identity.
    assert (summary_to_plain(summarize_world(legacy))
            == summary_to_plain(summary.hall_summaries[0]))
    # The campus hall consumed every RNG stream identically: each
    # generator ends in the same bit-generator state.
    hall = campus.hall(0).result
    for attribute in ("injector", "health", "cascade"):
        legacy_state = getattr(legacy,
                               attribute).rng.bit_generator.state
        hall_state = getattr(hall, attribute).rng.bit_generator.state
        assert legacy_state == hall_state, (
            f"{attribute} RNG stream diverged inside the campus")


def test_serial_and_parallel_campuses_bit_identical():
    config = dataclasses.replace(CONFIGS["e13_chaos"], halls=2,
                                 horizon_days=3.0)
    serial = run_campus(config)
    parallel = run_campus(config, jobs=2)
    assert [dataclasses.asdict(summary)
            for summary in serial.hall_summaries] \
        == [dataclasses.asdict(summary)
            for summary in parallel.hall_summaries]
    # The deterministic campus aggregates agree too (wall-clock
    # telemetry legitimately differs between the two executions).
    for field in ("incidents", "closed_incidents", "campus_smi",
                  "cross_hall_incidents", "boundary_offered_bytes",
                  "hall_epochs", "hall_smi"):
        assert getattr(serial, field) == getattr(parallel, field), field


def test_campus_summary_hall_stamps():
    config = dataclasses.replace(CONFIGS["e1_l0"], halls=2,
                                 horizon_days=2.0)
    summary = run_campus(config)
    assert [s.hall for s in summary.hall_summaries] == [0, 1]
    assert all(s.halls == 2 for s in summary.hall_summaries)
    assert summary.link_count == sum(s.link_count
                                     for s in summary.hall_summaries)
