"""Repair-time statistics, duration formatting, and MTBF."""

import pytest

from dcrobot.metrics.mttr import (
    format_duration,
    mtbf_seconds,
    repair_time_stats,
)


def test_stats_require_at_least_one_sample():
    with pytest.raises(ValueError, match="no repair times"):
        repair_time_stats([])


def test_stats_summarize_percentiles():
    stats = repair_time_stats(list(range(1, 101)))
    assert stats.count == 100
    assert stats.mean == pytest.approx(50.5)
    assert stats.p50 == pytest.approx(50.5)
    assert stats.p95 == pytest.approx(95.05)
    assert stats.p99 == pytest.approx(99.01)
    assert stats.max == 100.0


def test_stats_single_sample_is_degenerate():
    stats = repair_time_stats([42.0])
    assert (stats.mean, stats.p50, stats.p95, stats.p99, stats.max) \
        == (42.0, 42.0, 42.0, 42.0, 42.0)


def test_stats_repr_is_humane():
    text = repr(repair_time_stats([90.0, 90.0]))
    assert "n=2" in text
    assert "p50=1.5m" in text


def test_format_duration_picks_the_right_unit():
    assert format_duration(42.0) == "42s"
    assert format_duration(59.9) == "60s"
    assert format_duration(90.0) == "1.5m"
    assert format_duration(2.5 * 3600.0) == "2.5h"
    assert format_duration(3.5 * 86400.0) == "3.5d"


def test_format_duration_rejects_negatives():
    with pytest.raises(ValueError, match="negative"):
        format_duration(-1.0)


def test_mtbf_per_link():
    # 10 faults across 100 links over a day: one fault per link every
    # 10 days of link-time.
    assert mtbf_seconds(10, 100, 86400.0) == pytest.approx(864000.0)


def test_mtbf_with_no_faults_is_infinite():
    assert mtbf_seconds(0, 100, 86400.0) == float("inf")


def test_mtbf_rejects_degenerate_denominators():
    with pytest.raises(ValueError, match="positive"):
        mtbf_seconds(1, 0, 86400.0)
    with pytest.raises(ValueError, match="positive"):
        mtbf_seconds(1, 100, 0.0)
