"""Unit tests for incident root-cause attribution."""

import pytest

from dcrobot.core.controller import Incident
from dcrobot.failures.injector import InjectedFault
from dcrobot.metrics import (
    attribute_incidents,
    disturbed_links_from_cascade,
)
from dcrobot.network import DegradationKind

DAY = 86400.0


def incident(link_id, opened_at):
    return Incident(link_id=link_id, opened_at=opened_at, symptom="x")


def fault(link_id, time, kind=DegradationKind.OXIDATION):
    return InjectedFault(time=time, kind=kind, link_id=link_id,
                         detail="")


def test_incident_matched_to_recent_fault():
    summary = attribute_incidents(
        [incident("l1", opened_at=1000.0)],
        [fault("l1", time=500.0)])
    assert summary.by_cause[DegradationKind.OXIDATION] == 1
    assert summary.injected == 1
    assert summary.collateral == 0


def test_most_recent_fault_wins():
    summary = attribute_incidents(
        [incident("l1", opened_at=1000.0)],
        [fault("l1", 100.0, DegradationKind.OXIDATION),
         fault("l1", 900.0, DegradationKind.CONTAMINATION)])
    assert summary.by_cause == {DegradationKind.CONTAMINATION: 1}


def test_fault_outside_window_not_matched():
    summary = attribute_incidents(
        [incident("l1", opened_at=30 * DAY)],
        [fault("l1", time=1.0)],
        attribution_window_seconds=7 * DAY)
    assert summary.injected == 0
    assert summary.environmental == 1


def test_future_fault_not_matched():
    summary = attribute_incidents(
        [incident("l1", opened_at=100.0)],
        [fault("l1", time=200.0)])
    assert summary.injected == 0


def test_collateral_classification():
    summary = attribute_incidents(
        [incident("l1", opened_at=100.0),
         incident("l2", opened_at=100.0)],
        faults=[], disturbed_link_ids=["l1"])
    assert summary.collateral == 1
    assert summary.environmental == 1
    assert summary.collateral_share == pytest.approx(0.5)


def test_shares():
    summary = attribute_incidents(
        [incident("l1", 100.0), incident("l2", 100.0)],
        [fault("l1", 50.0, DegradationKind.CABLE_DAMAGE)])
    assert summary.share(DegradationKind.CABLE_DAMAGE) \
        == pytest.approx(0.5)
    assert summary.share(DegradationKind.SWITCH_HW) == 0.0


def test_empty_inputs():
    summary = attribute_incidents([], [])
    assert summary.total == 0
    assert summary.collateral_share == 0.0


def test_window_validation():
    with pytest.raises(ValueError):
        attribute_incidents([], [], attribution_window_seconds=0.0)


def test_disturbed_links_from_cascade_dedupes():
    class Report:
        def __init__(self, disturbed, damaged):
            self.disturbed_links = disturbed
            self.damaged_links = damaged

    links = disturbed_links_from_cascade([
        Report(["a", "b"], []),
        Report(["b"], ["c"]),
    ])
    assert links == ["a", "b", "c"]


def test_end_to_end_attribution_with_humans():
    """A human-maintained world: cascade touches create collateral
    tickets the attribution must separate from injected faults."""
    from dcrobot.experiments import WorldConfig, run_world

    result = run_world(WorldConfig(horizon_days=20.0, seed=3,
                                   failure_scale=5.0))
    summary = result.attribution()
    assert summary.total > 0
    assert summary.injected > 0
    # Categories partition the incidents.
    assert (summary.injected + summary.collateral
            + summary.environmental) == summary.total
