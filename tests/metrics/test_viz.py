"""Unit tests for terminal visualization helpers."""

import pytest

from dcrobot.metrics import (
    availability_bar,
    hall_map,
    link_state_strip,
    sparkline,
)
from dcrobot.network import LinkState

from tests.conftest import make_world


# -- sparkline -----------------------------------------------------------

def test_sparkline_empty():
    assert sparkline([]) == ""


def test_sparkline_constant_series():
    strip = sparkline([5.0] * 10, width=10)
    assert len(strip) == 10
    assert len(set(strip)) == 1


def test_sparkline_monotone_series_monotone_glyphs():
    strip = sparkline(list(range(8)), width=8)
    order = " ._-=+*#"
    levels = [order.index(char) for char in strip]
    assert levels == sorted(levels)
    assert levels[0] == 0 and levels[-1] == len(order) - 1


def test_sparkline_buckets_long_series():
    strip = sparkline(list(range(1000)), width=50)
    assert len(strip) == 50


def test_sparkline_pinned_scale():
    strip = sparkline([0.5] * 4, width=4, low=0.0, high=1.0)
    # Mid-scale glyph, not the max.
    assert strip[0] not in (" ", "#")


def test_sparkline_validation():
    with pytest.raises(ValueError):
        sparkline([1.0], width=0)


# -- link state strip -----------------------------------------------------------

def test_link_state_strip_renders_transitions(world):
    link = world.links[0]
    link.set_state(25.0, LinkState.DOWN)
    link.set_state(75.0, LinkState.UP)
    strip = link_state_strip(link, 0.0, 100.0, width=20)
    assert len(strip) == 20
    assert strip.startswith("#")
    assert "." in strip
    assert strip.endswith("#")


def test_link_state_strip_maintenance(world):
    link = world.links[0]
    link.set_state(0.0, LinkState.MAINTENANCE)
    strip = link_state_strip(link, 0.0, 10.0, width=5)
    assert strip == "mmmmm"


def test_link_state_strip_validation(world):
    with pytest.raises(ValueError):
        link_state_strip(world.links[0], 10.0, 10.0)
    with pytest.raises(ValueError):
        link_state_strip(world.links[0], 0.0, 10.0, width=0)


# -- hall map ----------------------------------------------------------------------

def test_hall_map_marks_switch_racks(world):
    rendered = hall_map(world.fabric)
    assert "S" in rendered
    assert rendered.count("row") == world.fabric.layout.rows


def test_hall_map_marks_robots(world):
    rack = world.fabric.layout.rack_at(0, 0).id
    rendered = hall_map(world.fabric, robot_racks=[rack])
    assert "R" in rendered


def test_hall_map_truncates_wide_halls():
    world = make_world(rows=1, racks_per_row=60)
    rendered = hall_map(world.fabric, max_columns=10)
    assert ">" in rendered


def test_hall_map_hosts():
    import numpy as np

    from dcrobot.topology import build_gpu_cluster

    topo = build_gpu_cluster(servers=8, gpus_per_server=2,
                             rng=np.random.default_rng(1))
    rendered = hall_map(topo.fabric)
    # Host racks render H (or B where they share a rack with a rail
    # switch).
    assert "H" in rendered or "B" in rendered


# -- availability bar ----------------------------------------------------------------

def test_availability_bar():
    bar = availability_bar(0.5, width=10)
    assert bar.count("#") == 5
    assert "50.00%" in bar
    assert availability_bar(1.0, width=4).startswith("[####]")


def test_availability_bar_validation():
    with pytest.raises(ValueError):
        availability_bar(1.5)
    with pytest.raises(ValueError):
        availability_bar(0.5, width=0)
