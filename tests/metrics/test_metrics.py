"""Unit tests for availability, MTTR, amplification, cost, tables."""

import math

import numpy as np
import pytest

from dcrobot.core.actions import RepairAction, RepairOutcome, WorkOrder
from dcrobot.metrics import (
    CostModel,
    CostParams,
    Table,
    amplification_from_outcomes,
    availability_from_incidents,
    downtime_seconds,
    format_duration,
    link_availability,
    mtbf_seconds,
    repair_time_stats,
)
from dcrobot.network import LinkState

HOUR = 3600.0
DAY = 86400.0


def outcome(disturbed=0, damaged=0):
    order = WorkOrder("link-x", RepairAction.RESEAT, created_at=0.0)
    return RepairOutcome(order=order, executor_id="t", started_at=0.0,
                         finished_at=10.0, completed=True,
                         secondary_disturbed=disturbed,
                         secondary_damaged=damaged)


# -- availability -------------------------------------------------------------

def test_link_availability_full_up(world):
    summary = link_availability(world.fabric, 0.0, 1000.0)
    assert summary.mean == 1.0
    assert summary.worst == 1.0
    assert summary.nines == math.inf


def test_link_availability_with_downtime(world):
    world.links[0].set_state(100.0, LinkState.DOWN)
    world.links[0].set_state(200.0, LinkState.UP)
    summary = link_availability(world.fabric, 0.0, 1000.0)
    assert summary.per_link[world.links[0].id] == pytest.approx(0.9)
    expected_mean = (0.9 + 3.0) / 4
    assert summary.mean == pytest.approx(expected_mean)
    assert summary.worst == pytest.approx(0.9)


def test_nines_computation(world):
    world.links[0].set_state(0.0, LinkState.DOWN)
    world.links[0].set_state(1.0, LinkState.UP)
    summary = link_availability(world.fabric, 0.0, 10000.0)
    assert 0 < summary.nines < math.inf


def test_downtime_seconds(world):
    world.links[0].set_state(100.0, LinkState.DOWN)
    world.links[0].set_state(400.0, LinkState.UP)
    assert downtime_seconds(world.fabric, 0.0, 1000.0) \
        == pytest.approx(300.0)


def test_availability_from_incidents():
    # 10 incidents x 1h MTTR over 100 links x 30 days.
    availability = availability_from_incidents(
        repair_times=[HOUR] * 10, incident_count=10,
        horizon_seconds=30 * DAY, link_count=100)
    expected = 1.0 - 10 * HOUR / (100 * 30 * DAY)
    assert availability == pytest.approx(expected)
    assert availability_from_incidents([], 0, DAY, 10) == 1.0
    with pytest.raises(ValueError):
        availability_from_incidents([1.0], 1, DAY, 0)


# -- repair times -----------------------------------------------------------------

def test_repair_time_stats():
    times = [60.0, 120.0, 300.0, 3600.0]
    stats = repair_time_stats(times)
    assert stats.count == 4
    assert stats.mean == pytest.approx(np.mean(times))
    assert stats.max == 3600.0
    assert stats.p50 <= stats.p95 <= stats.p99 <= stats.max
    with pytest.raises(ValueError):
        repair_time_stats([])


def test_format_duration():
    assert format_duration(30) == "30s"
    assert format_duration(90) == "1.5m"
    assert format_duration(2.5 * HOUR) == "2.5h"
    assert format_duration(3 * DAY) == "3.0d"
    with pytest.raises(ValueError):
        format_duration(-1)


def test_mtbf():
    assert mtbf_seconds(10, 100, 30 * DAY) \
        == pytest.approx(100 * 30 * DAY / 10)
    assert mtbf_seconds(0, 100, DAY) == float("inf")
    with pytest.raises(ValueError):
        mtbf_seconds(1, 0, DAY)


# -- amplification -----------------------------------------------------------------

def test_amplification_factor():
    stats = amplification_from_outcomes(
        [outcome(disturbed=1), outcome(), outcome(damaged=1)])
    assert stats.repairs == 3
    assert stats.secondary_total == 2
    assert stats.amplification_factor == pytest.approx(1 + 2 / 3)


def test_amplification_empty():
    stats = amplification_from_outcomes([])
    assert stats.amplification_factor == 1.0


# -- cost ----------------------------------------------------------------------------

def test_cost_breakdown():
    model = CostModel(CostParams(
        technician_hourly_usd=100.0,
        robot_unit_capex_usd=50_000.0,
        robot_amortization_years=5.0,
        robot_opex_hourly_usd=2.0,
        spare_transceiver_usd=400.0,
        spare_cable_usd=300.0))
    year = 365.25 * DAY
    breakdown = model.compute(
        horizon_seconds=year,
        technician_labor_seconds=10 * HOUR,
        supervision_seconds=5 * HOUR,
        robot_count=2,
        robot_busy_seconds=100 * HOUR,
        transceivers_consumed=3,
        cables_consumed=1)
    assert breakdown.labor_usd == pytest.approx(1000.0)
    assert breakdown.supervision_usd == pytest.approx(500.0)
    assert breakdown.robot_capex_usd == pytest.approx(20_000.0)
    assert breakdown.robot_opex_usd == pytest.approx(200.0)
    assert breakdown.spares_usd == pytest.approx(1500.0)
    assert breakdown.total_usd == pytest.approx(23_200.0)


def test_cost_validation():
    with pytest.raises(ValueError):
        CostParams(robot_amortization_years=0.0)
    with pytest.raises(ValueError):
        CostModel().compute(horizon_seconds=0.0)


# -- tables ------------------------------------------------------------------------------

def test_table_renders_aligned():
    table = Table(["policy", "mttr"], title="E1")
    table.add_row("human", 1.23456)
    table.add_row("robot", "12m")
    text = table.render()
    lines = text.splitlines()
    assert lines[0] == "E1"
    assert "policy" in lines[1]
    assert "1.235" in text
    assert "robot" in text


def test_table_validation():
    with pytest.raises(ValueError):
        Table([])
    table = Table(["a", "b"])
    with pytest.raises(ValueError):
        table.add_row("only-one")
