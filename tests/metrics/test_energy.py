"""Unit tests for the energy/carbon model."""

import pytest

from dcrobot.metrics import (
    TRANSCEIVER_WATTS,
    EnergyModel,
    EnergyParams,
)
from dcrobot.network import FormFactor

DAY = 86400.0


def test_all_form_factors_have_power():
    for factor in FormFactor:
        assert TRANSCEIVER_WATTS[factor] > 0


def test_link_watts_counts_both_ends(world):
    model = EnergyModel()
    watts = model.link_watts(world.fabric)
    expected = sum(
        TRANSCEIVER_WATTS[unit.form_factor]
        for link in world.fabric.links.values()
        for unit in link.transceivers())
    assert watts == pytest.approx(expected)
    assert watts > 0


def test_compute_includes_pue(world):
    params = EnergyParams(pue=1.5)
    report = EnergyModel(params).compute(world.fabric, DAY)
    base = EnergyModel(EnergyParams(pue=1.0)).compute(world.fabric, DAY)
    assert report.link_kwh == pytest.approx(1.5 * base.link_kwh)


def test_robot_energy_split(world):
    model = EnergyModel(EnergyParams(pue=1.0,
                                     robot_active_watts=100.0,
                                     robot_idle_watts=10.0))
    report = model.compute(world.fabric, horizon_seconds=3600.0,
                           robot_count=2, robot_busy_seconds=1800.0)
    # 1800s active @100W + 5400s idle @10W = 180000 + 54000 J.
    expected_kwh = (1800 * 100 + 5400 * 10) / 3.6e6
    assert report.robot_kwh == pytest.approx(expected_kwh)
    assert report.total_kwh == report.link_kwh + report.robot_kwh


def test_co2(world):
    report = EnergyModel().compute(world.fabric, DAY)
    assert report.co2_kg(0.5) == pytest.approx(report.total_kwh * 0.5)


def test_redundancy_power_saved(world):
    model = EnergyModel()
    per_link = model.link_watts(world.fabric) / len(world.fabric.links)
    saved = model.redundancy_power_saved(world.fabric, links_removed=3)
    assert saved == pytest.approx(3 * per_link)
    assert model.redundancy_power_saved(world.fabric, 0) == 0.0
    with pytest.raises(ValueError):
        model.redundancy_power_saved(world.fabric, -1)


def test_validation(world):
    with pytest.raises(ValueError):
        EnergyParams(pue=0.9)
    with pytest.raises(ValueError):
        EnergyModel().compute(world.fabric, horizon_seconds=0.0)
