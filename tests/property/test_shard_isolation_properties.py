"""Property tests for cross-shard isolation and fencing (S20).

Two contracts make a sharded campus trustworthy:

* **shard isolation** — arbitrary mutations to one hall's fabric
  columns and arbitrary draws from its RNG streams never perturb a
  sibling hall's columns or stream states (the halls share *nothing*,
  not even lazily);
* **fencing monotonicity** — across any interleaving of lease
  acquisitions, expiries, and renewals on independent per-hall
  :class:`LeaseCoordinator`s, every hall's fencing-token sequence is
  strictly increasing and the campus :class:`FederationRegistry`
  records zero regressions.

Both suites use the real production classes, not models: hall worlds
built by :class:`HallShard`, real coordinators, the real registry.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from dcrobot.core.automation import AutomationLevel
from dcrobot.core.leadership import LeaseCoordinator
from dcrobot.experiments.runner import WorldConfig
from dcrobot.network.enums import LinkState
from dcrobot.network.state import _COW_ATTRS
from dcrobot.shard import FederationRegistry, HallShard, hall_config

# -- shard isolation ------------------------------------------------------

#: Two live hall shards of the same campus, built once: hall A absorbs
#: every generated mutation across all examples while hall B is never
#: touched — so B's snapshot must survive the whole accumulated
#: history, a strictly stronger check than per-example isolation.
_CONFIG = WorldConfig(horizon_days=1.0, seed=5, halls=2,
                      level=AutomationLevel.L1_OPERATOR_ASSISTANCE)
_HALL_A = HallShard(0, hall_config(_CONFIG, 0), campus_halls=2)
_HALL_A.build()
_HALL_B = HallShard(1, hall_config(_CONFIG, 1), campus_halls=2)
_HALL_B.build()

_RNG_STREAMS = ("injector", "health", "cascade")


def _columns(shard):
    return {name: np.array(getattr(shard.fabric.state, name),
                           subok=False)
            for name in _COW_ATTRS}


def _rng_states(shard):
    return {name: getattr(shard.result, name).rng.bit_generator.state
            for name in _RNG_STREAMS}


_B_COLUMNS = _columns(_HALL_B)
_B_RNG = _rng_states(_HALL_B)

_STATES = [LinkState.UP, LinkState.DOWN, LinkState.FLAPPING,
           LinkState.MAINTENANCE]

mutations = st.lists(
    st.tuples(st.sampled_from(["state", "loss", "draw"]),
              st.integers(min_value=0, max_value=47),
              st.integers(min_value=0, max_value=3)),
    min_size=1, max_size=32)


@settings(max_examples=60, deadline=None)
@given(sequence=mutations)
def test_hall_mutations_never_leak_across_shards(sequence):
    fabric = _HALL_A.fabric
    links = list(fabric.links.values())
    for step, (kind, index, value) in enumerate(sequence):
        link = links[index % len(links)]
        if kind == "state":
            link.set_state(float(step + 1), _STATES[value])
        elif kind == "loss":
            fabric.state.loss_rate[link._row] = value / 4.0
        else:
            getattr(_HALL_A.result,
                    _RNG_STREAMS[value % 3]).rng.random()
    # Hall B's columns and RNG streams are bit-identical to their
    # pre-history snapshot: nothing leaked.
    for name, expected in _B_COLUMNS.items():
        actual = np.asarray(getattr(_HALL_B.fabric.state, name))
        assert np.array_equal(actual, expected, equal_nan=True), name
    assert _rng_states(_HALL_B) == _B_RNG


# -- fencing monotonicity -------------------------------------------------

#: An op is (hall, node, action): a per-hall standby trying to acquire
#: the hall's lease, time advancing past the TTL (expiry), or the
#: current holder renewing.
lease_ops = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),
              st.sampled_from(["alpha", "beta", "gamma"]),
              st.sampled_from(["acquire", "expire", "renew"])),
    min_size=1, max_size=80)


@settings(max_examples=100, deadline=None)
@given(sequence=lease_ops)
def test_fencing_tokens_monotone_across_hall_failovers(sequence):
    halls = 4
    coordinators = [LeaseCoordinator() for _ in range(halls)]
    clocks = [0.0] * halls
    registry = FederationRegistry()
    issued = {hall: [0] for hall in range(halls)}

    for hall, node, action in sequence:
        coordinator = coordinators[hall]
        if action == "expire":
            clocks[hall] += coordinator.config.ttl_seconds + 1.0
        elif action == "renew":
            coordinator.renew(node, clocks[hall])
        else:
            token = coordinator.try_acquire(node, clocks[hall])
            if token is not None:
                issued[hall].append(token)
        assert registry.observe(hall, coordinator.fencing_token)

    for hall in range(halls):
        tokens = issued[hall]
        # Strictly increasing: every acquisition fences all before it.
        assert all(a < b for a, b in zip(tokens, tokens[1:]))
        # The registry converged on each hall's latest epoch, and no
        # hall's announcements ever regressed.
        assert registry.epoch(hall) == coordinators[hall].fencing_token
    assert registry.regressions == []


@settings(max_examples=100, deadline=None)
@given(sequence=lease_ops)
def test_hall_leases_are_independent(sequence):
    """Ops on one hall's coordinator never move another's token —
    the per-hall S14 instances share no state."""
    halls = 4
    coordinators = [LeaseCoordinator() for _ in range(halls)]
    clocks = [0.0] * halls
    for hall, node, action in sequence:
        before = [c.fencing_token for c in coordinators]
        coordinator = coordinators[hall]
        if action == "expire":
            clocks[hall] += coordinator.config.ttl_seconds + 1.0
        elif action == "renew":
            coordinator.renew(node, clocks[hall])
        else:
            coordinator.try_acquire(node, clocks[hall])
        after = [c.fencing_token for c in coordinators]
        for other in range(halls):
            if other != hall:
                assert after[other] == before[other]
