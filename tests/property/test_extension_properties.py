"""Property-based tests for the extension subsystems: traces, audit,
rewiring, queueing, energy."""

from hypothesis import given, settings
from hypothesis import strategies as st

from dcrobot.core import erlang_c
from dcrobot.core.audit import AuditLog
from dcrobot.core.reconfigure import StepKind, plan_rewiring
from dcrobot.failures import FaultTrace, TraceEntry
from dcrobot.metrics import sparkline
from dcrobot.network import DegradationKind


# -- fault traces ----------------------------------------------------------

@given(entries=st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=1e7,
                        allow_nan=False),
              st.sampled_from(list(DegradationKind)),
              st.integers(min_value=0, max_value=30)),
    min_size=0, max_size=40))
@settings(max_examples=60, deadline=None)
def test_trace_json_roundtrip_preserves_entries(entries):
    trace = FaultTrace([
        TraceEntry(time, kind, f"link-{index:05d}")
        for time, kind, index in entries])
    restored = FaultTrace.from_json(trace.to_json())
    assert restored.entries == trace.entries
    times = [entry.time for entry in restored.entries]
    assert times == sorted(times)


# -- audit chain -----------------------------------------------------------------

@given(entries=st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=1e6,
                        allow_nan=False),
              st.text(max_size=12), st.booleans()),
    min_size=0, max_size=30))
@settings(max_examples=60, deadline=None)
def test_audit_chain_always_verifies_untampered(entries):
    log = AuditLog()
    for time, principal, allowed in entries:
        log.append(time, principal, "action", "link", allowed)
    assert log.verify_chain()
    assert len(log.records) == len(entries)


@given(entries=st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=1e6,
                        allow_nan=False), st.booleans()),
    min_size=1, max_size=20),
    victim=st.integers(min_value=0, max_value=100))
@settings(max_examples=60, deadline=None)
def test_audit_tampering_any_record_detected(entries, victim):
    import dataclasses

    log = AuditLog()
    for time, allowed in entries:
        log.append(time, "p", "a", "l", allowed)
    index = victim % len(log.records)
    record = log.records[index]
    log.records[index] = dataclasses.replace(
        record, allowed=not record.allowed)
    assert not log.verify_chain()


# -- rewiring plans -----------------------------------------------------------------

@given(seed=st.integers(min_value=0, max_value=400),
       keep=st.integers(min_value=0, max_value=4),
       extra=st.integers(min_value=0, max_value=3))
@settings(max_examples=40, deadline=None)
def test_rewire_plan_never_exceeds_port_budget(seed, keep, extra):
    """Replaying any plan step-by-step keeps every node's used ports
    within its radix."""
    from tests.conftest import make_world

    world = make_world(links=4, seed=seed % 50)
    fabric = world.fabric
    from dcrobot.network import SwitchRole

    third = fabric.add_switch(SwitchRole.TOR, radix=4,
                              rack_id=fabric.layout.rack_at(0, 1).id)
    a, b = world.switch_a.id, world.switch_b.id
    target = [(a, b)] * keep + [(a, third.id)] * min(extra, 3)
    plan = plan_rewiring(fabric, target)

    used = {node_id: len(fabric.node(node_id).ports)
            - len(fabric.node(node_id).free_ports())
            for node_id in (a, b, third.id)}
    radix = {node_id: len(fabric.node(node_id).ports)
             for node_id in (a, b, third.id)}
    for step in plan.steps:
        endpoint_a, endpoint_b = step.endpoints
        delta = 1 if step.kind is StepKind.ADD else -1
        for node_id in (endpoint_a, endpoint_b):
            used[node_id] += delta
            assert 0 <= used[node_id] <= radix[node_id]
    # Feasible plans hit the target counts exactly.
    if not plan.infeasible:
        from collections import Counter

        final = Counter()
        for link in fabric.links.values():
            final[tuple(sorted(link.endpoint_ids))] += 1
        for step in plan.steps:
            pair = tuple(sorted(step.endpoints))
            final[pair] += 1 if step.kind is StepKind.ADD else -1
        expected = Counter(tuple(sorted(pair)) for pair in target)
        assert {k: v for k, v in final.items() if v} == \
            {k: v for k, v in expected.items() if v}


# -- erlang C ---------------------------------------------------------------------------

@given(servers=st.integers(min_value=1, max_value=32),
       load=st.floats(min_value=0.0, max_value=40.0,
                      allow_nan=False))
@settings(max_examples=80, deadline=None)
def test_erlang_c_is_a_probability(servers, load):
    value = erlang_c(servers, load)
    assert 0.0 <= value <= 1.0


@given(load=st.floats(min_value=0.1, max_value=10.0,
                      allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_erlang_c_decreasing_in_servers(load):
    values = [erlang_c(servers, load)
              for servers in range(max(1, int(load) + 1),
                                   int(load) + 8)]
    for earlier, later in zip(values, values[1:]):
        assert later <= earlier + 1e-12


# -- sparkline ----------------------------------------------------------------------------

@given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6,
                                 allow_nan=False),
                       min_size=1, max_size=300),
       width=st.integers(min_value=1, max_value=100))
@settings(max_examples=60, deadline=None)
def test_sparkline_width_bound(values, width):
    strip = sparkline(values, width=width)
    assert 1 <= len(strip) <= width
    assert set(strip) <= set(" ._-=+*#")
