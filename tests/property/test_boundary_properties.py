"""Property tests for BoundaryShard accounting (S20).

The boundary shard is the only place campus bytes can silently leak:
every offered byte must end up either delivered over a live cross-hall
link or counted as lost, under *any* interleaving of traffic offers
with drain/undrain/fail/repair operations.  The suite drives arbitrary
op sequences against both the shard and an independent flat-accounting
oracle (which knows nothing about link fan-out or spreading) and holds:

* bytes conserve: offered == delivered + lost, to 1e-12 relative;
* flows conserve *exactly* — they are integers end to end;
* per-hall attribution re-sums to delivered bytes (each link half to
  each endpoint hall), so campus-level accounting never double-counts;
* the shard's delivered/lost split agrees with the oracle.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from dcrobot.shard import BoundaryConfig, BoundaryShard, boundary_pairs

REL = 1e-12

# An op sequence over a campus boundary: traffic offers interleaved
# with administrative drains and fault fail/repairs.  Pair and link
# indices are drawn wide and wrapped onto the actual topology.
ops = st.lists(
    st.tuples(
        st.sampled_from(["offer", "drain", "undrain", "fail",
                         "repair"]),
        st.integers(min_value=0, max_value=11),     # pair index
        st.integers(min_value=0, max_value=3),      # link-in-fan index
        st.floats(min_value=0.0, max_value=1e12,
                  allow_nan=False, allow_infinity=False),
        st.integers(min_value=0, max_value=500),    # flows
    ),
    min_size=1, max_size=60)


class FlatOracle:
    """Independent accounting: tracks only per-link up/down bits and
    whole-fan totals — no spreading, no shard internals."""

    def __init__(self, halls, links_per_pair):
        self.down = set()
        self.fans = {pair: [f"xh:{pair[0]}-{pair[1]}:{i}"
                            for i in range(links_per_pair)]
                     for pair in boundary_pairs(halls)}
        self.offered = self.delivered = self.lost = 0.0
        self.offered_flows = self.delivered_flows = 0
        self.lost_flows = 0

    def offer(self, pair, bytes_, flows):
        self.offered += bytes_
        self.offered_flows += flows
        if any(lid not in self.down for lid in self.fans[pair]):
            self.delivered += bytes_
            self.delivered_flows += flows
        else:
            self.lost += bytes_
            self.lost_flows += flows


def apply_ops(shard, oracle, sequence, links_per_pair):
    pairs = sorted(shard.pairs)
    for kind, pair_index, link_index, bytes_, flows in sequence:
        pair = pairs[pair_index % len(pairs)]
        lid = f"xh:{pair[0]}-{pair[1]}:{link_index % links_per_pair}"
        if kind == "offer":
            shard.offer(pair[0], pair[1], bytes_, flows)
            oracle.offer(pair, bytes_, flows)
        elif kind == "drain":
            shard.drain(lid)
            oracle.down.add(lid)
        elif kind == "undrain":
            shard.undrain(lid)
            if not shard.link(lid).failed:
                oracle.down.discard(lid)
        elif kind == "fail":
            shard.fail(lid)
            oracle.down.add(lid)
        else:
            shard.repair(lid)
            if not shard.link(lid).drained:
                oracle.down.discard(lid)


def close(actual, expected):
    return math.isclose(actual, expected, rel_tol=REL,
                        abs_tol=1e-6)


@settings(max_examples=120, deadline=None)
@given(halls=st.integers(min_value=2, max_value=4),
       links_per_pair=st.integers(min_value=1, max_value=3),
       sequence=ops)
def test_bytes_and_flows_conserve(halls, links_per_pair, sequence):
    shard = BoundaryShard(
        halls, BoundaryConfig(links_per_pair=links_per_pair))
    oracle = FlatOracle(halls, links_per_pair)
    apply_ops(shard, oracle, sequence, links_per_pair)

    # Conservation against the shard's own books.
    assert close(shard.delivered_bytes + shard.lost_bytes,
                 shard.offered_bytes)
    assert shard.conservation_error() <= REL * max(
        shard.offered_bytes, 1.0)
    assert shard.delivered_flows + shard.lost_flows \
        == shard.offered_flows

    # ... and the whole ledger matches the flat oracle.
    assert close(shard.offered_bytes, oracle.offered)
    assert close(shard.delivered_bytes, oracle.delivered)
    assert close(shard.lost_bytes, oracle.lost)
    assert shard.offered_flows == oracle.offered_flows
    assert shard.delivered_flows == oracle.delivered_flows
    assert shard.lost_flows == oracle.lost_flows


@settings(max_examples=120, deadline=None)
@given(halls=st.integers(min_value=2, max_value=4),
       links_per_pair=st.integers(min_value=1, max_value=3),
       sequence=ops)
def test_hall_attribution_sums_to_delivered(halls, links_per_pair,
                                            sequence):
    shard = BoundaryShard(
        halls, BoundaryConfig(links_per_pair=links_per_pair))
    apply_ops(shard, FlatOracle(halls, links_per_pair), sequence,
              links_per_pair)
    attributed = sum(shard.hall_attributed_bytes(hall)
                    for hall in range(halls))
    assert close(attributed, shard.delivered_bytes)
    assert all(shard.hall_attributed_bytes(hall) >= 0.0
               for hall in range(halls))


@settings(max_examples=60, deadline=None)
@given(halls=st.integers(min_value=2, max_value=4),
       links_per_pair=st.integers(min_value=1, max_value=3),
       sequence=ops)
def test_live_fraction_bounded_and_repairable(halls, links_per_pair,
                                              sequence):
    shard = BoundaryShard(
        halls, BoundaryConfig(links_per_pair=links_per_pair))
    apply_ops(shard, FlatOracle(halls, links_per_pair), sequence,
              links_per_pair)
    assert 0.0 <= shard.live_fraction() <= 1.0
    assert shard.smi_factor() == shard.live_fraction()
    # Repair + undrain everything: the boundary always heals to 1.0.
    for lid in shard.links:
        shard.repair(lid)
        shard.undrain(lid)
    assert shard.live_fraction() == 1.0
