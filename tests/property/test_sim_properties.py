"""Property-based tests (hypothesis) for the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from dcrobot.sim import Container, Simulation, Store


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False),
                       min_size=1, max_size=50))
@settings(max_examples=60, deadline=None)
def test_events_fire_in_nondecreasing_time_order(delays):
    sim = Simulation()
    fired = []
    for delay in delays:
        sim.timeout(delay).callbacks.append(
            lambda _event: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@given(delays=st.lists(st.floats(min_value=0.001, max_value=1e4,
                                 allow_nan=False),
                       min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_sequential_process_time_is_sum_of_waits(delays):
    sim = Simulation()

    def worker(sim):
        for delay in delays:
            yield sim.timeout(delay)

    process = sim.process(worker(sim))
    sim.run(until=process)
    assert abs(sim.now - sum(delays)) < 1e-6 * max(1.0, sum(delays))


@given(st.data())
@settings(max_examples=50, deadline=None)
def test_store_preserves_item_multiset(data):
    items = data.draw(st.lists(st.integers(), min_size=0, max_size=30))
    sim = Simulation()
    store = Store(sim)
    received = []

    def producer(sim, store):
        for item in items:
            yield store.put(item)
            yield sim.timeout(1.0)

    def consumer(sim, store):
        for _ in items:
            value = yield store.get()
            received.append(value)

    sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run()
    assert received == items  # FIFO preserves order, hence multiset


@given(operations=st.lists(
    st.tuples(st.sampled_from(["put", "get"]),
              st.floats(min_value=0.1, max_value=10.0)),
    min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_container_level_always_within_bounds(operations):
    sim = Simulation()
    capacity = 25.0
    tank = Container(sim, capacity=capacity, init=10.0)
    levels = []

    def actor(sim, tank):
        for kind, amount in operations:
            event = tank.put(amount) if kind == "put" \
                else tank.get(amount)
            yield sim.any_of([event, sim.timeout(1.0)])
            levels.append(tank.level)

    sim.process(actor(sim, tank))
    sim.run()
    for level in levels:
        assert -1e-9 <= level <= capacity + 1e-9


@given(count=st.integers(min_value=1, max_value=40))
@settings(max_examples=30, deadline=None)
def test_all_of_waits_for_slowest(count):
    sim = Simulation()
    timeouts = [sim.timeout(float(index + 1)) for index in range(count)]
    condition = sim.all_of(timeouts)
    sim.run(until=condition)
    assert sim.now == float(count)
    assert len(condition.value) == count
