"""Property-based tests (hypothesis) for the chaos-hardening layer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from dcrobot.chaos import ChaosConfig
from dcrobot.core import ControllerConfig, ResilienceConfig, RetryPolicy
from dcrobot.core.automation import AutomationLevel
from dcrobot.experiments.runner import (
    DAY,
    WorldConfig,
    run_world,
    summarize_world,
)

from tests.conftest import make_world
from tests.core.test_controller_resilience import (
    break_and_report,
    build,
    fast_resilience,
)

retry_policies = st.builds(
    RetryPolicy,
    max_retries=st.integers(min_value=0, max_value=8),
    base_delay_seconds=st.floats(min_value=0.0, max_value=3600.0,
                                 allow_nan=False),
    multiplier=st.floats(min_value=1.0, max_value=4.0,
                         allow_nan=False),
    max_delay_seconds=st.floats(min_value=3600.0, max_value=86400.0,
                                allow_nan=False),
    jitter_fraction=st.floats(min_value=0.0, max_value=0.99,
                              allow_nan=False))


@given(policy=retry_policies)
@settings(max_examples=80, deadline=None)
def test_backoff_schedule_is_monotone_and_capped(policy):
    schedule = policy.schedule()
    assert len(schedule) == policy.max_retries
    assert all(later >= earlier for earlier, later
               in zip(schedule, schedule[1:]))
    assert all(delay <= policy.max_delay_seconds for delay in schedule)
    assert all(delay >= 0.0 for delay in schedule)


@given(policy=retry_policies,
       seed=st.integers(min_value=0, max_value=2 ** 32 - 1),
       retry_index=st.integers(min_value=0, max_value=12))
@settings(max_examples=80, deadline=None)
def test_jittered_backoff_stays_in_bounds_for_any_seed(
        policy, seed, retry_index):
    rng = np.random.default_rng(seed)
    low, high = policy.jitter_bounds(retry_index)
    for _ in range(5):
        delay = policy.jittered_backoff(retry_index, rng)
        assert low <= delay <= high


@given(max_retries=st.integers(min_value=0, max_value=3),
       seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=10, deadline=None)
def test_dispatches_never_exceed_the_retry_budget(max_retries, seed):
    """However acks are lost, one incident dispatches <= 1 + budget."""
    world = make_world(seed=seed % 100 + 1)
    resilience = fast_resilience(
        retry=RetryPolicy(max_retries=max_retries,
                          base_delay_seconds=60.0,
                          jitter_fraction=0.25))
    _monitor, humans, _fleet, controller = build(
        world, resilience, humans_script=("lost",))
    break_and_report(world, controller, world.links[0])
    world.sim.run(until=30 * 86400.0)
    assert len(humans.submitted) <= 1 + max_retries
    assert controller.active_orders == {}  # every claim released


@given(chaos_scale=st.floats(min_value=0.0, max_value=4.0,
                             allow_nan=False),
       seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=4, deadline=None)
def test_safety_invariants_hold_under_randomized_fault_schedules(
        chaos_scale, seed):
    """No fault schedule may break the control-plane invariants."""
    config = WorldConfig(
        horizon_days=4.0, seed=seed, failure_scale=3.0,
        level=AutomationLevel.L3_HIGH_AUTOMATION,
        chaos=(ChaosConfig.moderate().scaled(chaos_scale)
               if chaos_scale > 0 else None),
        safety=True, stuck_after_seconds=5.0 * DAY,
        mute_ttl_seconds=2.0 * DAY,
        controller_config=ControllerConfig(
            resilience=ResilienceConfig()))
    summary = summarize_world(run_world(config))
    assert summary.invariant_violations == 0
    assert summary.stuck_orders == 0
