"""Property tests for digital-twin forking: isolation, O(1) cost,
and fork-vs-independent-world bit-identity.

The contracts proven here are what makes :class:`TwinPlanner` safe to
run against production state:

* no interleaving of parent and twin mutations ever leaks a write
  across the fork, in either direction;
* a fork is O(1) in bytes — every column is shared until first write,
  and a write splits exactly the touched column;
* a forked twin rolled N windows is bit-identical to an independently
  built copy of the same world rolled with the same RNG substream
  (the fork is a *perfect* snapshot, not an approximation).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from dcrobot.network.enums import LinkState
from dcrobot.network.state import _COW_ATTRS
from dcrobot.network.switchgear import SwitchRole
from dcrobot.sim.rng import RandomStreams
from dcrobot.topology import build_fattree
from dcrobot.traffic.state import TrafficState
from dcrobot.twin import TwinWorld

STATES = [LinkState.UP, LinkState.DOWN, LinkState.FLAPPING,
          LinkState.MAINTENANCE]


def make_world(seed, traffic=True):
    topology = build_fattree(k=4, rng=np.random.default_rng(seed))
    endpoints = topology.switches(SwitchRole.TOR)
    state = (TrafficState(topology.fabric, endpoints,
                          rng=np.random.default_rng(seed + 1),
                          max_equal_paths=4)
             if traffic else None)
    return topology, state


def snapshot(fs):
    return {name: np.array(getattr(fs, name), subok=False)
            for name in _COW_ATTRS}


def assert_same(reference, fs):
    for name, expected in reference.items():
        actual = np.asarray(getattr(fs, name))
        assert np.array_equal(actual, expected, equal_nan=True), name


# An op is (side, kind, link_index, value): applied to the parent via
# the live object API, or to the twin via the column vocabulary.
ops = st.lists(
    st.tuples(st.sampled_from(["parent", "twin"]),
              st.sampled_from(["state", "loss", "maint", "repair"]),
              st.integers(min_value=0, max_value=47),
              st.integers(min_value=0, max_value=3)),
    min_size=1, max_size=24)


def apply_parent(topology, kind, link, value, clock):
    if kind == "state":
        link.set_state(clock, STATES[value])
    elif kind == "loss":
        topology.fabric.state.loss_rate[link._row] = value / 4.0
    elif kind == "maint":
        link.set_state(clock, LinkState.MAINTENANCE)
    else:  # repair
        topology.fabric.state.loss_rate[link._row] = 0.0
        link.set_state(clock, LinkState.UP)


def apply_twin(twin, kind, link_id, value, clock):
    if kind == "state":
        twin.set_link_state(link_id, STATES[value], now=clock)
    elif kind == "loss":
        twin.set_loss_rate(link_id, value / 4.0)
    elif kind == "maint":
        twin.begin_maintenance(link_id, now=clock)
    else:
        twin.repair_link(link_id, now=clock)


@given(seed=st.integers(min_value=0, max_value=50), sequence=ops)
@settings(max_examples=30, deadline=None)
def test_interleaved_mutations_never_leak(seed, sequence):
    """Parent after an interleaved run == parent that never forked."""
    topology, traffic = make_world(seed)
    control_topology, _ = make_world(seed)
    link_ids = list(topology.fabric.links)
    control_links = list(control_topology.fabric.links.values())
    live_links = list(topology.fabric.links.values())

    with TwinWorld.fork(topology.fabric, traffic) as twin:
        twin_ops = []
        for step, (side, kind, index, value) in enumerate(sequence):
            clock = float(step + 1)
            index %= len(link_ids)
            if side == "parent":
                apply_parent(topology, kind, live_links[index],
                             value, clock)
                apply_parent(control_topology, kind,
                             control_links[index], value, clock)
            else:
                apply_twin(twin, kind, link_ids[index], value, clock)
                twin_ops.append((kind, link_ids[index], value, clock))
        # parent state is exactly the never-forked control's state
        assert_same(snapshot(control_topology.fabric.state),
                    topology.fabric.state)
        # and the twin is exactly fork-time state + its own ops
        replay_topology, replay_traffic = make_world(seed)
        with TwinWorld.fork(replay_topology.fabric,
                            replay_traffic) as replay:
            for kind, link_id, value, clock in twin_ops:
                apply_twin(replay, kind, link_id, value, clock)
            assert_same(snapshot(replay.state), twin.state)


@given(seed=st.integers(min_value=0, max_value=50),
       index=st.integers(min_value=0, max_value=47))
@settings(max_examples=25, deadline=None)
def test_fork_is_o1_until_first_write(seed, index):
    """Every column is shared at fork; one write splits exactly one."""
    topology, _ = make_world(seed, traffic=False)
    fs = topology.fabric.state
    link_ids = list(topology.fabric.links)
    link_id = link_ids[index % len(link_ids)]
    with TwinWorld.fork(topology.fabric) as twin:
        shared = [name for name in _COW_ATTRS
                  if getattr(fs, name).size
                  and np.shares_memory(getattr(fs, name),
                                       getattr(twin.state, name))]
        nonempty = [name for name in _COW_ATTRS
                    if getattr(fs, name).size]
        assert shared == nonempty  # O(1): zero bytes copied
        twin.set_loss_rate(link_id, 0.9)
        for name in nonempty:
            expect_shared = name != "loss_rate"
            assert np.shares_memory(
                getattr(fs, name),
                getattr(twin.state, name)) == expect_shared, name


@given(seed=st.integers(min_value=0, max_value=30),
       windows=st.integers(min_value=1, max_value=3),
       maintenance_index=st.integers(min_value=0, max_value=47))
@settings(max_examples=10, deadline=None)
def test_twin_rollout_bit_identical_to_independent_world(
        seed, windows, maintenance_index):
    """Fork + roll == independently built same world + same substream.

    The independent world is wrapped (no fork) so both runs go through
    one code path; only the snapshot mechanism differs.
    """
    topology_a, traffic_a = make_world(seed)
    topology_b, traffic_b = make_world(seed)
    link_ids = list(topology_a.fabric.links)
    target = link_ids[maintenance_index % len(link_ids)]

    def script(world):
        world.roll(windows)
        world.begin_maintenance(target, now=world.now)
        world.roll(1)
        world.repair_link(target, now=world.now)
        results = world.roll(1)
        return results[-1]

    with TwinWorld.fork(topology_a.fabric, traffic_a,
                        rng=RandomStreams(seed).stream("twin"),
                        window_seconds=60.0, sample_seconds=1.0,
                        flows_per_window=300) as forked:
        fork_last = script(forked)
        fork_stats = [(w.p99_fct, w.offered_bytes,
                       w.congestion_lost_bytes, w.maintenance_active)
                      for w in forked.windows]
    wrapped = TwinWorld.wrap(topology_b.fabric, traffic_b,
                             rng=RandomStreams(seed).stream("twin"),
                             window_seconds=60.0, sample_seconds=1.0,
                             flows_per_window=300)
    wrap_last = script(wrapped)
    wrap_stats = [(w.p99_fct, w.offered_bytes,
                   w.congestion_lost_bytes, w.maintenance_active)
                  for w in wrapped.windows]

    assert np.array_equal(fork_last.fct, wrap_last.fct,
                          equal_nan=True)
    assert np.array_equal(fork_last.offered, wrap_last.offered)
    assert np.array_equal(fork_last.congestion, wrap_last.congestion)
    for fork_window, wrap_window in zip(fork_stats, wrap_stats):
        assert fork_window == wrap_window  # ==, not approx: bitwise
