"""Property-based tests for domain invariants: physics, ladders,
topologies, metrics, ML."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from dcrobot.core import EscalationLadder, RepairAction
from dcrobot.metrics import Table, format_duration
from dcrobot.ml import LogisticRegression, roc_auc
from dcrobot.network import EndFace, LinkState
from dcrobot.topology.xpander import xpander_edges
from dcrobot.traffic import percentile


# -- end-face physics -----------------------------------------------------

@given(cores=st.integers(min_value=1, max_value=16),
       amount=st.floats(min_value=0.0, max_value=2.0,
                        allow_nan=False),
       seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=80, deadline=None)
def test_contamination_always_in_unit_interval(cores, amount, seed):
    face = EndFace(core_count=cores)
    face.add_contamination(amount)
    assert 0.0 <= face.worst_contamination <= 1.0
    face.clean(np.random.default_rng(seed))
    assert 0.0 <= face.worst_contamination <= 1.0


@given(cores=st.integers(min_value=1, max_value=16),
       amount=st.floats(min_value=0.0, max_value=1.0,
                        allow_nan=False),
       seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=80, deadline=None)
def test_cleaning_never_creates_dirt(cores, amount, seed):
    face = EndFace(core_count=cores)
    face.add_contamination(amount)
    before = face.contamination.sum()
    face.clean(np.random.default_rng(seed))
    assert face.contamination.sum() <= before + 1e-9


@given(cores=st.integers(min_value=1, max_value=16),
       rounds=st.integers(min_value=4, max_value=8),
       seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=40, deadline=None)
def test_enough_cleaning_rounds_always_pass_inspection(cores, rounds,
                                                       seed):
    rng = np.random.default_rng(seed)
    face = EndFace(core_count=cores)
    face.add_contamination(1.0)
    for _round in range(rounds):
        if face.passes_inspection():
            break
        face.clean(rng, wet=True, smear_probability=0.0)
    assert face.passes_inspection()


# -- link state timeline -----------------------------------------------------

@given(st.lists(st.tuples(
    st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
    st.sampled_from([LinkState.UP, LinkState.DOWN,
                     LinkState.MAINTENANCE])),
    min_size=0, max_size=30))
@settings(max_examples=80, deadline=None)
def test_uptime_fraction_always_in_unit_interval(transitions):
    from tests.conftest import make_world

    world = make_world(links=1)
    link = world.links[0]
    now = 0.0
    for delta, state in transitions:
        now += delta
        link.set_state(now, state)
    fraction = link.uptime_fraction(0.0, now + 1.0)
    assert 0.0 <= fraction <= 1.0
    # Flap counting never exceeds the number of recorded transitions.
    assert link.transitions_in_window(0.0, now + 1.0) \
        <= len(link.history)


# -- escalation ladder -----------------------------------------------------------

@given(history_ranks=st.lists(st.integers(min_value=0, max_value=4),
                              min_size=0, max_size=10),
       now=st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
@settings(max_examples=80, deadline=None)
def test_ladder_always_returns_applicable_action(history_ranks, now):
    from tests.conftest import make_world

    world = make_world(links=1)
    link = world.links[0]
    ladder = EscalationLadder()
    actions = list(RepairAction)
    history = [(min(now, float(index)), actions[rank])
               for index, rank in enumerate(history_ranks)]
    action = ladder.next_action(link, history, now)
    assert ladder.applicable(action, link)
    assert action in RepairAction


# -- xpander construction -----------------------------------------------------------

@given(degree=st.integers(min_value=2, max_value=8),
       lift=st.integers(min_value=1, max_value=8),
       seed=st.integers(min_value=0, max_value=500))
@settings(max_examples=40, deadline=None)
def test_xpander_always_simple_and_regular(degree, lift, seed):
    node_count, edges = xpander_edges(degree, lift,
                                      np.random.default_rng(seed))
    assert node_count == (degree + 1) * lift
    degree_count = {}
    seen = set()
    for a, b in edges:
        assert a != b
        key = (min(a, b), max(a, b))
        assert key not in seen
        seen.add(key)
        degree_count[a] = degree_count.get(a, 0) + 1
        degree_count[b] = degree_count.get(b, 0) + 1
    assert all(degree_count.get(node, 0) == degree
               for node in range(node_count))


# -- metrics ----------------------------------------------------------------------------

@given(samples=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                  allow_nan=False),
                        min_size=1, max_size=100),
       q_low=st.floats(min_value=0.0, max_value=100.0),
       q_high=st.floats(min_value=0.0, max_value=100.0))
@settings(max_examples=80, deadline=None)
def test_percentile_monotone_in_q(samples, q_low, q_high):
    assume(q_low <= q_high)
    assert percentile(samples, q_low) <= percentile(samples, q_high)
    assert min(samples) <= percentile(samples, 50.0) <= max(samples)


@given(seconds=st.floats(min_value=0.0, max_value=1e8,
                         allow_nan=False))
@settings(max_examples=80, deadline=None)
def test_format_duration_total(seconds):
    text = format_duration(seconds)
    assert text[-1] in "smhd"
    float(text[:-1])  # parses back


@given(rows=st.lists(st.tuples(st.text(max_size=10),
                               st.floats(allow_nan=False,
                                         min_value=-1e6,
                                         max_value=1e6)),
                     min_size=0, max_size=20))
@settings(max_examples=40, deadline=None)
def test_table_renders_every_row(rows):
    table = Table(["name", "value"])
    for name, value in rows:
        table.add_row(name, value)
    rendered = table.render()
    assert len(rendered.splitlines()) == 2 + len(rows)


# -- ML -----------------------------------------------------------------------------------

@given(seed=st.integers(min_value=0, max_value=1000),
       count=st.integers(min_value=10, max_value=80),
       dims=st.integers(min_value=1, max_value=6))
@settings(max_examples=30, deadline=None)
def test_logreg_probabilities_always_valid(seed, count, dims):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(count, dims))
    labels = rng.integers(0, 2, size=count)
    assume(labels.min() == 0 and labels.max() == 1)
    model = LogisticRegression(epochs=50).fit(features, labels)
    probabilities = model.predict_proba(features)
    assert np.all(probabilities >= 0.0)
    assert np.all(probabilities <= 1.0)
    assert np.isfinite(probabilities).all()


@given(seed=st.integers(min_value=0, max_value=1000),
       count=st.integers(min_value=4, max_value=60))
@settings(max_examples=40, deadline=None)
def test_roc_auc_complement_symmetry(seed, count):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, size=count)
    scores = rng.random(count)
    assume(0 < labels.sum() < count)
    auc = roc_auc(labels, scores)
    flipped = roc_auc(labels, -scores)
    assert 0.0 <= auc <= 1.0
    assert auc + flipped == pytest.approx(1.0, abs=1e-9)
