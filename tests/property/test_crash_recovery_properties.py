"""Property-based tests: kill the controller at an arbitrary step.

The crash-anywhere hypothesis: for any crash time, a journal-backed
recovery produces zero safety-invariant violations, zero
double-dispatched repairs, and the same incident conclusions as the
run that was never crashed.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from dcrobot.chaos import SafetyMonitor
from dcrobot.core.journal import WriteAheadJournal

from tests.conftest import make_world
from tests.core.test_supervisor_failover import (
    _at,
    break_link,
    build_recoverable,
)

#: Four hours: three staggered incidents resolve with wide slack even
#: after a standby takeover's full lease-expiry dead window.
HORIZON = 14400.0
BREAK_TIMES = (200.0, 900.0, 1600.0)


def _symptom(incident):
    return str(getattr(incident.symptom, "value", incident.symptom))


def _campaign(crash_at=None, leadership=False, fail_stop=False):
    """One stub-world fault campaign, optionally crashed at ``crash_at``.

    ``fail_stop`` kills the primary outright (the lease watchdog must
    promote a standby); otherwise the crash is an in-place restart.
    """
    world = make_world(links=4, seed=17)
    _m, humans, supervisor = build_recoverable(
        world, journal=WriteAheadJournal(), leadership=leadership)
    safety = SafetyMonitor(world.sim, supervisor.controller,
                           executors=[humans])
    safety.attach()
    supervisor.safety = safety
    for when, link in zip(BREAK_TIMES, world.links):
        world.sim.process(_at(world.sim, when,
                              lambda link=link: break_link(world, link)))
    if crash_at is not None:
        kill = (supervisor.crash_primary if fail_stop
                else supervisor.restart_primary)
        world.sim.process(_at(world.sim, crash_at,
                              lambda: kill("property crash")))
    world.sim.run(until=HORIZON)
    controller = supervisor.controller
    conclusions = sorted(
        (incident.link_id, incident.resolved,
         incident.unresolvable_reason, _symptom(incident))
        for incident in (controller.closed_incidents
                         + controller.unresolved_incidents))
    submits = Counter(order.link_id for order in humans.submitted)
    return safety.report(), submits, conclusions, supervisor, humans


#: The uncrashed references, computed once per leadership flavour.
_BASELINE = {}


def _baseline(leadership=False):
    if leadership not in _BASELINE:
        _BASELINE[leadership] = _campaign(leadership=leadership)
    return _BASELINE[leadership]


def test_the_uncrashed_reference_is_clean():
    report, submits, conclusions, _, _ = _baseline()
    assert report.clean
    assert sum(submits.values()) == len(BREAK_TIMES)
    assert len(conclusions) == len(BREAK_TIMES)
    assert all(resolved for _, resolved, _, _ in conclusions)


@given(crash_at=st.floats(min_value=600.0,
                          max_value=HORIZON - 3600.0,
                          allow_nan=False))
@settings(max_examples=12, deadline=None)
def test_restart_anywhere_is_invisible_in_the_conclusions(crash_at):
    _, ref_submits, ref_conclusions, _, _ = _baseline()
    report, submits, conclusions, supervisor, _h = _campaign(
        crash_at=crash_at)
    assert report.total_violations == 0
    assert submits == ref_submits  # zero double-dispatched repairs
    assert conclusions == ref_conclusions
    assert supervisor.crashes == 1
    assert supervisor.recoveries == 1


@given(crash_at=st.floats(min_value=600.0,
                          max_value=HORIZON - 3600.0,
                          allow_nan=False))
@settings(max_examples=8, deadline=None)
def test_standby_takeover_anywhere_preserves_every_repair(crash_at):
    _, ref_submits, ref_conclusions, _, _ = _baseline(leadership=True)
    report, submits, conclusions, supervisor, humans = _campaign(
        crash_at=crash_at, leadership=True, fail_stop=True)
    assert report.total_violations == 0
    assert submits == ref_submits
    assert conclusions == ref_conclusions
    assert supervisor.failovers == 1
    # Fencing verified: the fail-stop primary never dispatched after
    # deposal, and every physical order carried the successor's
    # strictly newer token.
    assert humans.rejected_orders == []
    assert supervisor.controller.fencing_token == 2
    assert humans.fence.highest_seen == 2


def test_split_brain_partition_never_double_repairs():
    """The zombie variant: a partitioned primary keeps dispatching and
    must be stopped by the fence, not by luck."""
    world = make_world(links=4, seed=17)
    _m, humans, supervisor = build_recoverable(
        world, journal=WriteAheadJournal(), leadership=True)
    safety = SafetyMonitor(world.sim, supervisor.controller,
                           executors=[humans])
    safety.attach()
    supervisor.safety = safety
    world.sim.process(_at(world.sim, 1000.0,
                          lambda: supervisor.partition_primary(7200.0)))
    world.sim.process(_at(
        world.sim, 2400.0,
        lambda: break_link(world, world.links[0])))
    world.sim.run(until=HORIZON)

    assert safety.report().total_violations == 0
    assert Counter(order.link_id for order in humans.submitted) \
        == {world.links[0].id: 1}
    assert len(humans.rejected_orders) == 1
