"""Property-based tests (hypothesis) for fleet self-healing.

Two invariants must survive arbitrary robot-failure schedules:

* orphaned-order re-dispatch is idempotent — however conclusions and
  re-dispatches interleave, an order's ``done`` event fires at most
  once, and
* the per-order fencing guard refuses every stale-epoch (zombie)
  conclusion — the ``zombie_acks_accepted`` tripwire stays zero.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from dcrobot.chaos import ChaosConfig
from dcrobot.core.actions import Priority, RepairAction, RepairOutcome, WorkOrder
from dcrobot.core.automation import AutomationLevel
from dcrobot.core.leadership import FencingGuard
from dcrobot.experiments.runner import (
    DAY,
    WorldConfig,
    run_world,
    summarize_world,
)
from dcrobot.robots import RobotFleet
from dcrobot.robots.fleet import Assignment, FleetConfig
from dcrobot.robots.health import RobotHealthModel, RobotHealthParams
from dcrobot.telemetry.monitor import TelemetryMonitor

from tests.conftest import make_world


def _healing_fleet(world):
    fleet = RobotFleet(world.sim, world.fabric, world.health,
                       world.physics,
                       config=FleetConfig(manipulators=2, cleaners=0),
                       rng=np.random.default_rng(5))
    fleet.attach_health(
        RobotHealthModel(RobotHealthParams(),
                         rng=np.random.default_rng(23)),
        monitor=TelemetryMonitor(world.fabric))
    return fleet


def _outcome(fleet, order, completed):
    return RepairOutcome(order=order, executor_id=fleet.executor_id,
                         started_at=0.0, finished_at=fleet.sim.now,
                         completed=completed)


# Each step is either a watchdog re-dispatch (epoch advances) or a
# conclusion attempt arriving `lag` epochs late (lag 0 = the current
# owner; lag >= 1 = a zombie reporting from a fenced-out epoch).
steps = st.lists(
    st.one_of(
        st.just("redispatch"),
        st.tuples(st.just("finish"),
                  st.integers(min_value=0, max_value=3))),
    min_size=1, max_size=24)


@given(steps=steps)
@settings(max_examples=200, deadline=None)
def test_done_fires_at_most_once_under_any_interleaving(steps):
    """Crash-anywhere at the bookkeeping level: any interleaving of
    re-dispatches and (possibly stale) conclusions fires ``done`` at
    most once and never trips the fencing tripwire."""
    world = make_world()
    fleet = _healing_fleet(world)
    order = WorkOrder(link_id=world.links[0].id,
                      action=RepairAction.RESEAT, created_at=0.0,
                      priority=Priority.HIGH)
    done = world.sim.event()
    assignment = Assignment(order=order, done=done,
                            guard=FencingGuard(), epoch=1)
    fleet.assignments[order.order_id] = assignment
    fleet.pending_acks[order.order_id] = done

    accepted = 0
    for step in steps:
        if step == "redispatch":
            if not done.triggered:
                # The watchdog's fencing handshake: advance the epoch
                # before anyone executes under it.
                assignment.epoch += 1
                assignment.redispatches += 1
                assignment.guard.advance(assignment.epoch)
            continue
        _tag, lag = step
        epoch = max(1, assignment.epoch - lag)
        stale = epoch < assignment.epoch
        ok = fleet._finish(order, done, _outcome(fleet, order, True),
                           epoch)
        accepted += int(ok)
        if ok:
            assert not stale  # only the current epoch may conclude
    assert accepted <= 1
    assert done.triggered == (accepted == 1)
    assert fleet.zombie_acks_accepted == 0
    assert len([outcome for outcome in fleet.outcomes
                if outcome.order.order_id == order.order_id]) \
        == accepted
    # Re-dispatching a concluded order is a no-op (idempotency).
    if done.triggered:
        epoch_before = assignment.epoch
        count_before = fleet.redispatch_count
        fleet._redispatch(assignment)
        assert assignment.epoch == epoch_before
        assert fleet.redispatch_count == count_before


@given(die=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
       zombie=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
       lie=st.floats(min_value=0.0, max_value=0.3, allow_nan=False),
       seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=4, deadline=None)
def test_fencing_never_admits_a_zombie_in_whole_worlds(
        die, zombie, lie, seed):
    """Crash-anywhere at world scale: whatever mix of robot deaths,
    zombies, and battery lies strikes a self-healing world, no late
    completion is ever accepted and the safety invariants hold."""
    chaos = ChaosConfig(
        robot_die_prob=die, robot_zombie_prob=zombie,
        battery_lie_prob=lie, robot_stall_prob=0.1,
        robot_stall_seconds=(120.0, 600.0))
    config = WorldConfig(
        horizon_days=6.0, seed=seed, failure_scale=3.0,
        level=AutomationLevel.L3_HIGH_AUTOMATION,
        chaos=chaos if chaos.any_enabled else None,
        robot_health=RobotHealthParams(self_healing=True),
        fleet_config=FleetConfig(manipulators=3, cleaners=1),
        safety=True, stuck_after_seconds=5.0 * DAY,
        mute_ttl_seconds=2.0 * DAY)
    summary = summarize_world(run_world(config))
    assert summary.robot_zombie_accepted == 0
    assert summary.invariant_violations == 0
    # Self-healing: every loss that was detected got a response — any
    # re-dispatch implies a heartbeat loss was noticed first.
    if summary.robot_redispatches:
        assert summary.robot_heartbeat_losses > 0
