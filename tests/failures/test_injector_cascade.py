"""Unit tests for fault injection and cascading touch side-effects."""

import numpy as np
import pytest

from dcrobot.failures import (
    HUMAN_HANDS,
    ROBOT_GRIPPER,
    CascadeModel,
    ContactProfile,
    Environment,
    FailureRates,
    FaultInjector,
    HealthModel,
)
from dcrobot.network import (
    CableKind,
    DegradationKind,
    Fabric,
    HallLayout,
    LinkState,
    SwitchRole,
)
from dcrobot.sim import Simulation


def build_world(links=4, seed=3, kind=CableKind.MPO):
    rng = np.random.default_rng(seed)
    fabric = Fabric(layout=HallLayout(rows=1, racks_per_row=2), rng=rng)
    a = fabric.add_switch(SwitchRole.TOR, radix=max(links, 2),
                          rack_id=fabric.layout.rack_at(0, 0).id)
    b = fabric.add_switch(SwitchRole.TOR, radix=max(links, 2),
                          rack_id=fabric.layout.rack_at(0, 1).id)
    made = [fabric.connect(a.id, b.id, kind=kind) for _ in range(links)]
    env = Environment(diurnal_amplitude_c=0.0)
    health = HealthModel(fabric, env, rng=np.random.default_rng(seed + 1))
    return fabric, made, env, health


# -- rates -----------------------------------------------------------------

def test_rates_scaling():
    rates = FailureRates().scaled(2.0)
    assert rates.oxidation == pytest.approx(1.2)
    assert rates.total == pytest.approx(FailureRates().total * 2)
    with pytest.raises(ValueError):
        FailureRates().scaled(-1.0)


def test_rate_of_covers_every_kind():
    rates = FailureRates()
    for kind in DegradationKind:
        assert rates.rate_of(kind) >= 0


# -- direct injection ---------------------------------------------------------

@pytest.mark.parametrize("kind,check", [
    (DegradationKind.OXIDATION,
     lambda link: max(link.transceiver_a.oxidation,
                      link.transceiver_b.oxidation) > 0.3),
    (DegradationKind.FIRMWARE_STUCK,
     lambda link: link.transceiver_a.firmware_stuck
     or link.transceiver_b.firmware_stuck),
    (DegradationKind.CONTAMINATION,
     lambda link: link.cable.worst_contamination > 0.2),
    (DegradationKind.TRANSCEIVER_HW,
     lambda link: link.transceiver_a.hw_fault
     or link.transceiver_b.hw_fault),
    (DegradationKind.CABLE_DAMAGE, lambda link: link.cable.damaged),
    (DegradationKind.SWITCH_HW,
     lambda link: link.port_a.hw_fault or link.port_b.hw_fault),
])
def test_inject_each_kind(kind, check):
    fabric, links, _env, health = build_world()
    injector = FaultInjector(fabric, health,
                             rng=np.random.default_rng(0))
    fault = injector.inject(kind, links[0], now=10.0)
    assert check(links[0])
    assert fault.kind is kind
    assert injector.counts[kind] == 1
    assert injector.faults_for_link(links[0].id) == [fault]


def test_contamination_on_sealed_cable_becomes_oxidation():
    fabric, links, _env, health = build_world(kind=CableKind.AOC)
    injector = FaultInjector(fabric, health,
                             rng=np.random.default_rng(0))
    fault = injector.inject(DegradationKind.CONTAMINATION, links[0], 0.0)
    assert "oxidation" in fault.detail
    assert links[0].cable.worst_contamination == 0.0


def test_injection_updates_link_state_immediately():
    fabric, links, _env, health = build_world()
    injector = FaultInjector(fabric, health,
                             rng=np.random.default_rng(0))
    injector.inject(DegradationKind.TRANSCEIVER_HW, links[0], 5.0)
    assert links[0].state is LinkState.DOWN


def test_run_cause_produces_expected_volume():
    fabric, links, _env, health = build_world(links=10)
    # 50 firmware events/link-year over 10 links for half a year ~ 250.
    rates = FailureRates(oxidation=0, firmware_stuck=50.0, contamination=0,
                         transceiver_hw=0, cable_damage=0, switch_hw=0)
    injector = FaultInjector(fabric, health, rates=rates,
                             rng=np.random.default_rng(7))
    sim = Simulation()
    sim.process(injector.run_cause(sim, DegradationKind.FIRMWARE_STUCK))
    sim.run(until=0.5 * 365.25 * 86400)
    count = injector.counts[DegradationKind.FIRMWARE_STUCK]
    assert 150 <= count <= 350


def test_faults_between_window():
    fabric, links, _env, health = build_world()
    injector = FaultInjector(fabric, health,
                             rng=np.random.default_rng(0))
    injector.inject(DegradationKind.OXIDATION, links[0], 10.0)
    injector.inject(DegradationKind.OXIDATION, links[1], 50.0)
    assert len(injector.faults_between(0.0, 20.0)) == 1
    assert len(injector.faults_between(0.0, 100.0)) == 2


# -- cascade --------------------------------------------------------------------

def test_contact_profile_validation():
    with pytest.raises(ValueError):
        ContactProfile(neighbor_contact_fraction=1.5,
                       transient_probability=0.1,
                       damage_probability=0.0)


def test_profiles_orders_human_worse_than_robot():
    assert (HUMAN_HANDS.neighbor_contact_fraction
            > ROBOT_GRIPPER.neighbor_contact_fraction)
    assert (HUMAN_HANDS.transient_probability
            > ROBOT_GRIPPER.transient_probability)
    assert (HUMAN_HANDS.damage_probability
            > ROBOT_GRIPPER.damage_probability)


def test_touch_disturbs_neighbors_with_human_profile():
    fabric, links, env, health = build_world(links=12, seed=5)
    cascade = CascadeModel(fabric, health, env,
                           rng=np.random.default_rng(2))
    report = cascade.touch(links[0], HUMAN_HANDS, now=0.0)
    assert links[0].id not in report.touched_links
    assert report.secondary_failures >= 1
    assert cascade.total_secondary_failures == report.secondary_failures
    # Disturbed neighbours are marked in the health model.
    for link_id in report.disturbed_links:
        assert health.is_disturbed(link_id, 10.0)


def test_touch_with_robot_profile_rarely_disturbs():
    fabric, links, env, health = build_world(links=12, seed=5)
    cascade = CascadeModel(fabric, health, env,
                           rng=np.random.default_rng(2))
    total = 0
    for _ in range(50):
        report = cascade.touch(links[0], ROBOT_GRIPPER, now=0.0)
        total += report.secondary_failures
    human_cascade = CascadeModel(fabric, health, env,
                                 rng=np.random.default_rng(2))
    human_total = 0
    for _ in range(50):
        report = human_cascade.touch(links[0], HUMAN_HANDS, now=0.0)
        human_total += report.secondary_failures
    assert total < human_total


def test_touch_adds_vibration():
    fabric, links, env, health = build_world(links=4, seed=5)
    cascade = CascadeModel(fabric, health, env,
                           rng=np.random.default_rng(2))
    cascade.touch(links[0], HUMAN_HANDS, now=0.0)
    assert env.vibration_level(1.0) >= HUMAN_HANDS.vibration_magnitude


def test_predict_touched_scales_with_profile():
    fabric, links, env, health = build_world(links=12, seed=5)
    cascade = CascadeModel(fabric, health, env,
                           rng=np.random.default_rng(2))
    human_predicted = cascade.predict_touched(links[0], HUMAN_HANDS)
    robot_predicted = cascade.predict_touched(links[0], ROBOT_GRIPPER)
    assert len(human_predicted) > len(robot_predicted)


def test_unbundled_link_has_no_cascade():
    fabric, links, env, health = build_world(links=1)
    cascade = CascadeModel(fabric, health, env,
                           rng=np.random.default_rng(2))
    report = cascade.touch(links[0], HUMAN_HANDS, now=0.0)
    assert report.secondary_failures == 0
