"""Unit tests for fault-trace record / persist / replay."""

import numpy as np

from dcrobot.failures import (
    FailureRates,
    FaultInjector,
    FaultTrace,
    TraceEntry,
)
from dcrobot.network import DegradationKind

DAY = 86400.0


def test_entries_sorted_by_time():
    trace = FaultTrace([
        TraceEntry(50.0, DegradationKind.OXIDATION, "l1"),
        TraceEntry(10.0, DegradationKind.CABLE_DAMAGE, "l2"),
    ])
    assert [entry.time for entry in trace.entries] == [10.0, 50.0]
    assert len(trace) == 2


def test_json_roundtrip(tmp_path):
    trace = FaultTrace([
        TraceEntry(10.0, DegradationKind.CONTAMINATION, "link-00001"),
        TraceEntry(20.0, DegradationKind.SWITCH_HW, "link-00002"),
    ])
    path = tmp_path / "trace.json"
    trace.save(str(path))
    loaded = FaultTrace.load(str(path))
    assert loaded.entries == trace.entries


def test_synthesize_volume_matches_rates(world):
    rates = FailureRates(oxidation=0, firmware_stuck=40.0,
                         contamination=0, transceiver_hw=0,
                         cable_damage=0, switch_hw=0)
    trace = FaultTrace.synthesize(world.fabric, 0.5 * 365.25 * DAY,
                                  rates, rng=np.random.default_rng(3))
    # 40/link-year x 4 links x 0.5 years ~ 80 events.
    assert 40 <= len(trace) <= 130
    assert all(entry.kind is DegradationKind.FIRMWARE_STUCK
               for entry in trace.entries)


def test_replay_applies_each_entry(world):
    injector = FaultInjector(world.fabric, world.health,
                             rng=np.random.default_rng(0))
    trace = FaultTrace([
        TraceEntry(100.0, DegradationKind.FIRMWARE_STUCK,
                   world.links[0].id),
        TraceEntry(200.0, DegradationKind.CABLE_DAMAGE,
                   world.links[1].id),
    ])
    world.sim.process(trace.replay(world.sim, injector))
    world.sim.run()
    assert world.sim.now == 200.0
    assert (world.links[0].transceiver_a.firmware_stuck
            or world.links[0].transceiver_b.firmware_stuck)
    assert world.links[1].cable.damaged
    assert len(injector.log) == 2


def test_replay_skips_removed_links(world):
    injector = FaultInjector(world.fabric, world.health,
                             rng=np.random.default_rng(0))
    trace = FaultTrace([
        TraceEntry(10.0, DegradationKind.OXIDATION, world.links[0].id),
    ])
    world.fabric.disconnect(world.links[0].id)
    world.sim.process(trace.replay(world.sim, injector))
    world.sim.run()
    assert injector.log == []


def test_record_then_replay_reproduces_physics():
    """A live campaign captured as a trace and replayed on a fresh,
    identically-seeded world yields identical ground truth."""
    from dcrobot.experiments import WorldConfig, run_world

    live = run_world(WorldConfig(horizon_days=10.0, seed=21,
                                 failure_scale=4.0, policy="none"))
    trace = FaultTrace.from_injector_log(live.injector.log)
    assert len(trace) == len(live.injector.log)

    replayed = run_world(WorldConfig(horizon_days=10.0, seed=21,
                                     failure_scale=0.0, policy="none",
                                     fault_trace=trace))
    assert [f.link_id for f in replayed.injector.log] \
        == [f.link_id for f in live.injector.log]
    assert [f.kind for f in replayed.injector.log] \
        == [f.kind for f in live.injector.log]


def test_trace_makes_levels_comparable():
    """The same trace replayed at L0 and L3 sees identical faults —
    the E6 methodology, now explicit."""
    from dcrobot.core import AutomationLevel
    from dcrobot.experiments import WorldConfig, build_world
    from dcrobot.failures import FailureRates

    probe = build_world(WorldConfig(horizon_days=5.0, seed=22,
                                    failure_scale=0.0))
    trace = FaultTrace.synthesize(probe.fabric, 5.0 * DAY,
                                  FailureRates().scaled(5.0),
                                  rng=np.random.default_rng(9))
    results = {}
    for level in (AutomationLevel.L0_NO_AUTOMATION,
                  AutomationLevel.L3_HIGH_AUTOMATION):
        world = build_world(WorldConfig(horizon_days=5.0, seed=22,
                                        failure_scale=0.0,
                                        fault_trace=trace,
                                        level=level))
        world.sim.run(until=5.0 * DAY)
        results[level] = world
    l0, l3 = results.values()
    assert [f.link_id for f in l0.injector.log] \
        == [f.link_id for f in l3.injector.log]
    # And the robotic world still repairs faster on the common trace.
    if l0.controller.repair_times() and l3.controller.repair_times():
        assert (np.median(l3.controller.repair_times())
                < np.median(l0.controller.repair_times()))
