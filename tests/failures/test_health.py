"""Unit tests for the link health model (gray failures, flapping)."""

import numpy as np
import pytest

from dcrobot.failures import Environment, HealthModel, HealthParams
from dcrobot.network import (
    CableKind,
    Fabric,
    HallLayout,
    LinkState,
    SwitchRole,
)


def make_link(kind=CableKind.MPO, seed=2):
    rng = np.random.default_rng(seed)
    fabric = Fabric(layout=HallLayout(rows=1, racks_per_row=2), rng=rng)
    a = fabric.add_switch(SwitchRole.TOR, radix=4,
                          rack_id=fabric.layout.rack_at(0, 0).id)
    b = fabric.add_switch(SwitchRole.TOR, radix=4,
                          rack_id=fabric.layout.rack_at(0, 1).id)
    link = fabric.connect(a.id, b.id, kind=kind)
    env = Environment(diurnal_amplitude_c=0.0)
    health = HealthModel(fabric, env, rng=np.random.default_rng(seed))
    return fabric, link, env, health


def test_healthy_link_scores_zero():
    _fabric, link, _env, health = make_link()
    assert health.impairment_score(link, 0.0) == 0.0
    health.evaluate_link(link, 0.0)
    assert link.state is LinkState.UP
    assert link.loss_rate == pytest.approx(health.params.base_loss)


def test_params_validation():
    with pytest.raises(ValueError):
        HealthParams(marginal_threshold=0.9, hard_down_threshold=0.5)
    with pytest.raises(ValueError):
        HealthParams(tick_seconds=0.0)


@pytest.mark.parametrize("mutate", [
    lambda link: setattr(link.transceiver_a, "firmware_stuck", True),
    lambda link: link.transceiver_b.fail_hardware(),
    lambda link: link.cable.damage(),
    lambda link: setattr(link.port_a, "hw_fault", True),
    lambda link: link.cable.end_a.scratch(0),
    lambda link: link.transceiver_a.unseat(),
    lambda link: link.cable.detach("b"),
])
def test_hard_faults_score_one_and_down(mutate):
    _fabric, link, _env, health = make_link()
    mutate(link)
    assert health.impairment_score(link, 0.0) == 1.0
    health.evaluate_link(link, 0.0)
    assert link.state is LinkState.DOWN
    assert link.loss_rate == 1.0


def test_heavy_oxidation_hard_down():
    _fabric, link, _env, health = make_link()
    link.transceiver_a.oxidation = 0.95
    health.evaluate_link(link, 0.0)
    assert link.state is LinkState.DOWN


def test_moderate_dirt_is_marginal_not_down():
    _fabric, link, _env, health = make_link()
    link.cable.end_a.add_contamination(0.55)
    score = health.impairment_score(link, 0.0)
    assert (health.params.marginal_threshold <= score
            < health.params.hard_down_threshold)


def test_marginal_link_flaps_over_time():
    _fabric, link, _env, health = make_link()
    link.cable.end_a.add_contamination(0.6)
    for tick in range(400):
        health.evaluate_link(link, tick * 60.0)
    # A marginal link must oscillate: multiple up<->down transitions.
    assert link.transition_count >= 4
    down_episodes = sum(1 for _t, s in link.history
                        if s is LinkState.DOWN)
    up_episodes = sum(1 for _t, s in link.history if s is LinkState.UP)
    assert down_episodes >= 2
    assert up_episodes >= 2


def test_flapping_good_phase_has_elevated_loss():
    _fabric, link, _env, health = make_link()
    link.cable.end_a.add_contamination(0.6)
    losses = []
    for tick in range(200):
        health.evaluate_link(link, tick * 60.0)
        if link.state is LinkState.UP:
            losses.append(link.loss_rate)
    assert losses, "link never in good phase"
    assert max(losses) > health.params.base_loss * 100


def test_environment_stress_amplifies_dirt():
    _fabric, link, env, health = make_link()
    link.cable.end_a.add_contamination(0.5)
    calm = health.impairment_score(link, 0.0)
    env.add_vibration(0.0, 1.0, 1000.0)
    stressed = health.impairment_score(link, 10.0)
    assert stressed > calm


def test_disturbance_raises_score_then_expires():
    _fabric, link, _env, health = make_link()
    health.disturb(link.id, until=500.0)
    assert health.impairment_score(link, 100.0) == pytest.approx(
        health.params.disturbance_score)
    assert health.impairment_score(link, 600.0) == 0.0


def test_disturb_keeps_longest_expiry():
    _fabric, link, _env, health = make_link()
    health.disturb(link.id, until=500.0)
    health.disturb(link.id, until=300.0)
    assert health.is_disturbed(link.id, 400.0)


def test_maintenance_state_untouched():
    _fabric, link, _env, health = make_link()
    link.set_state(0.0, LinkState.MAINTENANCE)
    link.transceiver_a.fail_hardware()
    health.evaluate_link(link, 10.0)
    assert link.state is LinkState.MAINTENANCE


def test_repair_recovers_link():
    _fabric, link, _env, health = make_link()
    link.transceiver_a.firmware_stuck = True
    health.evaluate_link(link, 0.0)
    assert link.state is LinkState.DOWN
    # Reseat: unseat + seat clears the wedge.
    link.transceiver_a.unseat()
    link.transceiver_a.seat(now=60.0, rng=np.random.default_rng(0))
    health.evaluate_link(link, 60.0)
    assert link.state is LinkState.UP


def test_marginal_loss_monotone_in_score():
    _fabric, _link, _env, health = make_link()
    scores = [0.2, 0.4, 0.6]
    losses = [health.marginal_loss(s) for s in scores]
    assert losses == sorted(losses)
    assert losses[-1] <= health.params.max_marginal_loss


def test_tick_covers_all_links():
    fabric, link, env, health = make_link()
    a, b = link.endpoint_ids
    second = fabric.connect(a, b, kind=CableKind.MPO)
    second.transceiver_a.fail_hardware()
    health.tick(0.0)
    assert second.state is LinkState.DOWN
    assert link.state is LinkState.UP


def test_health_run_process():
    from dcrobot.sim import Simulation

    fabric, link, env, health = make_link()
    sim = Simulation()
    link.transceiver_a.firmware_stuck = True
    sim.process(health.run(sim))
    sim.run(until=health.params.tick_seconds * 3)
    assert link.state is LinkState.DOWN
