"""Unit tests for hazard models and the environment."""

import numpy as np
import pytest

from dcrobot.failures import (
    SECONDS_PER_YEAR,
    Environment,
    ExponentialHazard,
    FixedHazard,
    WeibullHazard,
    per_year,
)


@pytest.fixture
def rng():
    return np.random.default_rng(123)


def test_per_year_conversion():
    assert per_year(1.0) == pytest.approx(1.0 / SECONDS_PER_YEAR)


def test_exponential_mean_matches_rate(rng):
    hazard = ExponentialHazard(rate_per_second=0.01)
    samples = [hazard.sample(rng) for _ in range(4000)]
    assert np.mean(samples) == pytest.approx(100.0, rel=0.1)
    assert hazard.mean == pytest.approx(100.0)


def test_exponential_per_year_constructor():
    hazard = ExponentialHazard.per_year(12.0)
    assert hazard.mean == pytest.approx(SECONDS_PER_YEAR / 12.0)


def test_exponential_validation():
    with pytest.raises(ValueError):
        ExponentialHazard(0.0)


def test_weibull_mean(rng):
    hazard = WeibullHazard(shape=2.0, scale_seconds=1000.0)
    samples = [hazard.sample(rng) for _ in range(4000)]
    assert np.mean(samples) == pytest.approx(hazard.mean, rel=0.1)


def test_weibull_shape_one_is_exponential(rng):
    hazard = WeibullHazard(shape=1.0, scale_seconds=500.0)
    assert hazard.mean == pytest.approx(500.0)


def test_weibull_validation():
    with pytest.raises(ValueError):
        WeibullHazard(shape=0.0, scale_seconds=10.0)
    with pytest.raises(ValueError):
        WeibullHazard(shape=1.0, scale_seconds=0.0)


def test_fixed_hazard(rng):
    hazard = FixedHazard(42.0)
    assert hazard.sample(rng) == 42.0
    assert hazard.mean == 42.0
    with pytest.raises(ValueError):
        FixedHazard(0.0)


# -- environment ------------------------------------------------------------

def test_temperature_diurnal_cycle():
    env = Environment(base_temperature_c=24.0, diurnal_amplitude_c=2.0,
                      period_seconds=86400.0)
    quarter = 86400.0 / 4
    assert env.temperature_c(0.0) == pytest.approx(24.0)
    assert env.temperature_c(quarter) == pytest.approx(26.0)
    assert env.temperature_c(3 * quarter) == pytest.approx(22.0)
    # Periodicity
    assert env.temperature_c(86400.0 + quarter) == pytest.approx(26.0)


def test_stress_multiplier_baseline_is_one():
    env = Environment(diurnal_amplitude_c=0.0)
    assert env.stress_multiplier(1234.0) == pytest.approx(1.0)


def test_stress_grows_with_temperature_deviation():
    env = Environment(diurnal_amplitude_c=4.0)
    peak = 86400.0 / 4
    assert env.stress_multiplier(peak) == pytest.approx(1.4)


def test_vibration_adds_and_expires():
    env = Environment(diurnal_amplitude_c=0.0)
    env.add_vibration(now=100.0, magnitude=0.5, duration_seconds=60.0)
    assert env.vibration_level(101.0) == pytest.approx(0.5)
    assert env.stress_multiplier(101.0) == pytest.approx(1.5)
    assert env.vibration_level(161.0) == 0.0
    assert env.stress_multiplier(161.0) == pytest.approx(1.0)


def test_vibration_stacks():
    env = Environment(diurnal_amplitude_c=0.0)
    env.add_vibration(0.0, 0.3, 100.0)
    env.add_vibration(0.0, 0.2, 100.0)
    assert env.vibration_level(50.0) == pytest.approx(0.5)


def test_vibration_validation():
    env = Environment()
    with pytest.raises(ValueError):
        env.add_vibration(0.0, -1.0, 10.0)
    with pytest.raises(ValueError):
        env.add_vibration(0.0, 1.0, 0.0)
