"""Unit tests for the from-scratch classifiers and evaluation code."""

import numpy as np
import pytest

from dcrobot.ml import (
    GradientBoostedStumps,
    LogisticRegression,
    evaluate,
    roc_auc,
    train_test_split,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def linearly_separable(rng, count=400):
    features = rng.normal(size=(count, 3))
    labels = (features @ np.array([2.0, -1.0, 0.5]) + 0.3 > 0).astype(int)
    return features, labels


def band_target(rng, count=600):
    """Non-monotone in x0: positive iff |x0| < 0.5.

    A linear model cannot express this; an additive stump ensemble can
    (two opposing splits on the same feature).
    """
    features = rng.uniform(-1, 1, size=(count, 2))
    labels = (np.abs(features[:, 0]) < 0.5).astype(int)
    return features, labels


# -- logistic regression ---------------------------------------------------

def test_logreg_validation():
    with pytest.raises(ValueError):
        LogisticRegression(learning_rate=0.0)
    with pytest.raises(ValueError):
        LogisticRegression(l2=-1.0)
    with pytest.raises(ValueError):
        LogisticRegression(epochs=0)


def test_logreg_fit_input_validation(rng):
    model = LogisticRegression()
    with pytest.raises(ValueError):
        model.fit(np.zeros((3,)), np.zeros(3))
    with pytest.raises(ValueError):
        model.fit(np.zeros((3, 2)), np.zeros(2))
    with pytest.raises(ValueError):
        model.fit(np.zeros((2, 2)), np.array([0, 2]))
    with pytest.raises(RuntimeError):
        model.predict_proba(np.zeros(2))


def test_logreg_learns_separable_data(rng):
    features, labels = linearly_separable(rng)
    model = LogisticRegression(epochs=800).fit(features, labels)
    accuracy = (model.predict(features) == labels).mean()
    assert accuracy > 0.95


def test_logreg_probabilities_in_range(rng):
    features, labels = linearly_separable(rng)
    model = LogisticRegression().fit(features, labels)
    probabilities = model.predict_proba(features)
    assert np.all((probabilities >= 0) & (probabilities <= 1))


def test_logreg_single_row_prediction(rng):
    features, labels = linearly_separable(rng)
    model = LogisticRegression().fit(features, labels)
    single = model.predict_proba(features[0])
    assert np.isscalar(single) or single.ndim == 0


def test_logreg_handles_constant_feature(rng):
    features, labels = linearly_separable(rng)
    features = np.hstack([features, np.ones((features.shape[0], 1))])
    model = LogisticRegression().fit(features, labels)
    assert np.isfinite(model.predict_proba(features)).all()


# -- boosted stumps ----------------------------------------------------------

def test_stumps_validation():
    with pytest.raises(ValueError):
        GradientBoostedStumps(rounds=0)
    with pytest.raises(ValueError):
        GradientBoostedStumps(learning_rate=0)
    with pytest.raises(ValueError):
        GradientBoostedStumps(candidate_thresholds=1)


def test_stumps_learn_nonlinear_boundary(rng):
    # Logistic regression cannot express a band; boosted stumps can.
    features, labels = band_target(rng)
    linear = LogisticRegression(epochs=500).fit(features, labels)
    boosted = GradientBoostedStumps(rounds=80).fit(features, labels)
    linear_acc = (linear.predict(features) == labels).mean()
    boosted_acc = (boosted.predict(features) == labels).mean()
    assert boosted_acc > 0.9
    assert boosted_acc > linear_acc + 0.15


def test_stumps_unfitted_raises(rng):
    with pytest.raises(RuntimeError):
        GradientBoostedStumps().predict_proba(np.zeros((1, 2)))


def test_stumps_probabilities_in_range(rng):
    features, labels = linearly_separable(rng)
    model = GradientBoostedStumps(rounds=20).fit(features, labels)
    probabilities = model.predict_proba(features)
    assert np.all((probabilities >= 0) & (probabilities <= 1))


# -- evaluation ---------------------------------------------------------------

def test_roc_auc_perfect_and_random():
    labels = np.array([0, 0, 1, 1])
    assert roc_auc(labels, np.array([0.1, 0.2, 0.8, 0.9])) == 1.0
    assert roc_auc(labels, np.array([0.9, 0.8, 0.2, 0.1])) == 0.0
    assert roc_auc(np.array([1, 1]), np.array([0.5, 0.5])) == 0.5


def test_roc_auc_handles_ties():
    labels = np.array([0, 1, 0, 1])
    scores = np.array([0.5, 0.5, 0.5, 0.5])
    assert roc_auc(labels, scores) == pytest.approx(0.5)


def test_evaluate_report_counts():
    labels = np.array([1, 1, 0, 0, 1])
    scores = np.array([0.9, 0.4, 0.8, 0.1, 0.7])
    report = evaluate(labels, scores, threshold=0.5)
    # predictions: 1,0,1,0,1 -> TP=2 FP=1 FN=1 TN=1
    assert report.precision == pytest.approx(2 / 3)
    assert report.recall == pytest.approx(2 / 3)
    assert report.accuracy == pytest.approx(3 / 5)
    assert report.positives == 3
    assert report.negatives == 2


def test_evaluate_shape_mismatch():
    with pytest.raises(ValueError):
        evaluate(np.array([1, 0]), np.array([0.5]))


def test_train_test_split_partitions(rng):
    features = np.arange(40).reshape(20, 2).astype(float)
    labels = (np.arange(20) % 2).astype(int)
    train_x, train_y, test_x, test_y = train_test_split(
        features, labels, test_fraction=0.25, rng=rng)
    assert train_x.shape[0] + test_x.shape[0] == 20
    assert test_x.shape[0] == 5
    combined = np.vstack([train_x, test_x])
    assert sorted(map(tuple, combined)) == sorted(map(tuple, features))


def test_train_test_split_validation(rng):
    features = np.zeros((1, 2))
    with pytest.raises(ValueError):
        train_test_split(features, np.zeros(1), rng=rng)
    with pytest.raises(ValueError):
        train_test_split(np.zeros((10, 2)), np.zeros(10),
                         test_fraction=1.5, rng=rng)
