"""Unit tests for feature extraction, dust, and dataset labelling."""

import numpy as np
import pytest

from dcrobot.failures import DustProcess
from dcrobot.ml import (
    FEATURE_NAMES,
    DatasetCollector,
    FeatureExtractor,
    LogisticRegression,
    roc_auc,
)
from dcrobot.network import LinkState

from tests.conftest import make_world

HOUR = 3600.0


def extractor_for(world, seed=5):
    return FeatureExtractor(world.environment,
                            rng=np.random.default_rng(seed))


def test_feature_vector_shape_and_names(world):
    extractor = extractor_for(world)
    vector = extractor.extract(world.links[0], now=1000.0)
    assert vector.shape == (len(FEATURE_NAMES),)
    assert np.isfinite(vector).all()


def test_rx_margin_drops_with_dirt(world):
    extractor = extractor_for(world)
    link = world.links[0]
    clean_margin = np.mean([extractor.rx_margin_db(link)
                            for _ in range(50)])
    link.cable.end_a.add_contamination(0.5)
    dirty_margin = np.mean([extractor.rx_margin_db(link)
                            for _ in range(50)])
    assert dirty_margin < clean_margin - 1.0


def test_rx_margin_drops_with_oxidation(world):
    extractor = extractor_for(world)
    link = world.links[0]
    base = np.mean([extractor.rx_margin_db(link) for _ in range(50)])
    link.transceiver_a.oxidation = 0.8
    oxidized = np.mean([extractor.rx_margin_db(link)
                        for _ in range(50)])
    assert oxidized < base


def test_feature_matrix(world):
    extractor = extractor_for(world)
    matrix = extractor.extract_matrix(world.links, now=0.0)
    assert matrix.shape == (len(world.links), len(FEATURE_NAMES))
    assert extractor.extract_matrix([], 0.0).shape \
        == (0, len(FEATURE_NAMES))


# -- dust ------------------------------------------------------------------

def test_dust_accumulates_only_on_separable(world):
    dust = DustProcess(world.fabric, world.health,
                       mean_rate_per_day=0.5,
                       rng=np.random.default_rng(3))
    for day in range(10):
        dust.tick(day * 86400.0)
    assert any(link.cable.worst_contamination > 0
               for link in world.links)


def test_dust_hotspots_are_heterogeneous(world):
    dust = DustProcess(world.fabric, world.health, hotspot_sigma=1.5,
                       rng=np.random.default_rng(4))
    factors = [dust.factor_for(link.cable.id) for link in world.links]
    assert max(factors) > 2 * min(factors)
    # Factor is stable per cable.
    assert dust.factor_for(world.links[0].cable.id) == factors[0]


def test_dust_validation(world):
    with pytest.raises(ValueError):
        DustProcess(world.fabric, world.health, mean_rate_per_day=-1)
    with pytest.raises(ValueError):
        DustProcess(world.fabric, world.health, tick_seconds=0)


# -- dataset -----------------------------------------------------------------

def test_collector_validation(world):
    extractor = extractor_for(world)
    with pytest.raises(ValueError):
        DatasetCollector(world.fabric, extractor, snapshot_interval=0)
    with pytest.raises(ValueError):
        DatasetCollector(world.fabric, extractor, horizon_seconds=0)


def test_snapshots_skip_down_links(world):
    extractor = extractor_for(world)
    collector = DatasetCollector(world.fabric, extractor)
    world.links[0].set_state(0.0, LinkState.DOWN)
    collector.snapshot(now=10.0)
    assert len(collector._rows) == len(world.links) - 1


def test_labels_reflect_future_downtime(world):
    extractor = extractor_for(world)
    collector = DatasetCollector(world.fabric, extractor,
                                 horizon_seconds=10 * HOUR)
    collector.snapshot(now=0.0)
    # links[0] goes down inside the horizon; links[1] after it.
    world.links[0].set_state(5 * HOUR, LinkState.DOWN)
    world.links[1].set_state(20 * HOUR, LinkState.DOWN)
    dataset = collector.build(sim_end=100 * HOUR)
    by_link = dict(zip(dataset.link_ids, dataset.labels))
    assert by_link[world.links[0].id] == 1
    assert by_link[world.links[1].id] == 0


def test_rows_beyond_horizon_dropped(world):
    extractor = extractor_for(world)
    collector = DatasetCollector(world.fabric, extractor,
                                 horizon_seconds=10 * HOUR)
    collector.snapshot(now=0.0)
    collector.snapshot(now=95 * HOUR)  # horizon exceeds sim end
    dataset = collector.build(sim_end=100 * HOUR)
    assert len(dataset) == len(world.links)


@pytest.mark.slow
def test_end_to_end_prediction_beats_chance():
    # Dusty world: margins trend down before links start flapping, so a
    # trained model must rank failing links above healthy ones.
    world = make_world(links=12, seed=23)
    extractor = extractor_for(world, seed=11)
    collector = DatasetCollector(world.fabric, extractor,
                                 snapshot_interval=6 * HOUR,
                                 horizon_seconds=48 * HOUR)
    dust = DustProcess(world.fabric, world.health,
                       mean_rate_per_day=0.02, hotspot_sigma=1.2,
                       rng=np.random.default_rng(6))
    sim = world.sim
    sim.process(world.health.run(sim))
    sim.process(dust.run(sim))
    sim.process(collector.run(sim))
    horizon = 60 * 86400.0
    sim.run(until=horizon)
    dataset = collector.build(sim_end=horizon)
    assert len(dataset) > 100
    assert 0.0 < dataset.positive_fraction < 1.0
    model = LogisticRegression(epochs=400).fit(dataset.features,
                                               dataset.labels)
    auc = roc_auc(dataset.labels,
                  model.predict_proba(dataset.features))
    assert auc > 0.7
