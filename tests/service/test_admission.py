"""Admission-control policy: buckets, priority exemption, accounting."""

import pytest

from dcrobot.core.actions import Priority
from dcrobot.service.admission import (
    AdmissionConfig,
    AdmissionController,
    RequestKind,
    TokenBucket,
)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, seconds):
        self.t += seconds


# -- token bucket -------------------------------------------------------------


def test_bucket_starts_full_and_refills_at_rate():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
    assert [bucket.try_take() for _ in range(5)] == [True] * 4 + [False]
    clock.advance(1.0)  # +2 tokens
    assert bucket.try_take()
    assert bucket.try_take()
    assert not bucket.try_take()


def test_bucket_caps_at_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=100.0, burst=3.0, clock=clock)
    bucket.try_take()
    clock.advance(60.0)
    assert [bucket.try_take() for _ in range(4)] == [True] * 3 + [False]


def test_zero_rate_bucket_never_refills():
    clock = FakeClock()
    bucket = TokenBucket(rate=0.0, burst=2.0, clock=clock)
    assert bucket.try_take() and bucket.try_take()
    clock.advance(1e6)
    assert not bucket.try_take()


# -- admission controller -----------------------------------------------------


def controller(clock, **overrides):
    return AdmissionController(AdmissionConfig(**overrides),
                               clock=clock)


def test_queries_shed_once_bucket_drains():
    clock = FakeClock()
    admission = controller(clock, query_rate=0.0, query_burst=5.0)
    decisions = [admission.admit(RequestKind.QUERY)
                 for _ in range(20)]
    assert decisions == [True] * 5 + [False] * 15
    assert admission.admitted("query") == 5
    assert admission.shed("query") == 15


def test_high_priority_commands_are_never_shed():
    clock = FakeClock()
    admission = controller(clock, command_rate=0.0,
                           command_burst=1.0)
    # Flood far past the bucket: every HIGH command still lands.
    decisions = [admission.admit(RequestKind.COMMAND, Priority.HIGH)
                 for _ in range(100)]
    assert all(decisions)
    assert admission.shed("command-high") == 0
    assert admission.admitted("command-high") == 100
    # NORMAL commands pay the bucket as usual.
    assert admission.admit(RequestKind.COMMAND)
    assert not admission.admit(RequestKind.COMMAND)


def test_high_priority_exemption_can_be_disabled():
    clock = FakeClock()
    admission = controller(clock, command_rate=0.0,
                           command_burst=2.0,
                           exempt_high_priority=False)
    decisions = [admission.admit(RequestKind.COMMAND, Priority.HIGH)
                 for _ in range(4)]
    assert decisions == [True, True, False, False]


def test_query_and_command_buckets_are_independent():
    clock = FakeClock()
    admission = controller(clock, query_rate=0.0, query_burst=1.0,
                           command_rate=0.0, command_burst=3.0)
    assert admission.admit(RequestKind.QUERY)
    assert not admission.admit(RequestKind.QUERY)
    # The drained query bucket does not touch commands.
    assert all(admission.admit(RequestKind.COMMAND)
               for _ in range(3))


def test_latency_lands_in_the_histogram():
    clock = FakeClock()
    admission = controller(clock)
    admission.observe_latency(RequestKind.QUERY, 0.002)
    admission.observe_latency(RequestKind.QUERY, 0.3)
    admission.observe_latency(RequestKind.COMMAND, 0.01)
    histogram = admission.metrics.histogram(
        "dcrobot_service_request_latency_seconds")
    assert histogram.count(cls="query") == 2
    assert histogram.sum(cls="query") == pytest.approx(0.302)
    assert histogram.count(cls="command") == 1


def test_config_rejects_negative_rates():
    with pytest.raises(ValueError):
        AdmissionConfig(query_rate=-1.0)
