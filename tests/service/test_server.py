"""Service front-end: backpressure, admission, auth routing, wire."""

import asyncio
import json

import pytest

from dcrobot.core import (
    AuthorizationError,
    AutomationLevel,
    MaintenanceAuthorizer,
    RepairAction,
)
from dcrobot.experiments import WorldConfig, build_world
from dcrobot.service import (
    AdmissionConfig,
    BridgeConfig,
    MaintenanceService,
    ServiceConfig,
    ServiceOverloadError,
    TelemetryReport,
)

DAY = 86400.0


def quiet_world():
    return build_world(WorldConfig(
        horizon_days=3.0, seed=33, failure_scale=0.0,
        dust_rate_per_day=0.0, aging_rate_per_day=0.0,
        level=AutomationLevel.L3_HIGH_AUTOMATION))


def service_over(world, **config):
    config.setdefault("admission", None)
    config.setdefault("bridge", BridgeConfig(max_events_per_slice=64))
    return MaintenanceService(world, ServiceConfig(**config))


# -- telemetry backpressure ---------------------------------------------------


def test_burst_beyond_queue_limit_sheds_visibly():
    """A burst 10x the per-slice ingest budget: the bounded queue
    accepts up to its limit, sheds the rest loudly, and the drain
    catches up over subsequent slices."""
    world = quiet_world()
    service = service_over(world, ingest_queue_limit=16,
                           ingest_budget_per_slice=8)
    burst = [TelemetryReport(source_id=f"dev-{i}", value=float(i))
             for i in range(80)]  # 10x the slice budget
    accepted = [service.offer_telemetry(report) for report in burst]
    assert accepted == [True] * 16 + [False] * 64
    assert service.ingest_depth == 16
    assert service.ingest_shed == 64
    counter = service.metrics.counter("dcrobot_service_ingest_total")
    assert counter.value(outcome="shed") == 64
    assert counter.value(outcome="accepted") == 16

    asyncio.run(service.serve(0.25 * DAY))
    assert service.ingest_applied == 16
    assert service.ingest_depth == 0
    # Materialized, latest-per-source.
    model = service.readmodels[0]
    assert model.external_last["dev-3"].value == 3.0
    # Once drained, new offers are accepted again.
    assert service.offer_telemetry(
        TelemetryReport(source_id="dev-80"))


def test_ingestion_never_lands_in_the_sim():
    world = quiet_world()
    service = service_over(world)
    heap_before = list(world.sim._heap)
    for i in range(10):
        service.offer_telemetry(TelemetryReport(source_id=f"d{i}"))
    assert list(world.sim._heap) == heap_before


# -- admission at the endpoints ----------------------------------------------


def test_query_flood_sheds_with_overload_error():
    world = quiet_world()
    service = service_over(world, admission=AdmissionConfig(
        query_rate=0.0, query_burst=5.0))

    async def flood():
        served, shed = 0, 0
        for _ in range(20):
            try:
                await service.status()
                served += 1
            except ServiceOverloadError:
                shed += 1
        return served, shed

    served, shed = asyncio.run(flood())
    assert (served, shed) == (5, 15)
    assert service.admission.shed("query") == 15
    histogram = service.metrics.histogram(
        "dcrobot_service_request_latency_seconds")
    assert histogram.count(cls="query") == 5


def test_urgent_commands_bypass_a_drained_bucket():
    world = quiet_world()
    service = service_over(world, admission=AdmissionConfig(
        command_rate=0.0, command_burst=0.0))
    link_ids = list(world.fabric.links)

    async def drive():
        with pytest.raises(ServiceOverloadError):
            await service.request_maintenance(link_ids[0])
        # HIGH priority is exempt: never shed, even at burst 0.
        results = [await service.request_maintenance(link_id,
                                                     urgent=True)
                   for link_id in link_ids[:3]]
        return results

    assert asyncio.run(drive()) == [True] * 3
    assert service.admission.shed("command-high") == 0


# -- command routing through authorizer + audit -------------------------------


def test_commands_route_through_authorizer_and_audit():
    world = quiet_world()
    authorizer = MaintenanceAuthorizer()
    authorizer.issue("storage", [RepairAction.RESEAT])
    service = service_over(world, authorizer=authorizer)
    link_id = next(iter(world.fabric.links))

    async def drive():
        accepted = await service.request_maintenance(
            link_id, action=RepairAction.RESEAT, urgent=True,
            principal="storage")
        with pytest.raises(AuthorizationError):
            await service.request_maintenance(
                link_id, action=RepairAction.RESEAT, urgent=True,
                principal="mallory")
        await service.serve(1.0 * DAY)
        return accepted

    assert asyncio.run(drive())
    decisions = [record.allowed
                 for record in authorizer.audit.entries_for(link_id)]
    assert decisions == [True, False]
    assert authorizer.audit.verify_chain()
    # The authorized command actually ran.
    assert world.live_controller.proactive_outcomes


# -- parity auditing on live traffic ------------------------------------------


def test_audit_every_reverifies_against_the_oracle():
    world = quiet_world()
    service = service_over(world, audit_every=2)

    async def drive():
        await service.serve(0.5 * DAY)
        for _ in range(6):
            await service.status()

    asyncio.run(drive())
    assert service.parity_audits == 3
    assert service.parity_failures == 0


# -- the JSON-lines wire ------------------------------------------------------


async def roundtrip(service, requests):
    server = await service.start_tcp()
    port = server.sockets[0].getsockname()[1]
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    responses = []
    try:
        for request in requests:
            writer.write(json.dumps(request).encode() + b"\n")
            await writer.drain()
            responses.append(json.loads(await reader.readline()))
    finally:
        writer.close()
        await writer.wait_closed()
        server.close()
        await server.wait_closed()
    return responses


def test_tcp_front_door_round_trip():
    world = quiet_world()
    authorizer = MaintenanceAuthorizer()
    authorizer.issue("storage", [RepairAction.RESEAT])
    service = service_over(world, authorizer=authorizer)
    link_id = next(iter(world.fabric.links))

    responses = asyncio.run(roundtrip(service, [
        {"op": "status"},
        {"op": "link_health", "link_id": link_id},
        {"op": "telemetry", "source_id": "dev-1", "link_id": link_id,
         "value": 2.5},
        {"op": "request_maintenance", "link_id": link_id,
         "action": "RESEAT", "urgent": True, "principal": "storage"},
        {"op": "request_maintenance", "link_id": link_id,
         "action": "RESEAT", "urgent": True, "principal": "mallory"},
        {"op": "link_health", "link_id": "no-such-link"},
        {"op": "warp-core-dump"},
    ]))

    status, health, telemetry, allowed, denied, missing, bogus = \
        responses
    assert status["ok"] and status["result"]["links_total"] == len(
        world.fabric.links)
    assert health["ok"] and health["result"]["link_id"] == link_id
    assert telemetry == {"ok": True, "result": True}
    assert allowed["ok"] is True
    assert denied["ok"] is False and denied["error"] == "denied"
    assert missing["ok"] is False and missing["error"] == "not-found"
    assert bogus["ok"] is False and bogus["error"] == "bad-request"
    # The wire telemetry is queued for the next slice drain.
    assert service.ingest_depth == 1


def test_smi_endpoint_audits_against_full_rescan():
    world = quiet_world()
    from dcrobot.topology.smi import SmiTracker

    service = MaintenanceService(
        world, ServiceConfig(admission=None),
        smi_trackers={0: SmiTracker(world.topology)})

    async def drive():
        await service.serve(0.5 * DAY)
        return await service.smi(audit=True)

    value = asyncio.run(drive())
    assert value is not None
    assert service.parity_audits == 1
    assert service.parity_failures == 0
