"""Read-model correctness: snapshots vs the full-scan oracle."""

import types

import pytest

from dcrobot.core.api import full_scan_status
from dcrobot.core.automation import AutomationLevel
from dcrobot.experiments import WorldConfig, build_world, run_world
from dcrobot.service.readmodel import (
    CampusReadModel,
    ReadModel,
    ReadModelParityError,
    ReadSnapshot,
)

DAY = 86400.0


@pytest.fixture(scope="module")
def eventful_world():
    return run_world(WorldConfig(
        horizon_days=4.0, seed=5, failure_scale=2.0,
        level=AutomationLevel.L3_HIGH_AUTOMATION))


def model_for(world) -> ReadModel:
    return ReadModel(lambda: world.live_controller, world.fabric)


def test_snapshot_matches_full_scan(eventful_world):
    model = model_for(eventful_world)
    model.refresh(eventful_world.sim.now)
    assert model.status() == full_scan_status(
        eventful_world.live_controller)
    model.verify_status_parity()  # must not raise


def test_incremental_mttr_folds_only_the_tail(eventful_world):
    """Repeated refreshes never rescan the closed list — the fold
    cursor only moves forward — yet the MTTR stays exact."""
    model = model_for(eventful_world)
    model.refresh()
    controller = eventful_world.live_controller
    assert model._closed_seen == len(controller.closed_incidents)
    times = controller.repair_times()
    snap = model.snapshot
    assert snap.repair_count == len(times)
    assert snap.repair_seconds_total == pytest.approx(sum(times))
    # A second refresh folds zero new incidents.
    model.refresh()
    assert model.snapshot.repair_seconds_total == pytest.approx(
        sum(times))


def test_refresh_mid_run_tracks_live_state():
    world = build_world(WorldConfig(
        horizon_days=3.0, seed=9, failure_scale=2.0,
        level=AutomationLevel.L3_HIGH_AUTOMATION))
    model = model_for(world)
    for until in (0.5 * DAY, 1.5 * DAY, 3.0 * DAY):
        world.sim.run(until=until)
        model.refresh(world.sim.now)
        assert model.status() == full_scan_status(
            world.live_controller)
        assert model.snapshot.time == until


def test_link_health_serves_the_columns(eventful_world):
    model = model_for(eventful_world)
    model.refresh()
    fabric = eventful_world.fabric
    link_id = next(iter(fabric.links))
    health = model.link_health(link_id)
    link = fabric.links[link_id]
    assert health["link_id"] == link_id
    assert health["state"] == link.state.value
    assert health["external_report"] is None
    with pytest.raises(KeyError):
        model.link_health("no-such-link")


def test_incident_lookup_is_the_open_ledger(eventful_world):
    model = model_for(eventful_world)
    controller = eventful_world.live_controller
    for link_id, incident in controller.open_incidents.items():
        assert model.incident(link_id) is incident
    assert model.incident("no-such-link") is None


def test_record_external_materializes_without_touching_sim(
        eventful_world):
    model = model_for(eventful_world)
    heap_before = list(eventful_world.sim._heap)
    report = types.SimpleNamespace(source_id="dev-1", link_id=None,
                                   value=3.0)
    model.record_external(report)
    model.record_external(types.SimpleNamespace(
        source_id="dev-1", link_id=None, value=4.0))
    assert model.external_last["dev-1"].value == 4.0
    assert model.external_ingested == 2
    assert list(eventful_world.sim._heap) == heap_before
    model.refresh()
    assert model.status() == full_scan_status(
        eventful_world.live_controller)


def test_parity_error_on_stale_snapshot(eventful_world):
    """A snapshot doctored out from under the oracle trips the audit."""
    model = model_for(eventful_world)
    model.refresh()
    import dataclasses
    model.snapshot = dataclasses.replace(
        model.snapshot, links_down=model.snapshot.links_down + 1)
    with pytest.raises(ReadModelParityError):
        model.verify_status_parity()


# -- failover / ledger-shrink handling ----------------------------------------


class _StubController:
    def __init__(self, closed):
        self.open_incidents = {}
        self.closed_incidents = list(closed)
        self.unresolved_incidents = []
        self.proactive_outcomes = []

    def repair_times(self):
        return [incident.time_to_repair
                for incident in self.closed_incidents]


def _incident(seconds):
    return types.SimpleNamespace(time_to_repair=float(seconds))


def test_mttr_refolds_after_ledger_shrink(eventful_world):
    """A failover successor can restart with shorter ledgers; the
    fold cursor resets instead of double-counting."""
    controller = _StubController([_incident(10), _incident(20),
                                  _incident(30)])
    controller.fabric = eventful_world.fabric
    model = ReadModel(controller, eventful_world.fabric)
    model.refresh(0.0)
    assert model.snapshot.repair_seconds_total == pytest.approx(60.0)

    controller.closed_incidents = [_incident(7)]
    model.refresh(1.0)
    assert model.snapshot.repair_count == 1
    assert model.snapshot.repair_seconds_total == pytest.approx(7.0)
    model.verify_status_parity()


# -- campus aggregation -------------------------------------------------------


def test_campus_readmodel_sums_hall_snapshots():
    worlds = [run_world(WorldConfig(
        horizon_days=2.0, seed=seed, failure_scale=2.0,
        level=AutomationLevel.L3_HIGH_AUTOMATION))
        for seed in (3, 4)]
    campus = CampusReadModel({
        hall: ReadModel(world.live_controller, world.fabric)
        for hall, world in enumerate(worlds)})
    campus.refresh()
    campus.verify_status_parity()
    status = campus.status()
    oracles = [full_scan_status(world.live_controller)
               for world in worlds]
    assert status.closed_incidents == sum(o.closed_incidents
                                          for o in oracles)
    assert status.links_total == sum(o.links_total for o in oracles)
    assert status.links_down == sum(o.links_down for o in oracles)
    times = [t for world in worlds
             for t in world.live_controller.repair_times()]
    if times:
        assert status.mean_time_to_repair_seconds == pytest.approx(
            sum(times) / len(times))


def test_snapshot_is_frozen(eventful_world):
    model = model_for(eventful_world)
    snap = model.refresh()
    assert isinstance(snap, ReadSnapshot)
    with pytest.raises(Exception):
        snap.links_down = 0
