"""Serving is observation: a served world == the same world, batch-run.

The whole service plane — bridge slicing, interleaved queries,
telemetry ingestion, parity audits — must be invisible to the
simulation.  These tests pin that with full ``WorldSummary``
equality (every field, via ``dataclasses.asdict``) between a served
run and a plain ``run_world``/``run_campus`` of the same config."""

import asyncio
import dataclasses

from dcrobot.core.automation import AutomationLevel
from dcrobot.experiments import WorldConfig, run_world
from dcrobot.experiments.runner import summarize_world
from dcrobot.service import (
    BridgeConfig,
    ServiceConfig,
    TelemetryReport,
    serve_world,
)
from dcrobot.shard.campus import run_campus

DAY = 86400.0

SERVICE = ServiceConfig(
    bridge=BridgeConfig(max_events_per_slice=48), audit_every=3)


def drive_queries(service, done):
    """A busy client: queries + telemetry interleaving with slices."""

    async def client():
        i = 0
        while not done.is_set():
            await service.status()
            service.offer_telemetry(TelemetryReport(
                source_id=f"probe-{i % 7}", value=float(i)))
            if i % 5 == 0:
                await service.smi(audit=service.readmodels[0]
                                  .smi_tracker is not None)
            i += 1
            await asyncio.sleep(0)

    return client


def test_served_world_summary_is_bit_identical():
    config = WorldConfig(horizon_days=3.0, seed=7, failure_scale=2.0,
                         level=AutomationLevel.L3_HIGH_AUTOMATION)

    async def serve():
        served = serve_world(config, SERVICE)
        done = asyncio.Event()
        client = asyncio.ensure_future(
            drive_queries(served.service, done)())
        await served.serve()
        done.set()
        await client
        return served

    served = asyncio.run(serve())
    assert served.service.parity_audits > 0
    assert served.service.parity_failures == 0

    batch = summarize_world(run_world(dataclasses.replace(config)))
    assert dataclasses.asdict(served.summarize()) == \
        dataclasses.asdict(batch)


def test_served_campus_halls_are_bit_identical():
    config = WorldConfig(horizon_days=2.0, seed=11, halls=2,
                         level=AutomationLevel.L3_HIGH_AUTOMATION)

    async def serve():
        served = serve_world(config, SERVICE)
        done = asyncio.Event()
        client = asyncio.ensure_future(
            drive_queries(served.service, done)())
        await served.serve()
        done.set()
        await client
        return served

    served = asyncio.run(serve())
    got = served.summarize()
    want = run_campus(dataclasses.replace(config))

    assert [dataclasses.asdict(s) for s in got.hall_summaries] == \
        [dataclasses.asdict(s) for s in want.hall_summaries]
    assert got.campus_smi == want.campus_smi
    assert got.hall_epochs == want.hall_epochs
    assert got.boundary_delivered_bytes == want.boundary_delivered_bytes
    assert got.cross_hall_incidents == want.cross_hall_incidents


def test_partial_serve_then_resume_still_matches():
    """Stopping at an intermediate target and resuming does not leak:
    the final world equals one straight run."""
    config = WorldConfig(horizon_days=2.0, seed=3, failure_scale=2.0,
                         level=AutomationLevel.L3_HIGH_AUTOMATION)

    async def serve():
        served = serve_world(config, SERVICE)
        await served.serve(until=0.7 * DAY)
        await served.service.status()
        await served.serve()  # resume to the horizon
        return served

    served = asyncio.run(serve())
    batch = summarize_world(run_world(dataclasses.replace(config)))
    assert dataclasses.asdict(served.summarize()) == \
        dataclasses.asdict(batch)
