"""SimBridge: sliced stepping must equal ``sim.run``, exactly."""

import asyncio

import numpy as np
import pytest

from dcrobot.core.automation import AutomationLevel
from dcrobot.experiments import WorldConfig, build_world
from dcrobot.service.bridge import BridgeConfig, SimBridge
from dcrobot.sim.engine import Simulation

DAY = 86400.0

CONFIG = WorldConfig(horizon_days=3.0, seed=21, failure_scale=2.0,
                     level=AutomationLevel.L3_HIGH_AUTOMATION)


def fingerprint(world):
    state = world.fabric.state
    n = state.n_links
    controller = world.live_controller
    return (world.sim.now,
            state.state_code[:n].tolist(),
            np.round(state.loss_rate[:n], 15).tolist(),
            len(controller.open_incidents),
            len(controller.closed_incidents),
            len(controller.unresolved_incidents),
            controller.repair_times())


def test_bridge_matches_sim_run_bit_for_bit():
    batch = build_world(CONFIG)
    batch.sim.run(until=CONFIG.horizon_seconds)

    served = build_world(CONFIG)
    bridge = SimBridge(served.sim,
                       BridgeConfig(max_events_per_slice=7))
    asyncio.run(bridge.run_until(CONFIG.horizon_seconds))

    assert fingerprint(served) == fingerprint(batch)
    assert served.sim.now == CONFIG.horizon_seconds
    assert bridge.events_processed > 0
    assert bridge.slices >= bridge.events_processed / 7


def test_incremental_targets_equal_one_shot():
    batch = build_world(CONFIG)
    batch.sim.run(until=CONFIG.horizon_seconds)

    served = build_world(CONFIG)
    bridge = SimBridge(served.sim, BridgeConfig())

    async def staged():
        for day in (0.5, 1.0, 2.25, 3.0):
            await bridge.run_until(day * DAY)

    asyncio.run(staged())
    assert fingerprint(served) == fingerprint(batch)


def test_slice_hooks_fire_and_see_current_time():
    world = build_world(CONFIG)
    bridge = SimBridge(world.sim,
                       BridgeConfig(max_events_per_slice=16))
    seen = []
    bridge.add_slice_hook(lambda now: seen.append(now))
    asyncio.run(bridge.run_until(0.5 * DAY))
    assert seen, "hooks never fired"
    assert seen == sorted(seen)
    # The final hook fires after now snaps to the target.
    assert seen[-1] == 0.5 * DAY


def test_target_in_the_past_is_rejected():
    sim = Simulation()
    sim.now = 10.0
    bridge = SimBridge(sim)
    with pytest.raises(ValueError):
        asyncio.run(bridge.run_until(5.0))


def test_config_validation():
    with pytest.raises(ValueError):
        BridgeConfig(max_events_per_slice=0)
    with pytest.raises(ValueError):
        BridgeConfig(pace=0.0)
    with pytest.raises(ValueError):
        BridgeConfig(stall_budget_seconds=0.0)
    with pytest.raises(ValueError):
        SimBridge([])


# -- wall-clock coupling (virtual clock; no real sleeping) --------------------


class VirtualLoop:
    """A deterministic clock that only advances when the bridge
    sleeps; ``extra`` models an overloaded event loop handing control
    back late."""

    def __init__(self, extra=0.0):
        self.t = 0.0
        self.extra = extra
        self.sleeps = []

    def clock(self):
        return self.t

    async def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.t += seconds + self.extra


def test_pace_throttles_the_sim_to_wall_clock():
    world = build_world(CONFIG)
    loop = VirtualLoop()
    # 1 sim-day per wall-second.
    bridge = SimBridge(world.sim,
                       BridgeConfig(max_events_per_slice=64,
                                    pace=DAY),
                       clock=loop.clock, sleep=loop.sleep)
    asyncio.run(bridge.run_until(2.0 * DAY))
    # The sim was held back: total intended sleep ≈ the 2-wall-second
    # serve window (short only by the gap between the last event and
    # the horizon — periodic ticks keep that under a few sim-minutes).
    assert 1.9 <= sum(loop.sleeps) <= 2.0
    assert bridge.stalls == 0


def test_free_run_never_sleeps_positive():
    world = build_world(CONFIG)
    loop = VirtualLoop()
    bridge = SimBridge(world.sim, BridgeConfig(),
                       clock=loop.clock, sleep=loop.sleep)
    asyncio.run(bridge.run_until(1.0 * DAY))
    assert all(s == 0.0 for s in loop.sleeps)


def test_late_wakeups_count_as_stalls():
    world = build_world(CONFIG)
    loop = VirtualLoop(extra=0.5)  # every yield returns 0.5s late
    bridge = SimBridge(world.sim,
                       BridgeConfig(max_events_per_slice=256,
                                    stall_budget_seconds=0.25),
                       clock=loop.clock, sleep=loop.sleep)
    asyncio.run(bridge.run_until(1.0 * DAY))
    assert bridge.stalls == len(loop.sleeps)
    assert bridge.max_gap_seconds == pytest.approx(0.5)
