"""Unit tests for probe-based fault localization."""

import numpy as np
import pytest

from dcrobot.network import LinkState, SwitchRole
from dcrobot.telemetry import ProbeLocalizer
from dcrobot.topology import build_fattree, build_leafspine


@pytest.fixture
def topo():
    return build_leafspine(leaves=4, spines=2,
                           rng=np.random.default_rng(3))


def leaves(topo):
    return topo.switches(SwitchRole.LEAF)


def test_probe_reports_path_and_success(topo):
    localizer = ProbeLocalizer(topo.fabric)
    src, dst = leaves(topo)[:2]
    observation = localizer.probe(src, dst)
    assert observation is not None
    assert observation.success
    assert len(observation.link_ids) == 2  # leaf-spine-leaf


def test_probe_detects_lossy_hop(topo):
    localizer = ProbeLocalizer(topo.fabric)
    src, dst = leaves(topo)[:2]
    observation = localizer.probe(src, dst)
    victim = topo.fabric.links[observation.link_ids[0]]
    victim.loss_rate = 1e-2
    repeated = localizer.probe(src, dst)
    assert not repeated.success


def test_localize_single_down_link(topo):
    localizer = ProbeLocalizer(topo.fabric)
    victim = list(topo.fabric.links.values())[0]
    victim.set_state(1.0, LinkState.DOWN)
    report = localizer.localize_between(leaves(topo),
                                        probes_per_pair=2)
    assert report.localized
    assert victim.id in report.suspects
    # Healthy links on passing paths are exonerated, not suspected.
    assert not set(report.suspects) - {victim.id} & report.exonerated


def test_localize_exonerates_healthy_links(topo):
    localizer = ProbeLocalizer(topo.fabric)
    victim = list(topo.fabric.links.values())[0]
    victim.set_state(1.0, LinkState.DOWN)
    report = localizer.localize_between(leaves(topo))
    assert victim.id not in report.exonerated
    assert len(report.exonerated) >= 2


def test_localize_two_simultaneous_faults(topo):
    localizer = ProbeLocalizer(topo.fabric)
    links = list(topo.fabric.links.values())
    victims = {links[0].id, links[-1].id}
    links[0].set_state(1.0, LinkState.DOWN)
    links[-1].set_state(1.0, LinkState.DOWN)
    report = localizer.localize_between(leaves(topo),
                                        probes_per_pair=2)
    assert victims <= set(report.suspects) | report.exonerated
    assert victims & set(report.suspects)


def test_healthy_fabric_no_suspects(topo):
    localizer = ProbeLocalizer(topo.fabric)
    report = localizer.localize_between(leaves(topo))
    assert not report.localized
    assert report.failing_paths == 0


def test_localization_on_fattree():
    topo = build_fattree(k=4, rng=np.random.default_rng(5))
    localizer = ProbeLocalizer(topo.fabric)
    victim = list(topo.fabric.links.values())[7]
    victim.set_state(1.0, LinkState.DOWN)
    report = localizer.localize_between(topo.switches(SwitchRole.TOR),
                                        probes_per_pair=2)
    # The victim may not be on any shortest probe path; if any path
    # failed, the suspect set must be small and include only
    # non-exonerated links.
    if report.failing_paths:
        assert len(report.suspects) <= 3
        for suspect in report.suspects:
            assert suspect not in report.exonerated


def test_probe_disconnected_endpoint_returns_none(topo):
    fabric = topo.fabric
    isolated = fabric.add_switch(SwitchRole.LEAF, radix=2)
    localizer = ProbeLocalizer(fabric)
    assert localizer.probe(leaves(topo)[0], isolated.id) is None
