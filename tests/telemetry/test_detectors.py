"""Symptom detectors: debounce, severity ordering, loss persistence."""

import pytest

from dcrobot.network.enums import LinkState
from dcrobot.telemetry.detectors import DetectorParams, LinkDetector
from dcrobot.telemetry.events import Symptom

from tests.conftest import make_world


def fast_params(**overrides):
    defaults = dict(down_grace_seconds=300.0, flap_transitions=4,
                    flap_window_seconds=3600.0, loss_threshold=1e-5,
                    loss_persistence_seconds=600.0)
    defaults.update(overrides)
    return DetectorParams(**defaults)


@pytest.fixture
def link():
    return make_world(links=1).links[0]


def test_params_validation():
    with pytest.raises(ValueError, match="down_grace_seconds"):
        DetectorParams(down_grace_seconds=-1.0)
    with pytest.raises(ValueError, match="flap_transitions"):
        DetectorParams(flap_transitions=1)
    with pytest.raises(ValueError, match="flap_window_seconds"):
        DetectorParams(flap_window_seconds=0.0)
    with pytest.raises(ValueError, match="loss_persistence_seconds"):
        DetectorParams(loss_persistence_seconds=-5.0)


def test_healthy_link_is_silent(link):
    assert LinkDetector(fast_params()).check(link, 100.0) is None


def test_down_fires_only_after_the_grace_period(link):
    detector = LinkDetector(fast_params())
    link.set_state(100.0, LinkState.DOWN)
    # A technician brushing the bundle disturbs a link for minutes;
    # ticketing inside the grace window would storm the plane.
    assert detector.check(link, 200.0) is None
    event = detector.check(link, 400.0)
    assert event is not None
    assert event.symptom is Symptom.LINK_DOWN
    assert event.link_id == link.id
    assert "down for 300s" in event.detail


def test_maintenance_state_is_never_a_symptom(link):
    detector = LinkDetector(fast_params())
    link.set_state(100.0, LinkState.MAINTENANCE)
    assert detector.check(link, 86400.0) is None


def test_flapping_is_counted_in_the_sliding_window(link):
    detector = LinkDetector(fast_params())
    for time in (100.0, 200.0, 300.0, 400.0):
        state = (LinkState.DOWN if link.state is LinkState.UP
                 else LinkState.UP)
        link.set_state(time, state)
    event = detector.check(link, 450.0)
    assert event is not None
    assert event.symptom is Symptom.LINK_FLAPPING
    # Outside the window the same history stops counting.
    assert detector.check(link, 400.0 + 3601.0) is None


def test_a_bouncing_down_link_reports_the_flap_diagnosis(link):
    # Down past the grace period *and* recently bouncing: the flap is
    # the more actionable diagnosis, so it wins the severity tie.
    detector = LinkDetector(fast_params())
    for time in (100.0, 200.0, 300.0, 400.0):
        state = (LinkState.DOWN if link.state is LinkState.UP
                 else LinkState.UP)
        link.set_state(time, state)
    link.set_state(500.0, LinkState.DOWN)
    event = detector.check(link, 900.0)
    assert event is not None
    assert event.symptom is Symptom.LINK_FLAPPING
    assert "now down" in event.detail


def test_high_loss_requires_persistence(link):
    detector = LinkDetector(fast_params())
    link.loss_rate = 1e-3
    assert detector.check(link, 100.0) is None  # starts the clock
    assert detector.check(link, 400.0) is None  # not persistent yet
    event = detector.check(link, 700.0)
    assert event is not None
    assert event.symptom is Symptom.HIGH_LOSS
    assert "1.00e-03" in event.detail


def test_loss_recovery_resets_the_persistence_clock(link):
    detector = LinkDetector(fast_params())
    link.loss_rate = 1e-3
    assert detector.check(link, 100.0) is None
    link.loss_rate = 0.0
    assert detector.check(link, 400.0) is None  # recovered: clock reset
    link.loss_rate = 1e-3
    assert detector.check(link, 800.0) is None  # persistence starts over
    assert detector.check(link, 1400.0) is not None


def test_a_down_link_never_reports_loss(link):
    detector = LinkDetector(fast_params(down_grace_seconds=0.0))
    link.loss_rate = 1e-3
    link.set_state(100.0, LinkState.DOWN)
    event = detector.check(link, 100.0)
    assert event is not None
    assert event.symptom is Symptom.LINK_DOWN
