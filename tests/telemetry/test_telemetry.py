"""Unit tests for telemetry detectors and the monitor."""

import numpy as np
import pytest

from dcrobot.network import (
    CableKind,
    Fabric,
    HallLayout,
    LinkState,
    SwitchRole,
)
from dcrobot.sim import Simulation
from dcrobot.telemetry import (
    DetectorParams,
    LinkDetector,
    Symptom,
    TelemetryMonitor,
)


def make_fabric(links=1):
    fabric = Fabric(layout=HallLayout(rows=1, racks_per_row=2),
                    rng=np.random.default_rng(0))
    a = fabric.add_switch(SwitchRole.TOR, radix=max(links, 2),
                          rack_id=fabric.layout.rack_at(0, 0).id)
    b = fabric.add_switch(SwitchRole.TOR, radix=max(links, 2),
                          rack_id=fabric.layout.rack_at(0, 1).id)
    made = [fabric.connect(a.id, b.id, kind=CableKind.MPO)
            for _ in range(links)]
    return fabric, made


def test_params_validation():
    with pytest.raises(ValueError):
        DetectorParams(down_grace_seconds=-1)
    with pytest.raises(ValueError):
        DetectorParams(flap_transitions=1)
    with pytest.raises(ValueError):
        DetectorParams(flap_window_seconds=0)


def test_healthy_link_no_event():
    _fabric, (link,) = make_fabric()
    detector = LinkDetector()
    assert detector.check(link, now=1000.0) is None


def test_down_within_grace_not_reported():
    _fabric, (link,) = make_fabric()
    detector = LinkDetector(DetectorParams(down_grace_seconds=900.0))
    link.set_state(1000.0, LinkState.DOWN)
    assert detector.check(link, now=1500.0) is None


def test_down_beyond_grace_reported():
    _fabric, (link,) = make_fabric()
    detector = LinkDetector(DetectorParams(down_grace_seconds=900.0))
    link.set_state(1000.0, LinkState.DOWN)
    event = detector.check(link, now=2000.0)
    assert event is not None
    assert event.symptom is Symptom.LINK_DOWN
    assert event.link_id == link.id


def test_flapping_detected_from_transitions():
    _fabric, (link,) = make_fabric()
    detector = LinkDetector(DetectorParams(flap_transitions=4,
                                           flap_window_seconds=3600.0))
    # Oscillate: 4 transitions within the hour.
    link.set_state(100.0, LinkState.DOWN)
    link.set_state(200.0, LinkState.UP)
    link.set_state(300.0, LinkState.DOWN)
    link.set_state(400.0, LinkState.UP)
    event = detector.check(link, now=500.0)
    assert event is not None
    assert event.symptom is Symptom.LINK_FLAPPING


def test_flapping_preferred_over_down_when_bouncing():
    _fabric, (link,) = make_fabric()
    detector = LinkDetector(DetectorParams(flap_transitions=4,
                                           down_grace_seconds=900.0))
    link.set_state(100.0, LinkState.DOWN)
    link.set_state(200.0, LinkState.UP)
    link.set_state(300.0, LinkState.DOWN)
    link.set_state(400.0, LinkState.UP)
    link.set_state(500.0, LinkState.DOWN)
    event = detector.check(link, now=1500.0)
    assert event.symptom is Symptom.LINK_FLAPPING
    assert "now down" in event.detail


def test_old_transitions_age_out_of_window():
    _fabric, (link,) = make_fabric()
    detector = LinkDetector(DetectorParams(flap_transitions=4,
                                           flap_window_seconds=600.0))
    link.set_state(100.0, LinkState.DOWN)
    link.set_state(200.0, LinkState.UP)
    link.set_state(300.0, LinkState.DOWN)
    link.set_state(400.0, LinkState.UP)
    assert detector.check(link, now=5000.0) is None


def test_high_loss_requires_persistence():
    _fabric, (link,) = make_fabric()
    detector = LinkDetector(DetectorParams(
        loss_threshold=1e-5, loss_persistence_seconds=1800.0))
    link.loss_rate = 1e-3
    # First sighting arms the persistence clock; no ticket yet.
    assert detector.check(link, now=100.0) is None
    event = detector.check(link, now=2000.0)
    assert event.symptom is Symptom.HIGH_LOSS


def test_high_loss_persistence_resets_when_clean():
    _fabric, (link,) = make_fabric()
    detector = LinkDetector(DetectorParams(
        loss_threshold=1e-5, loss_persistence_seconds=1800.0))
    link.loss_rate = 1e-3
    assert detector.check(link, now=100.0) is None
    link.loss_rate = 0.0  # transient blip cleared
    assert detector.check(link, now=400.0) is None
    link.loss_rate = 1e-3
    # Clock restarts at the first scan that sees loss again.
    assert detector.check(link, now=500.0) is None
    assert detector.check(link, now=500.0 + 1799.0) is None
    assert detector.check(link, now=500.0 + 1801.0) is not None


def test_maintenance_suppresses_detection():
    _fabric, (link,) = make_fabric()
    detector = LinkDetector()
    link.set_state(0.0, LinkState.MAINTENANCE)
    link.loss_rate = 1.0
    assert detector.check(link, now=10_000.0) is None


# -- monitor ---------------------------------------------------------------------

def test_monitor_dispatches_to_subscribers():
    fabric, (link,) = make_fabric()
    monitor = TelemetryMonitor(fabric, poll_seconds=60.0)
    received = []
    monitor.subscribe(received.append)
    link.set_state(0.0, LinkState.DOWN)
    monitor.scan(now=1000.0)
    assert len(received) == 1
    assert received[0].link_id == link.id


def test_monitor_mutes_after_first_report():
    fabric, (link,) = make_fabric()
    monitor = TelemetryMonitor(fabric, poll_seconds=60.0)
    link.set_state(0.0, LinkState.DOWN)
    first = monitor.scan(now=1000.0)
    second = monitor.scan(now=1100.0)
    assert len(first) == 1
    assert second == []
    assert monitor.is_muted(link.id)


def test_monitor_unmute_rearms():
    fabric, (link,) = make_fabric()
    monitor = TelemetryMonitor(fabric, poll_seconds=60.0)
    link.set_state(0.0, LinkState.DOWN)
    monitor.scan(now=1000.0)
    monitor.unmute(link.id)
    again = monitor.scan(now=1200.0)
    assert len(again) == 1


def test_monitor_process_scans_on_schedule():
    fabric, (link,) = make_fabric()
    monitor = TelemetryMonitor(fabric, poll_seconds=60.0)
    seen = []
    monitor.subscribe(lambda event: seen.append(event.time))
    sim = Simulation()
    sim.process(monitor.run(sim))

    def fail_later(sim, link):
        yield sim.timeout(150.0)
        link.set_state(sim.now, LinkState.DOWN)

    sim.process(fail_later(sim, link))
    sim.run(until=3600.0)
    assert seen  # detected after grace
    assert seen[0] >= 150.0 + 900.0


def test_monitor_validation():
    fabric, _links = make_fabric()
    with pytest.raises(ValueError):
        TelemetryMonitor(fabric, poll_seconds=0.0)
