"""TrafficDriver: windows as a sim process, stats, maintenance slicing."""

import numpy as np
import pytest

from dcrobot.network import SwitchRole
from dcrobot.sim import Simulation
from dcrobot.topology import build_leafspine
from dcrobot.traffic import (
    HotspotPattern,
    TrafficDriver,
    TrafficState,
    UniformPattern,
)


@pytest.fixture
def topo():
    return build_leafspine(leaves=4, spines=2, uplinks_per_pair=1,
                           rng=np.random.default_rng(0))


@pytest.fixture
def traffic(topo):
    return TrafficState(topo.fabric, topo.switches(SwitchRole.LEAF),
                        rng=np.random.default_rng(7))


def test_driver_validation(traffic):
    with pytest.raises(ValueError):
        TrafficDriver(traffic, window_seconds=0.0)
    with pytest.raises(ValueError):
        TrafficDriver(traffic, flows_per_window=0)
    with pytest.raises(ValueError):
        TrafficDriver(traffic, sample_seconds=-1.0)


def test_sample_seconds_defaults_to_cadence(traffic):
    driver = TrafficDriver(traffic, window_seconds=600.0)
    assert driver.sample_seconds == 600.0
    peaky = TrafficDriver(traffic, window_seconds=600.0,
                          sample_seconds=1.0)
    assert peaky.sample_seconds == 1.0


def test_driver_offers_one_window_per_period(traffic):
    driver = TrafficDriver(traffic,
                           rng=np.random.default_rng(1),
                           window_seconds=100.0,
                           flows_per_window=50)
    sim = Simulation()
    sim.process(driver.run(sim))
    sim.run(until=350.0)
    assert len(driver.windows) == 3
    assert [w.time for w in driver.windows] == [100.0, 200.0, 300.0]
    for window in driver.windows:
        assert window.flows == 50
        assert window.unroutable == 0
        assert window.offered_bytes > 0
        assert not window.maintenance_active
    # Flow ids keep advancing across windows.
    assert driver._next_flow_id == 150


def test_schedule_overrides_count_and_pattern(traffic):
    hot = HotspotPattern(hot_endpoints=1, hot_probability=1.0)

    def schedule(now):
        if now < 150.0:
            return 10, UniformPattern()
        return 40, hot

    driver = TrafficDriver(traffic, rng=np.random.default_rng(2),
                           window_seconds=100.0, schedule=schedule)
    sim = Simulation()
    sim.process(driver.run(sim))
    sim.run(until=250.0)
    assert [w.flows for w in driver.windows] == [10, 40]


def test_maintenance_windows_slice_on_drains(traffic, topo):
    driver = TrafficDriver(traffic, rng=np.random.default_rng(3),
                           window_seconds=10.0, flows_per_window=20)
    driver.offer(10.0)
    link = topo.fabric.links_of(topo.switches(SwitchRole.LEAF)[0])[0]
    traffic.drain(link.id)
    driver.offer(20.0)
    traffic.undrain(link.id)
    driver.offer(30.0)
    flags = [w.maintenance_active for w in driver.windows]
    assert flags == [False, True, False]
    maintenance = driver.maintenance_windows()
    assert len(maintenance) == 1
    assert maintenance[0].time == 20.0


def test_p99_over_skips_nan_windows(traffic):
    driver = TrafficDriver(traffic, rng=np.random.default_rng(4),
                           window_seconds=10.0, flows_per_window=20)
    assert np.isnan(driver.p99_over(driver.windows))
    driver.offer(10.0)
    p99 = driver.p99_over(driver.windows)
    assert np.isfinite(p99) and p99 > 0.0
