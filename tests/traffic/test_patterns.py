"""Synthetic traffic-matrix pattern tests."""

import numpy as np
import pytest

from dcrobot.traffic import (
    HotspotPattern,
    IncastPattern,
    UniformPattern,
)

N_ENDPOINTS = 16
COUNT = 4000


@pytest.mark.parametrize("pattern", [
    UniformPattern(),
    HotspotPattern(hot_endpoints=2, hot_probability=0.75),
    IncastPattern(targets=1, incast_probability=0.5),
])
def test_pairs_are_distinct_and_in_range(pattern):
    src, dst = pattern.pairs(np.random.default_rng(1), COUNT,
                             N_ENDPOINTS)
    assert len(src) == len(dst) == COUNT
    assert (src != dst).all()
    for arr in (src, dst):
        assert arr.min() >= 0
        assert arr.max() < N_ENDPOINTS


@pytest.mark.parametrize("pattern", [
    UniformPattern(),
    HotspotPattern(hot_endpoints=2, hot_probability=0.75),
    IncastPattern(targets=1, incast_probability=0.5),
])
def test_pairs_are_deterministic_per_seed(pattern):
    a = pattern.pairs(np.random.default_rng(9), COUNT, N_ENDPOINTS)
    b = pattern.pairs(np.random.default_rng(9), COUNT, N_ENDPOINTS)
    assert np.array_equal(a[0], b[0])
    assert np.array_equal(a[1], b[1])


def test_uniform_spreads_sources():
    src, _dst = UniformPattern().pairs(np.random.default_rng(2),
                                       COUNT, N_ENDPOINTS)
    counts = np.bincount(src, minlength=N_ENDPOINTS)
    # Every endpoint sources a roughly fair share.
    assert counts.min() > COUNT / N_ENDPOINTS * 0.5


def test_hotspot_concentrates_sources_on_prefix():
    pattern = HotspotPattern(hot_endpoints=2, hot_probability=0.75)
    src, _dst = pattern.pairs(np.random.default_rng(3), COUNT,
                              N_ENDPOINTS)
    hot_share = float((src < 2).sum()) / COUNT
    # 75% hot + the uniform remainder landing on the prefix.
    expected = 0.75 + 0.25 * (2 / N_ENDPOINTS)
    assert hot_share == pytest.approx(expected, abs=0.05)


def test_incast_concentrates_destinations_on_targets():
    pattern = IncastPattern(targets=1, incast_probability=0.5)
    _src, dst = pattern.pairs(np.random.default_rng(4), COUNT,
                              N_ENDPOINTS)
    target_share = float((dst == 0).sum()) / COUNT
    expected = 0.5 + 0.5 * (1 / N_ENDPOINTS)
    assert target_share == pytest.approx(expected, abs=0.05)


def test_pattern_validation():
    with pytest.raises(ValueError):
        HotspotPattern(hot_endpoints=0)
    with pytest.raises(ValueError):
        HotspotPattern(hot_endpoints=1, hot_probability=1.5)
    with pytest.raises(ValueError):
        IncastPattern(targets=0)
    with pytest.raises(ValueError):
        IncastPattern(targets=1, incast_probability=-0.1)
