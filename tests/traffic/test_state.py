"""Unit tests for the columnar traffic engine (S17)."""

import numpy as np
import pytest

from dcrobot.network import LinkState, SwitchRole
from dcrobot.topology import build_fattree
from dcrobot.traffic import EcmpRouter, TrafficState, sample_sizes


@pytest.fixture
def topo():
    return build_fattree(k=4, rng=np.random.default_rng(0))


@pytest.fixture
def tors(topo):
    return topo.switches(SwitchRole.TOR)


@pytest.fixture
def traffic(topo, tors):
    return TrafficState(topo.fabric, tors,
                        rng=np.random.default_rng(7))


def offer(traffic, rng, count=200, window_seconds=60.0, src=None):
    n = len(traffic.endpoints)
    if src is None:
        src = rng.integers(n, size=count)
    else:
        src = np.full(count, src, dtype=np.int64)
    dst = rng.integers(n - 1, size=count)
    dst = dst + (dst >= src)
    sizes = sample_sizes(rng, count)
    ids = np.arange(count, dtype=np.int64)
    return traffic.offer_window(src, dst, sizes, ids, window_seconds)


# -- construction ----------------------------------------------------------

def test_validation(topo, tors):
    with pytest.raises(ValueError):
        TrafficState(topo.fabric, tors, max_equal_paths=0)
    with pytest.raises(ValueError):
        TrafficState(topo.fabric, tors[:1])


# -- windows and accounting ------------------------------------------------

def test_offer_window_accounts_per_link(traffic, topo):
    result = offer(traffic, np.random.default_rng(1))
    assert result.flows == 200
    assert result.unroutable == 0
    assert result.routable.all()
    assert np.isfinite(result.fct[result.routable]).all()
    n = topo.fabric.state.n_links
    # Every routed flow crosses >= 2 links; offered bytes accumulate.
    assert float(result.offered[:n].sum()) > 0
    assert np.array_equal(traffic.util_bytes.values[:n],
                          result.offered[:n])
    assert float(traffic.util_flows.values[:n].sum()) > 0


def test_accounting_is_cumulative(traffic):
    offer(traffic, np.random.default_rng(1))
    n = traffic.fabric.state.n_links
    first = traffic.util_bytes.values[:n].copy()
    offer(traffic, np.random.default_rng(2))
    assert (traffic.util_bytes.values[:n] >= first).all()
    assert float(traffic.util_bytes.values[:n].sum()) \
        > float(first.sum())


def test_unroutable_flows_are_nan(traffic, topo, tors):
    # Isolate the first ToR: every flow touching it becomes unroutable.
    for link in topo.fabric.links_of(tors[0]):
        link.set_state(0.0, LinkState.DOWN)
    result = offer(traffic, np.random.default_rng(3), src=0)
    assert result.unroutable == result.flows
    assert np.isnan(result.fct).all()
    assert np.isnan(result.fct_percentile(99))


# -- path cache invalidation -----------------------------------------------

def test_paths_follow_link_state(traffic, topo, tors):
    src, dst = tors[0], tors[-1]
    before = traffic.equal_cost_paths(src, dst)
    assert before  # inter-pod: multiple members
    link = topo.fabric.links_of(src)[0]
    link.set_state(0.0, LinkState.DOWN)
    after = traffic.equal_cost_paths(src, dst)
    assert len(after) < len(before)
    downed_agg = (set(link.endpoint_ids) - {src}).pop()
    assert all(downed_agg not in path for path in after)
    link.set_state(1.0, LinkState.UP)
    assert traffic.equal_cost_paths(src, dst) == before


def test_drain_and_undrain_invalidate_paths(traffic, topo, tors):
    src, dst = tors[0], tors[-1]
    before = traffic.equal_cost_paths(src, dst)
    link = topo.fabric.links_of(src)[0]
    traffic.drain(link.id)
    assert link.id in traffic.drained_links
    drained = traffic.equal_cost_paths(src, dst)
    assert len(drained) < len(before)
    traffic.undrain(link.id)
    assert traffic.drained_links == set()
    assert traffic.equal_cost_paths(src, dst) == before


def test_drained_link_receives_no_traffic(traffic, topo, tors):
    link = topo.fabric.links_of(tors[0])[0]
    traffic.drain(link.id)
    result = offer(traffic, np.random.default_rng(4), src=0)
    row = topo.fabric.state.index_of[link.id]
    assert result.unroutable == 0
    assert float(result.offered[row]) == 0.0


def test_paths_match_object_router(traffic, topo, tors):
    router = EcmpRouter(topo.fabric)
    for src in tors[:4]:
        for dst in tors[-4:]:
            if src == dst:
                continue
            assert traffic.equal_cost_paths(src, dst) \
                == router.equal_cost_paths(src, dst)


# -- impact scoring ---------------------------------------------------------

def test_projected_zero_without_observed_traffic(traffic, topo, tors):
    link = topo.fabric.links_of(tors[0])[0]
    assert traffic.projected_group_utilization(link.id) == 0.0
    assert traffic.projected_group_utilization("no-such-link") == 0.0


def test_projected_group_utilization_spreads_over_fan(
        traffic, topo, tors):
    # All traffic sourced at ToR 0: its uplinks are the hot fan.
    offer(traffic, np.random.default_rng(5), count=400,
          window_seconds=1.0, src=0)
    fs = topo.fabric.state
    uplinks = topo.fabric.links_of(tors[0])
    rows = [fs.index_of[link.id] for link in uplinks]
    fan_bytes = float(traffic.last_offered[rows].sum())
    fan_caps = float((traffic._caps[rows] * 1e9 / 8.0).sum())
    for link in uplinks:
        row = fs.index_of[link.id]
        siblings = traffic._siblings_of(row)
        # Hop-position siblings of an uplink are the *other* uplinks
        # of the same ToR — never links elsewhere on the paths.
        assert siblings == set(rows) - {row}
        projected = traffic.projected_group_utilization(link.id)
        expected = fan_bytes / (fan_caps - traffic._caps[row]
                                * 1e9 / 8.0)
        assert projected == pytest.approx(expected)
        # Concentrating the same bytes on fewer links runs hotter
        # than the group does today.
        assert projected > fan_bytes / fan_caps
