"""EcmpRouter drain/undrain, cache invalidation, and connectivity."""

import numpy as np
import pytest

from dcrobot.network import LinkState, SwitchRole
from dcrobot.topology import build_leafspine
from dcrobot.traffic import EcmpRouter, NoRouteError


@pytest.fixture
def topo():
    return build_leafspine(leaves=6, spines=3, uplinks_per_pair=1,
                           rng=np.random.default_rng(0))


@pytest.fixture
def router(topo):
    return EcmpRouter(topo.fabric)


def leaves(topo):
    return topo.switches(SwitchRole.LEAF)


# -- drains -----------------------------------------------------------------

def test_drain_removes_link_from_routing(topo, router):
    src, dst = leaves(topo)[:2]
    before = router.equal_cost_paths(src, dst)
    assert len(before) == 3  # one member per spine
    link = topo.fabric.links_of(src)[0]
    via = (set(link.endpoint_ids) - {src}).pop()
    router.drain(link.id)
    assert link.id in router.drained_links
    after = router.equal_cost_paths(src, dst)
    assert len(after) == 2
    assert all(via not in path for path in after)
    for flow_hash in range(8):
        assert link.id not in {
            hop.id for hop in router.route(src, dst, flow_hash)}


def test_undrain_restores_original_paths(topo, router):
    src, dst = leaves(topo)[:2]
    before = router.equal_cost_paths(src, dst)
    link = topo.fabric.links_of(src)[0]
    router.drain(link.id)
    router.undrain(link.id)
    assert router.drained_links == set()
    assert router.equal_cost_paths(src, dst) == before


def test_draining_every_uplink_isolates_the_leaf(topo, router):
    src, dst = leaves(topo)[:2]
    for link in topo.fabric.links_of(src):
        router.drain(link.id)
    assert not router.has_route(src, dst)
    with pytest.raises(NoRouteError):
        router.route(src, dst)


# -- cache invalidation -----------------------------------------------------

def test_cache_serves_stale_paths_until_invalidated(topo, router):
    """The object router's contract is *manual* invalidation — the
    columnar engine's generation keying exists precisely because this
    footgun is easy to trip."""
    src, dst = leaves(topo)[:2]
    before = router.equal_cost_paths(src, dst)
    link = topo.fabric.links_of(src)[0]
    link.set_state(0.0, LinkState.DOWN)
    assert router.equal_cost_paths(src, dst) == before  # stale
    router.invalidate()
    assert len(router.equal_cost_paths(src, dst)) == len(before) - 1


def test_drain_invalidates_without_manual_call(topo, router):
    src, dst = leaves(topo)[:2]
    before = router.equal_cost_paths(src, dst)
    router.drain(topo.fabric.links_of(src)[0].id)
    assert len(router.equal_cost_paths(src, dst)) == len(before) - 1


# -- connectivity fraction --------------------------------------------------

def test_connectivity_exact_on_healthy_fabric(topo, router):
    assert router.connectivity_fraction(leaves(topo)) == 1.0


def test_connectivity_exact_after_isolation(topo, router):
    endpoints = leaves(topo)
    for link in topo.fabric.links_of(endpoints[0]):
        link.set_state(0.0, LinkState.DOWN)
    router.invalidate()
    n = len(endpoints)
    # Pairs not touching the isolated leaf still route.
    expected = ((n - 1) * (n - 2) / 2) / (n * (n - 1) / 2)
    assert router.connectivity_fraction(endpoints) \
        == pytest.approx(expected)


def test_connectivity_sampled_never_materializes_pairs(topo, router):
    """The sampled path draws linear indices straight from the
    combination space; estimates stay in [0, 1], are deterministic per
    seed, and agree with the exact answer on a healthy fabric."""
    endpoints = leaves(topo)  # 15 pairs
    sampled = router.connectivity_fraction(
        endpoints, rng=np.random.default_rng(3), sample_pairs=10)
    again = router.connectivity_fraction(
        endpoints, rng=np.random.default_rng(3), sample_pairs=10)
    assert sampled == again == 1.0

    for link in topo.fabric.links_of(endpoints[0]):
        link.set_state(0.0, LinkState.DOWN)
    router.invalidate()
    degraded = router.connectivity_fraction(
        endpoints, rng=np.random.default_rng(3), sample_pairs=10)
    assert 0.0 <= degraded < 1.0


def test_connectivity_trivial_endpoint_sets(router):
    assert router.connectivity_fraction([]) == 1.0
    assert router.connectivity_fraction(["one"]) == 1.0
