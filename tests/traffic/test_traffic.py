"""Unit tests for flows, routing, and the latency model."""

import numpy as np
import pytest

from dcrobot.network import LinkState
from dcrobot.topology import build_fattree, build_leafspine
from dcrobot.traffic import (
    EcmpRouter,
    Flow,
    FlowGenerator,
    LatencyModel,
    LatencyParams,
    NoRouteError,
    percentile,
)


@pytest.fixture
def topo():
    return build_leafspine(leaves=4, spines=2, uplinks_per_pair=1,
                           rng=np.random.default_rng(0))


@pytest.fixture
def router(topo):
    return EcmpRouter(topo.fabric)


def leaves(topo):
    from dcrobot.network import SwitchRole
    return topo.switches(SwitchRole.LEAF)


# -- flows -----------------------------------------------------------------

def test_flow_validation():
    with pytest.raises(ValueError):
        Flow(0, "a", "a", 100)
    with pytest.raises(ValueError):
        Flow(0, "a", "b", 0)


def test_flow_generator_distinct_endpoints():
    gen = FlowGenerator(["a", "b", "c"], rng=np.random.default_rng(1))
    for flow in gen.sample_batch(200):
        assert flow.src != flow.dst
        assert flow.size_bytes >= 64


def test_flow_generator_size_mix_is_heavy_tailed():
    gen = FlowGenerator(["a", "b"], rng=np.random.default_rng(2))
    sizes = [flow.size_bytes for flow in gen.sample_batch(2000)]
    assert np.median(sizes) < 100e3      # mice dominate
    assert max(sizes) > 1e6              # elephants exist


def test_flow_generator_validation():
    with pytest.raises(ValueError):
        FlowGenerator(["only-one"])
    gen = FlowGenerator(["a", "b"])
    with pytest.raises(ValueError):
        gen.sample_batch(-1)


# -- routing ---------------------------------------------------------------

def test_leafspine_paths_have_two_hops(topo, router):
    src, dst = leaves(topo)[:2]
    paths = router.equal_cost_paths(src, dst)
    assert len(paths) == 2  # one via each spine
    for path in paths:
        assert len(path) == 3  # leaf -> spine -> leaf


def test_route_returns_links(topo, router):
    src, dst = leaves(topo)[:2]
    path = router.route(src, dst, flow_hash=0)
    assert len(path) == 2
    assert path[0].operational


def test_flow_hash_spreads_over_equal_paths(topo, router):
    src, dst = leaves(topo)[:2]
    spines_used = {router.route(src, dst, flow_hash=h)[0].endpoint_ids[1]
                   for h in range(8)}
    assert len(spines_used) == 2


def test_failed_link_removed_from_routing(topo, router):
    src, dst = leaves(topo)[:2]
    all_paths = router.equal_cost_paths(src, dst)
    assert len(all_paths) == 2
    # Kill all uplinks of one spine from src.
    spine = all_paths[0][1]
    for link in topo.fabric.links_of(src):
        if spine in link.endpoint_ids:
            link.set_state(1.0, LinkState.DOWN)
    router.invalidate()
    remaining = router.equal_cost_paths(src, dst)
    assert len(remaining) == 1
    assert remaining[0][1] != spine


def test_no_route_when_isolated(topo, router):
    src, dst = leaves(topo)[:2]
    for link in topo.fabric.links_of(src):
        link.set_state(1.0, LinkState.DOWN)
    router.invalidate()
    assert not router.has_route(src, dst)
    with pytest.raises(NoRouteError):
        router.route(src, dst)


def test_drain_removes_link_without_failure(topo, router):
    src, dst = leaves(topo)[:2]
    target = router.route(src, dst, flow_hash=0)[0]
    router.drain(target.id)
    assert target.operational  # physically fine
    for h in range(8):
        path = router.route(src, dst, flow_hash=h)
        assert target.id not in [link.id for link in path]
    router.undrain(target.id)
    assert target.id in {link.id for h in range(8)
                         for link in router.route(src, dst, flow_hash=h)}


def test_cache_invalidation_needed_for_fresh_view(topo, router):
    src, dst = leaves(topo)[:2]
    router.equal_cost_paths(src, dst)
    for link in topo.fabric.links_of(src):
        link.set_state(1.0, LinkState.DOWN)
    # Stale cache still answers; invalidate() refreshes.
    assert router.has_route(src, dst)
    router.invalidate()
    assert not router.has_route(src, dst)


def test_connectivity_fraction(topo, router):
    endpoints = leaves(topo)
    assert router.connectivity_fraction(endpoints) == 1.0
    for link in topo.fabric.links_of(endpoints[0]):
        link.set_state(1.0, LinkState.DOWN)
    router.invalidate()
    fraction = router.connectivity_fraction(endpoints)
    assert fraction == pytest.approx(3 / 6)


def test_parallel_links_prefer_lowest_loss():
    topo = build_leafspine(leaves=2, spines=1, uplinks_per_pair=2,
                           rng=np.random.default_rng(0))
    router = EcmpRouter(topo.fabric)
    src, dst = topo.switches()[1], topo.switches()[2]
    src_links = topo.fabric.links_of(src)
    src_links[0].loss_rate = 0.01
    path = router.route(src, dst)
    assert path[0].loss_rate == 0.0


def test_fattree_any_pair_routable():
    topo = build_fattree(k=4, rng=np.random.default_rng(0))
    router = EcmpRouter(topo.fabric)
    from dcrobot.network import SwitchRole
    tors = topo.switches(SwitchRole.TOR)
    assert router.has_route(tors[0], tors[-1])


# -- latency -----------------------------------------------------------------

def test_base_latency_components(topo, router):
    src, dst = leaves(topo)[:2]
    path = router.route(src, dst)
    flow = Flow(0, src, dst, size_bytes=150_000)
    model = LatencyModel(rng=np.random.default_rng(0))
    base = model.base_latency(flow, path)
    serialization = 150_000 * 8 / (path[0].capacity_gbps * 1e9)
    assert base > serialization
    assert base < serialization + 1e-3


def test_lossless_path_fct_equals_base(topo, router):
    src, dst = leaves(topo)[:2]
    path = router.route(src, dst)
    for link in path:
        link.loss_rate = 0.0
    flow = Flow(0, src, dst, size_bytes=10_000)
    model = LatencyModel(rng=np.random.default_rng(0))
    assert model.sample_fct(flow, path) == model.base_latency(flow, path)


def test_lossy_path_inflates_tail(topo, router):
    src, dst = leaves(topo)[:2]
    path = router.route(src, dst)
    flow = Flow(0, src, dst, size_bytes=100_000)
    model = LatencyModel(rng=np.random.default_rng(3))
    clean = [model.sample_fct(flow, path) for _ in range(300)]
    for link in path:
        link.loss_rate = 0.01
    lossy = [model.sample_fct(flow, path) for _ in range(300)]
    assert percentile(lossy, 99) > percentile(clean, 99) * 5


def test_path_loss_aggregates_over_hops(topo, router):
    src, dst = leaves(topo)[:2]
    path = router.route(src, dst)
    model = LatencyModel()
    for link in path:
        link.loss_rate = 0.1
    assert model.path_loss_rate(path) == pytest.approx(1 - 0.9 ** 2)


def test_latency_params_validation():
    with pytest.raises(ValueError):
        LatencyParams(retransmission_timeout_seconds=0.0)
    with pytest.raises(ValueError):
        LatencyParams(max_retries_per_packet=-1)


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 150)
    assert percentile([1.0, 2.0, 3.0], 50) == 2.0


def test_empty_path_rejected():
    model = LatencyModel()
    with pytest.raises(ValueError):
        model.sample_fct(Flow(0, "a", "b", 100), [])
