"""Golden parity: columnar engine vs object-path oracles, bit for bit.

Two contracts pinned here:

* :meth:`FlowGenerator.sample_batch` vectorizes the per-flow scalar
  loop with *blocked* draws; numpy fills array draws element by
  element, so a scalar loop making the same blocked draws consumes the
  identical RNG stream and yields identical flows.
* :class:`TrafficState` must reproduce
  :class:`LegacyTrafficModel` exactly — per-flow FCTs, per-link
  utilization and congestion-loss totals — across link failures, loss
  changes, and drain/undrain cycles, because the legacy model *is* the
  physics specification.
"""

import numpy as np
import pytest

from dcrobot.network import LinkState, SwitchRole
from dcrobot.topology import build_fattree
from dcrobot.traffic import (
    FlowGenerator,
    LegacyTrafficModel,
    TrafficState,
    sample_sizes,
)
from dcrobot.traffic.flows import MIN_FLOW_BYTES, SIZE_MIX


# -- flow sampling ----------------------------------------------------------

def test_sample_batch_matches_scalar_blocked_stream():
    endpoints = [f"ep-{i}" for i in range(9)]
    count = 300
    flows = FlowGenerator(endpoints,
                          rng=np.random.default_rng(5)) \
        .sample_batch(count)

    # Scalar reference making the same blocked draws in the same
    # order: sources, destination offsets, mixture thresholds, sizes.
    rng = np.random.default_rng(5)
    n = len(endpoints)
    src = [int(rng.integers(n)) for _ in range(count)]
    dst = [int(rng.integers(n - 1)) for _ in range(count)]
    dst = [d + (d >= s) for s, d in zip(src, dst)]
    thresholds = [float(rng.random()) for _ in range(count)]
    cumulative = np.cumsum([p for p, _, _ in SIZE_MIX])
    components = [int(np.searchsorted(cumulative, t, side="right"))
                  for t in thresholds]
    components = [min(c, len(SIZE_MIX) - 1) for c in components]
    sizes = [max(MIN_FLOW_BYTES,
                 int(rng.lognormal(SIZE_MIX[c][1], SIZE_MIX[c][2])))
             for c in components]

    assert len(flows) == count
    for i, flow in enumerate(flows):
        assert flow.flow_id == i
        assert flow.src == endpoints[src[i]]
        assert flow.dst == endpoints[dst[i]]
        assert flow.size_bytes == sizes[i]


def test_sample_flow_scalar_path_matches_batch_semantics():
    """The single-flow scalar sampler draws the same quantities in the
    same per-flow order; one flow drawn scalar equals a batch of one."""
    endpoints = [f"ep-{i}" for i in range(6)]
    scalar = FlowGenerator(endpoints,
                           rng=np.random.default_rng(11)).sample_flow()
    [batched] = FlowGenerator(endpoints,
                              rng=np.random.default_rng(11)) \
        .sample_batch(1)
    assert scalar == batched


def test_sample_arrays_and_batch_share_one_stream():
    endpoints = [f"ep-{i}" for i in range(5)]
    ids, src, dst, sizes = FlowGenerator(
        endpoints, rng=np.random.default_rng(8)).sample_arrays(64)
    flows = FlowGenerator(endpoints,
                          rng=np.random.default_rng(8)) \
        .sample_batch(64)
    for i, flow in enumerate(flows):
        assert flow.flow_id == int(ids[i])
        assert flow.src == endpoints[int(src[i])]
        assert flow.dst == endpoints[int(dst[i])]
        assert flow.size_bytes == int(sizes[i])


# -- columnar vs legacy -----------------------------------------------------

@pytest.fixture
def world():
    topology = build_fattree(k=4, rng=np.random.default_rng(0))
    tors = topology.switches(SwitchRole.TOR)
    columnar = TrafficState(topology.fabric, tors,
                            rng=np.random.default_rng(7))
    legacy = LegacyTrafficModel(topology.fabric, tors,
                                rng=np.random.default_rng(7))
    return topology, tors, columnar, legacy


def _window(rng, n_endpoints, count, flow_id):
    src = rng.integers(n_endpoints, size=count)
    dst = rng.integers(n_endpoints - 1, size=count)
    dst = dst + (dst >= src)
    sizes = sample_sizes(rng, count)
    ids = np.arange(flow_id, flow_id + count, dtype=np.int64)
    return src, dst, sizes, ids


def _assert_windows_identical(columnar, legacy, fast, slow, fabric):
    assert np.array_equal(fast.fct, slow.fct, equal_nan=True)
    index_of = fabric.state.index_of
    for link_id, total in legacy.util_bytes.items():
        row = index_of[link_id]
        assert columnar.util_bytes.values[row] == total
        assert columnar.lost_bytes.values[row] == \
            legacy.lost_bytes.get(link_id, 0.0)


def test_columnar_matches_legacy_through_perturbations(world):
    topology, tors, columnar, legacy = world
    fabric = topology.fabric
    rng = np.random.default_rng(21)
    flow_id = 0

    def offer_and_compare(count=500, window_seconds=30.0):
        nonlocal flow_id
        window = _window(rng, len(tors), count, flow_id)
        flow_id += count
        fast = columnar.offer_window(*window, window_seconds)
        slow = legacy.offer_window(*window, window_seconds)
        _assert_windows_identical(columnar, legacy, fast, slow,
                                  fabric)
        return fast

    offer_and_compare()

    # A link fails: both engines reroute identically.
    failed = fabric.links_of(tors[0])[0]
    failed.set_state(0.0, LinkState.DOWN)
    offer_and_compare()

    # Loss degrades on a surviving link: member choice (least-lossy
    # parallel link) re-resolves identically.
    degraded = fabric.links_of(tors[1])[0]
    degraded.set_state(0.05, LinkState.UP)
    offer_and_compare()

    # A maintenance drain, applied to both, then lifted.
    drained = fabric.links_of(tors[2])[0]
    columnar.drain(drained.id)
    legacy.drain(drained.id)
    offer_and_compare()
    columnar.undrain(drained.id)
    legacy.undrain(drained.id)
    failed.set_state(0.0, LinkState.UP)
    offer_and_compare()


def test_small_windows_under_congestion_match(world):
    topology, tors, columnar, legacy = world
    rng = np.random.default_rng(33)
    flow_id = 0
    # A 2-millisecond accounting period congests the 400G links; the
    # congestion and retry paths must agree bit for bit too.
    for _ in range(3):
        window = _window(rng, len(tors), 800, flow_id)
        flow_id += 800
        fast = columnar.offer_window(*window, 0.002)
        slow = legacy.offer_window(*window, 0.002)
        _assert_windows_identical(columnar, legacy, fast, slow,
                                  topology.fabric)
        assert float(fast.congestion.max()) > 0.0
