"""Unit tests for the Self-Maintainability Index."""

import numpy as np
import pytest

from dcrobot.network import (
    Fabric,
    HallLayout,
    SwitchRole,
    generate_model_catalog,
)
from dcrobot.topology import (
    build_fattree,
    build_jellyfish,
    compute_smi,
)
from dcrobot.topology.base import Topology, roles_from_fabric


def small_topology(model_count=24, bundle_capacity=24, seed=3):
    # A hall big enough that the cross-hall links exceed AOC reach and
    # use separable MPO fiber; switches sit at ~2 m height (u=45).
    rng = np.random.default_rng(seed)
    fabric = Fabric(layout=HallLayout(rows=6, racks_per_row=12,
                                      height_u=48),
                    rng=rng,
                    model_catalog=generate_model_catalog(model_count, rng),
                    bundle_capacity=bundle_capacity)
    a = fabric.add_switch(SwitchRole.TOR, radix=8, u_position=45,
                          rack_id=fabric.layout.rack_at(0, 0).id)
    b = fabric.add_switch(SwitchRole.TOR, radix=8, u_position=45,
                          rack_id=fabric.layout.rack_at(5, 11).id)
    for _ in range(6):
        fabric.connect(a.id, b.id)
    return Topology(name="pair", fabric=fabric, params={},
                    switches_by_role=roles_from_fabric(fabric), host_ids=[])


def test_smi_in_unit_interval():
    report = compute_smi(small_topology())
    assert 0.0 < report.smi <= 1.0
    for value in report.factors.values():
        assert 0.0 < value <= 1.0


def test_all_factors_present():
    report = compute_smi(small_topology())
    assert set(report.factors) == {
        "reach", "occlusion", "serviceability", "uniformity", "granularity"}


def test_uniform_models_score_higher():
    uniform = compute_smi(small_topology(model_count=1))
    diverse = compute_smi(small_topology(model_count=24))
    assert uniform.factors["uniformity"] > diverse.factors["uniformity"]
    assert uniform.factors["uniformity"] == pytest.approx(1.0)


def test_finer_bundles_raise_granularity_and_occlusion():
    coarse = compute_smi(small_topology(bundle_capacity=24))
    fine = compute_smi(small_topology(bundle_capacity=1))
    assert fine.factors["granularity"] >= coarse.factors["granularity"]
    assert fine.factors["occlusion"] > coarse.factors["occlusion"]


def test_short_reach_lowers_score():
    topo = small_topology()
    tall = compute_smi(topo, robot_reach_m=3.0)
    short = compute_smi(topo, robot_reach_m=0.3)
    assert short.factors["reach"] < tall.factors["reach"]
    assert short.smi < tall.smi


def test_weights_can_disable_factor():
    topo = small_topology(model_count=24)
    ignore_uniformity = compute_smi(
        topo, weights={"uniformity": 0.0})
    only_uniformity = compute_smi(
        topo, weights={"reach": 0.0, "occlusion": 0.0,
                       "serviceability": 0.0, "granularity": 0.0})
    assert only_uniformity.smi == pytest.approx(
        max(only_uniformity.factors["uniformity"], 1e-3))
    assert ignore_uniformity.smi != only_uniformity.smi


def test_unknown_weight_rejected():
    with pytest.raises(ValueError):
        compute_smi(small_topology(), weights={"nope": 1.0})


def test_empty_topology_scores_one():
    rng = np.random.default_rng(0)
    fabric = Fabric(rng=rng)
    topo = Topology(name="empty", fabric=fabric, params={},
                    switches_by_role={}, host_ids=[])
    report = compute_smi(topo)
    assert report.smi == pytest.approx(1.0)


def test_smi_comparable_across_real_topologies():
    # Same radix class: fat-tree (structured, short intra-pod runs)
    # vs jellyfish (random, long cross-hall runs).  Both must produce
    # finite, comparable scores.
    ft = compute_smi(build_fattree(k=4, rng=np.random.default_rng(1)))
    jf = compute_smi(build_jellyfish(switches=20, degree=4,
                                     rng=np.random.default_rng(1)))
    assert 0.0 < ft.smi <= 1.0
    assert 0.0 < jf.smi <= 1.0
