"""Incremental SMI vs full rescan: randomized-op parity battery.

:class:`SmiTracker` maintains the five SMI factor aggregates from
generation-keyed structural deltas — O(changed links) per event —
while :func:`compute_smi` rescans the whole fabric.  These tests
drive randomized sequences of every structural mutation the fabric
supports and require the two answers to agree to 1e-12 on *every*
factor after *every* op.  ``compute_smi`` is the oracle; the tracker
is the fast path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from dcrobot.network import (
    Fabric,
    HallLayout,
    LinkState,
    SwitchRole,
    generate_model_catalog,
)
from dcrobot.topology.base import Topology, roles_from_fabric
from dcrobot.topology.smi import SmiTracker, compute_smi

FACTORS = ("reach", "occlusion", "serviceability", "uniformity",
           "granularity")


def make_topology(seed=3, pairs=3, links_per_pair=4,
                  bundle_capacity=3, model_count=8):
    """A hall with several ToR pairs, multi-link trunks, small bundles
    (so bundle edits actually move occlusion/granularity), and a mixed
    model catalog (so transceiver swaps move uniformity)."""
    rng = np.random.default_rng(seed)
    fabric = Fabric(layout=HallLayout(rows=6, racks_per_row=12,
                                      height_u=48),
                    rng=rng,
                    model_catalog=generate_model_catalog(
                        model_count, rng),
                    bundle_capacity=bundle_capacity)
    switches = []
    for index in range(2 * pairs):
        switches.append(fabric.add_switch(
            SwitchRole.TOR, radix=2 * links_per_pair, u_position=45,
            rack_id=fabric.layout.rack_at(
                index % 6, (2 * index) % 12).id))
    for pair in range(pairs):
        a, b = switches[2 * pair], switches[2 * pair + 1]
        for _ in range(links_per_pair):
            fabric.connect(a.id, b.id)
    topology = Topology(name="smi-incremental", fabric=fabric,
                        params={},
                        switches_by_role=roles_from_fabric(fabric),
                        host_ids=[])
    return topology, switches


def assert_parity(tracker, topology, context=""):
    incremental = tracker.report()
    oracle = compute_smi(topology)
    for factor in FACTORS:
        assert incremental.factors[factor] == pytest.approx(
            oracle.factors[factor], abs=1e-12), (factor, context)
    assert incremental.smi == pytest.approx(oracle.smi, abs=1e-12), \
        context


# -- one op at a time ---------------------------------------------------------


def test_initial_report_matches_oracle():
    topology, _ = make_topology()
    tracker = SmiTracker(topology)
    assert_parity(tracker, topology)
    tracker.close()


def test_state_flips_do_not_move_smi():
    topology, _ = make_topology()
    tracker = SmiTracker(topology)
    before = tracker.report()
    link = next(iter(topology.fabric.links.values()))
    link.set_state(1.0, LinkState.DOWN)
    link.set_state(2.0, LinkState.UP)
    link.set_state(3.0, LinkState.MAINTENANCE)
    assert tracker.report().factors == before.factors
    assert_parity(tracker, topology, "after state flips")
    tracker.close()


def test_connect_and_disconnect_track():
    topology, switches = make_topology()
    tracker = SmiTracker(topology)
    link = topology.fabric.connect(switches[0].id, switches[3].id)
    assert_parity(tracker, topology, "after connect")
    topology.fabric.disconnect(link.id)
    assert_parity(tracker, topology, "after disconnect")
    tracker.close()


def test_transceiver_replace_tracks():
    topology, _ = make_topology()
    fabric = topology.fabric
    tracker = SmiTracker(topology)
    for link in list(fabric.links.values())[:4]:
        for side in ("a", "b"):
            old_unit = link.transceiver_at(side)
            new_unit = fabric.new_transceiver(
                old_unit.model.form_factor, optical=old_unit.optical)
            link.replace_transceiver(side, new_unit)
            assert_parity(tracker, topology,
                          f"swap {link.id}:{side}")
    tracker.close()


def test_cable_replace_and_rebundle_track():
    topology, _ = make_topology()
    fabric = topology.fabric
    tracker = SmiTracker(topology)
    link = next(iter(fabric.links.values()))
    old_cable = link.cable
    new_cable = fabric.new_cable(link.cable.kind,
                                 link.cable.length_m,
                                 link.capacity_gbps)
    link.replace_cable(new_cable)
    assert_parity(tracker, topology, "after cable swap (unbundled)")
    fabric.rebundle(old_cable.id, new_cable.id, *link.endpoint_ids)
    assert_parity(tracker, topology, "after rebundle")
    tracker.close()


def test_raw_bundle_assign_unassign_track():
    topology, _ = make_topology()
    fabric = topology.fabric
    tracker = SmiTracker(topology)
    links = list(fabric.links.values())
    cable = links[0].cable
    donor_bundle = fabric.bundles.bundle_of(links[-1].cable.id)
    fabric.bundles.unassign(cable.id)
    assert_parity(tracker, topology, "after unassign")
    fabric.bundles.assign(cable.id, donor_bundle.id)
    assert_parity(tracker, topology, "after cross-assign")
    tracker.close()


def test_fork_is_detached_from_live_mutations():
    topology, _ = make_topology()
    fabric = topology.fabric
    tracker = SmiTracker(topology)
    fork = tracker.fork()
    baseline = fork.report()
    link = next(iter(fabric.links.values()))
    old_unit = link.transceiver_at("a")
    link.replace_transceiver("a", fabric.new_transceiver(
        old_unit.model.form_factor, optical=old_unit.optical))
    # live tracker follows; the fork holds the fork-time answer
    assert_parity(tracker, topology, "live after swap")
    assert fork.report().factors == baseline.factors
    tracker.close()


def test_close_stops_tracking():
    topology, switches = make_topology()
    tracker = SmiTracker(topology)
    frozen = tracker.report()
    tracker.close()
    topology.fabric.connect(switches[0].id, switches[3].id)
    assert tracker.report().factors == frozen.factors


# -- randomized sequences -----------------------------------------------------

op_codes = st.lists(
    st.tuples(st.sampled_from(["flip", "xcvr", "cable", "connect",
                               "disconnect", "rebundle"]),
              st.integers(min_value=0, max_value=10 ** 6)),
    min_size=1, max_size=20)


@given(seed=st.integers(min_value=0, max_value=40),
       sequence=op_codes)
@settings(max_examples=25, deadline=None)
def test_randomized_op_sequences_stay_in_parity(seed, sequence):
    topology, switches = make_topology(seed=seed)
    fabric = topology.fabric
    tracker = SmiTracker(topology)
    for step, (kind, pick) in enumerate(sequence):
        links = list(fabric.links.values())
        if kind == "flip" and links:
            link = links[pick % len(links)]
            link.set_state(float(step + 1),
                           [LinkState.DOWN, LinkState.UP,
                            LinkState.FLAPPING][pick % 3])
        elif kind == "xcvr" and links:
            link = links[pick % len(links)]
            side = "a" if pick % 2 else "b"
            old_unit = link.transceiver_at(side)
            link.replace_transceiver(side, fabric.new_transceiver(
                old_unit.model.form_factor,
                optical=old_unit.optical))
        elif kind == "cable" and links:
            link = links[pick % len(links)]
            old_cable = link.cable
            link.replace_cable(fabric.new_cable(
                link.cable.kind, link.cable.length_m,
                link.capacity_gbps))
            if pick % 2:
                fabric.rebundle(old_cable.id, link.cable.id,
                                *link.endpoint_ids)
        elif kind == "connect":
            a = switches[pick % len(switches)]
            b = switches[(pick // 7 + 1) % len(switches)]
            if a.id != b.id and a.free_ports() and b.free_ports():
                fabric.connect(a.id, b.id)
        elif kind == "disconnect" and len(links) > 1:
            fabric.disconnect(links[pick % len(links)].id)
        elif kind == "rebundle" and links:
            link = links[pick % len(links)]
            donor = links[(pick // 3) % len(links)]
            donor_bundle = fabric.bundles.bundle_of(donor.cable.id)
            fabric.bundles.unassign(link.cable.id)
            if donor_bundle is not None and pick % 2 \
                    and link.cable is not donor.cable:
                fabric.bundles.assign(link.cable.id, donor_bundle.id)
        assert_parity(tracker, topology, f"step {step}: {kind}")
    tracker.close()
