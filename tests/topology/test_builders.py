"""Unit tests for topology builders: structure, regularity, placement."""

from collections import Counter

import numpy as np
import pytest

from dcrobot.network import SwitchRole
from dcrobot.topology import (
    Topology,
    build_fattree,
    build_gpu_cluster,
    build_jellyfish,
    build_leafspine,
    build_xpander,
    healthy_server_fraction,
    xpander_edges,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


# -- fat-tree ---------------------------------------------------------------

def test_fattree_counts_k4(rng):
    topo = build_fattree(k=4, rng=rng)
    assert len(topo.switches(SwitchRole.CORE)) == 4
    assert len(topo.switches(SwitchRole.AGG)) == 8
    assert len(topo.switches(SwitchRole.TOR)) == 8
    assert topo.switch_count == 20
    # k^3/4 = 16 edge-agg + 16 agg-core links.
    assert topo.link_count == 32


def test_fattree_counts_k8(rng):
    topo = build_fattree(k=8, rng=rng)
    assert topo.switch_count == 5 * 8 * 8 // 4  # 80
    assert topo.link_count == 2 * (8 ** 3) // 4  # 256


def test_fattree_is_connected(rng):
    assert build_fattree(k=4, rng=rng).is_connected()


def test_fattree_with_hosts(rng):
    topo = build_fattree(k=4, with_hosts=True, rng=rng)
    assert len(topo.host_ids) == 16  # k^3/4
    assert topo.link_count == 32 + 16


def test_fattree_validation(rng):
    with pytest.raises(ValueError):
        build_fattree(k=3, rng=rng)
    with pytest.raises(ValueError):
        build_fattree(k=0, rng=rng)


def test_fattree_core_ports_fully_used(rng):
    topo = build_fattree(k=4, rng=rng)
    for switch_id in topo.switches(SwitchRole.CORE):
        switch = topo.fabric.switches[switch_id]
        assert all(port.occupied for port in switch.ports)


# -- leaf-spine -----------------------------------------------------------------

def test_leafspine_link_count(rng):
    topo = build_leafspine(leaves=6, spines=3, uplinks_per_pair=2, rng=rng)
    assert topo.link_count == 6 * 3 * 2
    assert len(topo.switches(SwitchRole.LEAF)) == 6
    assert len(topo.switches(SwitchRole.SPINE)) == 3


def test_leafspine_redundancy_multiplies_edges(rng):
    single = build_leafspine(leaves=4, spines=2, uplinks_per_pair=1,
                             rng=np.random.default_rng(0))
    double = build_leafspine(leaves=4, spines=2, uplinks_per_pair=2,
                             rng=np.random.default_rng(0))
    assert double.link_count == 2 * single.link_count


def test_leafspine_with_hosts(rng):
    topo = build_leafspine(leaves=2, spines=2, hosts_per_leaf=3, rng=rng)
    assert len(topo.host_ids) == 6
    assert topo.link_count == 4 + 6


def test_leafspine_validation(rng):
    with pytest.raises(ValueError):
        build_leafspine(leaves=0, rng=rng)
    with pytest.raises(ValueError):
        build_leafspine(uplinks_per_pair=0, rng=rng)


# -- jellyfish -----------------------------------------------------------------

def test_jellyfish_regularity(rng):
    topo = build_jellyfish(switches=20, degree=4, rng=rng)
    graph = topo.graph()
    degrees = [d for _node, d in graph.degree()]
    assert degrees == [4] * 20
    assert topo.link_count == 20 * 4 // 2


def test_jellyfish_validation(rng):
    with pytest.raises(ValueError):
        build_jellyfish(switches=5, degree=3, rng=rng)  # odd product
    with pytest.raises(ValueError):
        build_jellyfish(switches=4, degree=4, rng=rng)
    with pytest.raises(ValueError):
        build_jellyfish(switches=1, degree=0, rng=rng)


def test_jellyfish_deterministic_given_seed():
    topo_a = build_jellyfish(switches=12, degree=3,
                             rng=np.random.default_rng(9))
    topo_b = build_jellyfish(switches=12, degree=3,
                             rng=np.random.default_rng(9))
    edges_a = sorted(tuple(sorted(link.endpoint_ids))
                     for link in topo_a.fabric.links.values())
    edges_b = sorted(tuple(sorted(link.endpoint_ids))
                     for link in topo_b.fabric.links.values())
    assert edges_a == edges_b


# -- xpander ---------------------------------------------------------------------

def test_xpander_edges_regularity(rng):
    node_count, edges = xpander_edges(degree=4, lift=5, rng=rng)
    assert node_count == 25
    degree_count = Counter()
    for a, b in edges:
        degree_count[a] += 1
        degree_count[b] += 1
    assert all(degree_count[n] == 4 for n in range(node_count))
    # No duplicate edges or self-loops.
    assert len({tuple(sorted(e)) for e in edges}) == len(edges)
    assert all(a != b for a, b in edges)


def test_xpander_build_and_connectivity(rng):
    topo = build_xpander(degree=4, lift=4, rng=rng)
    assert topo.switch_count == 20
    assert topo.link_count == 20 * 4 // 2
    assert topo.is_connected()


def test_xpander_validation(rng):
    with pytest.raises(ValueError):
        xpander_edges(degree=1, lift=3, rng=rng)
    with pytest.raises(ValueError):
        xpander_edges(degree=3, lift=0, rng=rng)


# -- gpu cluster -------------------------------------------------------------------

def test_gpu_cluster_structure(rng):
    topo = build_gpu_cluster(servers=8, gpus_per_server=4, rng=rng)
    assert len(topo.host_ids) == 8
    assert len(topo.switches(SwitchRole.SPINE)) == 4
    assert topo.link_count == 8 * 4
    # Each server has exactly one link per rail.
    for host_id in topo.host_ids:
        rails = {link.endpoint_ids[1] for link
                 in topo.fabric.links_of(host_id)}
        assert len(rails) == 4


def test_gpu_healthy_fraction_drops_with_one_link(rng):
    from dcrobot.network import LinkState

    topo = build_gpu_cluster(servers=8, gpus_per_server=4, rng=rng)
    assert healthy_server_fraction(topo) == 1.0
    victim = topo.fabric.links_of(topo.host_ids[0])[0]
    victim.set_state(1.0, LinkState.DOWN)
    assert healthy_server_fraction(topo) == pytest.approx(7 / 8)


def test_gpu_cluster_validation(rng):
    with pytest.raises(ValueError):
        build_gpu_cluster(servers=0, rng=rng)
    with pytest.raises(ValueError):
        build_gpu_cluster(servers=2, gpus_per_server=0, rng=rng)


# -- wrapper -----------------------------------------------------------------------

def test_topology_validates_role_ids(rng):
    topo = build_fattree(k=4, rng=rng)
    with pytest.raises(ValueError):
        Topology(name="bad", fabric=topo.fabric, params={},
                 switches_by_role={SwitchRole.CORE: ["sw-nonexistent"]},
                 host_ids=[])


def test_edge_switch_pairs(rng):
    topo = build_leafspine(leaves=3, spines=2, rng=rng)
    pairs = topo.edge_switch_pairs()
    assert len(pairs) == 3 * 2  # ordered pairs of distinct leaves


def test_disconnection_detected(rng):
    from dcrobot.network import LinkState

    topo = build_leafspine(leaves=2, spines=1, rng=rng)
    assert topo.is_connected(operational_only=True)
    for link in topo.fabric.links.values():
        link.set_state(1.0, LinkState.DOWN)
    assert not topo.is_connected(operational_only=True)
