"""Unit tests for transceivers, cables, ports, switches, layout."""

import numpy as np
import pytest

from dcrobot.network import (
    Cable,
    CableKind,
    ComponentState,
    FormFactor,
    HallLayout,
    Position,
    Switch,
    SwitchRole,
    Transceiver,
    cores_for,
    generate_model_catalog,
    kind_for_length,
)
from dcrobot.network.switchgear import Host


@pytest.fixture
def rng():
    return np.random.default_rng(11)


@pytest.fixture
def model(rng):
    return generate_model_catalog(1, rng)[0]


# -- transceiver models ------------------------------------------------------

def test_catalog_generates_requested_count(rng):
    catalog = generate_model_catalog(24, rng)
    assert len(catalog) == 24
    assert len({model.model_id for model in catalog}) == 24


def test_catalog_difficulty_in_range(rng):
    for model in generate_model_catalog(50, rng):
        assert 0.0 <= model.grip_difficulty <= 1.0


def test_catalog_count_validation(rng):
    with pytest.raises(ValueError):
        generate_model_catalog(0, rng)


def test_form_factor_rates():
    assert FormFactor.QSFP28.gbps == 100
    assert FormFactor.QSFP_DD.gbps == 400
    assert FormFactor.OSFP.gbps == 800


# -- transceiver unit --------------------------------------------------------

def test_new_transceiver_is_healthy(model):
    unit = Transceiver("xcvr-0", model)
    assert unit.state is ComponentState.ACTIVE
    assert not unit.degraded
    assert unit.seated


def test_reseat_clears_oxidation_and_firmware(model, rng):
    unit = Transceiver("xcvr-0", model)
    unit.oxidation = 0.9
    unit.firmware_stuck = True
    unit.unseat()
    assert not unit.seated
    unit.seat(now=100.0, rng=rng)
    assert unit.seated
    assert unit.oxidation < 0.2
    assert not unit.firmware_stuck
    assert unit.reseat_count == 1
    assert unit.last_seated_time == 100.0


def test_reseat_does_not_fix_hardware(model, rng):
    unit = Transceiver("xcvr-0", model)
    unit.fail_hardware()
    unit.unseat()
    unit.seat(now=1.0, rng=rng)
    assert unit.hw_fault
    assert unit.degraded


def test_degraded_reflects_each_dimension(model):
    unit = Transceiver("xcvr-0", model)
    unit.oxidation = 0.5
    assert unit.degraded
    unit.oxidation = 0.0
    unit.firmware_stuck = True
    assert unit.degraded
    unit.firmware_stuck = False
    unit.receptacle.add_contamination(0.5)
    assert unit.degraded


def test_electrical_transceiver_has_no_receptacle(model):
    unit = Transceiver("xcvr-0", model, optical=False)
    assert unit.receptacle is None


# -- cables --------------------------------------------------------------------

def test_kind_for_length_bands():
    assert kind_for_length(2.0) is CableKind.DAC
    assert kind_for_length(10.0) is CableKind.AOC
    assert kind_for_length(50.0, gbps=100) is CableKind.LC
    assert kind_for_length(50.0, gbps=800) is CableKind.MPO


def test_cores_for_mpo_matches_paper_example():
    # §3.2: an 800 Gbps link uses 8 fibers in a single MPO cable.
    assert cores_for(CableKind.MPO, 800) == 8
    assert cores_for(CableKind.MPO, 400) == 4
    assert cores_for(CableKind.LC, 100) == 1


def test_separable_cables_have_endfaces():
    mpo = Cable("c0", CableKind.MPO, 50.0, core_count=8)
    assert mpo.cleanable
    assert mpo.end_a is not None and mpo.end_b is not None
    assert mpo.end_a.core_count == 8


def test_integrated_cables_have_no_endfaces():
    aoc = Cable("c1", CableKind.AOC, 10.0)
    assert not aoc.cleanable
    assert aoc.end_a is None
    with pytest.raises(ValueError):
        aoc.endface("a")
    with pytest.raises(ValueError):
        aoc.detach("a")


def test_cable_validation():
    with pytest.raises(ValueError):
        Cable("c", CableKind.LC, length_m=0.0)
    with pytest.raises(ValueError):
        Cable("c", CableKind.LC, 5.0, core_count=0)
    with pytest.raises(ValueError):
        Cable("c", CableKind.DAC, 2.0, core_count=8)


def test_cable_detach_attach_cycle():
    cable = Cable("c0", CableKind.MPO, 40.0, core_count=8)
    cable.detach("a")
    assert not cable.attached_a and cable.attached_b
    cable.attach("a")
    assert cable.attached_a


def test_cable_side_validation():
    cable = Cable("c0", CableKind.LC, 40.0)
    with pytest.raises(ValueError):
        cable.detach("c")


def test_cable_damage_is_permanent_impairment():
    cable = Cable("c0", CableKind.MPO, 40.0, core_count=8)
    assert not cable.impaired
    cable.damage()
    assert cable.impaired
    assert cable.state is ComponentState.FAILED


def test_cable_worst_contamination_spans_both_ends():
    cable = Cable("c0", CableKind.MPO, 40.0, core_count=4)
    cable.end_b.add_contamination(0.6, cores=[2])
    assert cable.worst_contamination == pytest.approx(0.6)


# -- switchgear -------------------------------------------------------------------

def test_switch_creates_radix_ports():
    switch = Switch("sw0", SwitchRole.TOR, radix=32)
    assert len(switch.ports) == 32
    assert switch.ports[5].index == 5
    assert switch.ports[5].parent_id == "sw0"


def test_switch_line_cards_partition_ports():
    switch = Switch("sw0", SwitchRole.SPINE, radix=32,
                    ports_per_line_card=8)
    assert len(switch.line_cards) == 4
    covered = [pid for card in switch.line_cards for pid in card.port_ids]
    assert sorted(covered) == sorted(port.id for port in switch.ports)
    card = switch.line_card_of(switch.ports[9].id)
    assert card is switch.line_cards[1]


def test_port_plug_unplug():
    switch = Switch("sw0", SwitchRole.TOR, radix=2)
    port = switch.port(0)
    port.plug("xcvr-1")
    assert port.occupied
    with pytest.raises(ValueError):
        port.plug("xcvr-2")
    assert port.unplug() == "xcvr-1"
    with pytest.raises(ValueError):
        port.unplug()


def test_next_free_port_skips_occupied_and_faulty():
    switch = Switch("sw0", SwitchRole.TOR, radix=3)
    switch.port(0).plug("x")
    switch.port(1).hw_fault = True
    assert switch.next_free_port() is switch.port(2)
    switch.port(2).plug("y")
    with pytest.raises(ValueError):
        switch.next_free_port()


def test_host_ports():
    host = Host("h0", port_count=2)
    assert len(host.ports) == 2
    assert host.ports[1].parent_id == "h0"


# -- layout ------------------------------------------------------------------------

def test_hall_layout_grid():
    hall = HallLayout(rows=3, racks_per_row=4)
    assert hall.rack_count == 12
    assert len(hall.rack_list()) == 12
    rack = hall.rack_at(2, 3)
    assert rack.row == 2 and rack.index == 3


def test_rack_u_position_height():
    hall = HallLayout(rows=1, racks_per_row=1, height_u=52)
    rack = hall.rack_at(0, 0)
    top = rack.u_position(52)
    assert top.z == pytest.approx(52 * 0.0445)
    with pytest.raises(ValueError):
        rack.u_position(0)
    with pytest.raises(ValueError):
        rack.u_position(53)


def test_travel_distance_is_manhattan():
    hall = HallLayout(rows=2, racks_per_row=2)
    a = hall.rack_at(0, 0).position
    b = hall.rack_at(1, 1).position
    assert hall.travel_distance(a, b) == pytest.approx(
        abs(a.x - b.x) + abs(a.y - b.y))


def test_position_distances():
    a = Position(0, 0, 0)
    b = Position(3, 4, 12)
    assert a.distance_to(b) == pytest.approx(13.0)
    assert a.floor_distance_to(b) == pytest.approx(5.0)


def test_neighbors_within_radius():
    hall = HallLayout(rows=1, racks_per_row=5)
    center = hall.rack_at(0, 2)
    close = hall.neighbors(center.id, radius_m=0.7)
    ids = {rack.id for rack in close}
    assert hall.rack_at(0, 1).id in ids
    assert hall.rack_at(0, 3).id in ids
    assert hall.rack_at(0, 0).id not in ids
    assert center.id not in ids


def test_layout_validation():
    with pytest.raises(ValueError):
        HallLayout(rows=0, racks_per_row=1)
    hall = HallLayout(rows=1, racks_per_row=1)
    with pytest.raises(ValueError):
        hall.racks_in_row(5)
