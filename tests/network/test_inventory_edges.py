"""Edge-case tests for fabric inventory operations."""

import numpy as np

from dcrobot.network import (
    CableKind,
    ComponentState,
    Fabric,
    HallLayout,
    SwitchRole,
)
from dcrobot.network.ids import IdFactory


def test_id_factory_sequences():
    ids = IdFactory()
    assert ids.make("sw") == "sw-00000"
    assert ids.make("sw") == "sw-00001"
    assert ids.make("link") == "link-00000"
    assert ids.issued("sw") == 2
    assert ids.issued("never") == 0


def test_connect_with_explicit_ports(world):
    fabric, a, b = world.fabric, world.switch_a, world.switch_b
    # Fixture wires all 4 ports; free two first.
    fabric.disconnect(world.links[3].id)
    port_a = a.ports[3]
    port_b = b.ports[3]
    link = fabric.connect(a.id, b.id, port_a=port_a, port_b=port_b,
                          kind=CableKind.MPO)
    assert link.port_a is port_a
    assert port_a.transceiver_id == link.transceiver_a.id


def test_disconnect_marks_components_spare(world):
    link = world.links[0]
    world.fabric.disconnect(link.id)
    assert link.transceiver_a.state is ComponentState.SPARE
    assert link.cable.state is ComponentState.SPARE
    assert not link.transceiver_a.seated


def test_disconnect_then_reconnect_reuses_ports(world):
    fabric = world.fabric
    before = len(world.switch_a.free_ports())
    fabric.disconnect(world.links[0].id)
    assert len(world.switch_a.free_ports()) == before + 1
    link = fabric.connect(world.switch_a.id, world.switch_b.id,
                          kind=CableKind.MPO)
    assert len(world.switch_a.free_ports()) == before
    assert link.id in fabric.links


def test_same_node_connection_allowed_for_loopback():
    fabric = Fabric(layout=HallLayout(rows=1, racks_per_row=2),
                    rng=np.random.default_rng(0))
    switch = fabric.add_switch(SwitchRole.TOR, radix=4,
                               rack_id=fabric.layout.rack_at(0, 0).id)
    link = fabric.connect(switch.id, switch.id)
    assert link.endpoint_ids == (switch.id, switch.id)
    assert link.cable.kind is CableKind.DAC  # minimum-length run


def test_bundle_neighbor_links_excludes_self(world):
    link = world.links[0]
    neighbors = world.fabric.bundle_neighbor_links(link)
    assert link not in neighbors
    assert len(neighbors) == len(world.links) - 1


def test_graph_multiedges(world):
    graph = world.fabric.graph()
    a, b = world.switch_a.id, world.switch_b.id
    assert graph.number_of_edges(a, b) == len(world.links)


def test_position_of_unplaced_node_is_origin():
    fabric = Fabric(rng=np.random.default_rng(0))
    switch = fabric.add_switch(SwitchRole.TOR, radix=2)
    position = fabric.position_of(switch.id)
    assert (position.x, position.y, position.z) == (0.0, 0.0, 0.0)


def test_topology_wrapper_helpers():
    import numpy as np

    from dcrobot.topology import build_leafspine

    topo = build_leafspine(leaves=3, spines=2,
                           rng=np.random.default_rng(1))
    assert topo.role_of(topo.switches(SwitchRole.SPINE)[0]) \
        is SwitchRole.SPINE
    assert len(topo.switches()) == 5
    assert topo.switch_count == 5
    assert "leafspine" in repr(topo)
