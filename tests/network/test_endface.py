"""Unit tests for fiber end-face contamination, inspection, cleaning."""

import numpy as np
import pytest

from dcrobot.network import (
    INSPECTION_PASS_THRESHOLD,
    EndFace,
    EndFacePolish,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def test_new_endface_is_clean():
    face = EndFace(core_count=8)
    assert face.worst_contamination == 0.0
    assert not face.impaired
    assert face.passes_inspection()


def test_core_count_validation():
    with pytest.raises(ValueError):
        EndFace(core_count=0)


def test_initial_contamination_validation():
    with pytest.raises(ValueError):
        EndFace(initial_contamination=1.5)


def test_add_contamination_all_cores():
    face = EndFace(core_count=4)
    face.add_contamination(0.3)
    assert np.allclose(face.contamination, 0.3)


def test_add_contamination_specific_cores():
    face = EndFace(core_count=4)
    face.add_contamination(0.5, cores=[1, 3])
    assert face.contamination[0] == 0.0
    assert face.contamination[1] == 0.5
    assert face.contamination[2] == 0.0
    assert face.contamination[3] == 0.5


def test_contamination_saturates_at_one():
    face = EndFace(core_count=1)
    face.add_contamination(0.8)
    face.add_contamination(0.8)
    assert face.worst_contamination == 1.0


def test_negative_contamination_rejected():
    face = EndFace()
    with pytest.raises(ValueError):
        face.add_contamination(-0.1)


def test_inspection_fails_dirty_core():
    face = EndFace(core_count=8)
    face.add_contamination(INSPECTION_PASS_THRESHOLD + 0.1, cores=[5])
    results = face.inspect()
    assert results[5] is False
    assert sum(results) == 7
    assert not face.passes_inspection()


def test_inspection_fails_scratched_core():
    face = EndFace(core_count=2)
    face.scratch(0)
    assert face.inspect() == [False, True]
    assert face.impaired


def test_inspection_false_negative(rng):
    face = EndFace(core_count=1)
    face.add_contamination(0.9)
    # With rate 1.0, the dirty core always passes (perception miss).
    assert face.inspect(false_negative_rate=1.0, rng=rng) == [True]


def test_clean_reduces_contamination(rng):
    face = EndFace(core_count=8)
    face.add_contamination(0.8)
    face.clean(rng, smear_probability=0.0)
    assert face.worst_contamination < 0.2


def test_wet_clean_stronger_than_dry():
    face_dry = EndFace(core_count=4)
    face_wet = EndFace(core_count=4)
    face_dry.add_contamination(1.0)
    face_wet.add_contamination(1.0)
    face_dry.clean(np.random.default_rng(3), wet=False,
                   smear_probability=0.0)
    face_wet.clean(np.random.default_rng(3), wet=True,
                   smear_probability=0.0)
    assert face_wet.worst_contamination < face_dry.worst_contamination


def test_repeated_cleaning_converges_to_pass(rng):
    face = EndFace(core_count=8)
    face.add_contamination(1.0)
    for _ in range(6):
        if face.passes_inspection():
            break
        face.clean(rng, wet=True, smear_probability=0.0)
    assert face.passes_inspection()


def test_smear_redistributes_but_does_not_create_dirt():
    face = EndFace(core_count=8)
    face.add_contamination(0.4, cores=[0])
    before = face.contamination.sum()
    face.clean(np.random.default_rng(0), smear_probability=1.0)
    assert face.contamination.sum() <= before + 1e-9


def test_clean_does_not_fix_scratches(rng):
    face = EndFace(core_count=1)
    face.scratch(0)
    face.clean(rng, smear_probability=0.0)
    assert not face.passes_inspection()


def test_replace_restores_pristine_state():
    face = EndFace(core_count=4)
    face.add_contamination(1.0)
    face.scratch(2)
    face.replace()
    assert face.worst_contamination == 0.0
    assert not face.scratched.any()
    assert face.passes_inspection()


def test_effectiveness_validation(rng):
    face = EndFace()
    with pytest.raises(ValueError):
        face.clean(rng, effectiveness=0.0)


def test_apc_polish_angle():
    face = EndFace(polish=EndFacePolish.APC)
    assert face.polish.angle_degrees == 8.0
    assert EndFacePolish.UPC.angle_degrees == 0.0
