"""Unit tests for Fabric wiring, links, bundles, and spares."""

import numpy as np
import pytest

from dcrobot.network import (
    CableKind,
    Fabric,
    FormFactor,
    HallLayout,
    LinkState,
    SwitchRole,
)


@pytest.fixture
def fabric():
    return Fabric(layout=HallLayout(rows=2, racks_per_row=4),
                  rng=np.random.default_rng(5))


def place(fabric, row, col):
    return fabric.layout.rack_at(row, col).id


def test_add_switch_registers_ports(fabric):
    switch = fabric.add_switch(SwitchRole.TOR, radix=8,
                               rack_id=place(fabric, 0, 0))
    assert switch.id in fabric.switches
    assert fabric.port(switch.ports[0].id) is switch.ports[0]
    assert fabric.node(switch.id) is switch


def test_unknown_node_raises(fabric):
    with pytest.raises(KeyError):
        fabric.node("nope")


def test_connect_creates_full_link(fabric):
    a = fabric.add_switch(SwitchRole.TOR, radix=4,
                          rack_id=place(fabric, 0, 0))
    b = fabric.add_switch(SwitchRole.TOR, radix=4,
                          rack_id=place(fabric, 1, 3))
    link = fabric.connect(a.id, b.id)
    assert link.id in fabric.links
    assert link.state is LinkState.UP
    assert link.port_a.occupied and link.port_b.occupied
    assert link.transceiver_a.id in fabric.transceivers
    assert link.cable.id in fabric.cables
    assert link.endpoint_ids == (a.id, b.id)
    assert fabric.links_of(a.id) == [link]
    assert fabric.links_of(b.id) == [link]


def test_connect_same_rack_uses_dac(fabric):
    rack = place(fabric, 0, 0)
    a = fabric.add_switch(SwitchRole.TOR, radix=4, rack_id=rack,
                          u_position=10)
    b = fabric.add_switch(SwitchRole.TOR, radix=4, rack_id=rack,
                          u_position=20)
    link = fabric.connect(a.id, b.id)
    assert link.cable.kind is CableKind.DAC
    assert not link.transceiver_a.optical


def test_connect_cross_row_uses_separable_fiber():
    # Long runs (across a real-sized hall) exceed AOC reach and get
    # separate transceivers + MPO fiber.
    fabric = Fabric(layout=HallLayout(rows=8, racks_per_row=20),
                    rng=np.random.default_rng(5))
    a = fabric.add_switch(SwitchRole.TOR, radix=4,
                          rack_id=fabric.layout.rack_at(0, 0).id)
    b = fabric.add_switch(SwitchRole.SPINE, radix=4,
                          rack_id=fabric.layout.rack_at(7, 19).id)
    link = fabric.connect(a.id, b.id)
    # QSFP-DD default (400G): long runs get MPO with >= 4 cores.
    assert link.cable.kind is CableKind.MPO
    assert link.cable.core_count >= 4
    assert link.cable.cleanable
    assert link.transceiver_a.optical


def test_forced_cable_kind(fabric):
    a = fabric.add_switch(SwitchRole.TOR, radix=4,
                          rack_id=place(fabric, 0, 0))
    b = fabric.add_switch(SwitchRole.TOR, radix=4,
                          rack_id=place(fabric, 0, 1))
    link = fabric.connect(a.id, b.id, kind=CableKind.AOC)
    assert link.cable.kind is CableKind.AOC


def test_capacity_is_min_of_port_rates(fabric):
    a = fabric.add_switch(SwitchRole.TOR, radix=4,
                          form_factor=FormFactor.QSFP28,
                          rack_id=place(fabric, 0, 0))
    b = fabric.add_switch(SwitchRole.SPINE, radix=4,
                          form_factor=FormFactor.OSFP,
                          rack_id=place(fabric, 0, 1))
    link = fabric.connect(a.id, b.id)
    assert link.capacity_gbps == 100


def test_links_share_bundles_per_row_pair(fabric):
    a = fabric.add_switch(SwitchRole.TOR, radix=8,
                          rack_id=place(fabric, 0, 0))
    b = fabric.add_switch(SwitchRole.SPINE, radix=8,
                          rack_id=place(fabric, 1, 0))
    link1 = fabric.connect(a.id, b.id)
    link2 = fabric.connect(a.id, b.id)
    assert link1.bundle_id == link2.bundle_id
    neighbors = fabric.bundle_neighbor_links(link1)
    assert neighbors == [link2]


def test_bundle_capacity_opens_new_bundle():
    fabric = Fabric(layout=HallLayout(rows=1, racks_per_row=2),
                    rng=np.random.default_rng(1), bundle_capacity=2)
    a = fabric.add_switch(SwitchRole.TOR, radix=8,
                          rack_id=fabric.layout.rack_at(0, 0).id)
    b = fabric.add_switch(SwitchRole.TOR, radix=8,
                          rack_id=fabric.layout.rack_at(0, 1).id)
    links = [fabric.connect(a.id, b.id) for _ in range(3)]
    bundles = {link.bundle_id for link in links}
    assert len(bundles) == 2


def test_graph_reflects_links(fabric):
    a = fabric.add_switch(SwitchRole.TOR, radix=4,
                          rack_id=place(fabric, 0, 0))
    b = fabric.add_switch(SwitchRole.TOR, radix=4,
                          rack_id=place(fabric, 0, 1))
    link = fabric.connect(a.id, b.id)
    graph = fabric.graph()
    assert graph.has_edge(a.id, b.id)
    link.set_state(1.0, LinkState.DOWN)
    operational = fabric.graph(operational_only=True)
    assert not operational.has_edge(a.id, b.id)
    assert a.id in operational  # nodes stay


def test_link_lookup_by_component(fabric):
    a = fabric.add_switch(SwitchRole.TOR, radix=4,
                          rack_id=place(fabric, 0, 0))
    b = fabric.add_switch(SwitchRole.TOR, radix=4,
                          rack_id=place(fabric, 0, 1))
    link = fabric.connect(a.id, b.id)
    assert fabric.link_of_cable(link.cable.id) is link
    assert fabric.link_of_transceiver(link.transceiver_b.id) is link
    assert fabric.link_of_cable("cbl-99999") is None


def test_spare_stock_and_draw(fabric):
    fabric.stock_spares({FormFactor.QSFP_DD: 2}, cables=1)
    unit = fabric.take_spare_transceiver(FormFactor.QSFP_DD, optical=True)
    assert unit is not None
    assert fabric.spare_transceivers[FormFactor.QSFP_DD] == 1
    assert fabric.take_spare_transceiver(FormFactor.QSFP_DD,
                                         optical=True) is not None
    assert fabric.take_spare_transceiver(FormFactor.QSFP_DD,
                                         optical=True) is None
    assert fabric.take_spare_transceiver(FormFactor.OSFP,
                                         optical=True) is None


def test_spare_cable_matches_template(fabric):
    a = fabric.add_switch(SwitchRole.TOR, radix=4,
                          rack_id=place(fabric, 0, 0))
    b = fabric.add_switch(SwitchRole.SPINE, radix=4,
                          rack_id=place(fabric, 1, 3))
    link = fabric.connect(a.id, b.id)
    fabric.stock_spares({}, cables=1)
    replacement = fabric.take_spare_cable(link.cable)
    assert replacement is not None
    assert replacement.kind is link.cable.kind
    assert replacement.core_count == link.cable.core_count
    assert fabric.take_spare_cable(link.cable) is None


def test_link_state_timeline_and_uptime(fabric):
    a = fabric.add_switch(SwitchRole.TOR, radix=4,
                          rack_id=place(fabric, 0, 0))
    b = fabric.add_switch(SwitchRole.TOR, radix=4,
                          rack_id=place(fabric, 0, 1))
    link = fabric.connect(a.id, b.id)
    assert link.set_state(10.0, LinkState.DOWN)
    assert not link.set_state(10.0, LinkState.DOWN)  # no-op
    assert link.set_state(30.0, LinkState.UP)
    assert link.uptime_fraction(0.0, 100.0) == pytest.approx(0.8)
    assert link.transition_count == 2
    assert link.transitions_in_window(0.0, 100.0) == 2
    assert link.transitions_in_window(15.0, 100.0) == 1


def test_uptime_counts_flapping_as_carrying(fabric):
    a = fabric.add_switch(SwitchRole.TOR, radix=4,
                          rack_id=place(fabric, 0, 0))
    b = fabric.add_switch(SwitchRole.TOR, radix=4,
                          rack_id=place(fabric, 0, 1))
    link = fabric.connect(a.id, b.id)
    link.set_state(50.0, LinkState.FLAPPING)
    assert link.uptime_fraction(0.0, 100.0) == pytest.approx(1.0)
    link.set_state(60.0, LinkState.DOWN)
    assert link.uptime_fraction(0.0, 100.0) == pytest.approx(0.6)


def test_replace_transceiver_updates_port(fabric):
    a = fabric.add_switch(SwitchRole.TOR, radix=4,
                          rack_id=place(fabric, 0, 0))
    b = fabric.add_switch(SwitchRole.TOR, radix=4,
                          rack_id=place(fabric, 0, 1))
    link = fabric.connect(a.id, b.id)
    new_unit = fabric.new_transceiver(FormFactor.QSFP_DD, optical=True)
    old = link.replace_transceiver("a", new_unit)
    assert link.transceiver_a is new_unit
    assert link.port_a.transceiver_id == new_unit.id
    assert old.id != new_unit.id


def test_cable_length_grows_with_distance(fabric):
    near_a = fabric.add_switch(SwitchRole.TOR, radix=4,
                               rack_id=place(fabric, 0, 0))
    near_b = fabric.add_switch(SwitchRole.TOR, radix=4,
                               rack_id=place(fabric, 0, 1))
    far_b = fabric.add_switch(SwitchRole.TOR, radix=4,
                              rack_id=place(fabric, 1, 3))
    short = fabric.cable_length(near_a.id, near_b.id)
    long = fabric.cable_length(near_a.id, far_b.id)
    assert long > short > 0
