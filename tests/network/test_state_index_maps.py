"""FabricState index-map edge cases: dense rows must survive churn.

The columnar store keeps rows dense with swap-with-last removal and
re-aims every bound component view at its new row.  These tests pin the
bookkeeping the batch kernels depend on: ``index_of``/``links_by_row``
consistency, view re-aiming after removals and replacements, lid
(insertion-ordinal) ordering, consumer-column alignment, and capacity
growth.
"""

import numpy as np
import pytest

from dcrobot.network import Fabric, HallLayout, SwitchRole
from dcrobot.network.enums import LinkState
from dcrobot.network.state import CODE_OF, DOWN_CODE, UP_CODE


@pytest.fixture
def fabric():
    layout = HallLayout(rows=1, racks_per_row=2, height_u=48)
    fab = Fabric(layout=layout, rng=np.random.default_rng(7))
    rack_a, rack_b = layout.rack_at(0, 0), layout.rack_at(0, 1)
    fab.add_switch(SwitchRole.TOR, radix=16, rack_id=rack_a.id)
    fab.add_switch(SwitchRole.TOR, radix=16, rack_id=rack_b.id)
    return fab


def _connect(fab, count):
    switch_a, switch_b = list(fab.switches.values())[:2]
    return [fab.connect(switch_a.id, switch_b.id) for _ in range(count)]


def _assert_consistent(fab):
    """Every map agrees with every other map, for all live rows."""
    state = fab.state
    assert state.n_links == len(fab.links)
    assert len(state.links_by_row) == state.n_links
    for row, link in enumerate(state.links_by_row):
        assert state.index_of[link.id] == row
        assert link._fs is state and link._row == row
        assert state._row_of_lid[int(state.lid_of_row[row])] == row
        for side, unit in enumerate(link.transceivers()):
            assert unit._fs is state
            assert (unit._row, unit._side) == (row, side)
        assert link.cable._row == row
        for port in link.ports():
            assert port._row == row
    # Sorting rows by lid reproduces fabric.links insertion order.
    rows = state.rows_in_insertion_order(np.arange(state.n_links))
    assert [state.links_by_row[row].id for row in rows] \
        == list(fab.links)


def test_swap_with_last_removal_keeps_rows_dense(fabric):
    links = _connect(fabric, 5)
    state = fabric.state
    # Remove a middle link: the last row must be swapped into its slot.
    victim, moved = links[1], links[4]
    moved.set_state(5.0, LinkState.DOWN)
    fabric.disconnect(victim.id)
    assert state.n_links == 4
    assert state.index_of[moved.id] == 1
    assert state.state_code[1] == DOWN_CODE
    _assert_consistent(fabric)
    # The removed link is fully unbound and works standalone.
    assert victim._fs is None and victim._row == -1
    victim.set_state(6.0, LinkState.DOWN)
    assert victim.state is LinkState.DOWN


def test_removed_last_row_needs_no_swap(fabric):
    links = _connect(fabric, 3)
    fabric.disconnect(links[-1].id)
    assert fabric.state.n_links == 2
    _assert_consistent(fabric)


def test_moved_views_write_to_their_new_row(fabric):
    links = _connect(fabric, 4)
    moved = links[3]
    fabric.disconnect(links[0].id)
    state = fabric.state
    row = state.index_of[moved.id]
    # Mutations through every component view land on the moved row.
    moved.transceiver_a.seated = False
    moved.cable.damaged = True
    moved.port_b.hw_fault = True
    assert not state.seated[0, row]
    assert state.cable_damaged[row]
    assert state.port_hw_fault[1, row]
    if moved.cable.end_a is not None:  # integrated DAC ends have none
        moved.cable.end_a.add_contamination(0.4)
        assert state.cable_end_worst[0, row] == pytest.approx(0.4)


def test_reconnect_after_remove_reuses_dense_row(fabric):
    links = _connect(fabric, 2)
    generation = fabric.state.generation
    fabric.disconnect(links[0].id)
    fresh = _connect(fabric, 1)[0]
    state = fabric.state
    assert state.n_links == 2
    # A fresh bind gets a fresh lid, so insertion order stays exact.
    assert int(state.lid_of_row[state.index_of[fresh.id]]) == 2
    assert state.generation > generation
    _assert_consistent(fabric)


def test_transceiver_replacement_rebinds_views(fabric):
    link = _connect(fabric, 1)[0]
    state = fabric.state
    old = link.transceiver_a
    old.oxidation = 0.7
    if old.receptacle is not None:
        old.receptacle.add_contamination(0.5)
    fabric.stock_spares({old.form_factor: 1})
    spare = fabric.take_spare_transceiver(old.form_factor, old.optical)
    replaced = link.replace_transceiver("a", spare)
    assert replaced is old
    # Old unit keeps its physics on plain attributes; the row now
    # reflects the pristine spare.
    assert old._fs is None
    assert old.oxidation == pytest.approx(0.7)
    assert state.ox[0, 0] == 0.0
    assert state.recept_worst[0, 0] == 0.0
    assert spare._fs is state and spare._row == 0
    _assert_consistent(fabric)


def test_cable_replacement_resets_end_columns(fabric):
    link = _connect(fabric, 1)[0]
    state = fabric.state
    old = link.cable
    if old.end_a is not None:
        old.end_a.add_contamination(0.9)
        old.end_a.scratch(0)
    fabric.stock_spares({}, cables=1)
    spare = fabric.take_spare_cable(old)
    link.replace_cable(spare)
    assert old._fs is None
    assert state.cable_end_worst[0, 0] == 0.0
    assert not state.cable_end_scratched[0, 0]
    assert spare._fs is state and spare._row == 0
    _assert_consistent(fabric)


def test_consumer_columns_track_removal(fabric):
    links = _connect(fabric, 4)
    state = fabric.state
    column = state.add_link_column(False)
    target = links[3]
    column.values[state.index_of[target.id]] = True
    fabric.disconnect(links[0].id)
    assert column.values[state.index_of[target.id]]
    assert not column.values[1:4].any() or \
        column.values[state.index_of[target.id]]


def test_capacity_growth_preserves_rows_and_columns():
    layout = HallLayout(rows=1, racks_per_row=2, height_u=48)
    fabric = Fabric(layout=layout, rng=np.random.default_rng(7))
    rack_a, rack_b = layout.rack_at(0, 0), layout.rack_at(0, 1)
    fabric.add_switch(SwitchRole.TOR, radix=128, rack_id=rack_a.id)
    fabric.add_switch(SwitchRole.TOR, radix=128, rack_id=rack_b.id)
    state = fabric.state
    column = state.add_link_column(0.0)
    links = _connect(fabric, 70)  # past the initial capacity of 64
    column.values[state.index_of[links[0].id]] = 2.5
    assert state.n_links == 70
    assert len(column.values) >= 70
    assert column.values[state.index_of[links[0].id]] == 2.5
    _assert_consistent(fabric)


def test_state_mirror_round_trip(fabric):
    link = _connect(fabric, 1)[0]
    state = fabric.state
    for value in (LinkState.DOWN, LinkState.MAINTENANCE, LinkState.UP):
        link.set_state(1.0, value)
        assert state.state_code[0] == CODE_OF[value]
    assert state.state_code[0] == UP_CODE


def test_flap_log_matches_object_walk(fabric):
    link_a, link_b = _connect(fabric, 2)
    link_a.set_state(10.0, LinkState.DOWN)
    link_a.set_state(20.0, LinkState.UP)
    link_b.set_state(25.0, LinkState.DOWN)
    # Administrative transitions must not enter the flap log.
    link_b.set_state(30.0, LinkState.MAINTENANCE)
    link_b.set_state(35.0, LinkState.UP)
    state = fabric.state
    counts = state.flap_counts(0.0, 100.0)
    for row, link in enumerate(state.links_by_row):
        assert counts[row] == link.transitions_in_window(0.0, 100.0)


def test_double_bind_rejected(fabric):
    link = _connect(fabric, 1)[0]
    with pytest.raises(ValueError):
        fabric.state.add_link(link)
