"""Unit tests for the deterministic span tracer."""

import enum

import numpy as np
import pytest

from dcrobot.obs.trace import (
    NULL_RECORDER,
    NullRecorder,
    Span,
    Tracer,
    trace_id_from_seed,
)


class Colour(enum.Enum):
    RED = "red"


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def test_trace_id_is_a_stable_function_of_the_seed():
    assert trace_id_from_seed(0) == trace_id_from_seed(0)
    assert trace_id_from_seed(0) != trace_id_from_seed(1)
    assert len(trace_id_from_seed(123)) == 16
    int(trace_id_from_seed(123), 16)  # hex


def test_span_ids_are_sequential_per_tracer():
    tracer = Tracer()
    spans = [tracer.start_span(f"s{i}") for i in range(5)]
    assert [span.span_id for span in spans] == [0, 1, 2, 3, 4]
    # A second tracer starts over: ids depend only on event order.
    assert Tracer().start_span("x").span_id == 0


def test_parentless_spans_hang_off_the_root():
    tracer = Tracer()
    root = tracer.open_root("world")
    child = tracer.start_span("incident")
    grandchild = tracer.start_span("plan", parent=child)
    assert root.parent_id is None
    assert child.parent_id == root.span_id
    assert grandchild.parent_id == child.span_id


def test_start_span_without_root_is_an_orphan():
    span = Tracer().start_span("lonely")
    assert span.parent_id is None


def test_timestamps_come_from_the_injected_clock():
    clock = FakeClock(100.0)
    tracer = Tracer(clock=clock)
    span = tracer.start_span("work")
    clock.now = 250.0
    tracer.end_span(span)
    assert span.start == 100.0
    assert span.end == 250.0
    assert span.duration == 150.0


def test_end_span_is_idempotent_and_none_safe():
    clock = FakeClock(1.0)
    tracer = Tracer(clock=clock)
    span = tracer.start_span("once")
    tracer.end_span(span, status="error")
    clock.now = 2.0
    tracer.end_span(span, status="ok", extra=1)
    assert span.end == 1.0
    assert span.status == "error"  # first end wins
    assert span.attributes["extra"] == 1  # attributes still merge
    tracer.end_span(None)  # no crash


def test_record_is_an_instant_span():
    tracer = Tracer(clock=FakeClock(42.0))
    span = tracer.record("detect", link_id="l1")
    assert span.start == span.end == 42.0
    assert span.duration == 0.0


def test_span_contextmanager_sets_error_status_on_raise():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            raise RuntimeError("x")
    assert tracer.spans[-1].status == "error"
    with tracer.span("fine") as span:
        pass
    assert span.status == "ok"
    assert span.end is not None


def test_attributes_are_coerced_to_plain_scalars():
    tracer = Tracer()
    span = tracer.start_span(
        "attrs", colour=Colour.RED, count=np.int64(3),
        rate=np.float64(0.5), flag=True, nothing=None)
    assert span.attributes == {
        "colour": "red", "count": 3, "rate": 0.5,
        "flag": True, "nothing": None}
    assert type(span.attributes["count"]) is int
    assert type(span.attributes["rate"]) is float


def test_to_dict_sorts_attributes():
    span = Span(trace_id="t", span_id=0, parent_id=None, name="n",
                start=0.0, attributes={"b": 1, "a": 2})
    assert list(span.to_dict()["attributes"]) == ["a", "b"]


def test_finish_closes_the_root():
    tracer = Tracer(clock=FakeClock(9.0))
    root = tracer.open_root("world")
    tracer.finish()
    assert root.end == 9.0
    tracer.finish()  # idempotent
    assert root.end == 9.0


def test_null_recorder_does_nothing_and_is_disabled():
    assert NullRecorder.enabled is False
    assert Tracer.enabled is True
    recorder = NULL_RECORDER
    assert recorder.open_root("world") is None
    assert recorder.start_span("s") is None
    assert recorder.record("r") is None
    recorder.end_span(None)
    recorder.finish()
    with recorder.span("ctx") as span:
        assert span is None
    assert recorder.spans == []
