"""Property-based tests (hypothesis) for the observability layer.

Two invariant families the exporters and golden tests silently rely
on: fixed-bucket histograms behave like Prometheus histograms under
any observation sequence (and merge associatively), and the tracer
produces well-formed span trees under any interleaving of starts,
ends, and instant records.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from dcrobot.obs.metrics import Histogram
from dcrobot.obs.trace import Tracer

# -- histogram invariants ---------------------------------------------------

bounds = st.lists(
    st.floats(min_value=-1e9, max_value=1e9,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=8, unique=True)

observations = st.lists(
    st.floats(min_value=-1e12, max_value=1e12,
              allow_nan=False, allow_infinity=False),
    max_size=60)


def _fill(name, uppers, values):
    histogram = Histogram(name, buckets=uppers)
    for value in values:
        histogram.observe(value)
    return histogram


@given(uppers=bounds, values=observations)
@settings(max_examples=120, deadline=None)
def test_histogram_bucket_counts_sum_to_observation_count(
        uppers, values):
    histogram = _fill("h", uppers, values)
    state = histogram._state(())
    assert sum(state.bucket_counts) == len(values) == state.count
    assert len(state.bucket_counts) == len(histogram.uppers) + 1


@given(uppers=bounds, values=observations)
@settings(max_examples=120, deadline=None)
def test_histogram_cumulative_counts_are_monotone(uppers, values):
    histogram = _fill("h", uppers, values)
    cumulative = histogram.cumulative_counts()
    assert all(a <= b for a, b in zip(cumulative, cumulative[1:]))
    assert cumulative[-1] == len(values)


@given(uppers=bounds, values=observations)
@settings(max_examples=120, deadline=None)
def test_histogram_every_observation_lands_in_its_bucket(
        uppers, values):
    histogram = _fill("h", uppers, values)
    state = histogram._state(())
    # Rebuild the expected bucketing independently.
    expected = [0] * (len(histogram.uppers) + 1)
    for value in values:
        for index, upper in enumerate(histogram.uppers):
            if value <= upper:
                expected[index] += 1
                break
        else:
            expected[-1] += 1
    assert state.bucket_counts == expected


@given(uppers=bounds, a=observations, b=observations, c=observations)
@settings(max_examples=80, deadline=None)
def test_histogram_merge_is_associative_and_commutative(
        uppers, a, b, c):
    ha, hb, hc = (_fill("h", uppers, values) for values in (a, b, c))

    def state_of(histogram):
        return [(key, list(state.bucket_counts), state.count)
                for key, state in histogram.samples()]

    left = ha.merge(hb).merge(hc)
    right = ha.merge(hb.merge(hc))
    assert state_of(left) == state_of(right)
    assert state_of(ha.merge(hb)) == state_of(hb.merge(ha))
    # Merging never mutates the sources.
    assert ha._state(()).count == len(a)


# -- span-tree invariants ---------------------------------------------------

#: One op per element: push a child (True) / pop the innermost open
#: span (False) / record an instant span under the innermost (None).
span_ops = st.lists(st.sampled_from([True, False, None]), max_size=80)
advances = st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), max_size=80)


def _build_trace(ops, steps):
    clock = {"now": 0.0}
    tracer = Tracer(trace_id="prop", clock=lambda: clock["now"])
    stack = [tracer.open_root("world")]
    for index, op in enumerate(ops):
        clock["now"] += steps[index % len(steps)] if steps else 1.0
        if op is True:
            stack.append(tracer.start_span("child", parent=stack[-1]))
        elif op is False:
            if len(stack) > 1:
                tracer.end_span(stack.pop())
        else:
            tracer.record("instant", parent=stack[-1])
    while len(stack) > 1:
        tracer.end_span(stack.pop())
    tracer.finish()
    return tracer


@given(ops=span_ops, steps=advances)
@settings(max_examples=120, deadline=None)
def test_span_ids_are_unique_and_parents_exist(ops, steps):
    tracer = _build_trace(ops, steps)
    ids = [span.span_id for span in tracer.spans]
    assert len(ids) == len(set(ids))
    by_id = {span.span_id: span for span in tracer.spans}
    roots = [span for span in tracer.spans if span.parent_id is None]
    assert len(roots) == 1  # no orphan parents: everything hangs
    for span in tracer.spans:  # off the single world root
        if span.parent_id is not None:
            assert span.parent_id in by_id
            assert span.parent_id < span.span_id  # parents come first


@given(ops=span_ops, steps=advances)
@settings(max_examples=120, deadline=None)
def test_children_nest_within_their_parents(ops, steps):
    tracer = _build_trace(ops, steps)
    by_id = {span.span_id: span for span in tracer.spans}
    for span in tracer.spans:
        assert span.end is not None
        assert span.end >= span.start
        if span.parent_id is None:
            continue
        parent = by_id[span.parent_id]
        assert parent.start <= span.start
        assert span.end <= parent.end


@given(ops=span_ops, steps=advances)
@settings(max_examples=60, deadline=None)
def test_identical_op_sequences_export_identical_spans(ops, steps):
    first = [span.to_dict() for span in _build_trace(ops, steps).spans]
    second = [span.to_dict() for span in _build_trace(ops, steps).spans]
    assert first == second
