"""Overhead regression: observability must be ~free.

Disabled mode (the default) pays one ``if obs.enabled:`` guard per
instrumentation site, so its cost is strictly below the *fully
enabled* tracer's.  This test therefore bounds the stronger quantity:
a traced E13 trial must run within 2% of the identical untraced trial.

Timing strategy against CI noise: interleaved runs (so drift hits both
modes equally), min-of-N per mode (min is the low-noise estimator for
"how fast can this go"), and a couple of re-measure rounds before
declaring a regression.
"""

import time

from dcrobot.experiments.e13_chaos_resilience import _trial

PARAMS = {"mode": "hardened", "chaos_scale": 1.0,
          "failure_scale": 4.0, "horizon_days": 4.0}
MAX_OVERHEAD = 0.02
REPS = 4
ROUNDS = 3


def _timed(observe: bool) -> float:
    params = dict(PARAMS)
    if observe:
        params["observe"] = True
    started = time.perf_counter()
    _trial(params, seed=11)
    return time.perf_counter() - started


def _measure_overhead() -> float:
    plain, traced = [], []
    for _ in range(REPS):
        plain.append(_timed(False))
        traced.append(_timed(True))
    return (min(traced) - min(plain)) / min(plain)


def test_tracing_overhead_under_two_percent():
    _timed(False)  # warm caches/imports outside the measurement
    _timed(True)
    overheads = []
    for _ in range(ROUNDS):
        overhead = _measure_overhead()
        overheads.append(overhead)
        if overhead < MAX_OVERHEAD:
            return
    raise AssertionError(
        f"tracing overhead {min(overheads):.1%} exceeds "
        f"{MAX_OVERHEAD:.0%} in {ROUNDS} rounds "
        f"(all rounds: {[f'{o:.1%}' for o in overheads]})")
