"""Unit tests for the metrics registry and its instruments."""

import numpy as np
import pytest

from dcrobot.obs.metrics import (
    COUNT_BUCKETS,
    MTTR_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)


# -- counters ---------------------------------------------------------------

def test_counter_accumulates_per_label_set():
    counter = Counter("c")
    counter.inc()
    counter.inc(2.0, kind="a")
    counter.inc(3.0, kind="a")
    counter.inc(kind="b")
    assert counter.value() == 1.0
    assert counter.value(kind="a") == 5.0
    assert counter.total() == 7.0


def test_counter_rejects_negative_increments():
    with pytest.raises(ValueError, match="cannot decrease"):
        Counter("c").inc(-1.0)


def test_counter_label_order_is_irrelevant():
    counter = Counter("c")
    counter.inc(a="1", b="2")
    counter.inc(b="2", a="1")
    assert counter.value(b="2", a="1") == 2.0
    assert len(counter.samples()) == 1


def test_counter_coerces_numpy_values():
    counter = Counter("c")
    counter.inc(np.int64(4))
    assert counter.value() == 4.0
    assert type(counter.value()) is float


# -- gauges -----------------------------------------------------------------

def test_gauge_last_write_wins_and_inc_dec():
    gauge = Gauge("g")
    gauge.set(5.0)
    gauge.set(2.0)
    assert gauge.value() == 2.0
    gauge.inc(3.0)
    gauge.dec()
    assert gauge.value() == 4.0
    gauge.dec(10.0, node="n1")
    assert gauge.value(node="n1") == -10.0


# -- histograms -------------------------------------------------------------

def test_histogram_buckets_values_by_upper_bound():
    histogram = Histogram("h", buckets=(1.0, 10.0))
    for value in (0.5, 1.0, 5.0, 100.0):
        histogram.observe(value)
    state = dict(histogram.samples())[()]
    # <=1, <=10, +Inf
    assert state.bucket_counts == [2, 1, 1]
    assert histogram.count() == 4
    assert histogram.sum() == pytest.approx(106.5)
    assert histogram.cumulative_counts() == [2, 3, 4]


def test_histogram_known_names_get_their_bounds():
    assert Histogram("dcrobot_incident_mttr_seconds").uppers \
        == MTTR_BUCKETS
    assert Histogram("dcrobot_incident_attempts").uppers \
        == COUNT_BUCKETS


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError, match=">= 1 bucket"):
        Histogram("h", buckets=())
    with pytest.raises(ValueError, match="finite"):
        Histogram("h", buckets=(1.0, float("inf")))
    with pytest.raises(ValueError, match="duplicate"):
        Histogram("h", buckets=(1.0, 1.0))


def test_histogram_merge_requires_identical_bounds():
    a = Histogram("h", buckets=(1.0, 2.0))
    b = Histogram("h", buckets=(1.0, 3.0))
    with pytest.raises(ValueError, match="bounds differ"):
        a.merge(b)
    with pytest.raises(TypeError):
        a.merge("not a histogram")


def test_histogram_merge_sums_states():
    a = Histogram("h", buckets=(1.0, 2.0))
    b = Histogram("h", buckets=(1.0, 2.0))
    a.observe(0.5, kind="x")
    b.observe(1.5, kind="x")
    b.observe(9.0)
    merged = a.merge(b)
    assert merged.count(kind="x") == 2
    assert merged.sum(kind="x") == pytest.approx(2.0)
    assert merged.count() == 1
    # Sources are untouched.
    assert a.count(kind="x") == 1


# -- registry ---------------------------------------------------------------

def test_registry_create_or_get_returns_same_instrument():
    registry = MetricsRegistry()
    assert registry.counter("c") is registry.counter("c")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.histogram("h") is registry.histogram("h")
    assert len(registry) == 3
    assert "c" in registry
    assert "missing" not in registry


def test_registry_kind_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("metric")
    with pytest.raises(ValueError, match="already registered"):
        registry.gauge("metric")


def test_registry_histogram_bound_conflict_raises():
    registry = MetricsRegistry()
    registry.histogram("h", buckets=(1.0, 2.0))
    registry.histogram("h")  # no explicit bounds: fine
    with pytest.raises(ValueError, match="bounds"):
        registry.histogram("h", buckets=(1.0, 3.0))


def test_registry_instruments_sorted_by_name():
    registry = MetricsRegistry()
    registry.counter("zebra")
    registry.gauge("alpha")
    assert [name for name, _ in registry.instruments()] \
        == ["alpha", "zebra"]


def test_null_registry_is_inert():
    assert NullRegistry.enabled is False
    instrument = NULL_REGISTRY.counter("anything")
    instrument.inc(5.0, label="x")
    assert instrument.value() == 0.0
    assert NULL_REGISTRY.histogram("h") is NULL_REGISTRY.gauge("g")
    assert NULL_REGISTRY.instruments() == []
    assert len(NULL_REGISTRY) == 0
    assert "anything" not in NULL_REGISTRY
