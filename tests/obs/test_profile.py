"""Tests for the sim profiler and its engine hook."""

from dcrobot.obs.profile import ProfileEntry, SimProfiler
from dcrobot.sim.engine import Simulation


def _worker(sim, steps=3, delay=10.0):
    for _ in range(steps):
        yield sim.timeout(delay)


def test_engine_defaults_to_no_profiler():
    assert Simulation().profiler is None


def test_attach_detach():
    sim = Simulation()
    profiler = SimProfiler().attach(sim)
    assert sim.profiler is profiler
    profiler.detach(sim)
    assert sim.profiler is None
    # Detaching someone else's profiler is a no-op.
    other = SimProfiler().attach(sim)
    profiler.detach(sim)
    assert sim.profiler is other


def test_profiler_accounts_steps_and_sim_time():
    sim = Simulation()
    sim.process(_worker(sim, steps=3, delay=10.0))
    profiler = SimProfiler().attach(sim)
    sim.run(until=100.0)
    assert profiler.steps > 0
    # run(until=) fast-forwards the clock past the last event; the
    # profiler accounts only time advanced by actual steps.
    assert profiler.sim_seconds == 30.0
    timeout = profiler.event_stats["Timeout"]
    assert timeout.count == 3
    assert timeout.sim_seconds == 30.0
    assert timeout.wall_seconds >= 0.0
    assert profiler.wall_seconds >= timeout.wall_seconds


def test_callbacks_attributed_to_generator_name():
    sim = Simulation()
    sim.process(_worker(sim))
    profiler = SimProfiler().attach(sim)
    sim.run(until=100.0)
    assert "_worker" in profiler.callback_stats
    assert profiler.callback_stats["_worker"].count >= 3


def test_profiling_does_not_change_the_run():
    plain = Simulation()
    plain.process(_worker(plain, steps=5, delay=7.0))
    plain.run(until=100.0)

    profiled = Simulation()
    profiled.process(_worker(profiled, steps=5, delay=7.0))
    SimProfiler().attach(profiled)
    profiled.run(until=100.0)
    assert profiled.now == plain.now


def test_hotspots_rank_by_wall_with_name_tiebreak():
    profiler = SimProfiler()
    profiler.record_callback("b", 0.5)
    profiler.record_callback("a", 0.5)
    profiler.record_callback("c", 2.0)
    names = [name for name, _ in profiler.hotspots(top=3)]
    assert names == ["c", "a", "b"]
    assert len(profiler.hotspots(top=1)) == 1


def test_report_renders_both_tables():
    sim = Simulation()
    sim.process(_worker(sim))
    profiler = SimProfiler().attach(sim)
    sim.run(until=100.0)
    report = profiler.report(top=5)
    assert "sim step accounting by event type" in report
    assert "top 5 callback hotspots" in report
    assert "Timeout" in report
    assert "_worker" in report


def test_profile_entry_defaults():
    entry = ProfileEntry()
    assert (entry.count, entry.wall_seconds, entry.sim_seconds) \
        == (0, 0.0, 0.0)


def test_profile_experiment_tool_runs(capsys):
    import os
    import sys
    sys.path.insert(0, os.path.join(os.path.dirname(__file__),
                                    os.pardir, os.pardir, "tools"))
    try:
        import profile_experiment
    finally:
        sys.path.pop(0)
    assert profile_experiment.main(
        ["e13", "--horizon-days", "2", "--top", "3"]) == 0
    output = capsys.readouterr().out
    assert "callback hotspots" in output
    assert "world: e13" in output
