"""Tests for the JSONL trace and Prometheus/JSON metrics exporters."""

import json

from dcrobot.obs.export import (
    OBS_SCHEMA_VERSION,
    metrics_snapshot,
    metrics_to_json,
    metrics_to_prometheus,
    trace_to_jsonl,
    write_metrics,
    write_trace_jsonl,
)
from dcrobot.obs.metrics import MetricsRegistry
from dcrobot.obs.trace import Tracer


def _sample_tracer():
    tracer = Tracer(trace_id="abc123")
    tracer.open_root("world", seed=7)
    span = tracer.start_span("incident", link_id="l1")
    tracer.record("plan", parent=span, action="reseat")
    tracer.end_span(span)
    tracer.finish()
    return tracer


def _sample_registry():
    registry = MetricsRegistry()
    registry.counter("dcrobot_dispatches_total",
                     help="orders dispatched").inc(3.0, executor="robots")
    registry.counter("dcrobot_dispatches_total").inc(executor="humans")
    registry.gauge("dcrobot_open_incidents").set(2.0)
    histogram = registry.histogram("mttr", buckets=(10.0, 100.0))
    histogram.observe(5.0)
    histogram.observe(50.0)
    histogram.observe(500.0)
    return registry


def test_trace_jsonl_header_and_span_lines():
    text = trace_to_jsonl(_sample_tracer())
    lines = text.splitlines()
    header = json.loads(lines[0])
    assert header == {"kind": "trace",
                      "schema_version": OBS_SCHEMA_VERSION,
                      "trace_id": "abc123", "span_count": 3}
    spans = [json.loads(line) for line in lines[1:]]
    assert [span["span_id"] for span in spans] == [0, 1, 2]
    assert [span["name"] for span in spans] \
        == ["world", "incident", "plan"]
    assert text.endswith("\n")


def test_trace_jsonl_accepts_plain_span_dicts():
    tracer = _sample_tracer()
    as_dicts = [span.to_dict() for span in tracer.spans]
    assert trace_to_jsonl(as_dicts) == trace_to_jsonl(tracer)


def test_trace_jsonl_empty():
    header = json.loads(trace_to_jsonl([]).splitlines()[0])
    assert header["span_count"] == 0
    assert header["trace_id"] == ""


def test_write_trace_jsonl_round_trips(tmp_path):
    path = tmp_path / "trace.jsonl"
    write_trace_jsonl(_sample_tracer(), str(path))
    assert path.read_text() == trace_to_jsonl(_sample_tracer())


def test_metrics_snapshot_shape():
    snapshot = metrics_snapshot(_sample_registry())
    assert snapshot["kind"] == "metrics"
    assert snapshot["schema_version"] == OBS_SCHEMA_VERSION
    metrics = snapshot["metrics"]
    counter = metrics["dcrobot_dispatches_total"]
    assert counter["kind"] == "counter"
    assert counter["help"] == "orders dispatched"
    assert {s["labels"]["executor"]: s["value"]
            for s in counter["samples"]} \
        == {"humans": 1.0, "robots": 3.0}
    histogram = metrics["mttr"]
    assert histogram["buckets"] == [10.0, 100.0]
    (sample,) = histogram["samples"]
    assert sample["bucket_counts"] == [1, 1, 1]
    assert sample["count"] == 3
    assert sample["sum"] == 555.0


def test_metrics_json_is_deterministic():
    assert metrics_to_json(_sample_registry()) \
        == metrics_to_json(_sample_registry())
    parsed = json.loads(metrics_to_json(_sample_registry()))
    assert parsed["kind"] == "metrics"


def test_metrics_prometheus_text_format():
    text = metrics_to_prometheus(_sample_registry())
    lines = text.splitlines()
    assert "# HELP dcrobot_dispatches_total orders dispatched" in lines
    assert "# TYPE dcrobot_dispatches_total counter" in lines
    assert 'dcrobot_dispatches_total{executor="robots"} 3' in lines
    assert "# TYPE dcrobot_open_incidents gauge" in lines
    assert "dcrobot_open_incidents 2" in lines
    # Cumulative buckets with the implicit +Inf.
    assert 'mttr_bucket{le="10"} 1' in lines
    assert 'mttr_bucket{le="100"} 2' in lines
    assert 'mttr_bucket{le="+Inf"} 3' in lines
    assert "mttr_sum 555" in lines
    assert "mttr_count 3" in lines


def test_prometheus_accepts_snapshot_dicts():
    registry = _sample_registry()
    assert metrics_to_prometheus(metrics_snapshot(registry)) \
        == metrics_to_prometheus(registry)


def test_write_metrics_picks_format_by_extension(tmp_path):
    registry = _sample_registry()
    prom = tmp_path / "metrics.prom"
    txt = tmp_path / "metrics.txt"
    other = tmp_path / "metrics.json"
    for path in (prom, txt, other):
        write_metrics(registry, str(path))
    assert prom.read_text() == metrics_to_prometheus(registry)
    assert txt.read_text() == metrics_to_prometheus(registry)
    json.loads(other.read_text())  # JSON fallback
