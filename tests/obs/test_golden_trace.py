"""Golden-trace tests: the observability exports are locked bytes.

Each golden runs a real experiment trial (E13's hardened controller
under 1x chaos; E14's crash-and-journal-replay run) at a pinned seed
and small horizon, exports the trace as JSONL and the metrics as JSON,
and compares byte-for-byte against the snapshots in ``tests/golden/``.

Regenerate intentionally with::

    GOLDEN_REGEN=1 PYTHONPATH=src python -m pytest tests/obs/test_golden_trace.py

A diff here means the instrumentation, the export encoding, or the
world's behaviour changed — all three are release-noteworthy.  Bump
``OBS_SCHEMA_VERSION`` when the export *shape* changed.
"""

import json
import os

import pytest

from dcrobot.experiments.e13_chaos_resilience import _trial as e13_trial
from dcrobot.experiments.e14_crash_recovery import _trial as e14_trial
from dcrobot.obs.export import metrics_to_json, trace_to_jsonl
from dcrobot.obs.trace import trace_id_from_seed

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                          "golden")

#: (name, trial fn, params, seed) — pinned; do not change casually.
CASES = {
    "e13": (e13_trial,
            {"mode": "hardened", "chaos_scale": 1.0,
             "failure_scale": 4.0, "horizon_days": 8.0,
             "observe": True},
            5),
    "e14": (e14_trial,
            {"mode": "replay", "failure_scale": 6.0,
             "horizon_days": 12.0, "observe": True},
            3),
}


def _exports(name):
    trial, params, seed = CASES[name]
    result = trial(dict(params), seed)
    return (trace_to_jsonl(result["trace"]),
            metrics_to_json(result["metrics"]),
            result)


def _golden_path(filename):
    return os.path.join(GOLDEN_DIR, filename)


def _check_or_regen(filename, text):
    path = _golden_path(filename)
    if os.environ.get("GOLDEN_REGEN"):
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        return
    assert os.path.exists(path), (
        f"missing golden {filename}; regenerate with GOLDEN_REGEN=1")
    with open(path, "r", encoding="utf-8") as handle:
        golden = handle.read()
    assert text == golden, (
        f"{filename} drifted from the golden snapshot; if the change "
        f"is intentional, regenerate with GOLDEN_REGEN=1")


@pytest.mark.parametrize("name", sorted(CASES))
def test_trace_and_metrics_match_golden(name):
    trace_text, metrics_text, _result = _exports(name)
    _check_or_regen(f"{name}_trace.jsonl", trace_text)
    _check_or_regen(f"{name}_metrics.json", metrics_text)


def test_rerun_is_bit_identical():
    first_trace, first_metrics, _ = _exports("e14")
    second_trace, second_metrics, _ = _exports("e14")
    assert first_trace == second_trace
    assert first_metrics == second_metrics


def test_trace_id_matches_the_pinned_seed():
    trace_text, _metrics, _result = _exports("e13")
    header = json.loads(trace_text.splitlines()[0])
    assert header["trace_id"] == trace_id_from_seed(CASES["e13"][2])


def test_observation_does_not_change_behaviour():
    """Observed and unobserved runs must agree on every outcome."""
    trial, params, seed = CASES["e13"]
    observed = trial(dict(params), seed)
    blind_params = {key: value for key, value in params.items()
                    if key != "observe"}
    blind = trial(blind_params, seed)
    assert blind["trace"] is None
    assert blind["metrics"] is None
    for key, value in blind.items():
        if key not in ("trace", "metrics"):
            assert observed[key] == value, key


def test_golden_trace_covers_the_incident_lifecycle():
    """The e14 golden exercises every span the layer promises."""
    trace_text, _metrics, result = _exports("e14")
    names = {json.loads(line)["name"]
             for line in trace_text.splitlines()[1:]}
    expected = {"world", "detect", "incident", "plan", "dispatch",
                "execute", "verify", "conclude", "journal.append",
                "journal.snapshot", "controller.crash",
                "failover.promote", "recovery.replay"}
    assert expected <= names
    assert result["crashes"] >= 1
    assert result["recoveries"] >= 1
