"""Unit tests for TwinWorld: forking, the mutation vocabulary,
rolling, and prediction queries."""

import numpy as np
import pytest

from dcrobot.network.enums import LinkState
from dcrobot.network.state import _COW_ATTRS
from dcrobot.network.switchgear import SwitchRole
from dcrobot.sim.rng import RandomStreams
from dcrobot.topology import build_fattree
from dcrobot.topology.smi import SmiTracker, compute_smi
from dcrobot.traffic.driver import TrafficDriver
from dcrobot.traffic.state import TrafficState
from dcrobot.twin import TwinWorld


def make_world(seed=7, k=4, traffic=True):
    topology = build_fattree(k=k, rng=np.random.default_rng(seed))
    endpoints = topology.switches(SwitchRole.TOR)
    state = (TrafficState(topology.fabric, endpoints,
                          rng=np.random.default_rng(seed + 1),
                          max_equal_paths=4)
             if traffic else None)
    return topology, state


def column_pairs(parent_fs, child_fs):
    for name in _COW_ATTRS:
        yield name, getattr(parent_fs, name), getattr(child_fs, name)


# -- fork mechanics -----------------------------------------------------------


def test_fork_shares_every_column():
    topology, traffic = make_world()
    fs = topology.fabric.state
    with TwinWorld.fork(topology.fabric, traffic) as twin:
        for name, parent, child in column_pairs(fs, twin.state):
            if parent.size == 0:
                continue
            assert np.shares_memory(parent, child), name


def test_twin_write_splits_only_the_touched_column():
    topology, traffic = make_world()
    fs = topology.fabric.state
    link_id = next(iter(topology.fabric.links))
    with TwinWorld.fork(topology.fabric, traffic) as twin:
        twin.set_loss_rate(link_id, 0.5)
        for name, parent, child in column_pairs(fs, twin.state):
            if parent.size == 0:
                continue
            if name == "loss_rate":
                assert not np.shares_memory(parent, child)
            else:
                assert np.shares_memory(parent, child), name
        row = twin._row(link_id)
        assert twin.state.loss_rate[row] == 0.5
        assert fs.loss_rate[row] == 0.0


def test_parent_write_does_not_leak_into_twin():
    topology, traffic = make_world()
    fabric = topology.fabric
    link = next(iter(fabric.links.values()))
    with TwinWorld.fork(fabric, traffic) as twin:
        before = int(twin.state.state_code[link._row])
        link.set_state(10.0, LinkState.DOWN)
        assert int(twin.state.state_code[link._row]) == before
        assert twin.link_state(link.id) is LinkState.UP


def test_close_is_idempotent_and_parent_still_works():
    topology, traffic = make_world()
    fabric = topology.fabric
    link = next(iter(fabric.links.values()))
    twin = TwinWorld.fork(fabric, traffic)
    child_code_before = int(twin.state.state_code[link._row])
    twin.close()
    twin.close()
    # post-release parent writes are plain ndarray stores: no barrier,
    # no leak into the (now detached) twin columns
    link.set_state(1.0, LinkState.DOWN)
    assert not link.operational
    assert int(twin.state.state_code[link._row]) == child_code_before


# -- mutation vocabulary ------------------------------------------------------


def test_set_link_state_matches_flap_semantics():
    topology, traffic = make_world()
    with TwinWorld.fork(topology.fabric, traffic) as twin:
        link_id = next(iter(topology.fabric.links))
        assert twin.set_link_state(link_id, LinkState.DOWN, now=5.0)
        assert twin.state._flap_len == 1  # real flap, logged
        assert twin.set_link_state(link_id, LinkState.MAINTENANCE,
                                   now=6.0)
        assert twin.state._flap_len == 1  # administrative: not a flap
        assert not twin.set_link_state(link_id, LinkState.MAINTENANCE)
        assert twin.link_state(link_id) is LinkState.MAINTENANCE


def test_repair_link_restores_health_columns():
    topology, traffic = make_world()
    with TwinWorld.fork(topology.fabric, traffic) as twin:
        link_id = next(iter(topology.fabric.links))
        row = twin._row(link_id)
        twin.set_loss_rate(link_id, 0.7)
        twin.begin_maintenance(link_id, now=3.0)
        assert twin.link_state(link_id) is LinkState.MAINTENANCE
        assert link_id in twin.traffic.drained_links
        twin.repair_link(link_id, now=4.0)
        assert twin.link_state(link_id) is LinkState.UP
        assert twin.state.loss_rate[row] == 0.0
        assert bool(twin.state.seated[:, row].all())
        assert link_id not in twin.traffic.drained_links
    # the live world never saw any of it
    fs = topology.fabric.state
    assert fs.loss_rate[fs.index_of[link_id]] == 0.0
    assert not traffic.drained_links


def test_replace_transceiver_moves_smi_uniformity():
    topology, _ = make_world(traffic=False)
    tracker = SmiTracker(topology)
    live_before = tracker.report()
    link = next(iter(topology.fabric.links.values()))
    new_model = topology.fabric.model_catalog[0].model_id
    old_model = link.transceiver_at("a").model.model_id
    with TwinWorld.fork(topology.fabric,
                        smi_tracker=tracker) as twin:
        twin.replace_transceiver(link.id, "a", model_id=new_model)
        predicted = twin.smi_tracker.report()
    # the live tracker is untouched by the twin's swap
    assert tracker.report().factors == live_before.factors
    if new_model != old_model:
        assert predicted.factors["uniformity"] != \
            live_before.factors["uniformity"]
    # the prediction matches actually doing the swap
    unit = topology.fabric.new_transceiver(
        link.transceiver_at("a").model.form_factor, optical=True)
    unit.model = next(model for model in topology.fabric.model_catalog
                      if model.model_id == new_model)
    link.replace_transceiver("a", unit)
    realized = compute_smi(topology)
    assert predicted.factors["uniformity"] == pytest.approx(
        realized.factors["uniformity"], abs=1e-12)
    tracker.close()


def test_replace_cable_moves_smi_serviceability():
    topology, _ = make_world(traffic=False)
    tracker = SmiTracker(topology)
    link = next(iter(topology.fabric.links.values()))
    target = not bool(link.cable.cleanable)
    with TwinWorld.fork(topology.fabric,
                        smi_tracker=tracker) as twin:
        before = twin.smi_tracker.report().factors["serviceability"]
        twin.replace_cable(link.id, cleanable=target)
        after = twin.smi_tracker.report().factors["serviceability"]
    n = len(topology.fabric.links)
    assert after - before == pytest.approx(
        (1 if target else -1) / n, abs=1e-12)
    assert tracker.report().factors["serviceability"] \
        == pytest.approx(before, abs=1e-12)
    tracker.close()


# -- rolling and predictions --------------------------------------------------


def test_offer_window_without_traffic_raises():
    topology, _ = make_world(traffic=False)
    with TwinWorld.fork(topology.fabric) as twin:
        with pytest.raises(RuntimeError, match="no traffic"):
            twin.offer_window()


def test_predicted_smi_without_tracker_raises():
    topology, traffic = make_world()
    with TwinWorld.fork(topology.fabric, traffic) as twin:
        with pytest.raises(RuntimeError, match="SmiTracker"):
            twin.predicted_smi()


def test_fork_inherits_driver_parameters():
    topology, traffic = make_world()
    driver = TrafficDriver(traffic,
                           rng=np.random.default_rng(3),
                           window_seconds=600.0,
                           sample_seconds=2.0,
                           flows_per_window=50)
    driver.offer(now=600.0)
    with TwinWorld.fork(topology.fabric, traffic,
                        driver=driver, now=600.0) as twin:
        assert twin.window_seconds == 600.0
        assert twin.sample_seconds == 2.0
        assert twin.flows_per_window == 50
        assert twin.next_flow_id == driver._next_flow_id
        results = twin.roll(3)
    assert len(results) == 3
    assert len(twin.windows) == 3
    assert twin.now == 600.0 + 3 * 600.0
    assert twin.next_flow_id == driver._next_flow_id + 3 * 50
    # twin rolls never advanced the live driver or its matrix log
    assert len(driver.windows) == 1


def test_roll_leaves_live_utilization_untouched():
    topology, traffic = make_world()
    n = topology.fabric.state.n_links
    live_before = traffic.util_bytes.values[:n].copy()
    with TwinWorld.fork(topology.fabric, traffic,
                        rng=RandomStreams(99).stream("twin"),
                        flows_per_window=200,
                        window_seconds=60.0) as twin:
        twin.roll(2)
        assert float(twin.traffic.util_bytes.values[:n].sum()) > 0
    assert np.array_equal(traffic.util_bytes.values[:n], live_before)


def test_p99_fct_empty_is_nan():
    topology, traffic = make_world()
    with TwinWorld.fork(topology.fabric, traffic) as twin:
        assert np.isnan(twin.p99_fct())


def test_maintenance_windows_are_flagged():
    topology, traffic = make_world()
    link_id = next(iter(topology.fabric.links))
    with TwinWorld.fork(topology.fabric, traffic,
                        rng=np.random.default_rng(5),
                        flows_per_window=100,
                        window_seconds=60.0) as twin:
        twin.roll(1)
        twin.begin_maintenance(link_id)
        twin.roll(1)
        twin.repair_link(link_id)
        twin.roll(1)
        flags = [w.maintenance_active for w in twin.windows]
    assert flags == [False, True, False]
