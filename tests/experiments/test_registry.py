"""Unit tests for the experiment registry, results, and CLI."""

import pytest

from dcrobot.experiments import (
    DESCRIPTIONS,
    REGISTRY,
    run_experiment,
)
from dcrobot.experiments.__main__ import main
from dcrobot.experiments.result import ExperimentResult
from dcrobot.metrics import Table


def test_registry_has_all_experiments():
    assert set(REGISTRY) == {f"e{i}" for i in range(1, 21)}
    assert set(DESCRIPTIONS) == set(REGISTRY)


def test_descriptions_reference_paper_sections():
    for experiment_id, (title, anchor) in DESCRIPTIONS.items():
        assert title
        assert "§" in anchor, f"{experiment_id} anchor lacks a section"


def test_unknown_experiment_raises():
    with pytest.raises(KeyError, match="unknown experiment"):
        run_experiment("e99")


def test_run_experiment_dispatches():
    result = run_experiment("E3", quick=True)  # case-insensitive
    assert result.experiment_id == "e3"
    assert result.tables


def test_result_rendering():
    result = ExperimentResult("e0", "Demo", "§0")
    table = Table(["a", "b"])
    table.add_row(1, 2.5)
    result.add_table(table)
    result.add_series("line", [(1.0, 2.0), (3.0, 4.0)])
    result.note("hello")
    rendered = result.render()
    assert "E0: Demo" in rendered
    assert "series line:" in rendered
    assert "note: hello" in rendered
    assert rendered.endswith("\n")
    assert str(result) == rendered


def test_cli_list(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    for experiment_id in REGISTRY:
        assert experiment_id in output


def test_cli_unknown(capsys):
    assert main(["e99"]) == 2
    captured = capsys.readouterr()
    # One clean line on stderr, not a traceback, and it lists what
    # exists (the id validation happens before any experiment runs).
    assert "unknown experiment 'e99'" in captured.err
    assert "e13" in captured.err
    assert "Traceback" not in captured.err
    assert captured.err.strip().count("\n") == 0


def test_cli_unknown_id_uppercase_is_normalized(capsys):
    assert main(["E99"]) == 2
    assert "unknown experiment 'e99'" in capsys.readouterr().err


def test_cli_runs_an_experiment(capsys):
    assert main(["e3", "--seed", "1"]) == 0
    output = capsys.readouterr().out
    assert "E3" in output
    assert "finished in" in output
