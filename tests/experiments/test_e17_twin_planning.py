"""E17 behavior + golden determinism, and TwinPlanner/controller
integration through the world runner."""

import numpy as np
import pytest

from dcrobot.core.planner import TwinPlannerConfig
from dcrobot.experiments import e17_twin_planning
from dcrobot.experiments.runner import WorldConfig, run_world


@pytest.fixture(scope="module")
def quick_result():
    return e17_twin_planning.run(quick=True, seed=0)


def test_e17_twin_beats_fifo(quick_result):
    by_arm = dict(dict(quick_result.series)
                  ["maintenance_p99_fct_seconds"])
    assert by_arm[1] < by_arm[0]  # twin-ranked below fifo
    peaks = dict(dict(quick_result.series)["peak_hot_reseats"])
    assert peaks[1] < peaks[0]


def test_e17_has_prediction_audit(quick_result):
    titles = [table.title for table in quick_result.tables]
    assert any("forecast" in title.lower() for title in titles)


def test_e17_golden_determinism(quick_result):
    """Same seed, same config: the rendered summary is byte-stable.

    This pins the whole pipeline — fork substreams, twin rollouts,
    ranking tie-breaks, controller dispatch — as deterministic; any
    hidden global-RNG draw or dict-order dependence breaks it.
    """
    rerun = e17_twin_planning.run(quick=True, seed=0)
    assert rerun.render() == quick_result.render()


def test_runner_twin_planner_requires_traffic():
    with pytest.raises(ValueError, match="traffic"):
        run_world(WorldConfig(
            topology_kwargs={"k": 4}, horizon_days=0.1,
            twin_planner=TwinPlannerConfig()))


def test_runner_exposes_planner_decisions():
    config = e17_twin_planning._arm_config(
        seed=1, horizon_days=0.25, planner=e17_twin_planning.TWIN)
    result = run_world(config)
    planner = result.twin_planner
    assert planner is not None
    assert planner.decisions
    for ranking in planner.decisions:
        evaluated = [score for score in ranking
                     if np.isfinite(score.score)]
        # ranked head is sorted best-first
        assert [s.score for s in evaluated] \
            == sorted(s.score for s in evaluated)
        assert len(evaluated) \
            <= planner.config.max_candidates
    # the controller dispatched exactly the ranked winners
    dispatched = {outcome.order.link_id
                  for outcome in result.live_controller
                  .proactive_outcomes}
    winners = {ranking[0].request.link_id
               for ranking in planner.decisions if ranking}
    assert dispatched <= winners


def test_fifo_config_ranks_nothing():
    config = e17_twin_planning._arm_config(
        seed=1, horizon_days=0.2, planner=e17_twin_planning.FIFO)
    result = run_world(config)
    planner = result.twin_planner
    assert planner._evaluations == 0
    for ranking in planner.decisions:
        assert all(score.score == float("inf") for score in ranking)
