"""Pinned world configurations for vectorized-vs-legacy parity.

These small fixed-seed worlds were characterized *before* the columnar
``FabricState`` refactor (PR 5): ``tools/capture_parity_goldens.py``
ran each one through the per-link loop path and froze its
:class:`~dcrobot.experiments.runner.WorldSummary` under
``tests/golden/parity/``.  The parity suite re-runs the same configs on
the current code and requires bit-identical summaries — any drift in
the health model, dust/oxidation processes, telemetry scan, or
availability accounting fails loudly.

The shapes deliberately mirror the experiments the refactor must not
disturb: E1 (L0 vs L3 service window), E7 (escalation ladder), E13
(chaos + safety + resilience), E14 (journal + controller chaos), E5
(proactive policy), plus a dust-heavy world that forces links through
the marginal Gilbert–Elliott band so the flap/RNG path is exercised.
"""

from __future__ import annotations

import dataclasses
import math

from dcrobot.chaos.config import ChaosConfig
from dcrobot.core.automation import AutomationLevel
from dcrobot.core.controller import ControllerConfig
from dcrobot.core.resilience import ResilienceConfig
from dcrobot.experiments.runner import WorldConfig

DAY = 86400.0


def parity_configs() -> dict:
    """Name -> WorldConfig for every pinned parity world."""
    return {
        "e1_l0": WorldConfig(
            horizon_days=6.0, seed=0, failure_scale=3.0,
            level=AutomationLevel.L0_NO_AUTOMATION),
        "e1_l3": WorldConfig(
            horizon_days=6.0, seed=0, failure_scale=3.0,
            level=AutomationLevel.L3_HIGH_AUTOMATION),
        "e7_escalation": WorldConfig(
            horizon_days=8.0, seed=1, failure_scale=4.0,
            level=AutomationLevel.L0_NO_AUTOMATION),
        "e13_chaos": WorldConfig(
            horizon_days=6.0, seed=2, failure_scale=3.0,
            level=AutomationLevel.L3_HIGH_AUTOMATION,
            chaos=ChaosConfig.moderate(), safety=True,
            stuck_after_seconds=5.0 * DAY,
            mute_ttl_seconds=2.0 * DAY,
            controller_config=ControllerConfig(
                resilience=ResilienceConfig())),
        "e14_journal": WorldConfig(
            horizon_days=10.0, seed=3, failure_scale=4.0,
            level=AutomationLevel.L3_HIGH_AUTOMATION,
            chaos=ChaosConfig.moderate(), safety=True,
            journal=True, supervise=True,
            mute_ttl_seconds=2.0 * DAY,
            controller_config=ControllerConfig(
                resilience=ResilienceConfig())),
        "e5_proactive": WorldConfig(
            horizon_days=8.0, seed=4, failure_scale=2.0,
            level=AutomationLevel.L3_HIGH_AUTOMATION,
            policy="proactive", dust_rate_per_day=0.02),
        "gray_dust": WorldConfig(
            horizon_days=10.0, seed=5, failure_scale=1.0,
            level=AutomationLevel.L0_NO_AUTOMATION,
            dust_rate_per_day=0.08, aging_rate_per_day=0.01),
    }


def summary_to_plain(summary) -> dict:
    """A WorldSummary as pure JSON-serializable builtins.

    Floats pass through untouched (json round-trips doubles exactly);
    numpy scalars are collapsed to their Python equivalents so the
    comparison is about *values*, not carrier types.
    """
    return _plain(dataclasses.asdict(summary))


def _plain(value):
    if isinstance(value, dict):
        return {str(key): _plain(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    if isinstance(value, bool):
        return value
    if isinstance(value, (int,)):
        return int(value)
    if hasattr(value, "item"):  # numpy scalar
        value = value.item()
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        return value
    return value
