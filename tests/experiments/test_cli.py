"""Tests for the experiment CLI's parallel-execution flags."""

import pytest

from dcrobot.experiments.__main__ import (
    build_parser,
    execution_from_args,
    main,
)
from dcrobot.experiments.parallel import DEFAULT_CACHE_DIR


def test_defaults():
    args = build_parser().parse_args(["e1"])
    assert args.jobs == 1
    assert args.trials == 1
    assert not args.no_cache
    assert args.cache_dir == DEFAULT_CACHE_DIR
    execution = execution_from_args(args)
    assert execution.jobs == 1
    assert execution.trials == 1
    assert execution.cache is not None
    assert execution.cache.root == DEFAULT_CACHE_DIR


def test_jobs_and_trials_flags():
    args = build_parser().parse_args(
        ["e1", "--jobs", "4", "--trials", "3"])
    execution = execution_from_args(args)
    assert execution.jobs == 4
    assert execution.trials == 3


def test_no_cache_flag():
    args = build_parser().parse_args(["e1", "--no-cache"])
    assert execution_from_args(args).cache is None


def test_cache_dir_flag(tmp_path):
    cache_dir = str(tmp_path / "cache")
    args = build_parser().parse_args(["e1", "--cache-dir", cache_dir])
    execution = execution_from_args(args)
    assert execution.cache.root == cache_dir


def test_jobs_must_be_an_int():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["e1", "--jobs", "lots"])


def test_cli_runs_parallel_with_cache(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    argv = ["e3", "--seed", "1", "--jobs", "2",
            "--cache-dir", cache_dir]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "E3" in first
    assert "timing:" in first
    assert "(0 cached)" in first
    # Second run is served from the trial cache and prints identically
    # (modulo the timing/duration lines).
    assert main(argv) == 0
    second = capsys.readouterr().out
    assert "(10 cached)" in second

    def stable(text):
        return [line for line in text.splitlines()
                if not line.startswith(("timing:", "[e3 finished"))]

    assert stable(first) == stable(second)


def test_cli_no_cache_runs(tmp_path, capsys):
    assert main(["e3", "--seed", "1", "--no-cache"]) == 0
    output = capsys.readouterr().out
    assert "(0 cached)" in output


def test_list_flag_prints_ids_with_descriptions(capsys):
    from dcrobot.experiments import DESCRIPTIONS

    assert main(["--list"]) == 0
    output = capsys.readouterr().out
    lines = [line for line in output.splitlines() if line.strip()]
    assert len(lines) == len(DESCRIPTIONS)
    for experiment_id, (title, _anchor) in DESCRIPTIONS.items():
        assert any(experiment_id in line and title in line
                   for line in lines)
    # Numeric ordering: e2 before e10.
    assert lines.index(next(l for l in lines if l.startswith("  e2"))) \
        < lines.index(next(l for l in lines if l.startswith(" e10")))


def test_list_positional_still_works(capsys):
    assert main(["list"]) == 0
    assert "e14" in capsys.readouterr().out


def test_missing_experiment_argument_errors(capsys):
    assert main([]) == 2
    assert "required" in capsys.readouterr().err


# -- observability flags ----------------------------------------------------

def _fake_observed_run(with_exports=True):
    from dcrobot.experiments.result import ExperimentResult

    def fake_run(experiment_id, quick=True, seed=0, execution=None,
                 observe=False):
        result = ExperimentResult(experiment_id, "fake", "none")
        if observe and with_exports:
            result.trace = [
                {"trace_id": "t", "span_id": 0, "parent_id": None,
                 "name": "world", "start": 0.0, "end": 1.0,
                 "status": "ok", "attributes": {}}]
            result.metrics = {"kind": "metrics", "schema_version": 1,
                              "metrics": {}}
        return result

    return fake_run


def test_trace_and_metrics_out_flags_parse(tmp_path):
    args = build_parser().parse_args(
        ["e13", "--trace-out", "t.jsonl", "--metrics-out", "m.prom"])
    assert args.trace_out == "t.jsonl"
    assert args.metrics_out == "m.prom"
    assert build_parser().parse_args(["e13"]).trace_out is None


def test_trace_out_rejects_all(tmp_path, capsys):
    assert main(["all", "--trace-out",
                 str(tmp_path / "t.jsonl")]) == 2
    assert "single experiment" in capsys.readouterr().err


def test_trace_out_on_unsupported_experiment_errors(tmp_path, capsys):
    # e3 has no observe support; run_experiment refuses before running.
    assert main(["e3", "--trace-out", str(tmp_path / "t.jsonl")]) == 2
    err = capsys.readouterr().err
    assert "does not support" in err
    assert "e13" in err  # points at the experiments that do


def test_trace_and_metrics_out_write_files(tmp_path, monkeypatch,
                                           capsys):
    import json

    import dcrobot.experiments.__main__ as cli

    monkeypatch.setattr(cli, "run_experiment", _fake_observed_run())
    trace_path = tmp_path / "trace.jsonl"
    metrics_path = tmp_path / "metrics.prom"
    assert cli.main(["e3", "--no-cache",
                     "--trace-out", str(trace_path),
                     "--metrics-out", str(metrics_path)]) == 0
    output = capsys.readouterr().out
    assert f"[trace written to {trace_path}]" in output
    assert f"[metrics written to {metrics_path}]" in output
    header = json.loads(trace_path.read_text().splitlines()[0])
    assert header["kind"] == "trace"
    assert header["span_count"] == 1
    assert metrics_path.exists()


def test_warns_when_experiment_returns_no_exports(tmp_path,
                                                  monkeypatch,
                                                  capsys):
    import dcrobot.experiments.__main__ as cli

    monkeypatch.setattr(cli, "run_experiment",
                        _fake_observed_run(with_exports=False))
    assert cli.main(["e3", "--no-cache",
                     "--trace-out", str(tmp_path / "t.jsonl")]) == 0
    captured = capsys.readouterr()
    assert "returned no trace" in captured.err
    assert not (tmp_path / "t.jsonl").exists()


def test_run_experiment_observe_requires_support():
    import pytest as _pytest

    from dcrobot.experiments import run_experiment

    with _pytest.raises(ValueError, match="does not support"):
        run_experiment("e1", observe=True)
