"""Unit tests for the shared experiment world runner."""

import pytest

from dcrobot.core import AutomationLevel, NullPolicy, ProactivePolicy, ReactivePolicy
from dcrobot.experiments import WorldConfig, build_world, run_world
from dcrobot.robots import FleetConfig
from dcrobot.topology.leafspine import build_leafspine

DAY = 86400.0


def test_default_world_assembles():
    world = build_world(WorldConfig(horizon_days=1.0))
    assert world.fabric.links
    assert world.humans is not None
    assert world.fleet is None  # L0: no robots
    assert isinstance(world.controller.policy, ReactivePolicy)


def test_levels_select_executors():
    l0 = build_world(WorldConfig(
        level=AutomationLevel.L0_NO_AUTOMATION))
    assert l0.fleet is None and l0.humans is not None
    l3 = build_world(WorldConfig(
        level=AutomationLevel.L3_HIGH_AUTOMATION))
    assert l3.fleet is not None and l3.humans is not None
    l4 = build_world(WorldConfig(
        level=AutomationLevel.L4_FULL_AUTOMATION))
    assert l4.fleet is not None and l4.humans is None
    assert l4.fleet.config.advanced_capabilities


def test_policy_selection():
    none = build_world(WorldConfig(policy="none"))
    assert isinstance(none.controller.policy, NullPolicy)
    proactive = build_world(WorldConfig(policy="proactive",
                                        proactive_trigger=3))
    assert isinstance(proactive.controller.policy, ProactivePolicy)
    assert proactive.controller.policy.trigger_count == 3
    custom = build_world(WorldConfig(
        policy=lambda fabric: NullPolicy(fabric)))
    assert isinstance(custom.controller.policy, NullPolicy)
    with pytest.raises(ValueError):
        build_world(WorldConfig(policy="bogus"))


def test_alternative_topology_builder():
    world = build_world(WorldConfig(
        topology_builder=build_leafspine,
        topology_kwargs={"leaves": 3, "spines": 2}))
    assert world.topology.name.startswith("leafspine")
    assert world.topology.link_count == 6


def test_run_world_advances_to_horizon():
    result = run_world(WorldConfig(horizon_days=2.0, failure_scale=0.0))
    assert result.sim.now == pytest.approx(2.0 * DAY)


def test_determinism_same_seed():
    first = run_world(WorldConfig(horizon_days=10.0, seed=5,
                                  failure_scale=3.0))
    second = run_world(WorldConfig(horizon_days=10.0, seed=5,
                                   failure_scale=3.0))
    assert (len(first.controller.closed_incidents)
            == len(second.controller.closed_incidents))
    assert first.availability().mean \
        == pytest.approx(second.availability().mean)
    assert [f.link_id for f in first.injector.log] \
        == [f.link_id for f in second.injector.log]


def test_different_seed_differs():
    first = run_world(WorldConfig(horizon_days=10.0, seed=1,
                                  failure_scale=3.0))
    second = run_world(WorldConfig(horizon_days=10.0, seed=2,
                                   failure_scale=3.0))
    assert ([f.time for f in first.injector.log]
            != [f.time for f in second.injector.log])


def test_spares_accounting():
    result = run_world(WorldConfig(
        horizon_days=20.0, seed=3, failure_scale=5.0,
        level=AutomationLevel.L3_HIGH_AUTOMATION))
    # Hardware deaths occurred, so some spares must have been drawn.
    assert result.spares_consumed_transceivers >= 0
    assert result.spares_consumed_cables >= 0
    total_hw_faults = sum(
        1 for fault in result.injector.log
        if fault.kind.value in ("transceiver", "cable"))
    if total_hw_faults:
        assert (result.spares_consumed_transceivers
                + result.spares_consumed_cables) > 0


def test_cost_and_measurement_helpers():
    result = run_world(WorldConfig(
        horizon_days=5.0, seed=4, failure_scale=4.0,
        level=AutomationLevel.L3_HIGH_AUTOMATION,
        fleet_config=FleetConfig(manipulators=2, cleaners=1)))
    assert result.robot_count() == 3
    assert result.robot_busy_seconds() >= 0
    cost = result.cost()
    assert cost.total_usd > 0
    amplification = result.amplification()
    assert amplification.amplification_factor >= 1.0


def test_failure_scale_zero_is_quiet():
    result = run_world(WorldConfig(horizon_days=5.0, seed=6,
                                   failure_scale=0.0,
                                   dust_rate_per_day=0.0,
                                   aging_rate_per_day=0.0))
    assert not result.injector.log
    assert not result.controller.closed_incidents
    assert result.availability().mean == 1.0
    assert result.repair_stats() is None
