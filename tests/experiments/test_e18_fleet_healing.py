"""E18 behavior + golden determinism: fleet self-healing under robot
mortality (the ISSUE's acceptance gates, pinned as tests)."""

import pytest

from dcrobot.experiments import e18_fleet_healing


@pytest.fixture(scope="module")
def quick_result():
    return e18_fleet_healing.run(quick=True, seed=0)


def _series(result, name):
    return dict(dict(result.series)[name])


def test_e18_selfheal_concludes_where_naive_strands(quick_result):
    """At >= 2x robot failures the self-healing fleet concludes >= 95%
    of mature incidents while the naive fleet permanently loses orders
    on dead units."""
    healed = _series(quick_result, "resolution_vs_robot_failures_selfheal")
    naive_orphans = _series(quick_result,
                            "orphaned_vs_robot_failures_naive")
    healed_orphans = _series(quick_result,
                             "orphaned_vs_robot_failures_selfheal")
    for scale, rate in healed.items():
        assert rate >= 0.95, f"selfheal below gate at {scale}x"
        assert healed_orphans[scale] == 0.0
    for scale in (2.0, 4.0):
        assert naive_orphans[scale] > 0.0


def test_e18_naive_resolution_degrades_with_failure_rate(quick_result):
    naive = _series(quick_result, "resolution_vs_robot_failures_naive")
    assert naive[max(naive)] < naive[0.0]
    assert naive[max(naive)] < 0.95


def test_e18_fencing_tripwire_is_zero_everywhere(quick_result):
    for mode in e18_fleet_healing.MODES:
        accepted = _series(quick_result, f"zombie_accepted_{mode}")
        assert all(value == 0.0 for value in accepted.values()), mode


def test_e18_reports_the_healing_machinery(quick_result):
    rendered = quick_result.render()
    assert "re-dispatches" in rendered
    assert "robot-repairs-robot" in rendered
    assert "epoch guard held" in rendered


def test_e18_golden_determinism(quick_result):
    """Same seed, same config: byte-stable output.  Pins the whole
    pipeline — chaos substreams, wear hazards, watchdog timing, fenced
    re-dispatch — as deterministic.  Wall-clock trial timings are
    telemetry, not results, and are excluded from the comparison."""
    rerun = e18_fleet_healing.run(quick=True, seed=0)
    rerun.timings.clear()
    stable = e18_fleet_healing.run(quick=True, seed=0)
    stable.timings.clear()
    assert rerun.render() == stable.render()
