"""Vectorized-vs-legacy parity: the refactor must not change physics.

``tests/golden/parity/*.json`` holds :class:`WorldSummary` snapshots of
the pinned worlds in :mod:`tests.experiments.parity_worlds`, captured
on the pre-``FabricState`` per-link loop code (see
``tools/capture_parity_goldens.py``).  Two guarantees are enforced:

* **golden parity** — the current default (vectorized) path reproduces
  every pre-refactor summary bit-for-bit on the fixed seeds;
* **path parity** — the vectorized sweeps and the retained per-link
  legacy loops agree with each other on a live double-run, so the
  legacy path stays a trustworthy oracle for future refactors.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from dcrobot.experiments.runner import run_world, summarize_world

from tests.experiments.parity_worlds import (
    parity_configs,
    summary_to_plain,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                          "golden", "parity")

CONFIGS = parity_configs()


def _golden(name: str) -> dict:
    path = os.path.join(GOLDEN_DIR, f"{name}.json")
    assert os.path.exists(path), (
        f"missing golden {name}.json; these snapshots pin pre-refactor "
        f"behaviour and must come from tools/capture_parity_goldens.py "
        f"run on the per-link loop code")
    with open(path) as handle:
        return json.load(handle)


def _diff(actual: dict, expected: dict) -> str:
    lines = []
    for key in sorted(set(actual) | set(expected)):
        left, right = actual.get(key), expected.get(key)
        if left != right:
            lines.append(f"  {key}: got {left!r}, golden has {right!r}")
    return "\n".join(lines) or "  (no field-level diff?)"


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_summary_matches_pre_refactor_golden(name):
    summary = summarize_world(run_world(CONFIGS[name]))
    actual = summary_to_plain(summary)
    expected = _golden(name)
    assert actual == expected, (
        f"world {name!r} drifted from its pre-refactor summary:\n"
        + _diff(actual, expected))


@pytest.mark.parametrize("name", ["e1_l0", "gray_dust", "e13_chaos"])
def test_vectorized_and_legacy_paths_agree(name):
    """Live double-run: batch kernels vs retained per-link loops."""
    config = CONFIGS[name]
    vectorized = summarize_world(run_world(
        dataclasses.replace(config, vectorized=True)))
    legacy = summarize_world(run_world(
        dataclasses.replace(config, vectorized=False)))
    assert summary_to_plain(vectorized) == summary_to_plain(legacy)
