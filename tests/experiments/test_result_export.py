"""Unit tests for experiment result export (JSON/CSV)."""

import json

from dcrobot.experiments.result import ExperimentResult
from dcrobot.metrics import Table


def sample_result():
    result = ExperimentResult("e0", "Demo", "§0")
    table = Table(["mode", "value"], title="T")
    table.add_row("a", 1.5)
    table.add_row("b", 2.5)
    result.add_table(table)
    result.add_series("line", [(0.0, 1.0), (1.0, 2.0)])
    result.note("a note")
    return result


def test_to_dict_structure():
    data = sample_result().to_dict()
    assert data["experiment_id"] == "e0"
    assert data["tables"][0]["title"] == "T"
    assert data["tables"][0]["rows"] == [["a", "1.5"], ["b", "2.5"]]
    assert data["series"]["line"] == [(0.0, 1.0), (1.0, 2.0)]
    assert data["notes"] == ["a note"]


def test_json_roundtrip(tmp_path):
    result = sample_result()
    path = tmp_path / "result.json"
    result.save_json(str(path))
    loaded = json.loads(path.read_text())
    assert loaded["series"]["line"] == [[0.0, 1.0], [1.0, 2.0]]
    assert loaded["title"] == "Demo"


def test_csv_export(tmp_path):
    result = sample_result()
    text = result.tables_to_csv()
    assert "# T" in text
    assert "mode,value" in text
    assert "a,1.5" in text
    path = tmp_path / "result.csv"
    result.save_csv(str(path))
    assert path.read_text().startswith("# T")


def test_smi_weight_sensitivity():
    import numpy as np

    from dcrobot.topology import build_fattree, weight_sensitivity

    topo = build_fattree(k=4, rng=np.random.default_rng(1))
    deltas = weight_sensitivity(topo)
    assert set(deltas) == {"reach", "occlusion", "serviceability",
                           "uniformity", "granularity"}
    # Up-weighting a below-average factor must pull the index down and
    # vice versa; with reach=1.0 (the max factor) its delta must be >0.
    assert deltas["reach"] > 0
    assert deltas["uniformity"] < 0  # the weakest factor drags it down
    import pytest

    with pytest.raises(ValueError):
        weight_sensitivity(topo, perturbation=0.0)
