"""E19 behavior + determinism: campus scale under a federated plane.

Slow integration: the quick sweep runs full chaos campuses at 1, 2 and
4 halls, so the suite is marked slow and shares one module-scoped run.
"""

import pytest

from dcrobot.experiments import REGISTRY, e19_campus_scale

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def quick_result():
    return e19_campus_scale.run(quick=True, seed=0)


def _series(result, name):
    return dict(dict(result.series)[name])


def test_e19_registered():
    assert REGISTRY["e19"] is e19_campus_scale.run
    assert "§" in e19_campus_scale.PAPER_ANCHOR


def test_e19_per_hall_wall_stays_near_flat(quick_result):
    """The flat-cost claim the bench gates in CI, at sweep scale:
    per-hall wall-clock at the largest campus stays within 1.5x of
    the single-hall cost (with a floor against timer noise)."""
    walls = _series(quick_result, "per_hall_wall_vs_halls")
    floor = 0.05
    base = max(walls[1], floor)
    assert max(walls[max(walls)], floor) <= 1.5 * base


def test_e19_federation_routes_cross_hall_incidents(quick_result):
    routed = _series(quick_result, "cross_hall_incidents_vs_halls")
    # A single hall has no boundary, hence nothing to route.
    assert routed[1] == 0.0
    assert routed[max(routed)] >= 1.0


def test_e19_campus_smi_reported_per_scale(quick_result):
    smi = _series(quick_result, "campus_smi_vs_halls")
    assert set(smi) == {1, 2, 4}
    assert all(0.0 < value <= 1.0 for value in smi.values())


def test_e19_notes_cover_the_claims(quick_result):
    rendered = quick_result.render()
    assert "near-flat" in rendered
    assert "slowest shard" in rendered
    assert "cross-hall" in rendered


def test_e19_deterministic(quick_result):
    """Same seed, same config: byte-stable output, wall-clock
    telemetry excluded (timings, wall columns, and the live parallel
    demo note are timing-dependent by design)."""
    rerun = e19_campus_scale.run(quick=True, seed=0)
    for result in (quick_result, rerun):
        result.timings.clear()
    assert list(quick_result.series) == list(rerun.series)
    assert _series(quick_result, "campus_smi_vs_halls") \
        == _series(rerun, "campus_smi_vs_halls")
    assert _series(quick_result, "cross_hall_incidents_vs_halls") \
        == _series(rerun, "cross_hall_incidents_vs_halls")
