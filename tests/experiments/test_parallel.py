"""Unit tests for the parallel trial-execution engine."""

import dataclasses

import numpy as np
import pytest

from dcrobot.experiments import run_experiment
from dcrobot.experiments.parallel import (
    Execution,
    TrialCache,
    build_specs,
    cache_key,
    code_version,
    run_trials,
    stable_hash,
)
from dcrobot.experiments.result import ExperimentResult
from dcrobot.experiments.runner import WorldConfig, world_trial
from dcrobot.sim.rng import trial_rng, trial_seed

#: Executions of _counting_trial in this process (cache-hit detector).
_CALLS = []


def _draw_trial(params, seed):
    """A toy stochastic trial: value depends only on (params, seed)."""
    rng = np.random.default_rng(seed)
    return {"total": float(rng.normal(params["mu"], 1.0, 8).sum()),
            "mu": params["mu"]}


def _counting_trial(params, seed):
    _CALLS.append(seed)
    return {"value": params["x"] * 10 + seed % 7}


# -- RNG substreams ----------------------------------------------------------


def test_trial_seed_is_pure_and_distinct():
    assert trial_seed("e1", 0, 0) == trial_seed("e1", 0, 0)
    seeds = {trial_seed("e1", 0, index) for index in range(50)}
    assert len(seeds) == 50  # distinct across trial indices
    assert trial_seed("e1", 0, 0) != trial_seed("e2", 0, 0)
    assert trial_seed("e1", 0, 0) != trial_seed("e1", 1, 0)


def test_trial_rng_reproduces():
    a = trial_rng("e9", 3, 2).normal(size=4)
    b = trial_rng("e9", 3, 2).normal(size=4)
    assert np.array_equal(a, b)


def test_build_specs_seed_assignment():
    params = [{"label": "a", "seed": 123}, {"label": "b"}]
    specs = build_specs("e1", params, base_seed=7, trials=2)
    assert [spec.index for spec in specs] == [0, 1, 2, 3]
    # Replicate 0 keeps the canonical seed when the param set has one.
    assert specs[0].seed == 123
    assert specs[1].seed == trial_seed("e1", 7, 1)
    # A param set without a seed draws its substream even at r0.
    assert specs[2].seed == trial_seed("e1", 7, 2)
    assert specs[0].label == "a"
    assert specs[1].label == "a#r1"


# -- serial vs parallel determinism ------------------------------------------


def test_parallel_identical_to_serial_toy():
    params = [{"label": f"mu{mu}", "mu": float(mu)} for mu in range(6)]
    serial = run_trials("toy", _draw_trial, params, base_seed=1,
                        execution=Execution(jobs=1))
    parallel = run_trials("toy", _draw_trial, params, base_seed=1,
                          execution=Execution(jobs=2))
    assert [group.value for group in serial] \
        == [group.value for group in parallel]


def test_parallel_identical_to_serial_real_experiment():
    serial = run_experiment("e3", quick=True, seed=0,
                            execution=Execution(jobs=1))
    parallel = run_experiment("e3", quick=True, seed=0,
                              execution=Execution(jobs=2))
    serial_dict, parallel_dict = serial.to_dict(), parallel.to_dict()
    # Wall-clock telemetry legitimately differs; everything else is
    # bit-identical.
    serial_dict.pop("timings")
    parallel_dict.pop("timings")
    assert serial_dict == parallel_dict


def test_replicates_draw_distinct_substreams():
    params = [{"label": "a", "mu": 0.0, "seed": 5}]
    groups = run_trials("toy", _draw_trial, params, base_seed=5,
                        execution=Execution(trials=3))
    group = groups[0]
    assert len(group.outcomes) == 3
    seeds = [outcome.spec.seed for outcome in group.outcomes]
    assert len(set(seeds)) == 3
    totals = [value["total"] for value in group.values]
    assert len(set(totals)) == 3
    assert group.mean("total") == pytest.approx(
        sum(totals) / len(totals))
    assert group.value == group.values[0]


# -- the on-disk cache -------------------------------------------------------


def test_cache_hit_skips_execution(tmp_path):
    cache = TrialCache(str(tmp_path / "cache"))
    params = [{"label": "a", "x": 1}, {"label": "b", "x": 2}]
    _CALLS.clear()
    first = run_trials("toy", _counting_trial, params, base_seed=0,
                       execution=Execution(cache=cache))
    assert len(_CALLS) == 2
    assert cache.misses == 2 and cache.hits == 0
    second = run_trials("toy", _counting_trial, params, base_seed=0,
                        execution=Execution(cache=cache))
    assert len(_CALLS) == 2  # nothing re-ran
    assert cache.hits == 2
    assert [g.value for g in first] == [g.value for g in second]
    outcomes = [outcome for group in second
                for outcome in group.outcomes]
    assert all(outcome.cached for outcome in outcomes)


def test_cache_miss_on_config_change(tmp_path):
    cache = TrialCache(str(tmp_path / "cache"))
    _CALLS.clear()
    run_trials("toy", _counting_trial, [{"x": 1}], base_seed=0,
               execution=Execution(cache=cache))
    run_trials("toy", _counting_trial, [{"x": 2}], base_seed=0,
               execution=Execution(cache=cache))
    assert len(_CALLS) == 2  # changed params -> both executed
    run_trials("toy", _counting_trial, [{"x": 1}], base_seed=1,
               execution=Execution(cache=cache))
    assert len(_CALLS) == 3  # changed seed -> executed again


def test_cache_clear(tmp_path):
    cache = TrialCache(str(tmp_path / "cache"))
    _CALLS.clear()
    run_trials("toy", _counting_trial, [{"x": 1}], base_seed=0,
               execution=Execution(cache=cache))
    cache.clear()
    run_trials("toy", _counting_trial, [{"x": 1}], base_seed=0,
               execution=Execution(cache=cache))
    assert len(_CALLS) == 2


def test_cache_key_depends_on_code_version():
    params = {"x": 1}
    current = cache_key("e1", params, 0)
    assert current == cache_key("e1", params, 0, code_version())
    assert current != cache_key("e1", params, 0, "other-version")
    assert current != cache_key("e2", params, 0)
    assert current != cache_key("e1", params, 1)


def test_cache_key_depends_on_the_journal_schema_version(monkeypatch):
    import dcrobot.experiments.parallel as parallel

    params = {"x": 1}
    current = cache_key("e1", params, 0, "pinned-version")
    monkeypatch.setattr(parallel, "JOURNAL_SCHEMA_VERSION",
                        parallel.JOURNAL_SCHEMA_VERSION + 1)
    # A schema bump changes what crash-recovery trials replay, so it
    # must invalidate cached results even with the code digest pinned.
    assert cache_key("e1", params, 0, "pinned-version") != current


def test_stable_hash_handles_experiment_params():
    config = WorldConfig(horizon_days=2.0, seed=4)
    assert stable_hash({"config": config}) \
        == stable_hash({"config": WorldConfig(horizon_days=2.0,
                                              seed=4)})
    assert stable_hash({"config": config}) \
        != stable_hash({"config": WorldConfig(horizon_days=3.0,
                                              seed=4)})
    # Callables hash by qualified name, not by object identity.
    assert stable_hash(world_trial) == stable_hash(world_trial)
    # Plain objects hash by attribute state, not memory address.
    class Model:
        def __init__(self, w):
            self.w = w
    assert stable_hash(Model(1.0)) == stable_hash(Model(1.0))
    assert stable_hash(Model(1.0)) != stable_hash(Model(2.0))


# -- execution policy --------------------------------------------------------


def test_execution_validation():
    assert Execution(jobs=None).resolved_jobs() == 1
    assert Execution(jobs=3).resolved_jobs() == 3
    assert Execution(jobs=0).resolved_jobs() >= 1
    with pytest.raises(ValueError):
        Execution(jobs=-1).resolved_jobs()
    with pytest.raises(ValueError):
        Execution(trials=0).resolved_trials()


# -- the common world trial --------------------------------------------------


def test_world_trial_matches_direct_run():
    config = WorldConfig(horizon_days=3.0, seed=11, failure_scale=3.0)
    summary = world_trial({"config": config}, seed=11)
    again = world_trial({"config": dataclasses.replace(config)},
                        seed=11)
    assert summary == again
    assert summary.incidents >= 0
    assert 0.0 < summary.availability_mean <= 1.0
    assert summary.horizon_seconds == pytest.approx(3.0 * 86400.0)
    stats = summary.repair_stats
    if stats is not None:
        assert stats.count == len(summary.repair_times)


# -- timing telemetry --------------------------------------------------------


def test_timing_telemetry_recorded():
    result = ExperimentResult("toy", "Toy", "§0")
    run_trials("toy", _draw_trial, [{"label": "a", "mu": 0.0}],
               base_seed=0, execution=Execution(trials=2),
               result=result)
    assert len(result.timings) == 2
    assert result.timings[0].label == "a"
    assert result.timings[1].label == "a#r1"
    assert all(t.wall_seconds >= 0 for t in result.timings)
    summary = result.timing_summary()
    assert "2 trials" in summary
    assert "timing:" in result.render()
    assert result.to_dict()["timings"][0]["label"] == "a"
