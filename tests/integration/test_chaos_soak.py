"""Chaos soak: 5 000 simulation steps with every injector enabled.

The hardened control plane must come out clean — zero invariant
violations, zero leaked work orders, every mature incident concluded —
and bit-identically across two identical runs.  The same campaign
against the naive (no-timeout, no-retry) controller demonstrably leaks
stuck work orders, which is the contrast E13 sweeps at scale.
"""

import dataclasses

from dcrobot.chaos import ChaosConfig
from dcrobot.core import ControllerConfig, ResilienceConfig
from dcrobot.core.automation import AutomationLevel
from dcrobot.experiments.runner import DAY, WorldConfig, build_world

SEED = 42
STEPS = 5000
#: Older than the human-order timeout: truly leaked, not a slow ticket.
MATURE_AGE = 5.0 * DAY


def soak_config(hardened):
    chaos = ChaosConfig.moderate()
    if not hardened:
        # The naive loop's signature failure is blocking forever on a
        # lost ack; raise the loss rate so the leak shows within the
        # soak's ~8 simulated days.
        chaos = dataclasses.replace(chaos, ack_loss_prob=0.5)
    return WorldConfig(
        horizon_days=30.0, seed=SEED, failure_scale=6.0,
        level=AutomationLevel.L3_HIGH_AUTOMATION,
        chaos=chaos, safety=True,
        stuck_after_seconds=MATURE_AGE if hardened else 1.0 * DAY,
        mute_ttl_seconds=2.0 * DAY if hardened else None,
        controller_config=ControllerConfig(
            resilience=ResilienceConfig() if hardened else None))


def run_soak(hardened):
    result = build_world(soak_config(hardened))
    for _ in range(STEPS):
        result.sim.step()
    return result


def soak_summary(result):
    """Every observable the soak cares about, as one comparable dict."""
    controller = result.controller
    report = result.safety.report()
    return {
        "now": result.sim.now,
        "closed": len(controller.closed_incidents),
        "unresolved": len(controller.unresolved_incidents),
        "open": sorted(controller.open_incidents),
        "closed_at": [incident.closed_at
                      for incident in controller.closed_incidents],
        "attempts": controller.total_attempts(),
        "timeouts": controller.timeout_count,
        "retries": controller.retry_count,
        "late_acks": controller.late_ack_count,
        "idempotent_skips": controller.idempotent_skips,
        "degraded_dispatches": controller.degraded_dispatches,
        "violations": report.total_violations,
        "stuck": report.stuck_order_count,
        "chaos": result.chaos_engine.summary(),
        "telemetry_events": len(result.monitor.events),
    }


def mature_conclusion_rate(result):
    controller = result.controller
    cutoff = result.sim.now - MATURE_AGE
    concluded = sum(
        1 for incident in (controller.closed_incidents
                           + controller.unresolved_incidents)
        if incident.opened_at <= cutoff)
    leaked = sum(1 for incident in controller.open_incidents.values()
                 if incident.opened_at <= cutoff)
    total = concluded + leaked
    return (concluded / total if total else 1.0), total


def test_hardened_soak_is_clean_and_deterministic():
    result = run_soak(hardened=True)
    summary = soak_summary(result)

    # The campaign actually did something.
    assert summary["closed"] > 0
    assert sum(summary["chaos"].values()) > 0
    assert result.sim.now > 5 * DAY

    # Safety: no invariant ever broke, nothing leaked.
    assert summary["violations"] == 0
    assert summary["stuck"] == 0
    assert result.safety.checks_run > 0

    # Liveness: every mature incident was resolved or escalated to a
    # human (the >= 95% acceptance bar; in practice it is 100%).
    rate, mature = mature_conclusion_rate(result)
    assert rate >= 0.95, f"only {rate:.0%} of {mature} concluded"
    for incident in result.controller.unresolved_incidents:
        assert incident.unresolvable_reason

    # Determinism: an identical seed reproduces the run bit for bit.
    assert soak_summary(run_soak(hardened=True)) == summary


def test_naive_soak_leaks_stuck_work_orders():
    result = run_soak(hardened=False)
    controller = result.controller
    stuck = result.safety.stuck_orders()

    # The naive controller blocks forever on lost acks: day-old claims
    # pile up and their incidents never conclude.
    assert len(stuck) >= 2
    assert controller.timeout_count == 0  # it never even notices
    stuck_links = {claim.link_id for claim in stuck}
    assert stuck_links <= set(controller.open_incidents)
    rate, mature = mature_conclusion_rate(result)
    assert mature > 0 and rate < 0.95
