"""Scale soak: a production-shaped fabric runs end to end."""

import pytest

from dcrobot.core import AutomationLevel
from dcrobot.experiments import WorldConfig, run_world
from dcrobot.robots import FleetConfig


@pytest.mark.slow
def test_k8_fattree_month_under_robots():
    """256 links, two weeks, full stack: must stay healthy and finish
    in bounded wall time (the suite's canary for quadratic slips)."""
    result = run_world(WorldConfig(
        topology_kwargs={"k": 8}, horizon_days=14.0, seed=61,
        failure_scale=2.0,
        level=AutomationLevel.L3_HIGH_AUTOMATION,
        fleet_config=FleetConfig(manipulators=4, cleaners=2)))
    assert len(result.fabric.links) == 256
    assert result.availability().mean > 0.995
    assert result.controller.closed_incidents
    # Ticket volume is sane: no storms (bounded by faults + modest
    # collateral).
    injected = len(result.injector.log)
    incidents = (len(result.controller.closed_incidents)
                 + len(result.controller.unresolved_incidents)
                 + len(result.controller.open_incidents))
    assert incidents <= 3 * injected + 10
    # Attribution partitions cleanly at scale too.
    summary = result.attribution()
    assert (summary.injected + summary.collateral
            + summary.environmental) == summary.total
