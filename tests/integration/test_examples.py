"""Smoke tests: every shipped example must run to completion.

Examples are part of the public surface — a release with broken
examples is broken.  Each is executed in-process (runpy) with stdout
captured; assertions check the story each one is supposed to tell.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / f"{name}.py"
    assert path.exists(), f"missing example {path}"
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    output = run_example("quickstart", capsys)
    assert "FAULT" in output
    assert "repaired via" in output
    assert "incidents closed:" in output


def test_gpu_cluster_goodput(capsys):
    output = run_example("gpu_cluster_goodput", capsys)
    assert "L0 human ticketing" in output
    assert "L3 self-maintaining" in output
    # The self-maintained mean goodput line must quote a higher number.
    lines = [line for line in output.splitlines()
             if "mean goodput" in line]
    l0 = float(lines[0].split("mean goodput")[1].split()[0])
    l3 = float(lines[1].split("mean goodput")[1].split()[0])
    assert l3 > l0


def test_topology_maintainability(capsys):
    output = run_example("topology_maintainability", capsys)
    assert "Self-Maintainability Index" in output
    assert "standardization" in output


def test_robotic_rewiring(capsys):
    output = run_example("robotic_rewiring", capsys)
    assert "plan: +4 links" in output
    assert "fabric stayed connected" in output


def test_fleet_planning(capsys):
    output = run_example("fleet_planning", capsys)
    assert "recommendation:" in output
    assert "simulated:" in output


@pytest.mark.slow
def test_predictive_maintenance(capsys):
    output = run_example("predictive_maintenance", capsys)
    assert "AUC" in output
    assert "avoided" in output
