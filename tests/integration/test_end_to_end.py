"""Integration tests: full stacks exercised across module boundaries."""

from dcrobot.core import (
    AutomationLevel,
    MaintenanceServiceAPI,
    RepairAction,
)
from dcrobot.experiments import WorldConfig, build_world, run_world
from dcrobot.network import DegradationKind, LinkState
from dcrobot.robots import FleetConfig
from dcrobot.topology.gpu import build_gpu_cluster, healthy_server_fraction
from dcrobot.traffic import EcmpRouter

DAY = 86400.0


def test_l2_robot_failure_falls_back_to_human():
    """A scratched end-face defeats the cleaning robot (it cannot verify
    cleanliness, §3.3.2) -> the controller re-dispatches the same CLEAN
    to a technician, and eventually escalates to replacement."""
    world = build_world(WorldConfig(
        horizon_days=30.0, seed=11, failure_scale=0.0,
        dust_rate_per_day=0.0, aging_rate_per_day=0.0,
        level=AutomationLevel.L3_HIGH_AUTOMATION))
    victim = next(link for link in world.fabric.links.values()
                  if link.cable.cleanable)
    # Dirt AND a scratch: dirty enough to flag, scratch makes it
    # uncleanable.
    victim.cable.end_a.add_contamination(0.6)
    victim.cable.end_a.scratch(0)
    world.health.evaluate_link(victim, 0.0)
    world.sim.run(until=30.0 * DAY)

    incidents = (world.controller.closed_incidents
                 + world.controller.unresolved_incidents)
    assert incidents
    all_outcomes = [outcome for incident in incidents
                    for outcome in incident.attempts
                    if incident.link_id == victim.id]
    executors = {outcome.executor_id for outcome in all_outcomes}
    # Robots tried, requested human support, and the ladder eventually
    # replaced the cable (scratch is permanent).
    assert "robots" in executors
    assert "technicians" in executors
    actions = {outcome.order.action for outcome in all_outcomes}
    assert RepairAction.REPLACE_CABLE in actions
    assert victim.state is LinkState.UP


def test_router_drain_during_repair():
    """The scheduler's drain is visible through a router wired to the
    same fabric: during the repair window the target link is out of
    ECMP, afterwards it returns."""
    from dcrobot.core.scheduler import ImpactAwareScheduler

    world = build_world(WorldConfig(
        horizon_days=3.0, seed=12, failure_scale=0.0,
        dust_rate_per_day=0.0, aging_rate_per_day=0.0,
        level=AutomationLevel.L3_HIGH_AUTOMATION))
    router = EcmpRouter(world.fabric)
    world.controller.scheduler = ImpactAwareScheduler(router=router)

    victim = list(world.fabric.links.values())[0]
    victim.transceiver_a.firmware_stuck = True
    world.health.evaluate_link(victim, 0.0)

    observed_drained = []

    def spy(sim=world.sim):
        while True:
            yield sim.timeout(60.0)
            if victim.id in router.drained_links:
                observed_drained.append(sim.now)

    world.sim.process(spy())
    world.sim.run(until=1.0 * DAY)
    assert observed_drained, "link was never drained during repair"
    assert victim.id not in router.drained_links  # undrained after
    assert victim.state is LinkState.UP


def test_gpu_cluster_with_controller_recovers_goodput():
    world = build_world(WorldConfig(
        topology_builder=build_gpu_cluster,
        topology_kwargs={"servers": 8, "gpus_per_server": 4},
        horizon_days=2.0, seed=13, failure_scale=0.0,
        dust_rate_per_day=0.0, aging_rate_per_day=0.0,
        level=AutomationLevel.L3_HIGH_AUTOMATION))
    victim = world.fabric.links_of(world.topology.host_ids[0])[0]

    def saboteur(sim=world.sim):
        yield sim.timeout(3600.0)
        world.injector.inject(DegradationKind.FIRMWARE_STUCK, victim,
                              sim.now)

    world.sim.process(saboteur())
    world.sim.run(until=3650.0)
    assert healthy_server_fraction(world.topology) < 1.0
    world.sim.run(until=2.0 * DAY)
    assert healthy_server_fraction(world.topology) == 1.0
    assert world.controller.closed_incidents


def test_service_api_drives_real_maintenance():
    world = build_world(WorldConfig(
        horizon_days=2.0, seed=14, failure_scale=0.0,
        dust_rate_per_day=0.0, aging_rate_per_day=0.0,
        level=AutomationLevel.L3_HIGH_AUTOMATION))
    api = MaintenanceServiceAPI(world.controller)
    target = next(link for link in world.fabric.links.values()
                  if link.cable.cleanable)
    target.transceiver_a.oxidation = 0.25  # sub-clinical wear

    assert api.request_maintenance(target.id,
                                   action=RepairAction.RESEAT,
                                   urgent=True)
    world.sim.run(until=1.0 * DAY)
    assert world.controller.proactive_outcomes
    assert target.transceiver_a.oxidation < 0.05  # wiped by the reseat
    assert target.transceiver_a.reseat_count >= 1


def test_full_month_all_links_eventually_recover():
    """Soak: a month at high fault rate must end with the controller
    keeping the fabric alive — no unresolved incidents (spares are
    plentiful) and every link carrying traffic."""
    result = run_world(WorldConfig(
        horizon_days=30.0, seed=15, failure_scale=4.0,
        level=AutomationLevel.L3_HIGH_AUTOMATION,
        fleet_config=FleetConfig(manipulators=3, cleaners=2)))
    assert not result.controller.unresolved_incidents
    down = [link for link in result.fabric.links.values()
            if not link.operational
            and link.state is not LinkState.MAINTENANCE]
    # Anything still down must have an open incident being worked.
    for link in down:
        assert link.id in result.controller.open_incidents \
            or result.monitor.is_muted(link.id) is False
    assert result.availability().mean > 0.99


def test_monitor_controller_mute_protocol():
    """While an incident is in flight its link stays muted; after
    resolution the link is unmuted and re-detectable."""
    world = build_world(WorldConfig(
        horizon_days=5.0, seed=16, failure_scale=0.0,
        dust_rate_per_day=0.0, aging_rate_per_day=0.0,
        level=AutomationLevel.L3_HIGH_AUTOMATION))
    victim = list(world.fabric.links.values())[0]
    victim.transceiver_b.firmware_stuck = True
    world.health.evaluate_link(victim, 0.0)
    world.sim.run(until=1.0 * DAY)
    assert world.controller.closed_incidents
    assert not world.monitor.is_muted(victim.id)
    # Break it again: a second incident must open.
    victim.transceiver_b.firmware_stuck = True
    world.health.evaluate_link(victim, world.sim.now)
    world.sim.run(until=2.0 * DAY)
    assert len(world.controller.closed_incidents) == 2
