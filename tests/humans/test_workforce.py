"""Unit tests for the technician pool executor."""

import numpy as np
import pytest

from dcrobot.core.actions import Priority, RepairAction, WorkOrder
from dcrobot.humans import TechnicianParams, TechnicianPool
from dcrobot.network import LinkState

HOUR = 3600.0


def make_pool(world, count=2, seed=5, **param_overrides):
    params = TechnicianParams(**param_overrides)
    return TechnicianPool(world.sim, world.fabric, world.health,
                          world.physics, count=count, params=params,
                          rng=np.random.default_rng(seed))


def test_pool_validation(world):
    with pytest.raises(ValueError):
        make_pool(world, count=0)
    with pytest.raises(ValueError):
        TechnicianParams(walking_speed_m_s=0.0)


def test_technicians_can_do_everything(world):
    pool = make_pool(world)
    for action in RepairAction:
        assert pool.can_execute(action)


def test_reseat_order_repairs_link(world):
    link = world.links[0]
    link.transceiver_a.firmware_stuck = True
    world.health.evaluate_link(link, 0.0)
    assert link.state is LinkState.DOWN

    pool = make_pool(world)
    order = WorkOrder(link.id, RepairAction.RESEAT, created_at=0.0,
                      priority=Priority.HIGH)
    done = pool.submit(order)
    outcome = world.sim.run(until=done)
    assert outcome.completed
    assert outcome.executor_id == "technicians"
    assert link.state is LinkState.UP
    assert pool.outcomes == [outcome]
    assert pool.labor_seconds > 0


def test_dispatch_delay_dominates_service_window(world):
    # NORMAL priority: "timescale of days" — repair completes well after
    # the hands-on work time.
    link = world.links[0]
    pool = make_pool(world)
    order = WorkOrder(link.id, RepairAction.RESEAT, created_at=0.0,
                      priority=Priority.NORMAL)
    done = pool.submit(order)
    outcome = world.sim.run(until=done)
    assert outcome.finished_at > 6 * HOUR


def test_high_priority_faster_than_normal(world):
    pool = make_pool(world, count=2)
    normal_times, high_times = [], []
    for index, priority in enumerate(
            [Priority.NORMAL, Priority.HIGH] * 2):
        order = WorkOrder(world.links[index % len(world.links)].id,
                          RepairAction.RESEAT, created_at=0.0,
                          priority=priority)
        done = pool.submit(order)
        (high_times if priority is Priority.HIGH
         else normal_times).append(done)
    world.sim.run()
    high = np.mean([event.value.finished_at for event in high_times])
    normal = np.mean([event.value.finished_at for event in normal_times])
    assert high < normal


def test_pool_contention_serializes_work(world):
    # One technician, two orders with zero dispatch delay: the second
    # must wait for the first.
    pool = make_pool(
        world, count=1,
        dispatch_median_seconds={Priority.HIGH: 1.0,
                                 Priority.NORMAL: 1.0},
        dispatch_sigma=0.0)
    done_events = [
        pool.submit(WorkOrder(world.links[i].id, RepairAction.RESEAT,
                              created_at=0.0, priority=Priority.HIGH))
        for i in range(2)]
    world.sim.run()
    first, second = [event.value for event in done_events]
    starts = sorted([first.started_at, second.started_at])
    ends = sorted([first.finished_at, second.finished_at])
    assert starts[1] >= ends[0] - 1e-6


def test_clean_order_removes_dirt(world):
    link = world.links[0]
    link.cable.end_a.add_contamination(0.6)
    pool = make_pool(
        world,
        dispatch_median_seconds={Priority.HIGH: 60.0,
                                 Priority.NORMAL: 60.0},
        dispatch_sigma=0.0)
    order = WorkOrder(link.id, RepairAction.CLEAN, created_at=0.0,
                      priority=Priority.HIGH)
    outcome = world.sim.run(until=pool.submit(order))
    assert outcome.completed
    assert link.cable.end_a.worst_contamination < 0.25


def test_human_repair_can_cascade(world):
    # With many neighbours and human hands, repeated repairs disturb
    # someone eventually.
    pool = make_pool(
        world,
        dispatch_median_seconds={Priority.HIGH: 10.0,
                                 Priority.NORMAL: 10.0},
        dispatch_sigma=0.0)
    total_secondary = 0
    for _ in range(6):
        order = WorkOrder(world.links[0].id, RepairAction.RESEAT,
                          created_at=world.sim.now,
                          priority=Priority.HIGH)
        outcome = world.sim.run(until=pool.submit(order))
        total_secondary += outcome.secondary_failures
    assert total_secondary >= 1


def test_announce_touches_lists_neighbors(world):
    pool = make_pool(world)
    order = WorkOrder(world.links[0].id, RepairAction.RESEAT,
                      created_at=0.0)
    announced = pool.announce_touches(order)
    assert isinstance(announced, list)
    assert world.links[0].id not in announced


def test_link_in_maintenance_during_work(world):
    link = world.links[0]
    pool = make_pool(
        world,
        dispatch_median_seconds={Priority.HIGH: 10.0,
                                 Priority.NORMAL: 10.0},
        dispatch_sigma=0.0)
    order = WorkOrder(link.id, RepairAction.REPLACE_CABLE,
                      created_at=0.0, priority=Priority.HIGH)
    done = pool.submit(order)
    observed = []

    def probe(sim, link):
        yield sim.timeout(2 * HOUR)
        observed.append(link.state)

    world.sim.process(probe(world.sim, link))
    world.sim.run(until=done)
    assert observed == [LinkState.MAINTENANCE]
    assert link.state is not LinkState.MAINTENANCE
