"""The technician pool's link-occupancy registry (safety-monitor input)."""

import numpy as np

from dcrobot.core.actions import Priority, RepairAction, WorkOrder
from dcrobot.humans import TechnicianParams, TechnicianPool

from tests.conftest import make_world


def make_pool(world):
    return TechnicianPool(
        world.sim, world.fabric, world.health, world.physics, count=2,
        params=TechnicianParams(
            dispatch_median_seconds={Priority.HIGH: 60.0,
                                     Priority.NORMAL: 60.0},
            dispatch_sigma=0.0),
        rng=np.random.default_rng(3))


def test_busy_links_spans_exactly_the_physical_touch(world):
    pool = make_pool(world)
    link = world.links[0]
    snapshots = []
    world.sim.add_step_hook(
        lambda now: snapshots.append(dict(pool.busy_links)))

    done = pool.submit(WorkOrder(link.id, RepairAction.RESEAT,
                                 created_at=0.0))
    world.sim.run(until=done)

    assert any(snapshot.get(link.id) == 1 for snapshot in snapshots)
    assert pool.busy_links == {}  # released when the touch ended
    # Dispatch latency precedes the touch: the earliest snapshots are
    # empty (the technician is still travelling, not at the rack).
    assert snapshots[0] == {}
