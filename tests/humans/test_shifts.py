"""Unit tests for the technician day-shift constraint."""

import numpy as np
import pytest

from dcrobot.core.actions import Priority, RepairAction, WorkOrder
from dcrobot.humans import TechnicianParams, TechnicianPool

HOUR = 3600.0


def make_pool(world, **params):
    return TechnicianPool(
        world.sim, world.fabric, world.health, world.physics, count=2,
        params=TechnicianParams(
            dispatch_median_seconds={Priority.HIGH: 60.0,
                                     Priority.NORMAL: 60.0},
            dispatch_sigma=0.0, **params),
        rng=np.random.default_rng(3))


def test_shift_window_validation():
    with pytest.raises(ValueError):
        TechnicianParams(day_start_hour=20, day_end_hour=8)


def test_normal_work_waits_for_day_shift(world):
    pool = make_pool(world, day_shift_only_for_normal=True,
                     day_start_hour=8.0, day_end_hour=20.0)
    # Ticket at midnight: work must not start before 08:00.
    order = WorkOrder(world.links[0].id, RepairAction.RESEAT,
                      created_at=0.0, priority=Priority.NORMAL)
    outcome = world.sim.run(until=pool.submit(order))
    day_seconds = outcome.started_at % 86400.0
    assert day_seconds >= 8 * HOUR


def test_high_priority_pages_at_night(world):
    pool = make_pool(world, day_shift_only_for_normal=True)
    order = WorkOrder(world.links[0].id, RepairAction.RESEAT,
                      created_at=0.0, priority=Priority.HIGH)
    outcome = world.sim.run(until=pool.submit(order))
    assert outcome.started_at < 2 * HOUR  # straight to work


def test_shift_disabled_by_default(world):
    pool = make_pool(world)
    order = WorkOrder(world.links[0].id, RepairAction.RESEAT,
                      created_at=0.0, priority=Priority.NORMAL)
    outcome = world.sim.run(until=pool.submit(order))
    assert outcome.started_at < 2 * HOUR


def test_work_during_day_not_delayed(world):
    pool = make_pool(world, day_shift_only_for_normal=True)

    def submit_at_noon(sim, pool):
        yield sim.timeout(12 * HOUR)
        order = WorkOrder(world.links[0].id, RepairAction.RESEAT,
                          created_at=sim.now,
                          priority=Priority.NORMAL)
        outcome = yield pool.submit(order)
        return outcome

    process = world.sim.process(submit_at_noon(world.sim, pool))
    outcome = world.sim.run(until=process)
    assert outcome.started_at < 13 * HOUR
