"""Fleet self-healing: death detection, fenced re-dispatch, recovery.

Exercises the S19 machinery end to end on the small two-switch world:
units die mid-order and are *detected* via heartbeat silence, orphaned
orders are re-dispatched under an advanced fencing epoch, zombie late
completions are refused, flaky units are quarantined, and robots repair
robots (with human rescue and quorum escalation as fallbacks).
"""

import numpy as np
import pytest

from dcrobot.chaos import ChaosConfig, RobotChaos
from dcrobot.core.actions import Priority, RepairAction, WorkOrder
from dcrobot.core.planner import TwinPlanner, TwinPlannerConfig
from dcrobot.network import LinkState
from dcrobot.robots import RobotFleet
from dcrobot.robots.fleet import FleetConfig
from dcrobot.robots.health import RobotHealthModel, RobotHealthParams
from dcrobot.telemetry.monitor import TelemetryMonitor

from tests.conftest import make_world

DAY = 86400.0


def make_healing_fleet(world, manipulators=2, cleaners=1,
                       health_params=None, chaos=None, seed=5):
    fleet = RobotFleet(world.sim, world.fabric, world.health,
                       world.physics,
                       config=FleetConfig(manipulators=manipulators,
                                          cleaners=cleaners),
                       rng=np.random.default_rng(seed))
    if chaos is not None:
        fleet.chaos = RobotChaos(chaos, rng=np.random.default_rng(11))
    monitor = TelemetryMonitor(world.fabric)
    model = RobotHealthModel(health_params or RobotHealthParams(),
                             rng=np.random.default_rng(23))
    fleet.attach_health(model, monitor=monitor)
    return fleet, monitor, model


def reseat(link):
    return WorkOrder(link_id=link.id, action=RepairAction.RESEAT,
                     created_at=0.0, priority=Priority.HIGH)


def test_death_is_detected_and_order_concludes_via_escalation():
    """Every unit dies (die prob 1.0): the watchdog detects each loss
    from heartbeat silence, re-dispatches, and once the fleet falls
    below quorum the order concludes needs-human instead of hanging."""
    world = make_world()
    fleet, monitor, model = make_healing_fleet(
        world, chaos=ChaosConfig(robot_die_prob=1.0,
                                 robot_die_work_seconds=(60.0, 60.0)))
    done = fleet.submit(reseat(world.links[0]))
    world.sim.run(until=done)

    outcome = done.value
    assert not outcome.completed
    assert outcome.needs_human
    assert "quorum" in outcome.notes
    assert fleet.deaths >= 1
    assert fleet.heartbeat_losses >= 1
    assert fleet.quorum_escalations == 1
    # The carcass keeps its physical touch on the link until recovered.
    assert any(record.holding_link_id == world.links[0].id
               for record in model.records.values())
    assert world.links[0].id in fleet.busy_links
    # Concluded, so nothing is orphaned.
    assert all(event.triggered
               for event in fleet.pending_acks.values())


def test_naive_fleet_strands_the_order_forever():
    """With self-healing off the same death is never detected: no
    heartbeat loss is recorded and the order's ack never fires."""
    world = make_world()
    fleet, monitor, model = make_healing_fleet(
        world,
        health_params=RobotHealthParams(self_healing=False),
        chaos=ChaosConfig(robot_die_prob=1.0,
                          robot_die_work_seconds=(60.0, 60.0)))
    done = fleet.submit(reseat(world.links[0]))
    world.sim.run(until=2.0 * DAY)

    assert not done.triggered  # silently hung: the naive failure mode
    assert fleet.deaths == 1
    assert fleet.heartbeat_losses == 0
    assert fleet.redispatch_count == 0
    # ...but the loss is at least visible in the heartbeat ledger.
    timeout = model.params.heartbeat_timeout_seconds
    assert monitor.stale_sources(world.sim.now, timeout)


def test_zombie_late_completion_is_refused_not_double_concluded():
    """A single-unit fleet goes dark mid-order: the watchdog declares
    it lost, the re-dispatch finds no healthy unit and escalates; when
    the zombie finally reports, its stale epoch is refused."""
    world = make_world()
    fleet, monitor, model = make_healing_fleet(
        world, manipulators=1, cleaners=0,
        chaos=ChaosConfig(robot_zombie_prob=1.0,
                          robot_zombie_seconds=(7200.0, 7200.0)))
    done = fleet.submit(reseat(world.links[0]))
    world.sim.run(until=done)
    outcome = done.value
    assert outcome.needs_human  # escalated while the zombie was dark

    world.sim.run(until=world.sim.now + 1.0 * DAY)
    assert fleet.zombie_refusals >= 1
    assert fleet.zombie_acks_accepted == 0  # the fencing tripwire
    # The returned zombie is benched, not silently redeployed.
    record = model.record_for(fleet.manipulators[0].id)
    assert record.quarantined


def test_redispatch_completes_on_a_healthy_peer():
    """One unit dies, a peer picks the order up under epoch 2 and
    completes it for real."""
    world = make_world()
    fleet, monitor, model = make_healing_fleet(
        world, manipulators=2,
        chaos=ChaosConfig(robot_die_prob=1.0,
                          robot_die_work_seconds=(60.0, 60.0)))

    def first_order_only(order, now, _plan_for=fleet.chaos.plan_for):
        plan = _plan_for(order, now)
        fleet.chaos = None  # only the first execution draws a death
        return plan

    fleet.chaos.plan_for = first_order_only
    done = fleet.submit(reseat(world.links[0]))
    world.sim.run(until=done)

    outcome = done.value
    assert outcome.completed
    assert fleet.deaths == 1
    assert fleet.redispatch_count == 1
    assignment = fleet.assignments[outcome.order.order_id]
    assert assignment.epoch == 2
    assert world.links[0].state is not LinkState.MAINTENANCE


def test_robot_repairs_robot_revives_the_dead_unit():
    """With spares and a healthy helper, the fleet heals itself: the
    dead unit is repaired in place and returns to service."""
    world = make_world()
    fleet, monitor, model = make_healing_fleet(
        world, manipulators=3,
        chaos=ChaosConfig(robot_die_prob=1.0,
                          robot_die_work_seconds=(60.0, 60.0)))

    def first_order_only(order, now, _plan_for=fleet.chaos.plan_for):
        plan = _plan_for(order, now)
        fleet.chaos = None
        return plan

    fleet.chaos.plan_for = first_order_only
    done = fleet.submit(reseat(world.links[0]))
    world.sim.run(until=done)
    world.sim.run(until=world.sim.now + 1.0 * DAY)

    assert fleet.deaths == 1
    assert fleet.repairs_done == 1
    assert fleet.spares_left == model.params.robot_spares - 1
    assert all(record.in_service for record in model.records.values())
    assert fleet.healthy_fraction() == 1.0
    assert fleet.busy_links == {}  # the carcass's touch was released


def test_human_rescue_is_the_out_of_spares_fallback():
    world = make_world()
    fleet, monitor, model = make_healing_fleet(
        world, manipulators=1, cleaners=0,
        health_params=RobotHealthParams(robot_spares=0),
        chaos=ChaosConfig(robot_die_prob=1.0,
                          robot_die_work_seconds=(60.0, 60.0)))
    rescued = []

    def rescue(unit_id, rack_id):
        rescued.append((unit_id, rack_id))
        event = world.sim.event()
        event.succeed(unit_id)
        return event

    fleet.rescue = rescue
    done = fleet.submit(reseat(world.links[0]))
    world.sim.run(until=done)
    world.sim.run(until=world.sim.now + 1.0 * DAY)

    assert fleet.human_rescues == 1
    assert rescued and rescued[0][0] == fleet.manipulators[0].id
    assert model.record_for(fleet.manipulators[0].id).in_service


def test_battery_lie_kills_at_the_rack_with_battery_cause():
    world = make_world()
    fleet, monitor, model = make_healing_fleet(
        world, manipulators=1, cleaners=0,
        chaos=ChaosConfig(battery_lie_prob=1.0,
                          battery_lie_charge=(0.05, 0.05)))
    done = fleet.submit(reseat(world.links[0]))
    world.sim.run(until=done)

    record = model.record_for(fleet.manipulators[0].id)
    assert record.death_cause == "battery"
    assert fleet.deaths == 1


def test_low_battery_triggers_recharge_before_the_order():
    world = make_world()
    fleet, monitor, model = make_healing_fleet(
        world, manipulators=1, cleaners=0,
        health_params=RobotHealthParams(
            battery_capacity_seconds=3600.0, recharge_seconds=600.0))
    record = model.record_for(fleet.manipulators[0].id)
    record.battery = 0.1
    done = fleet.submit(reseat(world.links[0]))
    world.sim.run(until=done)

    assert done.value.completed
    assert record.charge_cycles == 1
    assert record.wear > 0  # cycle wear plus the operation's wear


def test_flaky_unit_is_quarantined_after_repeated_faults():
    world = make_world()
    fleet, monitor, model = make_healing_fleet(
        world, manipulators=2,
        health_params=RobotHealthParams(flaky_fault_threshold=1),
        chaos=ChaosConfig(robot_stall_prob=1.0,
                          robot_stall_seconds=(60.0, 60.0)))
    done = fleet.submit(reseat(world.links[0]))
    world.sim.run(until=done)

    assert done.value.completed  # a stall delays, it does not kill
    assert fleet.quarantine_count == 1
    quarantined = [record for record in model.records.values()
                   if record.quarantined]
    assert len(quarantined) == 1


def test_operational_quorum_gate():
    world = make_world()
    fleet, monitor, model = make_healing_fleet(world, manipulators=2)
    assert fleet.operational()
    assert fleet.healthy_fraction() == 1.0
    model.records[fleet.manipulators[0].id].alive = False
    assert fleet.healthy_fraction() == 0.5
    assert fleet.operational()  # exactly at the 0.5 quorum
    model.records[fleet.manipulators[1].id].quarantined = True
    assert fleet.healthy_fraction() == 0.0
    assert not fleet.operational()
    assert not fleet.covers(world.fabric.layout.rack_at(0, 0).id)


def test_fleet_without_health_model_is_unchanged():
    world = make_world()
    fleet = RobotFleet(world.sim, world.fabric, world.health,
                       world.physics, rng=np.random.default_rng(5))
    assert fleet.operational()
    assert fleet.healthy_fraction() == 1.0
    done = fleet.submit(reseat(world.links[0]))
    world.sim.run(until=done)
    assert done.value.completed
    assert fleet.assignments == {}  # legacy path: no fenced dispatch


def test_planner_dispatch_quota_scales_with_fleet_health():
    world = make_world()
    fleet, monitor, model = make_healing_fleet(world, manipulators=4)
    planner = TwinPlanner(None, None, None, None, fleet=fleet,
                          config=TwinPlannerConfig(dispatch_top=4))
    assert planner.dispatch_quota() == 4
    model.records[fleet.manipulators[0].id].alive = False
    model.records[fleet.manipulators[1].id].alive = False
    assert planner.dispatch_quota() == 2
    for unit in fleet.manipulators:
        model.records[unit.id].alive = False
    assert planner.dispatch_quota() == 1  # never below one
    assert TwinPlanner(None, None, None, None).dispatch_quota() == 1


# -- the _fail/_execute exception-safety fix ---------------------------------


def test_exception_in_perform_releases_maintenance_and_restocks():
    """An exception escaping the repair choreography must not leave
    the link stuck in maintenance or the unit unreturned (legacy and
    health paths alike)."""
    for with_health in (False, True):
        world = make_world()
        if with_health:
            fleet, _monitor, _model = make_healing_fleet(world)
        else:
            fleet = RobotFleet(world.sim, world.fabric, world.health,
                               world.physics,
                               rng=np.random.default_rng(5))
        link = world.links[0]

        def boom(order, link, manipulator, cleaner):
            yield world.sim.timeout(60.0)
            raise RuntimeError("actuator fault")

        fleet._perform = boom
        done = fleet.submit(reseat(link))
        with pytest.raises(RuntimeError, match="actuator fault"):
            world.sim.run(until=done)

        assert link.state is not LinkState.MAINTENANCE
        assert fleet.busy_links == {}
        assert len(fleet._idle_manipulators.items) \
            == len(fleet.manipulators)
