"""Unit tests for the robot fleet executor."""

import numpy as np
import pytest

from dcrobot.core.actions import Priority, RepairAction, WorkOrder
from dcrobot.network import LinkState
from dcrobot.robots import FleetConfig, MobilityScope, RobotFleet

from tests.conftest import make_world


def make_fleet(world, seed=9, **config_overrides):
    config = FleetConfig(**config_overrides)
    return RobotFleet(world.sim, world.fabric, world.health,
                      world.physics, config=config,
                      rng=np.random.default_rng(seed))


def test_fleet_config_validation():
    with pytest.raises(ValueError):
        FleetConfig(manipulators=0)
    with pytest.raises(ValueError):
        FleetConfig(cleaners=-1)
    with pytest.raises(ValueError):
        FleetConfig(allocation="random")


def test_basic_capabilities(world):
    fleet = make_fleet(world)
    assert fleet.can_execute(RepairAction.RESEAT)
    assert fleet.can_execute(RepairAction.CLEAN)
    assert fleet.can_execute(RepairAction.REPLACE_TRANSCEIVER)
    assert not fleet.can_execute(RepairAction.REPLACE_CABLE)
    assert not fleet.can_execute(RepairAction.REPLACE_SWITCHGEAR)


def test_no_cleaners_no_clean_capability(world):
    fleet = make_fleet(world, cleaners=0)
    assert not fleet.can_execute(RepairAction.CLEAN)


def test_advanced_capabilities_cover_everything(world):
    fleet = make_fleet(world, advanced_capabilities=True)
    for action in RepairAction:
        assert fleet.can_execute(action)


def test_reseat_order_completes_in_minutes(world):
    link = world.links[0]
    link.transceiver_a.firmware_stuck = True
    world.health.evaluate_link(link, 0.0)
    fleet = make_fleet(world)
    order = WorkOrder(link.id, RepairAction.RESEAT, created_at=0.0,
                      priority=Priority.HIGH)
    outcome = world.sim.run(until=fleet.submit(order))
    assert outcome.completed
    assert not outcome.needs_human
    assert outcome.duration < 15 * 60  # minutes, not days
    assert link.state is LinkState.UP


def test_clean_order_uses_manipulator_and_cleaner(world):
    link = world.links[0]
    link.cable.end_b.add_contamination(0.6)
    fleet = make_fleet(world)
    order = WorkOrder(link.id, RepairAction.CLEAN, created_at=0.0)
    outcome = world.sim.run(until=fleet.submit(order))
    assert outcome.completed
    assert link.cable.end_b.passes_inspection()
    assert fleet.cleaners[0].operations_done >= 1
    assert fleet.manipulators[0].operations_done >= 1
    # Robots returned to the idle pools.
    assert len(fleet._idle_manipulators.items) == len(fleet.manipulators)
    assert len(fleet._idle_cleaners.items) == len(fleet.cleaners)


def test_unverifiable_clean_requests_human_support(world):
    link = world.links[0]
    link.cable.end_a.scratch(0)
    fleet = make_fleet(world)
    order = WorkOrder(link.id, RepairAction.CLEAN, created_at=0.0)
    outcome = world.sim.run(until=fleet.submit(order))
    assert not outcome.completed
    assert outcome.needs_human


def test_replace_transceiver_with_spares(world):
    link = world.links[0]
    link.transceiver_b.fail_hardware()
    world.health.evaluate_link(link, 0.0)
    fleet = make_fleet(world)
    order = WorkOrder(link.id, RepairAction.REPLACE_TRANSCEIVER,
                      created_at=0.0)
    outcome = world.sim.run(until=fleet.submit(order))
    assert outcome.completed
    assert link.state is LinkState.UP


def test_replace_transceiver_out_of_spares_reinserts_old():
    world = make_world(spare_transceivers=0)
    link = world.links[0]
    fleet = make_fleet(world)
    order = WorkOrder(link.id, RepairAction.REPLACE_TRANSCEIVER,
                      created_at=0.0)
    outcome = world.sim.run(until=fleet.submit(order))
    assert not outcome.completed
    assert not outcome.needs_human  # logistics, not capability
    assert link.transceiver_a.seated and link.transceiver_b.seated


def test_uncapable_action_fails_fast(world):
    fleet = make_fleet(world)
    order = WorkOrder(world.links[0].id, RepairAction.REPLACE_CABLE,
                      created_at=0.0)
    outcome = world.sim.run(until=fleet.submit(order))
    assert not outcome.completed
    assert outcome.needs_human


def test_scope_limits_coverage():
    world = make_world(rows=3, racks_per_row=2)
    home = world.fabric.layout.rack_at(1, 0).id
    fleet = make_fleet(world, scope=MobilityScope.ROW,
                       home_racks=[home])
    # Switch A lives in row 0; a row-1-scoped fleet cannot reach it.
    assert fleet.coverage_fraction() == pytest.approx(1 / 3)
    order = WorkOrder(world.links[0].id, RepairAction.RESEAT,
                      created_at=0.0)
    outcome = world.sim.run(until=fleet.submit(order))
    assert not outcome.completed
    assert fleet.unreachable_orders == [order]


def test_orders_queue_for_busy_robots(world):
    for link in world.links[:2]:
        link.transceiver_a.firmware_stuck = True
        world.health.evaluate_link(link, 0.0)
    fleet = make_fleet(world, manipulators=1)
    events = [fleet.submit(WorkOrder(world.links[i].id,
                                     RepairAction.RESEAT, created_at=0.0))
              for i in range(2)]
    world.sim.run()
    first, second = [event.value for event in events]
    assert second.started_at >= first.finished_at - 1e-6


def test_nearest_allocation_picks_closest():
    world = make_world(rows=2, racks_per_row=2)
    layout = world.fabric.layout
    near_home = layout.rack_at(0, 0).id   # same rack as switch A
    far_home = layout.rack_at(1, 1).id
    fleet = make_fleet(world, manipulators=2, allocation="nearest",
                       home_racks=[near_home, far_home])
    order = WorkOrder(world.links[0].id, RepairAction.RESEAT,
                      created_at=0.0)
    world.sim.run(until=fleet.submit(order))
    near = [m for m in fleet.manipulators
            if m.mobility.home_rack_id == near_home][0]
    far = [m for m in fleet.manipulators
           if m.mobility.home_rack_id == far_home][0]
    assert near.operations_done > 0
    assert far.operations_done == 0


def test_robot_cascade_less_than_human(world):
    fleet = make_fleet(world)
    total = 0
    for _round in range(10):
        order = WorkOrder(world.links[0].id, RepairAction.RESEAT,
                          created_at=world.sim.now)
        outcome = world.sim.run(until=fleet.submit(order))
        total += outcome.secondary_failures
    # Robot gripper: secondary failures should be rare (often zero).
    assert total <= 2


def test_announce_touches(world):
    fleet = make_fleet(world)
    order = WorkOrder(world.links[0].id, RepairAction.RESEAT,
                      created_at=0.0)
    assert isinstance(fleet.announce_touches(order), list)
