"""Unit tests for the per-robot health model and unit heartbeats."""

import numpy as np
import pytest

from dcrobot.robots.health import (
    OrderHazard,
    RobotHealthModel,
    RobotHealthParams,
    UnitHealth,
)
from dcrobot.telemetry.monitor import TelemetryMonitor

from tests.conftest import make_world


class FakeUnit:
    def __init__(self, unit_id):
        self.id = unit_id


def make_model(**overrides):
    return RobotHealthModel(RobotHealthParams(**overrides),
                            rng=np.random.default_rng(7))


# -- params ------------------------------------------------------------------


@pytest.mark.parametrize("field, value", [
    ("wear_per_operation", -0.1),
    ("fault_per_order", 1.5),
    ("battery_capacity_seconds", 0.0),
    ("recharge_threshold", 1.0),
    ("heartbeat_seconds", 0.0),
    ("heartbeat_miss_threshold", 0),
    ("quorum_fraction", -0.1),
    ("robot_spares", -1),
    ("fault_onset_seconds", (100.0, 10.0)),
])
def test_params_validation(field, value):
    with pytest.raises(ValueError):
        RobotHealthParams(**{field: value})


def test_heartbeat_timeout_is_miss_threshold_times_cadence():
    params = RobotHealthParams(heartbeat_seconds=45.0,
                               heartbeat_miss_threshold=4)
    assert params.heartbeat_timeout_seconds == 180.0


# -- unit records ------------------------------------------------------------


def test_register_is_idempotent_and_record_for_finds_it():
    model = make_model()
    unit = FakeUnit("m-0")
    record = model.register(unit)
    assert model.register(unit) is record
    assert model.record_for("m-0") is record
    assert model.record_for("nope") is None
    assert model.in_service_ids() == ["m-0"]


def test_in_service_excludes_dead_lost_and_quarantined():
    record = UnitHealth(unit_id="u")
    assert record.in_service
    record.lost = True
    assert not record.in_service
    record.lost = False
    record.quarantined = True
    assert not record.in_service
    record.quarantined = False
    record.alive = False
    assert not record.in_service


def test_beating_stops_when_dead_or_suppressed():
    record = UnitHealth(unit_id="u")
    assert record.beating(0.0)
    record.suppress_until = 100.0
    assert not record.beating(50.0)   # zombie: dark while working
    assert record.beating(100.0)      # ...and resumes afterwards
    record.alive = False
    assert not record.beating(200.0)  # the dead never resume


# -- hazards -----------------------------------------------------------------


def test_fault_probability_grows_with_wear_and_caps_at_one():
    model = make_model(fault_per_order=0.01, wear_fault_weight=0.5)
    record = UnitHealth(unit_id="u")
    assert model.fault_probability(record) == pytest.approx(0.01)
    record.wear = 0.4
    assert model.fault_probability(record) == pytest.approx(0.21)
    record.wear = 1e9
    assert model.fault_probability(record) == 1.0


def test_plan_order_death_onset_falls_inside_the_bounds():
    model = make_model(fault_per_order=1.0,
                       fault_onset_seconds=(30.0, 90.0))
    hazard = model.plan_order(UnitHealth(unit_id="u"))
    assert hazard.dies
    assert 30.0 <= hazard.after_seconds <= 90.0


def test_plan_order_survives_with_zero_hazard():
    model = make_model(fault_per_order=0.0, wear_fault_weight=0.0)
    assert model.plan_order(UnitHealth(unit_id="u")) == OrderHazard()


def test_plan_order_always_consumes_exactly_one_survival_draw():
    """The survival draw happens even for healthy units, so the hazard
    stream stays aligned no matter how individual orders turn out."""
    model_a = make_model(fault_per_order=0.0, wear_fault_weight=0.0)
    model_b = make_model(fault_per_order=0.0, wear_fault_weight=0.0)
    record = UnitHealth(unit_id="u")
    for _ in range(5):
        model_a.plan_order(record)
        model_b.rng.random()
    assert (model_a.rng.bit_generator.state
            == model_b.rng.bit_generator.state)


# -- battery -----------------------------------------------------------------


def test_drain_needs_charge_and_recharge_cycle():
    model = make_model(battery_capacity_seconds=1000.0,
                       recharge_threshold=0.25,
                       charge_cycle_wear=0.01)
    record = UnitHealth(unit_id="u")
    model.drain(record, 500.0)
    assert record.battery == pytest.approx(0.5)
    assert not model.needs_charge(record)
    model.drain(record, 300.0)
    assert model.needs_charge(record)
    model.drain(record, 9999.0)
    assert record.battery == 0.0  # floors, never negative
    model.recharge(record)
    assert record.battery == 1.0
    assert record.charge_cycles == 1
    assert record.wear == pytest.approx(0.01)  # packs age per cycle
    model.drain(record, -5.0)
    assert record.battery == 1.0  # non-positive drain is a no-op


# -- wear and flakiness ------------------------------------------------------


def test_record_operation_accumulates_wear():
    model = make_model(wear_per_operation=0.02)
    record = UnitHealth(unit_id="u")
    for _ in range(3):
        model.record_operation(record)
    assert record.orders_done == 3
    assert record.wear == pytest.approx(0.06)


def test_is_flaky_counts_only_faults_inside_the_window():
    model = make_model(flaky_fault_threshold=2,
                       flaky_window_seconds=100.0)
    record = UnitHealth(unit_id="u")
    model.record_fault(record, 0.0)
    model.record_fault(record, 10.0)
    assert model.is_flaky(record, 50.0)
    # The early faults age out of the window.
    assert not model.is_flaky(record, 500.0)
    model.record_fault(record, 490.0)
    assert not model.is_flaky(record, 500.0)
    model.record_fault(record, 495.0)
    assert model.is_flaky(record, 500.0)


# -- telemetry heartbeats ----------------------------------------------------


def test_monitor_heartbeats_age_and_staleness():
    world = make_world()
    monitor = TelemetryMonitor(world.fabric)
    assert monitor.heartbeat_age("m-0", now=10.0) is None
    monitor.record_heartbeat("m-0", 10.0)
    monitor.record_heartbeat("m-1", 40.0)
    assert monitor.heartbeat_age("m-0", now=50.0) == pytest.approx(40.0)
    assert monitor.stale_sources(now=50.0, timeout=30.0) == ["m-0"]
    assert monitor.stale_sources(now=250.0, timeout=30.0) \
        == ["m-0", "m-1"]
    monitor.record_heartbeat("m-0", 251.0)
    assert monitor.stale_sources(now=252.0, timeout=30.0) == ["m-1"]
