"""Unit tests for mobility, perception, and individual robot units."""

import numpy as np
import pytest

from dcrobot.network import CableKind
from dcrobot.robots import (
    CleanerParams,
    CleaningRobot,
    ManipulatorRobot,
    MobilityModel,
    MobilityScope,
    PerceptionModel,
    PerceptionParams,
)

from tests.conftest import make_world


# -- mobility -----------------------------------------------------------------

def test_mobility_scopes():
    world = make_world(rows=2, racks_per_row=3)
    layout = world.fabric.layout
    home = layout.rack_at(0, 0).id
    same_row = layout.rack_at(0, 2).id
    other_row = layout.rack_at(1, 1).id

    rack_bot = MobilityModel(world.fabric, home, MobilityScope.RACK)
    assert rack_bot.can_reach(home)
    assert not rack_bot.can_reach(same_row)

    row_bot = MobilityModel(world.fabric, home, MobilityScope.ROW)
    assert row_bot.can_reach(same_row)
    assert not row_bot.can_reach(other_row)

    hall_bot = MobilityModel(world.fabric, home, MobilityScope.HALL)
    assert hall_bot.can_reach(other_row)
    assert not hall_bot.can_reach("rack-nonexistent")


def test_mobility_travel_time(world):
    layout = world.fabric.layout
    home = layout.rack_at(0, 0).id
    target = layout.rack_at(0, 1).id
    bot = MobilityModel(world.fabric, home, MobilityScope.HALL,
                        speed_m_s=0.5, alignment_seconds=30.0)
    assert bot.travel_seconds(home) == 0.0
    expected = 0.6 / 0.5 + 30.0
    assert bot.travel_seconds(target) == pytest.approx(expected)
    bot.move_to(target)
    assert bot.current_rack_id == target
    assert bot.travel_seconds(target) == 0.0


def test_mobility_validation(world):
    home = world.fabric.layout.rack_at(0, 0).id
    with pytest.raises(ValueError):
        MobilityModel(world.fabric, home, MobilityScope.HALL,
                      speed_m_s=0.0)
    with pytest.raises(ValueError):
        MobilityModel(world.fabric, "rack-nope", MobilityScope.HALL)
    bot = MobilityModel(world.fabric, home, MobilityScope.RACK)
    other = world.fabric.layout.rack_at(0, 1).id
    with pytest.raises(ValueError):
        bot.travel_seconds(other)


# -- perception --------------------------------------------------------------------

def test_perception_occlusion_grows_with_density():
    model = PerceptionModel(rng=np.random.default_rng(0))
    assert model.occlusion(1) == 1.0
    assert model.occlusion(21) == 2.0


def test_perception_recognition_time_grows_with_clutter(world):
    model = PerceptionModel(rng=np.random.default_rng(0))
    target = world.links[0].transceiver_a.model
    _ok, sparse = model.recognize(target, bundle_density=1)
    _ok, dense = model.recognize(target, bundle_density=24)
    assert dense > sparse


def test_perception_params_validation():
    with pytest.raises(ValueError):
        PerceptionParams(base_scan_seconds=0.0)
    with pytest.raises(ValueError):
        PerceptionParams(max_rescans=-1)


def test_perception_can_fail_on_difficult_models(world):
    params = PerceptionParams(base_misrecognition=0.9, max_rescans=1)
    model = PerceptionModel(params, rng=np.random.default_rng(1))
    target = world.links[0].transceiver_a.model
    results = [model.recognize(target, 1)[0] for _ in range(50)]
    assert not all(results)


# -- manipulator ------------------------------------------------------------------------

def make_manipulator(world, seed=3):
    home = world.fabric.layout.rack_at(0, 0).id
    return ManipulatorRobot(world.sim, world.fabric, "m0", home,
                            rng=np.random.default_rng(seed))


def test_manipulator_reseat_fixes_wedge(world):
    link = world.links[0]
    link.transceiver_a.firmware_stuck = True
    robot = make_manipulator(world)

    def task(sim, robot, link):
        ok, note = yield from robot.reseat(link)
        return ok

    proc = world.sim.process(task(world.sim, robot, link))
    assert world.sim.run(until=proc)
    assert not link.transceiver_a.firmware_stuck
    assert robot.busy_seconds > 0
    assert robot.operations_done == 2  # both sides
    assert world.sim.now > 0


def test_manipulator_reseat_takes_under_a_few_minutes(world):
    # §3.3.2: "This entire operation currently takes a few minutes".
    link = world.links[0]
    robot = make_manipulator(world)

    def task(sim, robot, link):
        yield from robot.reseat(link)

    proc = world.sim.process(task(world.sim, robot, link))
    world.sim.run(until=proc)
    assert 30.0 < world.sim.now < 10 * 60.0


def test_manipulator_utilization(world):
    robot = make_manipulator(world)
    with pytest.raises(ValueError):
        robot.utilization(0.0)
    assert robot.utilization(100.0) == 0.0


# -- cleaner ----------------------------------------------------------------------------

def make_cleaner(world, seed=4, **params):
    home = world.fabric.layout.rack_at(0, 0).id
    return CleaningRobot(world.sim, world.fabric, "c0", home,
                         params=CleanerParams(**params),
                         rng=np.random.default_rng(seed))


def test_cleaner_params_validation():
    with pytest.raises(ValueError):
        CleanerParams(per_core_inspect_seconds=0.0)
    with pytest.raises(ValueError):
        CleanerParams(consumable_capacity=0.0)


def test_eight_core_inspection_under_30_seconds(world):
    # The paper's headline: "the end-face inspection for 8 cores takes
    # less than 30 seconds".
    robot = make_cleaner(world)
    assert robot.inspect_seconds(8) < 30.0


def test_clean_cycle_removes_dirt(world):
    link = world.links[0]
    link.cable.end_a.add_contamination(0.6)
    robot = make_cleaner(world)

    def task(sim, robot, link):
        link.transceiver_a.unseat()
        verified, note = yield from robot.clean_cycle(link, "a")
        link.transceiver_a.seat(sim.now)
        return verified

    proc = world.sim.process(task(world.sim, robot, link))
    assert world.sim.run(until=proc)
    assert link.cable.end_a.passes_inspection()
    assert link.cable.attached_a


def test_clean_cycle_rejects_integrated_cable():
    world = make_world(kind=CableKind.AOC)
    robot = make_cleaner(world)

    def task(sim, robot, link):
        result = yield from robot.clean_cycle(link, "a")
        return result

    proc = world.sim.process(task(world.sim, robot, world.links[0]))
    verified, note = world.sim.run(until=proc)
    assert not verified
    assert "cannot be detached" in note


def test_cleaner_consumables_deplete_and_refill(world):
    link = world.links[0]
    robot = make_cleaner(world, consumable_capacity=1.0,
                         refill_seconds=100.0)
    link.cable.end_a.add_contamination(0.9)
    link.cable.end_b.add_contamination(0.9)

    def task(sim, robot, link):
        yield from robot.clean_cycle(link, "a")
        yield from robot.clean_cycle(link, "b")

    proc = world.sim.process(task(world.sim, robot, link))
    world.sim.run(until=proc)
    assert robot.refills >= 1


def test_clean_cycle_reports_unverifiable(world):
    link = world.links[0]
    link.cable.end_a.scratch(0)  # cleaning cannot fix a scratch
    robot = make_cleaner(world)

    def task(sim, robot, link):
        result = yield from robot.clean_cycle(link, "a")
        return result

    proc = world.sim.process(task(world.sim, robot, link))
    verified, note = world.sim.run(until=proc)
    assert not verified
    assert "failed verification" in note
