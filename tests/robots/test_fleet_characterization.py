"""Characterization tests for fleet paths the closed-loop suites skim:
spares-magazine logistics, FIFO allocation, and failure bookkeeping.
"""

import numpy as np

from dcrobot.core.actions import RepairAction, WorkOrder
from dcrobot.robots import FleetConfig, RobotFleet

from tests.conftest import make_world


def make_fleet(world, seed=9, **config_overrides):
    config = FleetConfig(**config_overrides)
    return RobotFleet(world.sim, world.fabric, world.health,
                      world.physics, config=config,
                      rng=np.random.default_rng(seed))


def replace_order(link):
    return WorkOrder(link.id, RepairAction.REPLACE_TRANSCEIVER,
                     created_at=0.0)


def test_empty_magazine_costs_a_depot_round_trip():
    stocked_world = make_world()
    stocked_fleet = make_fleet(stocked_world)
    stocked = stocked_world.sim.run(
        until=stocked_fleet.submit(replace_order(stocked_world.links[0])))

    empty_world = make_world()
    empty_fleet = make_fleet(empty_world)
    for manipulator in empty_fleet.manipulators:
        manipulator.onboard_spares = 0
    outcome = empty_world.sim.run(
        until=empty_fleet.submit(replace_order(empty_world.links[0])))

    assert stocked.completed and outcome.completed
    # The restock trip is pure overhead on the same repair.
    assert outcome.duration > stocked.duration
    # The magazine was refilled at the depot, then one spare consumed.
    used = [manipulator for manipulator in empty_fleet.manipulators
            if manipulator.onboard_spares > 0]
    assert used and all(
        manipulator.onboard_spares
        == manipulator.params.spare_capacity - 1
        for manipulator in used)


def test_successful_replace_consumes_exactly_one_spare(world):
    fleet = make_fleet(world)
    before = sum(manipulator.onboard_spares
                 for manipulator in fleet.manipulators)
    outcome = world.sim.run(
        until=fleet.submit(replace_order(world.links[0])))
    assert outcome.completed
    after = sum(manipulator.onboard_spares
                for manipulator in fleet.manipulators)
    assert after == before - 1


def test_fifo_allocation_serves_orders_in_arrival_order(world):
    fleet = make_fleet(world, allocation="fifo", manipulators=1)
    first = WorkOrder(world.links[0].id, RepairAction.RESEAT,
                      created_at=0.0)
    second = WorkOrder(world.links[1].id, RepairAction.RESEAT,
                       created_at=0.0)
    done_first = fleet.submit(first)
    done_second = fleet.submit(second)
    world.sim.run(until=done_second)
    assert done_first.triggered and done_second.triggered
    assert done_first.value.finished_at <= done_second.value.started_at
    assert [outcome.order for outcome in fleet.outcomes] \
        == [first, second]


def test_capability_rejection_is_immediate_and_recorded(world):
    fleet = make_fleet(world, cleaners=0)  # no cleaner: CLEAN impossible
    order = WorkOrder(world.links[0].id, RepairAction.CLEAN,
                      created_at=0.0)
    outcome = world.sim.run(until=fleet.submit(order))
    assert world.sim.now == 0.0  # rejected without consuming time
    assert not outcome.completed and outcome.needs_human
    assert "cannot perform clean" in outcome.notes
    assert fleet.outcomes == [outcome]
    assert fleet.busy_links == {}  # never touched the link


def test_failed_orders_never_leak_units(world):
    fleet = make_fleet(world, manipulators=1, cleaners=1)
    bad = WorkOrder(world.links[0].id, RepairAction.REPLACE_CABLE,
                    created_at=0.0)  # not a basic capability
    world.sim.run(until=fleet.submit(bad))
    good = WorkOrder(world.links[1].id, RepairAction.RESEAT,
                     created_at=world.sim.now)
    outcome = world.sim.run(until=fleet.submit(good))
    assert outcome.completed  # the single manipulator is still free
