"""Unit tests for the manipulator's onboard spares magazine."""

import numpy as np
import pytest

from dcrobot.core.actions import RepairAction, WorkOrder
from dcrobot.robots import FleetConfig, ManipulatorParams, RobotFleet
from dcrobot.robots.manipulator import ManipulatorRobot

from tests.conftest import make_world


def make_robot(world, capacity=2, seed=6):
    home = world.fabric.layout.rack_at(0, 0).id
    return ManipulatorRobot(
        world.sim, world.fabric, "m0", home,
        params=ManipulatorParams(spare_capacity=capacity),
        rng=np.random.default_rng(seed))


def test_magazine_starts_full(world):
    robot = make_robot(world, capacity=3)
    assert robot.onboard_spares == 3
    robot.consume_spare()
    assert robot.onboard_spares == 2


def test_consume_empty_magazine_raises(world):
    robot = make_robot(world, capacity=0)
    with pytest.raises(ValueError):
        robot.consume_spare()


def test_capacity_validation():
    with pytest.raises(ValueError):
        ManipulatorParams(spare_capacity=-1)


def test_ensure_spare_is_free_when_stocked(world):
    robot = make_robot(world, capacity=1)
    depot = world.fabric.layout.rack_at(0, 0).id

    def task(robot, depot):
        extra = yield from robot.ensure_spare(depot)
        return extra

    process = world.sim.process(task(robot, depot))
    assert world.sim.run(until=process) == 0.0
    assert world.sim.now == 0.0


def test_empty_magazine_costs_a_depot_round_trip():
    world = make_world(rows=1, racks_per_row=4)
    robot = ManipulatorRobot(
        world.sim, world.fabric, "m0",
        world.fabric.layout.rack_at(0, 3).id,
        params=ManipulatorParams(spare_capacity=1,
                                 depot_restock_seconds=100.0),
        rng=np.random.default_rng(1))
    robot.consume_spare()
    depot = world.fabric.layout.rack_at(0, 0).id

    def task(robot, depot):
        extra = yield from robot.ensure_spare(depot)
        return extra

    process = world.sim.process(task(robot, depot))
    extra = world.sim.run(until=process)
    assert extra > 100.0  # restock + two travels
    assert robot.onboard_spares == 1
    assert robot.depot_trips == 1
    # The robot returned to where it was working.
    assert robot.mobility.current_rack_id \
        == world.fabric.layout.rack_at(0, 3).id


def test_fleet_replacement_consumes_magazine(world):
    fleet = RobotFleet(world.sim, world.fabric, world.health,
                       world.physics,
                       config=FleetConfig(manipulators=1, cleaners=0),
                       rng=np.random.default_rng(2))
    manipulator = fleet.manipulators[0]
    before = manipulator.onboard_spares
    link = world.links[0]
    link.transceiver_a.fail_hardware()
    world.health.evaluate_link(link, 0.0)
    order = WorkOrder(link.id, RepairAction.REPLACE_TRANSCEIVER,
                      created_at=0.0)
    outcome = world.sim.run(until=fleet.submit(order))
    assert outcome.completed
    assert manipulator.onboard_spares == before - 1


def test_fleet_restocks_when_magazine_drains(world):
    fleet = RobotFleet(world.sim, world.fabric, world.health,
                       world.physics,
                       config=FleetConfig(manipulators=1, cleaners=0),
                       rng=np.random.default_rng(2))
    manipulator = fleet.manipulators[0]
    manipulator.onboard_spares = 0
    link = world.links[0]
    link.transceiver_b.fail_hardware()
    world.health.evaluate_link(link, 0.0)
    order = WorkOrder(link.id, RepairAction.REPLACE_TRANSCEIVER,
                      created_at=0.0)
    outcome = world.sim.run(until=fleet.submit(order))
    assert outcome.completed
    assert manipulator.depot_trips == 1
