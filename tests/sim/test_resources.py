"""Unit tests for Resource / PriorityResource / Store / Container."""

import pytest

from dcrobot.sim import (
    Container,
    PriorityResource,
    Resource,
    Simulation,
    Store,
)


def test_resource_capacity_validation():
    sim = Simulation()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_grants_up_to_capacity():
    sim = Simulation()
    res = Resource(sim, capacity=2)
    grants = []

    def worker(sim, res, name, hold):
        with res.request() as req:
            yield req
            grants.append((sim.now, name))
            yield sim.timeout(hold)

    sim.process(worker(sim, res, "a", 10.0))
    sim.process(worker(sim, res, "b", 10.0))
    sim.process(worker(sim, res, "c", 10.0))
    sim.run()
    # a and b start at 0, c waits for the first release at t=10.
    assert grants == [(0.0, "a"), (0.0, "b"), (10.0, "c")]


def test_resource_release_via_context_manager():
    sim = Simulation()
    res = Resource(sim, capacity=1)

    def worker(sim, res):
        with res.request() as req:
            yield req
            yield sim.timeout(1.0)

    sim.process(worker(sim, res))
    sim.run()
    assert res.count == 0
    assert res.queued == 0


def test_resource_fifo_order():
    sim = Simulation()
    res = Resource(sim, capacity=1)
    order = []

    def worker(sim, res, name):
        with res.request() as req:
            yield req
            order.append(name)
            yield sim.timeout(1.0)

    for name in ("first", "second", "third"):
        sim.process(worker(sim, res, name))
    sim.run()
    assert order == ["first", "second", "third"]


def test_priority_resource_serves_lowest_priority_value_first():
    sim = Simulation()
    res = PriorityResource(sim, capacity=1)
    order = []

    def holder(sim, res):
        with res.request() as req:
            yield req
            yield sim.timeout(10.0)

    def worker(sim, res, name, priority, start):
        yield sim.timeout(start)
        with res.request(priority=priority) as req:
            yield req
            order.append(name)
            yield sim.timeout(1.0)

    sim.process(holder(sim, res))
    sim.process(worker(sim, res, "low", priority=5.0, start=1.0))
    sim.process(worker(sim, res, "urgent", priority=0.0, start=2.0))
    sim.run()
    assert order == ["urgent", "low"]


def test_cancel_queued_request():
    sim = Simulation()
    res = Resource(sim, capacity=1)
    served = []

    def holder(sim, res):
        with res.request() as req:
            yield req
            yield sim.timeout(10.0)

    def impatient(sim, res):
        req = res.request()
        yield sim.timeout(2.0)  # give up before being served
        req.cancel()

    def patient(sim, res):
        yield sim.timeout(1.0)
        with res.request() as req:
            yield req
            served.append(("patient", sim.now))

    sim.process(holder(sim, res))
    sim.process(impatient(sim, res))
    sim.process(patient(sim, res))
    sim.run()
    assert served == [("patient", 10.0)]


def test_store_put_then_get():
    sim = Simulation()
    store = Store(sim)
    got = []

    def producer(sim, store):
        yield sim.timeout(1.0)
        yield store.put("item-1")

    def consumer(sim, store):
        item = yield store.get()
        got.append((sim.now, item))

    sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run()
    assert got == [(1.0, "item-1")]


def test_store_get_blocks_until_put():
    sim = Simulation()
    store = Store(sim)
    got = []

    def consumer(sim, store):
        yield store.get()
        got.append(sim.now)

    def producer(sim, store):
        yield sim.timeout(5.0)
        yield store.put("x")

    sim.process(consumer(sim, store))
    sim.process(producer(sim, store))
    sim.run()
    assert got == [5.0]


def test_store_fifo_items():
    sim = Simulation()
    store = Store(sim)
    got = []

    def run(sim, store):
        yield store.put("a")
        yield store.put("b")
        got.append((yield store.get()))
        got.append((yield store.get()))

    sim.process(run(sim, store))
    sim.run()
    assert got == ["a", "b"]


def test_store_capacity_blocks_put():
    sim = Simulation()
    store = Store(sim, capacity=1)
    times = []

    def producer(sim, store):
        yield store.put("a")
        times.append(("a-in", sim.now))
        yield store.put("b")
        times.append(("b-in", sim.now))

    def consumer(sim, store):
        yield sim.timeout(3.0)
        yield store.get()

    sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run()
    assert times == [("a-in", 0.0), ("b-in", 3.0)]


def test_store_predicate_get():
    sim = Simulation()
    store = Store(sim)
    got = []

    def run(sim, store):
        yield store.put({"kind": "reseat"})
        yield store.put({"kind": "clean"})
        item = yield store.get(lambda task: task["kind"] == "clean")
        got.append(item["kind"])
        item = yield store.get()
        got.append(item["kind"])

    sim.process(run(sim, store))
    sim.run()
    assert got == ["clean", "reseat"]


def test_store_predicate_waits_for_matching_item():
    sim = Simulation()
    store = Store(sim)
    got = []

    def consumer(sim, store):
        item = yield store.get(lambda x: x == "wanted")
        got.append((sim.now, item))

    def producer(sim, store):
        yield store.put("unwanted")
        yield sim.timeout(4.0)
        yield store.put("wanted")

    sim.process(consumer(sim, store))
    sim.process(producer(sim, store))
    sim.run()
    assert got == [(4.0, "wanted")]
    assert store.items == ["unwanted"]


def test_store_cancel_get():
    sim = Simulation()
    store = Store(sim)
    request = store.get()
    store.cancel_get(request)
    store.put("x")
    sim.run()
    assert not request.triggered
    assert store.items == ["x"]


def test_container_init_and_bounds():
    sim = Simulation()
    with pytest.raises(ValueError):
        Container(sim, capacity=0)
    with pytest.raises(ValueError):
        Container(sim, capacity=10, init=11)
    tank = Container(sim, capacity=10, init=4)
    assert tank.level == 4


def test_container_get_blocks_until_enough():
    sim = Simulation()
    tank = Container(sim, capacity=100, init=0)
    got = []

    def consumer(sim, tank):
        yield tank.get(5)
        got.append(sim.now)

    def producer(sim, tank):
        yield sim.timeout(1.0)
        yield tank.put(3)
        yield sim.timeout(1.0)
        yield tank.put(3)

    sim.process(consumer(sim, tank))
    sim.process(producer(sim, tank))
    sim.run()
    assert got == [2.0]
    assert tank.level == 1


def test_container_put_blocks_at_capacity():
    sim = Simulation()
    tank = Container(sim, capacity=5, init=5)
    times = []

    def producer(sim, tank):
        yield tank.put(2)
        times.append(sim.now)

    def consumer(sim, tank):
        yield sim.timeout(7.0)
        yield tank.get(4)

    sim.process(producer(sim, tank))
    sim.process(consumer(sim, tank))
    sim.run()
    assert times == [7.0]
    assert tank.level == 3


def test_container_rejects_nonpositive_amounts():
    sim = Simulation()
    tank = Container(sim, capacity=5, init=1)
    with pytest.raises(ValueError):
        tank.put(0)
    with pytest.raises(ValueError):
        tank.get(-1)
