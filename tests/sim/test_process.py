"""Unit tests for generator processes: sequencing, interrupts, failures."""

import pytest

from dcrobot.sim import Interrupt, Simulation, SimulationError


def test_process_runs_and_returns_value():
    sim = Simulation()

    def worker(sim):
        yield sim.timeout(2.0)
        yield sim.timeout(3.0)
        return 42

    p = sim.process(worker(sim))
    sim.run()
    assert sim.now == 5.0
    assert p.processed and p.ok and p.value == 42


def test_process_receives_timeout_value():
    sim = Simulation()
    received = []

    def worker(sim):
        value = yield sim.timeout(1.0, value="payload")
        received.append(value)

    sim.process(worker(sim))
    sim.run()
    assert received == ["payload"]


def test_process_is_alive_lifecycle():
    sim = Simulation()

    def worker(sim):
        yield sim.timeout(1.0)

    p = sim.process(worker(sim))
    assert p.is_alive
    sim.run()
    assert not p.is_alive


def test_processes_wait_on_each_other():
    sim = Simulation()

    def child(sim):
        yield sim.timeout(4.0)
        return "child-done"

    def parent(sim):
        result = yield sim.process(child(sim))
        return f"got:{result}"

    p = sim.process(parent(sim))
    assert sim.run(until=p) == "got:child-done"
    assert sim.now == 4.0


def test_yield_already_processed_event_resumes_immediately():
    sim = Simulation()
    trace = []

    def worker(sim):
        ev = sim.event()
        ev.succeed("early")
        yield sim.timeout(1.0)  # ev processes during this wait
        value = yield ev
        trace.append((sim.now, value))

    sim.process(worker(sim))
    sim.run()
    assert trace == [(1.0, "early")]


def test_process_exception_fails_process_event():
    sim = Simulation()

    def worker(sim):
        yield sim.timeout(1.0)
        raise KeyError("inside")

    p = sim.process(worker(sim))
    # Nobody waits on p, so its failure surfaces from run() (silent
    # failures are a debugging nightmare; the engine raises instead).
    with pytest.raises(KeyError, match="inside"):
        sim.run()
    assert p.processed and not p.ok
    assert isinstance(p.value, KeyError)


def test_unwatched_failure_can_be_defused():
    sim = Simulation()

    def worker(sim):
        yield sim.timeout(1.0)
        raise KeyError("expected")

    p = sim.process(worker(sim))
    p.defused = True
    sim.run()  # no raise
    assert not p.ok


def test_watched_failure_does_not_raise_from_run():
    sim = Simulation()

    def worker(sim):
        yield sim.timeout(1.0)
        raise KeyError("caught-by-parent")

    def parent(sim):
        try:
            yield sim.process(worker(sim))
        except KeyError:
            return "handled"

    parent_proc = sim.process(parent(sim))
    assert sim.run(until=parent_proc) == "handled"


def test_failed_event_thrown_into_waiter():
    sim = Simulation()
    caught = []

    def worker(sim):
        ev = sim.event()
        sim.process(failer(sim, ev))
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer(sim, ev):
        yield sim.timeout(1.0)
        ev.fail(RuntimeError("deliberate"))

    sim.process(worker(sim))
    sim.run()
    assert caught == ["deliberate"]


def test_interrupt_delivers_cause():
    sim = Simulation()
    causes = []

    def victim(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            causes.append((sim.now, interrupt.cause))

    def interrupter(sim, victim_proc):
        yield sim.timeout(3.0)
        victim_proc.interrupt("recalled")

    v = sim.process(victim(sim))
    sim.process(interrupter(sim, v))
    sim.run()
    assert causes == [(3.0, "recalled")]


def test_uncaught_interrupt_fails_process():
    sim = Simulation()

    def victim(sim):
        yield sim.timeout(100.0)

    def interrupter(sim, victim_proc):
        yield sim.timeout(1.0)
        victim_proc.interrupt()

    v = sim.process(victim(sim))
    sim.process(interrupter(sim, v))
    with pytest.raises(Interrupt):
        sim.run()
    assert not v.ok
    assert isinstance(v.value, Interrupt)


def test_interrupt_then_continue():
    sim = Simulation()
    trace = []

    def victim(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            trace.append(("interrupted", sim.now))
        yield sim.timeout(5.0)
        trace.append(("resumed-work-done", sim.now))

    def interrupter(sim, victim_proc):
        yield sim.timeout(2.0)
        victim_proc.interrupt()

    v = sim.process(victim(sim))
    sim.process(interrupter(sim, v))
    sim.run()
    assert trace == [("interrupted", 2.0), ("resumed-work-done", 7.0)]
    # The abandoned 100s timeout still exists but must not resume the victim.
    assert sim.now == 100.0


def test_interrupt_finished_process_raises():
    sim = Simulation()

    def quick(sim):
        yield sim.timeout(1.0)

    p = sim.process(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_yield_non_event_is_error():
    sim = Simulation()

    def bad(sim):
        yield 42

    sim.process(bad(sim))
    with pytest.raises(SimulationError, match="non-event"):
        sim.run()


def test_cross_simulation_event_rejected():
    sim_a = Simulation()
    sim_b = Simulation()

    def bad(sim_a, sim_b):
        yield sim_b.timeout(1.0)

    sim_a.process(bad(sim_a, sim_b))
    with pytest.raises(SimulationError, match="another simulation"):
        sim_a.run()


def test_non_generator_rejected():
    sim = Simulation()
    with pytest.raises(TypeError):
        sim.process(lambda: None)


def test_many_processes_interleave_deterministically():
    sim = Simulation()
    trace = []

    def worker(sim, name, period, repeats):
        for _ in range(repeats):
            yield sim.timeout(period)
            trace.append((sim.now, name))

    sim.process(worker(sim, "a", 2.0, 3))
    sim.process(worker(sim, "b", 3.0, 2))
    sim.run()
    # At t=6 both fire; b's timeout was scheduled earlier (t=3 vs t=4),
    # so FIFO tie-breaking runs b first.
    assert trace == [
        (2.0, "a"), (3.0, "b"), (4.0, "a"), (6.0, "b"), (6.0, "a")]


def test_active_process_visible_during_execution():
    sim = Simulation()
    observed = []

    def worker(sim):
        observed.append(sim.active_process)
        yield sim.timeout(1.0)

    p = sim.process(worker(sim))
    sim.run()
    assert observed == [p]
    assert sim.active_process is None
