"""Unit tests for deterministic random-stream management."""

import numpy as np

from dcrobot.sim import RandomStreams, make_rng


def test_named_streams_are_deterministic():
    streams = RandomStreams(seed=42)
    first = streams.stream("health").random(5)
    second = RandomStreams(seed=42).stream("health").random(5)
    assert np.allclose(first, second)


def test_different_names_differ():
    streams = RandomStreams(seed=42)
    assert not np.allclose(streams.stream("a").random(5),
                           streams.stream("b").random(5))


def test_different_seeds_differ():
    assert not np.allclose(
        RandomStreams(seed=1).stream("x").random(5),
        RandomStreams(seed=2).stream("x").random(5))


def test_spawn_namespaces():
    parent = RandomStreams(seed=7)
    child_a = parent.spawn("robots")
    child_b = parent.spawn("humans")
    assert child_a.seed != child_b.seed
    # Same name under different namespaces gives different streams.
    assert not np.allclose(child_a.stream("x").random(4),
                           child_b.stream("x").random(4))
    # But spawning is deterministic.
    assert RandomStreams(seed=7).spawn("robots").seed == child_a.seed


def test_make_rng_coercions():
    generator = np.random.default_rng(5)
    assert make_rng(generator) is generator
    assert isinstance(make_rng(123), np.random.Generator)
    assert isinstance(make_rng(None), np.random.Generator)
    # Same int seed -> same stream.
    assert np.allclose(make_rng(9).random(3), make_rng(9).random(3))
