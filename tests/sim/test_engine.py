"""Unit tests for the discrete-event engine and event primitives."""

import pytest

from dcrobot.sim import (
    EventAlreadyTriggered,
    Simulation,
    SimulationError,
)


def test_clock_starts_at_zero():
    sim = Simulation()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulation(start_time=100.0)
    assert sim.now == 100.0


def test_timeout_advances_clock():
    sim = Simulation()
    sim.timeout(5.0)
    sim.run()
    assert sim.now == 5.0


def test_timeouts_processed_in_order():
    sim = Simulation()
    seen = []
    for delay in (3.0, 1.0, 2.0):
        sim.timeout(delay).callbacks.append(
            lambda ev, d=delay: seen.append(d))
    sim.run()
    assert seen == [1.0, 2.0, 3.0]


def test_equal_time_fifo_order():
    sim = Simulation()
    seen = []
    for tag in ("a", "b", "c"):
        sim.timeout(1.0).callbacks.append(lambda ev, t=tag: seen.append(t))
    sim.run()
    assert seen == ["a", "b", "c"]


def test_negative_timeout_rejected():
    sim = Simulation()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_run_until_time_excludes_boundary_events():
    # SimPy semantics: events exactly at `until` are not processed.
    sim = Simulation()
    seen = []
    sim.timeout(10.0).callbacks.append(lambda ev: seen.append("fired"))
    sim.run(until=10.0)
    assert seen == []
    assert sim.now == 10.0
    sim.run()
    assert seen == ["fired"]


def test_run_until_past_raises():
    sim = Simulation()
    sim.run(until=5.0)
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_run_until_time_with_empty_schedule_advances_clock():
    sim = Simulation()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_step_empty_schedule_raises():
    sim = Simulation()
    with pytest.raises(SimulationError):
        sim.step()


def test_peek():
    sim = Simulation()
    assert sim.peek() == float("inf")
    sim.timeout(7.0)
    assert sim.peek() == 7.0


def test_manual_event_succeed_value():
    sim = Simulation()
    ev = sim.event()
    assert not ev.triggered
    ev.succeed(123)
    assert ev.triggered and ev.ok
    sim.run()
    assert ev.processed
    assert ev.value == 123


def test_event_double_trigger_rejected():
    sim = Simulation()
    ev = sim.event()
    ev.succeed()
    with pytest.raises(EventAlreadyTriggered):
        ev.succeed()
    with pytest.raises(EventAlreadyTriggered):
        ev.fail(RuntimeError("x"))


def test_event_fail_requires_exception():
    sim = Simulation()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_event_value_before_trigger_raises():
    sim = Simulation()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_run_until_event_returns_value():
    sim = Simulation()

    def proc(sim):
        yield sim.timeout(3.0)
        return "result"

    p = sim.process(proc(sim))
    assert sim.run(until=p) == "result"
    assert sim.now == 3.0


def test_run_until_already_processed_event():
    sim = Simulation()
    ev = sim.event()
    ev.succeed("done")
    sim.run()
    assert sim.run(until=ev) == "done"


def test_run_until_event_never_fires():
    sim = Simulation()
    ev = sim.event()  # never triggered
    sim.timeout(1.0)
    with pytest.raises(SimulationError):
        sim.run(until=ev)


def test_run_until_failed_event_raises_its_exception():
    sim = Simulation()

    def proc(sim):
        yield sim.timeout(1.0)
        raise ValueError("boom")

    p = sim.process(proc(sim))
    with pytest.raises(ValueError, match="boom"):
        sim.run(until=p)


def test_condition_all_of():
    sim = Simulation()
    t1 = sim.timeout(1.0, value="a")
    t2 = sim.timeout(2.0, value="b")
    cond = sim.all_of([t1, t2])
    sim.run()
    assert cond.processed and cond.ok
    assert cond.value[t1] == "a"
    assert cond.value[t2] == "b"
    assert len(cond.value) == 2


def test_condition_any_of_fires_at_earliest():
    sim = Simulation()
    t1 = sim.timeout(1.0, value="fast")
    t2 = sim.timeout(10.0, value="slow")
    cond = sim.any_of([t1, t2])
    sim.run(until=cond)
    assert sim.now == 1.0
    assert t1 in cond.value
    assert t2 not in cond.value


def test_condition_empty_fires_immediately():
    sim = Simulation()
    cond = sim.all_of([])
    sim.run()
    assert cond.processed and len(cond.value) == 0


def test_condition_propagates_failure():
    sim = Simulation()
    good = sim.timeout(5.0)
    bad = sim.event()
    bad.fail(RuntimeError("child failed"))
    cond = sim.all_of([good, bad])
    with pytest.raises(RuntimeError, match="child failed"):
        sim.run(until=cond)


def test_condition_value_keyerror_for_foreign_event():
    sim = Simulation()
    t1 = sim.timeout(1.0)
    other = sim.timeout(1.0)
    cond = sim.all_of([t1])
    sim.run()
    with pytest.raises(KeyError):
        _ = cond.value[other]


def test_time_never_goes_backwards():
    sim = Simulation()
    times = []
    for delay in (5.0, 1.0, 3.0, 1.0, 0.0):
        sim.timeout(delay).callbacks.append(
            lambda ev: times.append(sim.now))
    sim.run()
    assert times == sorted(times)
