"""dcrobot — self-maintaining networked systems.

A simulation and control-plane library reproducing "Self-maintaining
[networked] systems: The rise of datacenter robotics!" (HotNets '24).

The package is layered bottom-up:

* :mod:`dcrobot.sim` — discrete-event kernel,
* :mod:`dcrobot.network` / :mod:`dcrobot.topology` — physical inventory
  and datacenter fabrics,
* :mod:`dcrobot.failures` / :mod:`dcrobot.traffic` /
  :mod:`dcrobot.telemetry` — failure physics, traffic, and monitoring,
* :mod:`dcrobot.humans` / :mod:`dcrobot.robots` — the two maintenance
  executors (technician workforce and modular robot fleet),
* :mod:`dcrobot.core` — the self-maintenance control plane (the paper's
  primary contribution),
* :mod:`dcrobot.ml`, :mod:`dcrobot.metrics`,
  :mod:`dcrobot.experiments` — prediction, measurement, and the
  paper-experiment harness.
"""

from dcrobot._version import __version__

__all__ = ["__version__"]
