"""Common topology wrapper returned by all builders."""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Dict, List, Optional

import networkx as nx

from dcrobot.network.inventory import Fabric
from dcrobot.network.switchgear import SwitchRole


@dataclasses.dataclass
class Topology:
    """A built fabric plus the role structure the builder created.

    ``fabric`` owns all physical objects; this wrapper records which
    switches play which role and which nodes are servers, so experiments
    can pick traffic endpoints and redundancy groups without re-deriving
    the structure.
    """

    name: str
    fabric: Fabric
    params: Dict[str, object]
    switches_by_role: Dict[SwitchRole, List[str]]
    host_ids: List[str]

    def __post_init__(self) -> None:
        known = set(self.fabric.switches)
        for role, ids in self.switches_by_role.items():
            missing = set(ids) - known
            if missing:
                raise ValueError(
                    f"role {role.value} references unknown switches "
                    f"{sorted(missing)}")

    def __repr__(self) -> str:
        return (f"<Topology {self.name} switches="
                f"{len(self.fabric.switches)} links="
                f"{len(self.fabric.links)}>")

    @property
    def switch_count(self) -> int:
        return len(self.fabric.switches)

    @property
    def link_count(self) -> int:
        return len(self.fabric.links)

    def role_of(self, switch_id: str) -> SwitchRole:
        return self.fabric.switches[switch_id].role

    def switches(self, role: Optional[SwitchRole] = None) -> List[str]:
        """Switch ids, optionally filtered by role."""
        if role is None:
            return list(self.fabric.switches)
        return list(self.switches_by_role.get(role, []))

    def graph(self, operational_only: bool = False) -> nx.MultiGraph:
        return self.fabric.graph(operational_only=operational_only)

    def is_connected(self, operational_only: bool = False) -> bool:
        """Whether the (operational) fabric is one connected component."""
        graph = self.graph(operational_only=operational_only)
        if graph.number_of_nodes() == 0:
            return True
        return nx.is_connected(graph)

    def edge_switch_pairs(self) -> List[tuple]:
        """(src, dst) pairs of distinct traffic-attachment switches.

        Traffic enters at TOR/LEAF/NODE switches (or hosts when present).
        """
        attach_roles = (SwitchRole.TOR, SwitchRole.LEAF, SwitchRole.NODE)
        attach = [sid for role in attach_roles
                  for sid in self.switches_by_role.get(role, [])]
        return [(a, b) for a in attach for b in attach if a != b]


def roles_from_fabric(fabric: Fabric) -> Dict[SwitchRole, List[str]]:
    """Group a fabric's switches by their role attribute."""
    grouped: Dict[SwitchRole, List[str]] = defaultdict(list)
    for switch in fabric.switches.values():
        grouped[switch.role].append(switch.id)
    return dict(grouped)
