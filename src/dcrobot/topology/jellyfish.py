"""Jellyfish: random regular graph topology (Singla et al., NSDI '12).

The paper's §4 cites Jellyfish [14] as an efficient topology whose
*deployability* — complex, irregular wiring looms — is what keeps it out
of production.  Building it here lets E9 quantify that: same radix as a
fat-tree, better path diversity, but denser and longer cable bundles.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx
import numpy as np

from dcrobot.network.enums import FormFactor
from dcrobot.network.inventory import Fabric
from dcrobot.network.layout import HallLayout
from dcrobot.network.switchgear import SwitchRole
from dcrobot.topology.base import Topology


def build_jellyfish(switches: int = 20, degree: int = 4,
                    form_factor: FormFactor = FormFactor.QSFP_DD,
                    rng: Optional[np.random.Generator] = None,
                    switches_per_rack: int = 1,
                    rack_stride: int = 4) -> Topology:
    """Build a Jellyfish fabric: ``switches`` nodes of uniform ``degree``.

    ``switches * degree`` must be even (handshake lemma); the random
    regular graph is drawn via networkx, seeded from ``rng``.
    """
    if switches < 2:
        raise ValueError(f"need >= 2 switches, got {switches}")
    if not 0 < degree < switches:
        raise ValueError(f"degree must be in 1..{switches - 1}")
    if switches * degree % 2 != 0:
        raise ValueError("switches * degree must be even")
    rng = rng if rng is not None else np.random.default_rng(0)

    seed = int(rng.integers(2 ** 31 - 1))
    random_graph = nx.random_regular_graph(degree, switches, seed=seed)

    racks_needed = int(np.ceil(switches / switches_per_rack)) * rack_stride
    racks_per_row = max(4, int(np.ceil(np.sqrt(racks_needed))))
    rows = int(np.ceil(racks_needed / racks_per_row))
    layout = HallLayout(rows=max(rows, 1), racks_per_row=racks_per_row)
    fabric = Fabric(layout=layout, rng=rng)

    nodes = []
    for index in range(switches):
        rack_index = (index // switches_per_rack) * rack_stride
        rack = layout.rack_at(rack_index // racks_per_row,
                              rack_index % racks_per_row)
        nodes.append(fabric.add_switch(
            SwitchRole.NODE, radix=degree, form_factor=form_factor,
            rack_id=rack.id,
            u_position=10 + (index % switches_per_rack) * 4))

    for a, b in random_graph.edges():
        fabric.connect(nodes[a].id, nodes[b].id)

    return Topology(
        name=f"jellyfish-n{switches}d{degree}",
        fabric=fabric,
        params={"switches": switches, "degree": degree},
        switches_by_role={SwitchRole.NODE: [s.id for s in nodes]},
        host_ids=[],
    )
