"""SMI — the Self-Maintainability Index.

§4 of the paper asks: *"perhaps we can create a metric for
self-maintainability of a network design?"*.  This module proposes one.

SMI is a weighted geometric mean of five structural factors, each in
(0, 1], computed from the built fabric (no simulation required):

* **reach** — fraction-weighted accessibility of link endpoints by a
  robot of given vertical reach.  Ports above the reach limit score the
  ratio ``reach / z`` (taller masts/lifts help but cost time).
* **occlusion** — how uncluttered the cable trays are: per link,
  ``1 / (1 + (bundle_density - 1) / occlusion_scale)``, averaged.  Dense
  looms defeat perception and grasping (§3.3.3).
* **serviceability** — fraction of links whose cable is separable
  (LC/MPO): those admit the full reseat→clean→replace ladder instead of
  jumping straight to replacement.
* **uniformity** — Simpson concentration of transceiver models in use
  (probability two random units share a design).  Diversity is the
  paper's top automation obstacle (§4 "Hardware redesign").
* **granularity** — repair parallelism: distinct bundles relative to
  links.  Finer bundling means touching one cable endangers fewer
  neighbours and independent repairs can proceed concurrently.

A geometric mean is used because the factors gate each other: a fabric
whose ports are unreachable is not redeemed by uniform transceivers.

Two query paths share the factor definitions:

* :func:`compute_smi` — the full rescan, O(links) per query.  Kept as
  the parity oracle.
* :class:`SmiTracker` — incremental: subscribes to ``FabricState``
  structure events and ``BundleRegistry`` membership events and keeps
  the five factor aggregates as integer histograms/counters, so a query
  after touching one link is O(changed links) to update and
  O(distinct aggregate keys) to assemble.  ``report()`` must equal the
  rescan to 1e-12 on every factor (see
  ``tests/topology/test_smi_incremental.py``).
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Dict, Optional

import numpy as np

from dcrobot.topology.base import Topology

DEFAULT_WEIGHTS: Dict[str, float] = {
    "reach": 1.0,
    "occlusion": 1.0,
    "serviceability": 1.0,
    "uniformity": 1.0,
    "granularity": 1.0,
}

#: Vertical reach (metres) of the reference rack-scale robot.
DEFAULT_ROBOT_REACH_M = 2.2

#: Bundle density at which occlusion halves the score.
DEFAULT_OCCLUSION_SCALE = 8.0

_FLOOR = 1e-3  # factors are clamped here so the geometric mean stays > 0


@dataclasses.dataclass(frozen=True)
class SMIReport:
    """The index plus its factor decomposition."""

    smi: float
    factors: Dict[str, float]

    def __repr__(self) -> str:
        parts = ", ".join(f"{name}={value:.3f}"
                          for name, value in sorted(self.factors.items()))
        return f"<SMIReport smi={self.smi:.3f} ({parts})>"


def _reach_factor(topology: Topology, reach_m: float) -> float:
    scores = []
    fabric = topology.fabric
    for link in fabric.links.values():
        for port in link.ports():
            node = fabric.node(port.parent_id)
            z = fabric.position_of(node.id).z
            scores.append(1.0 if z <= reach_m else reach_m / z)
    return float(np.mean(scores)) if scores else 1.0


def _occlusion_factor(topology: Topology, scale: float) -> float:
    fabric = topology.fabric
    scores = []
    for link in fabric.links.values():
        bundle = fabric.bundles.bundle_of(link.cable.id)
        density = bundle.density if bundle else 1
        scores.append(1.0 / (1.0 + max(0, density - 1) / scale))
    return float(np.mean(scores)) if scores else 1.0


def _serviceability_factor(topology: Topology) -> float:
    links = topology.fabric.links.values()
    if not links:
        return 1.0
    separable = sum(1 for link in links if link.cable.cleanable)
    return separable / len(links)


def _uniformity_factor(topology: Topology) -> float:
    models = Counter()
    for link in topology.fabric.links.values():
        models[link.transceiver_a.model.model_id] += 1
        models[link.transceiver_b.model.model_id] += 1
    total = sum(models.values())
    if total == 0:
        return 1.0
    return sum((count / total) ** 2 for count in models.values())


def _granularity_factor(topology: Topology) -> float:
    links = len(topology.fabric.links)
    if links == 0:
        return 1.0
    bundles = len([b for b in topology.fabric.bundles.bundles.values()
                   if len(b) > 0])
    return min(1.0, bundles / np.sqrt(links))


def _resolve_weights(weights: Optional[Dict[str, float]]) \
        -> Dict[str, float]:
    weight_map = dict(DEFAULT_WEIGHTS)
    if weights:
        unknown = set(weights) - set(weight_map)
        if unknown:
            raise ValueError(f"unknown SMI weights: {sorted(unknown)}")
        weight_map.update(weights)
    return weight_map


def _assemble(factors: Dict[str, float],
              weight_map: Dict[str, float]) -> SMIReport:
    """Fold factor values into the weighted geometric mean."""
    log_sum = 0.0
    weight_total = 0.0
    for name, value in factors.items():
        weight = weight_map[name]
        if weight <= 0:
            continue
        log_sum += weight * np.log(max(value, _FLOOR))
        weight_total += weight
    smi = float(np.exp(log_sum / weight_total)) if weight_total else 1.0
    return SMIReport(smi=smi, factors=factors)


def compute_smi(topology: Topology,
                robot_reach_m: float = DEFAULT_ROBOT_REACH_M,
                occlusion_scale: float = DEFAULT_OCCLUSION_SCALE,
                weights: Optional[Dict[str, float]] = None) -> SMIReport:
    """Compute the Self-Maintainability Index of a built topology."""
    weight_map = _resolve_weights(weights)
    factors = {
        "reach": _reach_factor(topology, robot_reach_m),
        "occlusion": _occlusion_factor(topology, occlusion_scale),
        "serviceability": _serviceability_factor(topology),
        "uniformity": _uniformity_factor(topology),
        "granularity": _granularity_factor(topology),
    }
    return _assemble(factors, weight_map)


def weight_sensitivity(topology: Topology,
                       perturbation: float = 0.5,
                       **compute_kwargs) -> Dict[str, float]:
    """How much each factor's weight moves the index (ablation aid).

    For every factor, the weight is raised by ``perturbation`` (others
    held at default) and the SMI delta against the default weighting is
    reported.  Large |delta| means the ranking is sensitive to how much
    that factor is believed to matter — the kind of robustness question
    a metric proposal must answer.
    """
    if perturbation <= 0:
        raise ValueError("perturbation must be > 0")
    baseline = compute_smi(topology, **compute_kwargs).smi
    deltas = {}
    for name in DEFAULT_WEIGHTS:
        weights = dict(DEFAULT_WEIGHTS)
        weights[name] = weights[name] + perturbation
        perturbed = compute_smi(topology, weights=weights,
                                **compute_kwargs).smi
        deltas[name] = perturbed - baseline
    return deltas


class SmiTracker:
    """Incrementally-maintained SMI over a live fabric.

    The tracker subscribes to ``FabricState`` structure events
    (link add/remove, transceiver/cable replacement) and
    ``BundleRegistry`` membership events (assign/unassign) and folds
    each one into integer factor aggregates:

    * reach — histogram of per-port reach scores (scores are static
      per rack position, so add/remove just moves integer counts);
    * occlusion — histogram of bundle density → wired-link count,
      kept consistent through density changes of whole bundles;
    * serviceability — count of links with a cleanable cable;
    * uniformity — the transceiver-model ``Counter`` itself;
    * granularity — count of non-empty bundles.

    Because every aggregate is an integer count keyed by an exact
    value, repeated updates cannot drift: :meth:`report` reassembles
    the factors from the counts and matches the full-rescan
    :func:`compute_smi` to float summation-order error (≪ 1e-12).

    Link *state* (up/down/drained) never enters the factors — SMI is a
    structural metric — so state flips are free.  ``report()`` guards
    on ``FabricState.generation``: if a structural change happened
    while the tracker was not subscribed, it falls back to a full
    :meth:`resync`.

    :meth:`fork` returns a detached copy (no subscriptions) whose
    aggregates a digital twin can advance with
    :meth:`apply_transceiver_swap` / :meth:`apply_cable_swap` —
    the two structural deltas a simulated repair plan can cause.
    """

    def __init__(self, topology: Topology,
                 robot_reach_m: float = DEFAULT_ROBOT_REACH_M,
                 occlusion_scale: float = DEFAULT_OCCLUSION_SCALE,
                 weights: Optional[Dict[str, float]] = None) -> None:
        self._topology = topology
        self._reach_m = float(robot_reach_m)
        self._scale = float(occlusion_scale)
        self._weight_map = _resolve_weights(weights)
        self._fs = topology.fabric.state
        self._registry = topology.fabric.bundles
        self._fs.subscribe_structure(self._on_structure)
        self._registry.subscribe(self._on_bundle)
        self._subscribed = True
        self.resync()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Unsubscribe from the fabric (tracker becomes inert).

        Detaching ``_fs`` also disarms :meth:`report`'s generation
        guard, so the last synced aggregates stay frozen instead of
        silently rescanning a fabric we no longer listen to.
        """
        if self._subscribed:
            self._fs.unsubscribe_structure(self._on_structure)
            self._registry.unsubscribe(self._on_bundle)
            self._subscribed = False
        self._fs = None
        self._registry = None

    def fork(self) -> "SmiTracker":
        """A detached aggregate snapshot for a digital twin.

        The clone holds copies of every counter and never subscribes;
        advance it with the ``apply_*`` deltas and query ``report()``.
        """
        clone = SmiTracker.__new__(SmiTracker)
        clone._topology = self._topology
        clone._reach_m = self._reach_m
        clone._scale = self._scale
        clone._weight_map = dict(self._weight_map)
        clone._fs = None
        clone._registry = None
        clone._subscribed = False
        clone._generation = self._generation
        clone._n_links = self._n_links
        clone._reach_hist = Counter(self._reach_hist)
        clone._density_hist = Counter(self._density_hist)
        clone._wired_of_bundle = Counter(self._wired_of_bundle)
        clone._link_bundle = dict(self._link_bundle)
        clone._link_of_cable = dict(self._link_of_cable)
        clone._cleanable = self._cleanable
        clone._models = Counter(self._models)
        clone._nonempty = self._nonempty
        return clone

    # -- full rebuild (parity oracle path) -----------------------------------

    def resync(self) -> None:
        """Rebuild every aggregate with a full rescan."""
        fabric = self._topology.fabric
        self._n_links = 0
        self._reach_hist = Counter()
        self._density_hist = Counter()
        self._wired_of_bundle = Counter()
        self._link_bundle = {}
        self._link_of_cable = {}
        self._cleanable = 0
        self._models = Counter()
        for link in fabric.links.values():
            self._add_link(link)
        self._nonempty = sum(
            1 for bundle in fabric.bundles.bundles.values()
            if len(bundle) > 0)
        if self._fs is not None:
            self._generation = self._fs.generation

    # -- factor assembly ------------------------------------------------------

    def report(self) -> SMIReport:
        """The SMI from the aggregates — O(distinct aggregate keys)."""
        if self._fs is not None \
                and self._generation != self._fs.generation:
            self.resync()
        n = self._n_links
        if n == 0:
            factors = {name: 1.0 for name in DEFAULT_WEIGHTS}
            return _assemble(factors, self._weight_map)
        total_ports = 2 * n
        reach = sum(score * count
                    for score, count in self._reach_hist.items()) \
            / total_ports
        occlusion = sum(count * self._occlusion_score(density)
                        for density, count
                        in self._density_hist.items()) / n
        serviceability = self._cleanable / n
        uniformity = sum((count / total_ports) ** 2
                         for count in self._models.values())
        granularity = float(min(1.0, self._nonempty / np.sqrt(n)))
        factors = {
            "reach": float(reach),
            "occlusion": float(occlusion),
            "serviceability": float(serviceability),
            "uniformity": float(uniformity),
            "granularity": granularity,
        }
        return _assemble(factors, self._weight_map)

    # -- twin deltas -----------------------------------------------------------

    def apply_transceiver_swap(self, old_model_id: str,
                               new_model_id: str) -> None:
        """A simulated replacement changed one unit's model."""
        if old_model_id == new_model_id:
            return
        self._models[old_model_id] -= 1
        if self._models[old_model_id] == 0:
            del self._models[old_model_id]
        self._models[new_model_id] += 1

    def apply_cable_swap(self, old_cleanable: bool,
                         new_cleanable: bool) -> None:
        """A simulated replacement changed one cable's separability."""
        self._cleanable += int(new_cleanable) - int(old_cleanable)

    # -- per-factor helpers ----------------------------------------------------

    def _occlusion_score(self, density: int) -> float:
        return 1.0 / (1.0 + max(0, density - 1) / self._scale)

    def _port_score(self, port) -> float:
        fabric = self._topology.fabric
        node = fabric.node(port.parent_id)
        z = fabric.position_of(node.id).z
        return 1.0 if z <= self._reach_m else self._reach_m / z

    def _bump_density(self, hist_key: int, delta: int) -> None:
        self._density_hist[hist_key] += delta
        if self._density_hist[hist_key] == 0:
            del self._density_hist[hist_key]

    def _link_density(self, bundle_id: Optional[str]) -> int:
        if bundle_id is None:
            return 1
        return self._registry.bundles[bundle_id].density

    # -- event folding ---------------------------------------------------------

    def _add_link(self, link) -> None:
        cable = link.cable
        self._link_of_cable[cable.id] = link
        bundle = self._registry.bundle_of(cable.id) \
            if self._registry is not None else None
        bundle_id = bundle.id if bundle is not None else None
        self._link_bundle[link.id] = bundle_id
        self._bump_density(self._link_density(bundle_id), 1)
        if bundle_id is not None:
            self._wired_of_bundle[bundle_id] += 1
        self._cleanable += int(cable.cleanable)
        self._models[link.transceiver_a.model.model_id] += 1
        self._models[link.transceiver_b.model.model_id] += 1
        for port in link.ports():
            self._reach_hist[self._port_score(port)] += 1
        self._n_links += 1

    def _remove_link(self, link) -> None:
        cable = link.cable
        bundle_id = self._link_bundle.pop(link.id, None)
        self._link_of_cable.pop(cable.id, None)
        self._bump_density(self._link_density(bundle_id), -1)
        if bundle_id is not None:
            self._wired_of_bundle[bundle_id] -= 1
            if self._wired_of_bundle[bundle_id] == 0:
                del self._wired_of_bundle[bundle_id]
        self._cleanable -= int(cable.cleanable)
        for unit in (link.transceiver_a, link.transceiver_b):
            self._models[unit.model.model_id] -= 1
            if self._models[unit.model.model_id] == 0:
                del self._models[unit.model.model_id]
        for port in link.ports():
            self._reach_hist[self._port_score(port)] -= 1
            if self._reach_hist[self._port_score(port)] == 0:
                del self._reach_hist[self._port_score(port)]
        self._n_links -= 1

    def _on_structure(self, event: str, **info) -> None:
        if event == "link-added":
            self._add_link(info["link"])
        elif event == "link-removed":
            self._remove_link(info["link"])
        elif event == "xcvr-replaced":
            self.apply_transceiver_swap(info["old"].model.model_id,
                                        info["new"].model.model_id)
        elif event == "cable-replaced":
            self._rebind_cable(info["link"], info["old"], info["new"])
        self._generation = self._fs.generation

    def _rebind_cable(self, link, old, new) -> None:
        # The link keeps its row but swaps cables; the old cable is
        # still in its bundle here (the registry unassign follows),
        # the new one is typically unbundled until re-assigned.
        old_bundle_id = self._link_bundle.get(link.id)
        self._bump_density(self._link_density(old_bundle_id), -1)
        if old_bundle_id is not None:
            self._wired_of_bundle[old_bundle_id] -= 1
            if self._wired_of_bundle[old_bundle_id] == 0:
                del self._wired_of_bundle[old_bundle_id]
        self._link_of_cable.pop(old.id, None)
        new_bundle = self._registry.bundle_of(new.id)
        new_bundle_id = new_bundle.id if new_bundle is not None else None
        self._link_bundle[link.id] = new_bundle_id
        self._link_of_cable[new.id] = link
        self._bump_density(self._link_density(new_bundle_id), 1)
        if new_bundle_id is not None:
            self._wired_of_bundle[new_bundle_id] += 1
        self.apply_cable_swap(old.cleanable, new.cleanable)

    def _on_bundle(self, event: str, cable_id: str,
                   bundle_id: str) -> None:
        # Density of the whole bundle changed: every wired link whose
        # cable shares the tray moves between histogram buckets, and
        # the (un)assigned cable's own link may join or leave.
        if event == "assigned":
            density = self._registry.bundles[bundle_id].density
            if density == 1:
                self._nonempty += 1
            wired = self._wired_of_bundle.get(bundle_id, 0)
            if wired:
                self._bump_density(density - 1, -wired)
                self._bump_density(density, wired)
            link = self._link_of_cable.get(cable_id)
            if link is not None:
                self._bump_density(1, -1)
                self._bump_density(density, 1)
                self._wired_of_bundle[bundle_id] = wired + 1
                self._link_bundle[link.id] = bundle_id
        elif event == "unassigned":
            density = self._registry.bundles[bundle_id].density
            if density == 0:
                self._nonempty -= 1
            link = self._link_of_cable.get(cable_id)
            if link is not None \
                    and self._link_bundle.get(link.id) == bundle_id:
                self._bump_density(density + 1, -1)
                self._bump_density(1, 1)
                self._wired_of_bundle[bundle_id] -= 1
                if self._wired_of_bundle[bundle_id] == 0:
                    del self._wired_of_bundle[bundle_id]
                self._link_bundle[link.id] = None
            wired = self._wired_of_bundle.get(bundle_id, 0)
            if wired:
                self._bump_density(density + 1, -wired)
                self._bump_density(density, wired)
