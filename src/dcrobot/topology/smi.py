"""SMI — the Self-Maintainability Index.

§4 of the paper asks: *"perhaps we can create a metric for
self-maintainability of a network design?"*.  This module proposes one.

SMI is a weighted geometric mean of five structural factors, each in
(0, 1], computed from the built fabric (no simulation required):

* **reach** — fraction-weighted accessibility of link endpoints by a
  robot of given vertical reach.  Ports above the reach limit score the
  ratio ``reach / z`` (taller masts/lifts help but cost time).
* **occlusion** — how uncluttered the cable trays are: per link,
  ``1 / (1 + (bundle_density - 1) / occlusion_scale)``, averaged.  Dense
  looms defeat perception and grasping (§3.3.3).
* **serviceability** — fraction of links whose cable is separable
  (LC/MPO): those admit the full reseat→clean→replace ladder instead of
  jumping straight to replacement.
* **uniformity** — Simpson concentration of transceiver models in use
  (probability two random units share a design).  Diversity is the
  paper's top automation obstacle (§4 "Hardware redesign").
* **granularity** — repair parallelism: distinct bundles relative to
  links.  Finer bundling means touching one cable endangers fewer
  neighbours and independent repairs can proceed concurrently.

A geometric mean is used because the factors gate each other: a fabric
whose ports are unreachable is not redeemed by uniform transceivers.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Dict, Optional

import numpy as np

from dcrobot.topology.base import Topology

DEFAULT_WEIGHTS: Dict[str, float] = {
    "reach": 1.0,
    "occlusion": 1.0,
    "serviceability": 1.0,
    "uniformity": 1.0,
    "granularity": 1.0,
}

#: Vertical reach (metres) of the reference rack-scale robot.
DEFAULT_ROBOT_REACH_M = 2.2

#: Bundle density at which occlusion halves the score.
DEFAULT_OCCLUSION_SCALE = 8.0

_FLOOR = 1e-3  # factors are clamped here so the geometric mean stays > 0


@dataclasses.dataclass(frozen=True)
class SMIReport:
    """The index plus its factor decomposition."""

    smi: float
    factors: Dict[str, float]

    def __repr__(self) -> str:
        parts = ", ".join(f"{name}={value:.3f}"
                          for name, value in sorted(self.factors.items()))
        return f"<SMIReport smi={self.smi:.3f} ({parts})>"


def _reach_factor(topology: Topology, reach_m: float) -> float:
    scores = []
    fabric = topology.fabric
    for link in fabric.links.values():
        for port in link.ports():
            node = fabric.node(port.parent_id)
            z = fabric.position_of(node.id).z
            scores.append(1.0 if z <= reach_m else reach_m / z)
    return float(np.mean(scores)) if scores else 1.0


def _occlusion_factor(topology: Topology, scale: float) -> float:
    fabric = topology.fabric
    scores = []
    for link in fabric.links.values():
        bundle = fabric.bundles.bundle_of(link.cable.id)
        density = bundle.density if bundle else 1
        scores.append(1.0 / (1.0 + max(0, density - 1) / scale))
    return float(np.mean(scores)) if scores else 1.0


def _serviceability_factor(topology: Topology) -> float:
    links = topology.fabric.links.values()
    if not links:
        return 1.0
    separable = sum(1 for link in links if link.cable.cleanable)
    return separable / len(links)


def _uniformity_factor(topology: Topology) -> float:
    models = Counter()
    for link in topology.fabric.links.values():
        models[link.transceiver_a.model.model_id] += 1
        models[link.transceiver_b.model.model_id] += 1
    total = sum(models.values())
    if total == 0:
        return 1.0
    return sum((count / total) ** 2 for count in models.values())


def _granularity_factor(topology: Topology) -> float:
    links = len(topology.fabric.links)
    if links == 0:
        return 1.0
    bundles = len([b for b in topology.fabric.bundles.bundles.values()
                   if len(b) > 0])
    return min(1.0, bundles / np.sqrt(links))


def compute_smi(topology: Topology,
                robot_reach_m: float = DEFAULT_ROBOT_REACH_M,
                occlusion_scale: float = DEFAULT_OCCLUSION_SCALE,
                weights: Optional[Dict[str, float]] = None) -> SMIReport:
    """Compute the Self-Maintainability Index of a built topology."""
    weight_map = dict(DEFAULT_WEIGHTS)
    if weights:
        unknown = set(weights) - set(weight_map)
        if unknown:
            raise ValueError(f"unknown SMI weights: {sorted(unknown)}")
        weight_map.update(weights)

    factors = {
        "reach": _reach_factor(topology, robot_reach_m),
        "occlusion": _occlusion_factor(topology, occlusion_scale),
        "serviceability": _serviceability_factor(topology),
        "uniformity": _uniformity_factor(topology),
        "granularity": _granularity_factor(topology),
    }
    log_sum = 0.0
    weight_total = 0.0
    for name, value in factors.items():
        weight = weight_map[name]
        if weight <= 0:
            continue
        log_sum += weight * np.log(max(value, _FLOOR))
        weight_total += weight
    smi = float(np.exp(log_sum / weight_total)) if weight_total else 1.0
    return SMIReport(smi=smi, factors=factors)


def weight_sensitivity(topology: Topology,
                       perturbation: float = 0.5,
                       **compute_kwargs) -> Dict[str, float]:
    """How much each factor's weight moves the index (ablation aid).

    For every factor, the weight is raised by ``perturbation`` (others
    held at default) and the SMI delta against the default weighting is
    reported.  Large |delta| means the ranking is sensitive to how much
    that factor is believed to matter — the kind of robustness question
    a metric proposal must answer.
    """
    if perturbation <= 0:
        raise ValueError("perturbation must be > 0")
    baseline = compute_smi(topology, **compute_kwargs).smi
    deltas = {}
    for name in DEFAULT_WEIGHTS:
        weights = dict(DEFAULT_WEIGHTS)
        weights[name] = weights[name] + perturbation
        perturbed = compute_smi(topology, weights=weights,
                                **compute_kwargs).smi
        deltas[name] = perturbed - baseline
    return deltas
