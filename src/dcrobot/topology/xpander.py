"""Xpander: near-optimal expander topology via random lifts
(Valadarsky et al., CoNEXT '16) — the other "efficient but hard to
deploy" design the paper's §4 cites.

Construction: start from the complete graph K_{d+1} (the best d-regular
expander) and apply a random ``lift``: every vertex becomes ``lift``
copies, and every edge (u, v) becomes a random perfect matching between
the copies of u and the copies of v.  The result is a d-regular graph on
(d+1)*lift vertices that retains near-optimal expansion with high
probability.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from dcrobot.network.enums import FormFactor
from dcrobot.network.inventory import Fabric
from dcrobot.network.layout import HallLayout
from dcrobot.network.switchgear import SwitchRole
from dcrobot.topology.base import Topology


def xpander_edges(degree: int, lift: int,
                  rng: np.random.Generator) -> Tuple[int, List[Tuple[int, int]]]:
    """Edge list of a random ``lift``-lift of K_{degree+1}.

    Returns (node_count, edges) where nodes are 0..node_count-1 and node
    ``meta * lift + copy`` is copy ``copy`` of meta-vertex ``meta``.
    """
    if degree < 2:
        raise ValueError(f"degree must be >= 2, got {degree}")
    if lift < 1:
        raise ValueError(f"lift must be >= 1, got {lift}")
    meta_count = degree + 1
    node_count = meta_count * lift
    edges = []
    for meta_u in range(meta_count):
        for meta_v in range(meta_u + 1, meta_count):
            matching = rng.permutation(lift)
            for copy_u in range(lift):
                u = meta_u * lift + copy_u
                v = meta_v * lift + int(matching[copy_u])
                edges.append((u, v))
    return node_count, edges


def build_xpander(degree: int = 4, lift: int = 4,
                  form_factor: FormFactor = FormFactor.QSFP_DD,
                  rng: Optional[np.random.Generator] = None,
                  switches_per_rack: int = 1,
                  rack_stride: int = 4) -> Topology:
    """Build an Xpander fabric of (degree+1)*lift switches, d-regular."""
    rng = rng if rng is not None else np.random.default_rng(0)
    node_count, edges = xpander_edges(degree, lift, rng)

    racks_needed = int(np.ceil(node_count / switches_per_rack)) * rack_stride
    racks_per_row = max(4, int(np.ceil(np.sqrt(racks_needed))))
    rows = max(1, int(np.ceil(racks_needed / racks_per_row)))
    layout = HallLayout(rows=rows, racks_per_row=racks_per_row)
    fabric = Fabric(layout=layout, rng=rng)

    nodes = []
    for index in range(node_count):
        rack_index = (index // switches_per_rack) * rack_stride
        rack = layout.rack_at(rack_index // racks_per_row,
                              rack_index % racks_per_row)
        nodes.append(fabric.add_switch(
            SwitchRole.NODE, radix=degree, form_factor=form_factor,
            rack_id=rack.id,
            u_position=10 + (index % switches_per_rack) * 4))

    for a, b in edges:
        fabric.connect(nodes[a].id, nodes[b].id)

    return Topology(
        name=f"xpander-d{degree}L{lift}",
        fabric=fabric,
        params={"degree": degree, "lift": lift},
        switches_by_role={SwitchRole.NODE: [s.id for s in nodes]},
        host_ids=[],
    )
