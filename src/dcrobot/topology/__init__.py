"""Datacenter fabric builders and the self-maintainability metric (S3)."""

from dcrobot.topology.base import Topology, roles_from_fabric
from dcrobot.topology.fattree import build_fattree
from dcrobot.topology.gpu import build_gpu_cluster, healthy_server_fraction
from dcrobot.topology.jellyfish import build_jellyfish
from dcrobot.topology.leafspine import build_leafspine
from dcrobot.topology.smi import (
    DEFAULT_ROBOT_REACH_M,
    SMIReport,
    compute_smi,
    weight_sensitivity,
)
from dcrobot.topology.xpander import build_xpander, xpander_edges

__all__ = [
    "Topology",
    "roles_from_fabric",
    "build_fattree",
    "build_leafspine",
    "build_jellyfish",
    "build_xpander",
    "xpander_edges",
    "build_gpu_cluster",
    "healthy_server_fraction",
    "compute_smi",
    "SMIReport",
    "DEFAULT_ROBOT_REACH_M",
    "weight_sensitivity",
]
