"""Rail-optimized GPU training cluster (§1's motivating AI workload).

``gpus_per_server`` GPUs each own a NIC; NIC *i* of every server connects
to rail switch *i*.  Collectives run per-rail, so a single failed rail
link removes that server from full-bandwidth participation — the paper's
"single network link failing ... potentially causing significant fraction
of the GPU-cluster to go offline" dilemma.  There is deliberately no
per-link redundancy: that is the cost the paper says operators cannot
afford, and what self-maintenance compensates for.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from dcrobot.network.enums import FormFactor
from dcrobot.network.inventory import Fabric
from dcrobot.network.layout import HallLayout
from dcrobot.network.switchgear import SwitchRole
from dcrobot.topology.base import Topology


def build_gpu_cluster(servers: int = 16, gpus_per_server: int = 8,
                      form_factor: FormFactor = FormFactor.OSFP,
                      rng: Optional[np.random.Generator] = None,
                      servers_per_rack: int = 4,
                      spare_rails: int = 0) -> Topology:
    """Build a rail-optimized cluster of ``servers`` x ``gpus_per_server``
    GPUs with one rail switch per GPU index.

    ``spare_rails`` adds that many redundant rails (extra switch + one
    extra NIC/link per server each) — the overprovisioning §1 calls
    "simply impractical in terms of cost and energy"; E12 prices it
    against robotic maintenance.
    """
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    if gpus_per_server < 1:
        raise ValueError(
            f"gpus_per_server must be >= 1, got {gpus_per_server}")
    if spare_rails < 0:
        raise ValueError(f"spare_rails must be >= 0, got {spare_rails}")
    rng = rng if rng is not None else np.random.default_rng(0)
    total_rails = gpus_per_server + spare_rails

    racks_needed = int(np.ceil(servers / servers_per_rack)) + 1
    racks_per_row = max(4, int(np.ceil(np.sqrt(racks_needed))))
    rows = max(1, int(np.ceil(racks_needed / racks_per_row)))
    layout = HallLayout(rows=rows, racks_per_row=racks_per_row, height_u=48)
    fabric = Fabric(layout=layout, rng=rng)

    # Rail switches live together in the first rack(s).
    rails = []
    for rail in range(total_rails):
        rack = layout.rack_at(0, rail % racks_per_row)
        rails.append(fabric.add_switch(
            SwitchRole.SPINE, radix=max(servers, 2),
            form_factor=form_factor, rack_id=rack.id,
            u_position=30 + 2 * (rail // racks_per_row)))

    hosts: List[str] = []
    for server in range(servers):
        rack_index = 1 + server // servers_per_rack
        rack = layout.rack_at(rack_index // racks_per_row,
                              rack_index % racks_per_row)
        host = fabric.add_host(port_count=total_rails,
                               form_factor=form_factor, rack_id=rack.id,
                               u_position=4 + (server % servers_per_rack) * 8)
        hosts.append(host.id)
        for rail in range(total_rails):
            fabric.connect(host.id, rails[rail].id,
                           port_a=host.ports[rail])

    return Topology(
        name=f"gpu-{servers}x{gpus_per_server}",
        fabric=fabric,
        params={"servers": servers, "gpus_per_server": gpus_per_server,
                "spare_rails": spare_rails},
        switches_by_role={SwitchRole.SPINE: [s.id for s in rails]},
        host_ids=hosts,
    )


def healthy_server_fraction(topology: Topology) -> float:
    """Fraction of servers with *all* rail links operational.

    Rail-parallel collectives need every rail; a server missing any rail
    runs degraded and is excluded from full-speed jobs.
    """
    hosts = topology.host_ids
    if not hosts:
        return 1.0
    # Spare rails mean a server tolerates that many down links before
    # it loses full-bandwidth participation.
    expected = int(topology.params["gpus_per_server"])
    healthy = 0
    for host_id in hosts:
        links = topology.fabric.links_of(host_id)
        up = sum(1 for link in links if link.operational)
        if up >= expected:
            healthy += 1
    return healthy / len(hosts)
