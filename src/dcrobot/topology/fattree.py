"""k-ary fat-tree builder (Al-Fares et al. style).

A k-ary fat-tree has k pods; each pod has k/2 edge and k/2 aggregation
switches of radix k; (k/2)^2 core switches connect the pods.  Optionally
each edge switch attaches k/2 hosts.

Physical placement: core switches occupy row 0; each pod occupies its own
rack in a subsequent row (edge and agg switches stacked in the rack),
giving the realistic pattern of short intra-pod DAC/AOC runs and long
pod-to-core fiber runs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from dcrobot.network.enums import FormFactor
from dcrobot.network.inventory import Fabric
from dcrobot.network.layout import HallLayout
from dcrobot.network.switchgear import SwitchRole
from dcrobot.topology.base import Topology


def build_fattree(k: int = 4, with_hosts: bool = False,
                  form_factor: FormFactor = FormFactor.QSFP_DD,
                  rng: Optional[np.random.Generator] = None,
                  racks_per_row: Optional[int] = None,
                  row_spread: int = 8,
                  model_catalog: Optional[list] = None) -> Topology:
    """Build a k-ary fat-tree (k even, k >= 2).

    Returns 5k^2/4 switches and k^3/4 switch-to-switch links
    (+ k^3/4 host links when ``with_hosts``).

    ``row_spread`` sets how many hall rows apart consecutive pods sit
    (core row 0, pod p at row ``1 + p * row_spread``).  Real pods are
    rack groups spread across a hall, which is what makes agg-to-core
    trunks long enough to need separate transceivers and MPO fiber
    (§3.1) while intra-pod links stay on DAC.

    ``model_catalog`` overrides the transceiver vendor catalog — pass a
    single-model catalog to study the §4 hardware-standardization
    agenda.
    """
    if k < 2 or k % 2 != 0:
        raise ValueError(f"fat-tree k must be even and >= 2, got {k}")
    if row_spread < 1:
        raise ValueError(f"row_spread must be >= 1, got {row_spread}")
    rng = rng if rng is not None else np.random.default_rng(0)
    half = k // 2
    core_count = half * half

    core_racks = max(1, core_count // 8)
    rows = 1 + k * row_spread
    layout = HallLayout(rows=rows,
                        racks_per_row=max(racks_per_row or 4, core_racks),
                        height_u=48)
    fabric = Fabric(layout=layout, rng=rng,
                    model_catalog=model_catalog)

    # Core layer in row 0, 8 chassis per rack.
    cores = []
    for index in range(core_count):
        rack = layout.rack_at(0, index // 8)
        switch = fabric.add_switch(
            SwitchRole.CORE, radix=k, form_factor=form_factor,
            rack_id=rack.id, u_position=4 + (index % 8) * 4,
            ports_per_line_card=max(2, k // 2))
        cores.append(switch)

    # Pods: one rack per pod, aggs above edges.
    edges, aggs, hosts = [], [], []
    for pod in range(k):
        row = 1 + pod * row_spread
        rack = layout.rack_at(row, 0)
        pod_aggs, pod_edges = [], []
        for index in range(half):
            agg = fabric.add_switch(
                SwitchRole.AGG, radix=k, form_factor=form_factor,
                rack_id=rack.id, u_position=30 + index * 2)
            pod_aggs.append(agg)
        for index in range(half):
            edge = fabric.add_switch(
                SwitchRole.TOR, radix=k, form_factor=form_factor,
                rack_id=rack.id, u_position=20 + index * 2)
            pod_edges.append(edge)
        # Full bipartite edge<->agg inside the pod.
        for edge in pod_edges:
            for agg in pod_aggs:
                fabric.connect(edge.id, agg.id)
        # Agg i connects to core switches [i*half, (i+1)*half).
        for agg_index, agg in enumerate(pod_aggs):
            for offset in range(half):
                core = cores[agg_index * half + offset]
                fabric.connect(agg.id, core.id)
        if with_hosts:
            for edge in pod_edges:
                for slot in range(half):
                    host = fabric.add_host(
                        rack_id=rack.id, u_position=2 + slot,
                        form_factor=form_factor)
                    fabric.connect(host.id, edge.id)
                    hosts.append(host)
        edges.extend(pod_edges)
        aggs.extend(pod_aggs)

    return Topology(
        name=f"fattree-k{k}",
        fabric=fabric,
        params={"k": k, "with_hosts": with_hosts, "row_spread": row_spread},
        switches_by_role={
            SwitchRole.CORE: [s.id for s in cores],
            SwitchRole.AGG: [s.id for s in aggs],
            SwitchRole.TOR: [s.id for s in edges],
        },
        host_ids=[h.id for h in hosts],
    )
