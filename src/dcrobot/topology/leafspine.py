"""Leaf–spine (2-tier Clos) builder with configurable redundancy.

The ``uplinks_per_pair`` parameter is the right-provisioning knob of
experiment E4: each leaf connects to each spine with that many parallel
links, so losing one still leaves capacity — at a hardware cost the paper
argues self-maintenance can reduce (§2).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from dcrobot.network.enums import FormFactor
from dcrobot.network.inventory import Fabric
from dcrobot.network.layout import HallLayout
from dcrobot.network.switchgear import SwitchRole
from dcrobot.topology.base import Topology


def build_leafspine(leaves: int = 8, spines: int = 4,
                    uplinks_per_pair: int = 1,
                    hosts_per_leaf: int = 0,
                    form_factor: FormFactor = FormFactor.QSFP_DD,
                    rng: Optional[np.random.Generator] = None,
                    row_spread: int = 4,
                    spare_leaf_ports: int = 0) -> Topology:
    """Build a leaf–spine fabric.

    Every leaf connects to every spine ``uplinks_per_pair`` times.
    Radix is sized automatically from the connectivity requirements.
    ``row_spread`` places leaf *i* at hall row ``1 + i * row_spread``
    (spines in row 0), giving the realistic mix of shorter and longer
    uplink runs across the hall.  ``spare_leaf_ports`` leaves growth
    headroom on every leaf (needed for robotic fabric expansion).
    """
    if leaves < 1 or spines < 1:
        raise ValueError("leaves and spines must be >= 1")
    if uplinks_per_pair < 1:
        raise ValueError(
            f"uplinks_per_pair must be >= 1, got {uplinks_per_pair}")
    if row_spread < 1:
        raise ValueError(f"row_spread must be >= 1, got {row_spread}")
    rng = rng if rng is not None else np.random.default_rng(0)

    racks_per_row = max(4, spines)
    layout = HallLayout(rows=1 + leaves * row_spread,
                        racks_per_row=racks_per_row)
    fabric = Fabric(layout=layout, rng=rng)

    spine_radix = leaves * uplinks_per_pair
    if spare_leaf_ports < 0:
        raise ValueError("spare_leaf_ports must be >= 0")
    leaf_radix = (spines * uplinks_per_pair + hosts_per_leaf
                  + spare_leaf_ports)

    spine_switches = []
    for index in range(spines):
        rack = layout.rack_at(0, index % racks_per_row)
        spine_switches.append(fabric.add_switch(
            SwitchRole.SPINE, radix=spine_radix, form_factor=form_factor,
            rack_id=rack.id, u_position=36 + 2 * (index // racks_per_row),
            ports_per_line_card=max(4, spine_radix // 4)))

    leaf_switches, hosts = [], []
    for index in range(leaves):
        row = 1 + index * row_spread
        rack = layout.rack_at(row, 0)
        leaf = fabric.add_switch(
            SwitchRole.LEAF, radix=leaf_radix, form_factor=form_factor,
            rack_id=rack.id, u_position=40)
        leaf_switches.append(leaf)
        for spine in spine_switches:
            for _ in range(uplinks_per_pair):
                fabric.connect(leaf.id, spine.id)
        for slot in range(hosts_per_leaf):
            host = fabric.add_host(rack_id=rack.id, u_position=2 + slot,
                                   form_factor=form_factor)
            fabric.connect(host.id, leaf.id)
            hosts.append(host)

    return Topology(
        name=f"leafspine-{leaves}x{spines}r{uplinks_per_pair}",
        fabric=fabric,
        params={"leaves": leaves, "spines": spines,
                "uplinks_per_pair": uplinks_per_pair,
                "hosts_per_leaf": hosts_per_leaf,
                "row_spread": row_spread},
        switches_by_role={
            SwitchRole.SPINE: [s.id for s in spine_switches],
            SwitchRole.LEAF: [s.id for s in leaf_switches],
        },
        host_ids=[h.id for h in hosts],
    )
