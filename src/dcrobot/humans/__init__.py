"""Human maintenance workforce (S8) — today's baseline executor."""

from dcrobot.humans.workforce import TechnicianParams, TechnicianPool

__all__ = ["TechnicianPool", "TechnicianParams"]
