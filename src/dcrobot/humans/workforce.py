"""The human maintenance baseline: tickets, dispatch, technicians.

Today's process (§1): a service files a ticket, a skilled technician is
assigned, and the physical repair lands "on a timescale of days, with a
fraction of repairs being high priority and done in hours".  The pool
models exactly that: an administrative dispatch delay drawn from a
priority-dependent lognormal, contention for a finite technician pool,
aisle travel, and manual work with human contact physics (cable-touch
cascades) and human skill (inspection misses, occasional botches).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from dcrobot.core.actions import Priority, RepairAction, RepairOutcome, WorkOrder
from dcrobot.core.repairs import TECHNICIAN_SKILL, RepairPhysics, SkillProfile
from dcrobot.failures.cascade import HUMAN_HANDS, ContactProfile
from dcrobot.failures.health import HealthModel
from dcrobot.network.inventory import Fabric
from dcrobot.sim.engine import Simulation
from dcrobot.sim.events import Event
from dcrobot.sim.resources import PriorityResource

HOUR = 3600.0


@dataclasses.dataclass
class TechnicianParams:
    """Timing and quality parameters of the human workforce."""

    #: Median administrative delay from ticket to work start, by priority.
    dispatch_median_seconds: Dict[Priority, float] = dataclasses.field(
        default_factory=lambda: {
            Priority.HIGH: 4.0 * HOUR,          # "done in hours"
            Priority.NORMAL: 36.0 * HOUR,       # "timescale of days"
        })
    dispatch_sigma: float = 0.5
    walking_speed_m_s: float = 1.2
    #: Hands-on work time per action (seconds, scaled by noise).
    work_seconds: Dict[RepairAction, float] = dataclasses.field(
        default_factory=lambda: {
            RepairAction.RESEAT: 10.0 * 60,
            RepairAction.CLEAN: 25.0 * 60,
            RepairAction.REPLACE_TRANSCEIVER: 20.0 * 60,
            RepairAction.REPLACE_CABLE: 4.0 * HOUR,
            RepairAction.REPLACE_SWITCHGEAR: 3.0 * HOUR,
        })
    work_noise_low: float = 0.8
    work_noise_high: float = 1.5
    contact: ContactProfile = HUMAN_HANDS
    skill: SkillProfile = TECHNICIAN_SKILL
    #: Hands-on time to recover a dead robot unit (swap its failed
    #: module, clear the aisle, re-home it) when the fleet cannot
    #: repair itself.
    robot_rescue_seconds: float = 2.0 * HOUR
    #: When True, NORMAL-priority work only starts during the day
    #: shift; HIGH-priority pages someone around the clock.  (Robots
    #: have no such constraint — one more §2 asymmetry.)
    day_shift_only_for_normal: bool = False
    day_start_hour: float = 8.0
    day_end_hour: float = 20.0

    def __post_init__(self) -> None:
        if self.walking_speed_m_s <= 0:
            raise ValueError("walking_speed_m_s must be > 0")
        if not 0 < self.work_noise_low <= self.work_noise_high:
            raise ValueError("work noise bounds invalid")
        if not 0 <= self.day_start_hour < self.day_end_hour <= 24:
            raise ValueError("invalid day shift window")


class TechnicianPool:
    """A maintenance executor backed by ``count`` human technicians."""

    #: Humans can perform every action in the ladder.
    CAPABILITIES = frozenset(RepairAction)

    def __init__(self, sim: Simulation, fabric: Fabric,
                 health: HealthModel, physics: RepairPhysics,
                 count: int = 2,
                 params: Optional[TechnicianParams] = None,
                 rng: Optional[np.random.Generator] = None,
                 executor_id: str = "technicians") -> None:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self.sim = sim
        self.fabric = fabric
        self.health = health
        self.physics = physics
        self.count = count
        self.params = params or TechnicianParams()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.executor_id = executor_id
        self._pool = PriorityResource(sim, capacity=count)
        #: Completed outcomes, oldest first.
        self.outcomes: List[RepairOutcome] = []
        #: Leadership fencing guard (set by the world builder when
        #: failover is enabled); orders with stale tokens are refused.
        self.fence = None
        #: Orders refused for carrying a stale fencing token.
        self.rejected_orders: List[WorkOrder] = []
        #: order id -> completion event: the ticket system is ground
        #: truth that survives a controller crash, so a recovered
        #: controller can re-attach to in-flight tickets instead of
        #: filing the repair a second time.
        self.pending_acks: Dict[int, Event] = {}
        #: Total hands-on person-seconds (travel + work) for costing.
        self.labor_seconds = 0.0
        #: Dead robot units recovered by a technician (fleet escalation).
        self.robot_rescues = 0
        #: link id -> number of technicians physically at it right now
        #: (the safety monitor's "who is at the rack" ground truth).
        self.busy_links: Dict[str, int] = {}

    def __repr__(self) -> str:
        return (f"<TechnicianPool n={self.count} "
                f"done={len(self.outcomes)}>")

    def can_execute(self, action: RepairAction) -> bool:
        return action in self.CAPABILITIES

    # -- submission -------------------------------------------------------------

    def submit(self, order: WorkOrder) -> Event:
        """Queue a work order; the returned event fires with the
        :class:`RepairOutcome` when the repair attempt completes."""
        done = self.sim.event()
        if self.fence is not None and not self.fence.admit(
                order.fencing_token, time=self.sim.now,
                order_id=order.order_id, link_id=order.link_id):
            # Split-brain protection: this ticket came from a deposed
            # primary.  Refuse at intake, before dispatch.
            self.rejected_orders.append(order)
            done.succeed(RepairOutcome(
                order=order, executor_id=self.executor_id,
                started_at=self.sim.now, finished_at=self.sim.now,
                completed=False, rejected=True,
                notes="stale fencing token: dispatching primary deposed"))
            return done
        self.pending_acks[order.order_id] = done
        self.sim.process(self._execute(order, done))
        return done

    def announce_touches(self, order: WorkOrder) -> List[str]:
        """Predicted contacted neighbour links for this order (§2)."""
        link = self.fabric.links[order.link_id]
        return self.physics.cascade.predict_touched(
            link, self.params.contact)

    # -- robot rescue (the fleet's human escalation path) -----------------------

    def rescue_robot(self, unit_id: str, rack_id: str,
                     priority: Priority = Priority.HIGH) -> Event:
        """Send a technician to recover a dead robot unit.

        The returned event fires with the unit id once the technician
        has swapped the failed module and cleared the aisle; the fleet
        revives the unit on that signal.  Robots repairing robots is the
        preferred path — this is the below-quorum/out-of-spares
        fallback the paper's §4 care loop still needs humans for.
        """
        done = self.sim.event()
        self.sim.process(self._rescue(unit_id, rack_id, priority, done))
        return done

    def _rescue(self, unit_id: str, rack_id: str, priority: Priority,
                done: Event):
        sim = self.sim
        yield sim.timeout(self._dispatch_delay(priority))
        with self._pool.request(priority=priority.value) as grab:
            yield grab
            position = self.fabric.layout.racks[rack_id].position
            depot = self.fabric.layout.rack_at(0, 0).position
            travel = (self.fabric.layout.travel_distance(depot, position)
                      / self.params.walking_speed_m_s + 60.0)
            yield sim.timeout(travel)
            work = (self.params.robot_rescue_seconds
                    * self.rng.uniform(self.params.work_noise_low,
                                       self.params.work_noise_high))
            yield sim.timeout(work)
            self.labor_seconds += travel + work
            self.robot_rescues += 1
            done.succeed(unit_id)

    # -- internals ------------------------------------------------------------------

    def _dispatch_delay(self, priority: Priority) -> float:
        median = self.params.dispatch_median_seconds[priority]
        return float(self.rng.lognormal(np.log(median),
                                        self.params.dispatch_sigma))

    def _travel_seconds(self, link) -> float:
        node_id = link.port_a.parent_id
        position = self.fabric.position_of(node_id)
        depot = self.fabric.layout.rack_at(0, 0).position
        distance = self.fabric.layout.travel_distance(depot, position)
        return distance / self.params.walking_speed_m_s + 60.0

    def _work_seconds(self, action: RepairAction) -> float:
        base = self.params.work_seconds[action]
        noise = self.rng.uniform(self.params.work_noise_low,
                                 self.params.work_noise_high)
        return base * noise

    def _seconds_until_day_shift(self, now: float) -> float:
        """Delay until the day shift opens (0 while it is open)."""
        params = self.params
        day_seconds = now % 86400.0
        start = params.day_start_hour * 3600.0
        end = params.day_end_hour * 3600.0
        if start <= day_seconds < end:
            return 0.0
        if day_seconds < start:
            return start - day_seconds
        return 86400.0 - day_seconds + start

    def _execute(self, order: WorkOrder, done: Event):
        sim = self.sim
        link = self.fabric.links[order.link_id]
        yield sim.timeout(self._dispatch_delay(order.priority))
        if (self.params.day_shift_only_for_normal
                and order.priority is Priority.NORMAL):
            yield sim.timeout(self._seconds_until_day_shift(sim.now))
        with self._pool.request(priority=order.priority.value) as grab:
            yield grab
            started = sim.now
            travel = self._travel_seconds(link)
            yield sim.timeout(travel)
            self.busy_links[link.id] = self.busy_links.get(link.id, 0) + 1
            try:
                self.health.begin_maintenance(link, sim.now)
                touch = self.physics.reach_in(link, self.params.contact,
                                              sim.now)
                work = self._work_seconds(order.action)
                yield sim.timeout(work)
                completed, notes = self.physics.perform(
                    order.action, link, sim.now, self.params.skill)
                self.health.release_from_maintenance(link, sim.now)
            finally:
                remaining = self.busy_links.get(link.id, 0) - 1
                if remaining <= 0:
                    self.busy_links.pop(link.id, None)
                else:
                    self.busy_links[link.id] = remaining
            self.labor_seconds += travel + work
            outcome = RepairOutcome(
                order=order,
                executor_id=self.executor_id,
                started_at=started,
                finished_at=sim.now,
                completed=completed,
                notes=notes,
                secondary_disturbed=len(touch.disturbed_links),
                secondary_damaged=len(touch.damaged_links),
            )
            self.outcomes.append(outcome)
            done.succeed(outcome)
