"""Logistic regression from scratch (numpy only).

Full-batch gradient descent with L2 regularization and internal feature
standardization.  Deliberately simple: the point of E10 is the *policy*
value of prediction, not squeezing AUC.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Clipping keeps exp() finite for extreme logits.
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


class LogisticRegression:
    """Binary classifier: P(y=1 | x) = sigmoid(w.x + b)."""

    def __init__(self, learning_rate: float = 0.1,
                 l2: float = 1e-3, epochs: int = 500) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be > 0")
        if l2 < 0:
            raise ValueError("l2 must be >= 0")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self.learning_rate = learning_rate
        self.l2 = l2
        self.epochs = epochs
        self.weights: Optional[np.ndarray] = None
        self.bias = 0.0
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    @property
    def fitted(self) -> bool:
        return self.weights is not None

    def _standardize(self, features: np.ndarray) -> np.ndarray:
        return (features - self._mean) / self._std

    def fit(self, features: np.ndarray,
            labels: np.ndarray) -> "LogisticRegression":
        """Train on rows ``features`` with binary ``labels``."""
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=float)
        if features.ndim != 2:
            raise ValueError("features must be 2-D")
        if features.shape[0] != labels.shape[0]:
            raise ValueError("features and labels disagree on rows")
        if not np.isin(labels, (0.0, 1.0)).all():
            raise ValueError("labels must be 0/1")
        count, dims = features.shape
        if count == 0:
            raise ValueError("empty training set")

        self._mean = features.mean(axis=0)
        self._std = features.std(axis=0)
        self._std[self._std < 1e-9] = 1.0
        standardized = self._standardize(features)

        weights = np.zeros(dims)
        bias = 0.0
        for _epoch in range(self.epochs):
            probabilities = _sigmoid(standardized @ weights + bias)
            error = probabilities - labels
            gradient_w = standardized.T @ error / count \
                + self.l2 * weights
            gradient_b = float(error.mean())
            weights -= self.learning_rate * gradient_w
            bias -= self.learning_rate * gradient_b
        self.weights = weights
        self.bias = bias
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """P(y=1) for each feature row."""
        if not self.fitted:
            raise RuntimeError("model not fitted")
        features = np.asarray(features, dtype=float)
        single = features.ndim == 1
        if single:
            features = features[None, :]
        probabilities = _sigmoid(
            self._standardize(features) @ self.weights + self.bias)
        return probabilities[0] if single else probabilities

    def predict(self, features: np.ndarray,
                threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions at the given probability threshold."""
        return (self.predict_proba(features) >= threshold).astype(int)
