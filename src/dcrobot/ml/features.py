"""Feature extraction from *observable* telemetry.

The predictor must work from what a production system can see: flap
counters, loss rates, DDM optical power readings, component age and
repair history — never the hidden physical state.  The DDM receive-power
margin is the key signal: end-face dirt and contact corrosion both eat
optical budget, so the margin is a noisy proxy for the degradations that
precede failure (§4 "potentially leveraging data collected by robotic
systems").
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from dcrobot.failures.environment import Environment
from dcrobot.network.link import Link

FEATURE_NAMES = (
    "transitions_6h",
    "transitions_24h",
    "log10_loss",
    "rx_margin_db",
    "age_days",
    "reseat_count",
    "core_count",
    "cleanable",
    "temperature_dev_c",
)


@dataclasses.dataclass
class FeatureConfig:
    """Sensor-noise and margin-model constants."""

    #: Healthy optical margin (dB) of a fresh link.
    base_margin_db: float = 3.5
    #: dB of margin lost per unit of worst-core contamination.
    dirt_margin_penalty_db: float = 6.0
    #: dB of margin lost per unit of contact oxidation.
    oxidation_margin_penalty_db: float = 2.5
    #: Gaussian read noise of the DDM sensor (dB).
    margin_noise_db: float = 0.25


class FeatureExtractor:
    """Computes observable feature vectors for links."""

    def __init__(self, environment: Environment,
                 config: Optional[FeatureConfig] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.environment = environment
        self.config = config or FeatureConfig()
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def rx_margin_db(self, link: Link) -> float:
        """Noisy DDM optical-margin reading for the link's worse end.

        Physically grounded in the hidden state but observed through a
        noisy sensor — the model never sees the state itself.
        """
        config = self.config
        dirt = link.cable.worst_contamination
        for unit in link.transceivers():
            if unit.receptacle is not None:
                dirt = max(dirt, unit.receptacle.worst_contamination)
        oxidation = max(link.transceiver_a.oxidation,
                        link.transceiver_b.oxidation)
        margin = (config.base_margin_db
                  - config.dirt_margin_penalty_db * dirt
                  - config.oxidation_margin_penalty_db * oxidation)
        return float(margin + self.rng.normal(0.0, config.margin_noise_db))

    def extract(self, link: Link, now: float) -> np.ndarray:
        """The feature vector (see :data:`FEATURE_NAMES`) at time now."""
        age_days = max(0.0, (now - link.cable.install_time) / 86400.0)
        reseats = (link.transceiver_a.reseat_count
                   + link.transceiver_b.reseat_count)
        temperature_dev = abs(
            self.environment.temperature_c(now)
            - self.environment.reference_temperature_c)
        return np.array([
            link.transitions_in_window(now - 6 * 3600.0, now),
            link.transitions_in_window(now - 24 * 3600.0, now),
            np.log10(max(link.loss_rate, 1e-12)),
            self.rx_margin_db(link),
            age_days,
            reseats,
            link.cable.core_count,
            1.0 if link.cable.cleanable else 0.0,
            temperature_dev,
        ], dtype=float)

    def extract_matrix(self, links: List[Link], now: float) -> np.ndarray:
        """Stacked feature rows for a list of links."""
        if not links:
            return np.empty((0, len(FEATURE_NAMES)))
        return np.vstack([self.extract(link, now) for link in links])
