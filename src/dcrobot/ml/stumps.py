"""Gradient-boosted decision stumps (numpy only).

A stronger non-linear baseline than logistic regression for E10's model
comparison: LogitBoost-style stages, each a single-feature threshold
split fit to the current gradient.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np


@dataclasses.dataclass
class Stump:
    """One threshold split: value = left if x[f] < t else right."""

    feature: int
    threshold: float
    left_value: float
    right_value: float

    def predict(self, features: np.ndarray) -> np.ndarray:
        column = features[:, self.feature]
        return np.where(column < self.threshold,
                        self.left_value, self.right_value)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


class GradientBoostedStumps:
    """Binary classifier: additive logit model of ``rounds`` stumps."""

    def __init__(self, rounds: int = 40, learning_rate: float = 0.3,
                 candidate_thresholds: int = 16) -> None:
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be > 0")
        if candidate_thresholds < 2:
            raise ValueError("candidate_thresholds must be >= 2")
        self.rounds = rounds
        self.learning_rate = learning_rate
        self.candidate_thresholds = candidate_thresholds
        self.stumps: List[Stump] = []
        self.base_logit = 0.0

    @property
    def fitted(self) -> bool:
        return bool(self.stumps) or self.base_logit != 0.0

    def _best_stump(self, features: np.ndarray,
                    residuals: np.ndarray) -> Stump:
        """Least-squares stump on the residuals."""
        best = None
        best_loss = np.inf
        count, dims = features.shape
        for feature in range(dims):
            column = features[:, feature]
            quantiles = np.linspace(0.05, 0.95,
                                    self.candidate_thresholds)
            for threshold in np.quantile(column, quantiles):
                mask = column < threshold
                if mask.all() or not mask.any():
                    continue
                left = residuals[mask].mean()
                right = residuals[~mask].mean()
                prediction = np.where(mask, left, right)
                loss = float(((residuals - prediction) ** 2).sum())
                if loss < best_loss:
                    best_loss = loss
                    best = Stump(feature, float(threshold),
                                 float(left), float(right))
        if best is None:  # degenerate: all features constant
            mean = float(residuals.mean())
            best = Stump(0, np.inf, mean, mean)
        return best

    def fit(self, features: np.ndarray,
            labels: np.ndarray) -> "GradientBoostedStumps":
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=float)
        if features.ndim != 2 or features.shape[0] != labels.shape[0]:
            raise ValueError("bad shapes")
        if features.shape[0] == 0:
            raise ValueError("empty training set")
        positive = float(labels.mean())
        positive = min(max(positive, 1e-4), 1 - 1e-4)
        self.base_logit = float(np.log(positive / (1 - positive)))
        logits = np.full(labels.shape[0], self.base_logit)
        self.stumps = []
        for _round in range(self.rounds):
            residuals = labels - _sigmoid(logits)
            stump = self._best_stump(features, residuals)
            self.stumps.append(stump)
            logits = logits + self.learning_rate \
                * stump.predict(features)
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=float)
        single = features.ndim == 1
        if single:
            features = features[None, :]
        logits = np.full(features.shape[0], self.base_logit)
        for stump in self.stumps:
            logits = logits + self.learning_rate \
                * stump.predict(features)
        return logits[0] if single else logits

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if not self.fitted:
            raise RuntimeError("model not fitted")
        return _sigmoid(self.decision_function(features))

    def predict(self, features: np.ndarray,
                threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(features) >= threshold).astype(int)
