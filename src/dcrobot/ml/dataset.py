"""Labelled datasets for failure prediction.

Snapshots are taken on a fixed cadence during a simulation; after the
run each row is labelled with whether its link suffered a DOWN episode
within the prediction horizon.  Rows too close to the end of the run
(whose horizon extends past it) are dropped — they cannot be labelled.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

import numpy as np

from dcrobot.ml.features import FEATURE_NAMES, FeatureExtractor
from dcrobot.network.enums import LinkState
from dcrobot.network.inventory import Fabric
from dcrobot.sim.engine import Simulation


@dataclasses.dataclass
class LabeledDataset:
    """Feature matrix + labels + provenance."""

    features: np.ndarray
    labels: np.ndarray
    times: np.ndarray
    link_ids: List[str]

    def __len__(self) -> int:
        return self.features.shape[0]

    @property
    def positive_fraction(self) -> float:
        if len(self) == 0:
            return 0.0
        return float(self.labels.mean())

    def __repr__(self) -> str:
        return (f"<LabeledDataset n={len(self)} "
                f"positives={self.positive_fraction:.1%}>")


class DatasetCollector:
    """Takes periodic feature snapshots during a simulation."""

    def __init__(self, fabric: Fabric, extractor: FeatureExtractor,
                 snapshot_interval: float = 6 * 3600.0,
                 horizon_seconds: float = 48 * 3600.0) -> None:
        if snapshot_interval <= 0:
            raise ValueError("snapshot_interval must be > 0")
        if horizon_seconds <= 0:
            raise ValueError("horizon_seconds must be > 0")
        self.fabric = fabric
        self.extractor = extractor
        self.snapshot_interval = snapshot_interval
        self.horizon_seconds = horizon_seconds
        self._rows: List[Tuple[float, str, np.ndarray]] = []

    def snapshot(self, now: float) -> None:
        """Record one feature row per (currently carrying) link.

        Links already hard-down are excluded: predicting an ongoing
        outage is trivial and pollutes the task.
        """
        for link in self.fabric.links.values():
            if link.state is not LinkState.UP:
                continue
            self._rows.append(
                (now, link.id, self.extractor.extract(link, now)))

    def run(self, sim: Simulation):
        """Generator process: snapshot on the configured cadence."""
        while True:
            yield sim.timeout(self.snapshot_interval)
            self.snapshot(sim.now)

    # -- labelling -----------------------------------------------------------

    def _went_down_within(self, link_id: str, start: float,
                          end: float) -> bool:
        link = self.fabric.links[link_id]
        for when, state in link.history:
            if start < when <= end and state is LinkState.DOWN:
                return True
        return False

    def build(self, sim_end: float) -> LabeledDataset:
        """Label all snapshots whose horizon fits inside the run."""
        features, labels, times, link_ids = [], [], [], []
        for when, link_id, row in self._rows:
            if when + self.horizon_seconds > sim_end:
                continue
            features.append(row)
            labels.append(1 if self._went_down_within(
                link_id, when, when + self.horizon_seconds) else 0)
            times.append(when)
            link_ids.append(link_id)
        if features:
            matrix = np.vstack(features)
        else:
            matrix = np.empty((0, len(FEATURE_NAMES)))
        return LabeledDataset(
            features=matrix,
            labels=np.asarray(labels, dtype=int),
            times=np.asarray(times, dtype=float),
            link_ids=link_ids)
