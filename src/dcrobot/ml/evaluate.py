"""Classifier evaluation: precision/recall/F1/AUC, splits."""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np


@dataclasses.dataclass(frozen=True)
class ClassificationReport:
    """Threshold metrics plus ranking quality."""

    precision: float
    recall: float
    f1: float
    accuracy: float
    auc: float
    positives: int
    negatives: int

    def __repr__(self) -> str:
        return (f"<ClassificationReport P={self.precision:.2f} "
                f"R={self.recall:.2f} F1={self.f1:.2f} "
                f"AUC={self.auc:.2f}>")


def train_test_split(features: np.ndarray, labels: np.ndarray,
                     test_fraction: float = 0.3,
                     rng: Optional[np.random.Generator] = None
                     ) -> Tuple[np.ndarray, np.ndarray,
                                np.ndarray, np.ndarray]:
    """Shuffled split into (train_x, train_y, test_x, test_y)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = rng if rng is not None else np.random.default_rng(0)
    count = features.shape[0]
    if count < 2:
        raise ValueError("need at least two samples")
    order = rng.permutation(count)
    cut = max(1, int(round(count * (1.0 - test_fraction))))
    cut = min(cut, count - 1)
    train, test = order[:cut], order[cut:]
    return (features[train], labels[train],
            features[test], labels[test])


def roc_auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank-sum formulation."""
    labels = np.asarray(labels, dtype=float)
    scores = np.asarray(scores, dtype=float)
    positives = scores[labels == 1]
    negatives = scores[labels == 0]
    if len(positives) == 0 or len(negatives) == 0:
        return 0.5
    # Mann-Whitney U with tie correction via average ranks.
    combined = np.concatenate([positives, negatives])
    order = combined.argsort()
    ranks = np.empty_like(order, dtype=float)
    ranks[order] = np.arange(1, len(combined) + 1)
    # Average ranks for ties.
    sorted_scores = combined[order]
    start = 0
    for index in range(1, len(combined) + 1):
        if index == len(combined) \
                or sorted_scores[index] != sorted_scores[start]:
            mean_rank = (start + 1 + index) / 2.0
            ranks[order[start:index]] = mean_rank
            start = index
    positive_rank_sum = ranks[:len(positives)].sum()
    u_statistic = positive_rank_sum \
        - len(positives) * (len(positives) + 1) / 2.0
    return float(u_statistic / (len(positives) * len(negatives)))


def evaluate(labels: np.ndarray, scores: np.ndarray,
             threshold: float = 0.5) -> ClassificationReport:
    """Full report at a decision threshold."""
    labels = np.asarray(labels, dtype=int)
    scores = np.asarray(scores, dtype=float)
    if labels.shape != scores.shape:
        raise ValueError("labels and scores disagree on shape")
    predictions = (scores >= threshold).astype(int)
    true_positive = int(((predictions == 1) & (labels == 1)).sum())
    false_positive = int(((predictions == 1) & (labels == 0)).sum())
    false_negative = int(((predictions == 0) & (labels == 1)).sum())
    true_negative = int(((predictions == 0) & (labels == 0)).sum())
    precision = (true_positive / (true_positive + false_positive)
                 if true_positive + false_positive else 0.0)
    recall = (true_positive / (true_positive + false_negative)
              if true_positive + false_negative else 0.0)
    f1 = (2 * precision * recall / (precision + recall)
          if precision + recall else 0.0)
    accuracy = (true_positive + true_negative) / max(1, len(labels))
    return ClassificationReport(
        precision=precision, recall=recall, f1=f1, accuracy=accuracy,
        auc=roc_auc(labels, scores),
        positives=int((labels == 1).sum()),
        negatives=int((labels == 0).sum()))
