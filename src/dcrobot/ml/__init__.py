"""Predictive maintenance ML (S10): features, models, evaluation."""

from dcrobot.ml.dataset import DatasetCollector, LabeledDataset
from dcrobot.ml.evaluate import (
    ClassificationReport,
    evaluate,
    roc_auc,
    train_test_split,
)
from dcrobot.ml.features import (
    FEATURE_NAMES,
    FeatureConfig,
    FeatureExtractor,
)
from dcrobot.ml.logreg import LogisticRegression
from dcrobot.ml.stumps import GradientBoostedStumps, Stump

__all__ = [
    "FeatureExtractor",
    "FeatureConfig",
    "FEATURE_NAMES",
    "DatasetCollector",
    "LabeledDataset",
    "LogisticRegression",
    "GradientBoostedStumps",
    "Stump",
    "evaluate",
    "roc_auc",
    "train_test_split",
    "ClassificationReport",
]
