"""Telemetry event types: what the monitoring plane reports upward."""

from __future__ import annotations

import dataclasses
import enum


class Symptom(enum.Enum):
    """Observable link misbehaviour classes.

    These are *symptoms*, not root causes — the control plane must
    discover the cause by attempting repairs (the §3.2 escalation
    ladder).
    """

    LINK_DOWN = "link-down"          #: hard down beyond the grace period
    LINK_FLAPPING = "link-flapping"  #: repeated transitions in a window
    HIGH_LOSS = "high-loss"          #: carrying traffic with elevated loss


@dataclasses.dataclass(frozen=True)
class TelemetryEvent:
    """One detector firing for one link."""

    time: float
    link_id: str
    symptom: Symptom
    detail: str = ""

    def __repr__(self) -> str:
        return (f"<TelemetryEvent t={self.time:.0f} {self.link_id} "
                f"{self.symptom.value}>")
