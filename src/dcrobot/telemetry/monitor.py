"""The telemetry monitor: periodic fleet scan feeding subscribers.

Subscribers are callables (typically the maintenance controller's
``on_event``) invoked with each new :class:`TelemetryEvent`.  Per-link
cooldown suppresses re-reporting the same symptom while it is being
handled; the controller re-arms the link when a repair attempt
completes, so persistent problems re-fire and escalate.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from dcrobot.network.inventory import Fabric
from dcrobot.sim.engine import Simulation
from dcrobot.telemetry.detectors import DetectorParams, LinkDetector
from dcrobot.telemetry.events import TelemetryEvent

Subscriber = Callable[[TelemetryEvent], None]


class TelemetryMonitor:
    """Scans every link each poll interval and dispatches new symptoms."""

    def __init__(self, fabric: Fabric,
                 params: Optional[DetectorParams] = None,
                 poll_seconds: float = 60.0) -> None:
        if poll_seconds <= 0:
            raise ValueError(f"poll_seconds must be > 0, got {poll_seconds}")
        self.fabric = fabric
        self.detector = LinkDetector(params)
        self.poll_seconds = poll_seconds
        self.subscribers: List[Subscriber] = []
        self.events: List[TelemetryEvent] = []
        self._muted: Dict[str, bool] = {}

    def subscribe(self, subscriber: Subscriber) -> None:
        """Register a callback for every newly detected symptom."""
        self.subscribers.append(subscriber)

    # -- muting (handled-symptom suppression) --------------------------------

    def mute(self, link_id: str) -> None:
        """Stop reporting a link (a repair is in flight)."""
        self._muted[link_id] = True

    def unmute(self, link_id: str) -> None:
        """Re-arm detection for a link (repair attempt finished)."""
        self._muted.pop(link_id, None)

    def is_muted(self, link_id: str) -> bool:
        return self._muted.get(link_id, False)

    # -- scanning -------------------------------------------------------------

    def scan(self, now: float) -> List[TelemetryEvent]:
        """One full-fleet pass; returns (and dispatches) new events."""
        new_events = []
        for link in self.fabric.links.values():
            if self.is_muted(link.id):
                continue
            event = self.detector.check(link, now)
            if event is None:
                continue
            self.mute(link.id)  # one report per incident until re-armed
            self.events.append(event)
            new_events.append(event)
            for subscriber in self.subscribers:
                subscriber(event)
        return new_events

    def run(self, sim: Simulation):
        """Generator process: scan forever at the poll interval."""
        while True:
            yield sim.timeout(self.poll_seconds)
            self.scan(sim.now)
