"""The telemetry monitor: periodic fleet scan feeding subscribers.

Subscribers are callables (typically the maintenance controller's
``on_event``) invoked with each new :class:`TelemetryEvent`.  Per-link
cooldown suppresses re-reporting the same symptom while it is being
handled; the controller re-arms the link when a repair attempt
completes, so persistent problems re-fire and escalate.

Two hardening hooks sit between detection and delivery:

* **Interceptors** — each maps one detected event to zero or more
  delivered events.  The chaos layer uses this to model telemetry
  dropout, duplication, and corruption without touching the detectors.
* **Mute TTL** — with ``mute_ttl_seconds`` set, a muted link re-arms by
  itself after the TTL.  A report whose delivery was lost (or whose
  handler died) is then merely late, not lost forever.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from dcrobot.network.inventory import Fabric
from dcrobot.network.state import DOWN_CODE, FLAPPING_CODE, MAINTENANCE_CODE
from dcrobot.obs import NULL_OBS
from dcrobot.sim.engine import Simulation
from dcrobot.telemetry.detectors import DetectorParams, LinkDetector
from dcrobot.telemetry.events import TelemetryEvent

Subscriber = Callable[[TelemetryEvent], None]
#: One detected event in, zero or more events out.
Interceptor = Callable[[TelemetryEvent], List[TelemetryEvent]]


class TelemetryMonitor:
    """Scans every link each poll interval and dispatches new symptoms."""

    def __init__(self, fabric: Fabric,
                 params: Optional[DetectorParams] = None,
                 poll_seconds: float = 60.0,
                 mute_ttl_seconds: Optional[float] = None,
                 obs=NULL_OBS) -> None:
        if poll_seconds <= 0:
            raise ValueError(f"poll_seconds must be > 0, got {poll_seconds}")
        if mute_ttl_seconds is not None and mute_ttl_seconds <= 0:
            raise ValueError("mute_ttl_seconds must be > 0 when set")
        self.fabric = fabric
        self.detector = LinkDetector(params)
        self.poll_seconds = poll_seconds
        self.mute_ttl_seconds = mute_ttl_seconds
        self.subscribers: List[Subscriber] = []
        self.interceptors: List[Interceptor] = []
        self.events: List[TelemetryEvent] = []
        self.obs = obs if obs is not None else NULL_OBS
        #: link id -> time the mute was set (for TTL expiry).
        self._muted: Dict[str, float] = {}
        #: heartbeat source id -> last beat time.  Robot units (and any
        #: other liveness-reporting component) check in here; the fleet
        #: watchdog asks for stale sources, so a dead or wedged unit is
        #: *detected* from silence rather than assumed alive.
        self._heartbeats: Dict[str, float] = {}

    def subscribe(self, subscriber: Subscriber) -> None:
        """Register a callback for every newly detected symptom."""
        self.subscribers.append(subscriber)

    def unsubscribe(self, subscriber: Subscriber) -> None:
        """Drop a callback (a dead controller must stop hearing)."""
        if subscriber in self.subscribers:
            self.subscribers.remove(subscriber)

    def add_interceptor(self, interceptor: Interceptor) -> None:
        """Install a delivery-path transform (chaos injection point)."""
        self.interceptors.append(interceptor)

    # -- muting (handled-symptom suppression) --------------------------------

    def mute(self, link_id: str, now: float = 0.0) -> None:
        """Stop reporting a link (a repair is in flight)."""
        self._muted[link_id] = now

    def unmute(self, link_id: str) -> None:
        """Re-arm detection for a link (repair attempt finished)."""
        self._muted.pop(link_id, None)

    def is_muted(self, link_id: str, now: Optional[float] = None) -> bool:
        muted_at = self._muted.get(link_id)
        if muted_at is None:
            return False
        if (self.mute_ttl_seconds is not None and now is not None
                and now - muted_at >= self.mute_ttl_seconds):
            self.unmute(link_id)
            return False
        return True

    # -- heartbeats (liveness of the maintainers themselves) -------------------

    def record_heartbeat(self, source_id: str, now: float) -> None:
        """A component reports itself alive at ``now``."""
        self._heartbeats[source_id] = now

    def heartbeat_age(self, source_id: str,
                      now: float) -> Optional[float]:
        """Seconds since the source's last beat; None if never seen."""
        last = self._heartbeats.get(source_id)
        if last is None:
            return None
        return now - last

    def stale_sources(self, now: float, timeout: float) -> List[str]:
        """Registered sources silent for at least ``timeout`` seconds
        (sorted by id for deterministic watchdog iteration)."""
        return sorted(source_id
                      for source_id, last in self._heartbeats.items()
                      if now - last >= timeout)

    # -- scanning -------------------------------------------------------------

    def _deliveries(self, event: TelemetryEvent) -> List[TelemetryEvent]:
        """Run the interceptor chain over one detected event."""
        pending = [event]
        for interceptor in self.interceptors:
            emitted: List[TelemetryEvent] = []
            for item in pending:
                emitted.extend(interceptor(item))
            pending = emitted
        return pending

    def scan(self, now: float) -> List[TelemetryEvent]:
        """One full-fleet pass; returns (and dispatches) new events."""
        new_events = []
        for link in self.fabric.links.values():
            if self.is_muted(link.id, now):
                continue
            event = self.detector.check(link, now)
            if event is None:
                continue
            self.mute(link.id, now)  # one report per incident until re-armed
            self.events.append(event)
            if self.obs.enabled:
                self.obs.tracer.record("detect", link_id=link.id,
                                       symptom=event.symptom.value)
                self.obs.count("dcrobot_telemetry_events_total",
                               symptom=event.symptom.value)
                self.obs.gauge("dcrobot_muted_links",
                               len(self._muted))
            for delivered in self._deliveries(event):
                new_events.append(delivered)
                for subscriber in self.subscribers:
                    subscriber(delivered)
        return new_events

    def poll_all(self, now: float) -> List[TelemetryEvent]:
        """One full-fleet pass using the columnar state as a prefilter.

        Bit-identical to :meth:`scan`: the arrays select a *superset* of
        the links the legacy pass would touch — rows down past the grace
        period, rows with enough windowed flap transitions, rows with
        elevated loss, ids with pending ``_lossy_since`` bookkeeping,
        and muted ids whose TTL expires this poll.  Every other link is
        provably a no-op in :meth:`scan` (``check`` returns ``None``
        without mutating detector state).  Selected links then run the
        exact per-link scan body, in ``fabric.links`` order, so events,
        mutes, observability, and deliveries are unchanged.
        """
        state = getattr(self.fabric, "state", None)
        if state is None:
            return self.scan(now)
        n = state.n_links
        params = self.detector.params
        candidate = np.zeros(n, dtype=bool)
        if n:
            code = state.state_code[:n]
            down_long = ((code == DOWN_CODE)
                         & (now - state.down_since[:n]
                            >= params.down_grace_seconds))
            flapping = (state.flap_counts(now - params.flap_window_seconds,
                                          now)
                        >= params.flap_transitions)
            lossy = ((code <= FLAPPING_CODE)
                     & (state.loss_rate[:n] > params.loss_threshold))
            candidate = ((code != MAINTENANCE_CODE)
                         & (down_long | flapping | lossy))
        for link_id in self.detector._lossy_since:
            row = state.index_of.get(link_id)
            if row is not None:
                candidate[row] = True
        if self.mute_ttl_seconds is not None:
            for link_id, muted_at in self._muted.items():
                if now - muted_at >= self.mute_ttl_seconds:
                    row = state.index_of.get(link_id)
                    if row is not None:
                        candidate[row] = True
        rows = state.rows_in_insertion_order(np.nonzero(candidate)[0])

        new_events = []
        for row in rows:
            link = state.links_by_row[row]
            if self.is_muted(link.id, now):
                continue
            event = self.detector.check(link, now)
            if event is None:
                continue
            self.mute(link.id, now)  # one report per incident until re-armed
            self.events.append(event)
            if self.obs.enabled:
                self.obs.tracer.record("detect", link_id=link.id,
                                       symptom=event.symptom.value)
                self.obs.count("dcrobot_telemetry_events_total",
                               symptom=event.symptom.value)
                self.obs.gauge("dcrobot_muted_links",
                               len(self._muted))
            for delivered in self._deliveries(event):
                new_events.append(delivered)
                for subscriber in self.subscribers:
                    subscriber(delivered)
        return new_events

    def run(self, sim: Simulation):
        """Generator process: scan forever at the poll interval."""
        while True:
            yield sim.timeout(self.poll_seconds)
            self.scan(sim.now)

    def run_vectorized(self, sim: Simulation):
        """Generator process around :meth:`poll_all` (same event
        structure as :meth:`run`)."""
        while True:
            yield sim.timeout(self.poll_seconds)
            self.poll_all(sim.now)
