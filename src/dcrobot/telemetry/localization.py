"""Probe-based fault localization (§4 "Fault detection and isolation").

"Integrating robotics with network monitoring tools and developing
algorithms for precise fault localization is another area of interest."

Before a robot is dispatched, the control plane wants to know *which*
link in a multi-hop path is sick.  This module implements boolean
network tomography: end-to-end probes succeed or fail per path, and the
localizer infers a minimal set of suspect links explaining the
observations:

* every link on a *passing* path is exonerated,
* the remaining candidates are ranked by how many failing paths they
  appear on, and a greedy set cover picks the smallest explanation.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from dcrobot.network.inventory import Fabric
from dcrobot.network.link import Link
from dcrobot.traffic.routing import EcmpRouter


@dataclasses.dataclass(frozen=True)
class ProbeObservation:
    """One end-to-end probe: the link path it took and whether it
    succeeded."""

    src: str
    dst: str
    link_ids: tuple
    success: bool


@dataclasses.dataclass
class LocalizationReport:
    """The localizer's verdict."""

    suspects: List[str]
    exonerated: Set[str]
    observations: int
    failing_paths: int

    @property
    def localized(self) -> bool:
        return len(self.suspects) > 0

    def __repr__(self) -> str:
        return (f"<LocalizationReport suspects={self.suspects} "
                f"from {self.observations} probes>")


class ProbeLocalizer:
    """Sends probes across the fabric and infers faulty links."""

    def __init__(self, fabric: Fabric, router: Optional[EcmpRouter] = None,
                 rng: Optional[np.random.Generator] = None,
                 loss_failure_threshold: float = 1e-4) -> None:
        self.fabric = fabric
        self.router = router or EcmpRouter(fabric)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.loss_failure_threshold = loss_failure_threshold

    # -- probing ---------------------------------------------------------------

    def probe(self, src: str, dst: str,
              flow_hash: int = 0) -> Optional[ProbeObservation]:
        """One probe along the ECMP path chosen by ``flow_hash``.

        A probe fails if any hop is non-operational... which ECMP
        already routes around — so we probe over the *full* topology
        view (drained/failed links included) to test the sick parts.
        """
        path_nodes = self._any_path(src, dst, flow_hash)
        if path_nodes is None:
            return None
        links = self._links_for(path_nodes, flow_hash)
        if links is None:
            return None
        success = all(
            link.operational
            and link.loss_rate <= self.loss_failure_threshold
            for link in links)
        return ProbeObservation(src, dst,
                                tuple(link.id for link in links),
                                success)

    def _any_path(self, src: str, dst: str,
                  flow_hash: int = 0) -> Optional[List[str]]:
        """A shortest node path, diversified over equal-cost choices so
        a probe mesh covers every parallel plane of the fabric."""
        import itertools

        import networkx as nx

        graph = self.fabric.graph()  # full view, sick links included
        try:
            paths = list(itertools.islice(
                nx.all_shortest_paths(graph, src, dst), 8))
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None
        if not paths:
            return None
        return paths[flow_hash % len(paths)]

    def _links_for(self, path_nodes: List[str],
                   flow_hash: int) -> Optional[List[Link]]:
        links = []
        for a, b in zip(path_nodes, path_nodes[1:]):
            candidates = [link for link in self.fabric.links_of(a)
                          if set(link.endpoint_ids) == {a, b}]
            if not candidates:
                return None
            links.append(candidates[flow_hash % len(candidates)])
        return links

    def probe_mesh(self, endpoints: Sequence[str],
                   probes_per_pair: int = 2) -> List[ProbeObservation]:
        """Probe all endpoint pairs, spreading over parallel links."""
        observations = []
        for index, src in enumerate(endpoints):
            for dst in endpoints[index + 1:]:
                for attempt in range(probes_per_pair):
                    observation = self.probe(src, dst,
                                             flow_hash=attempt)
                    if observation is not None:
                        observations.append(observation)
        return observations

    # -- inference ---------------------------------------------------------------

    def localize(self, observations: Sequence[ProbeObservation]
                 ) -> LocalizationReport:
        """Greedy set-cover localization over probe outcomes."""
        exonerated: Set[str] = set()
        failing: List[Set[str]] = []
        for observation in observations:
            if observation.success:
                exonerated.update(observation.link_ids)
            else:
                failing.append(set(observation.link_ids))

        suspects: List[str] = []
        uncovered = [path - exonerated for path in failing]
        uncovered = [path for path in uncovered if path]
        # Paths fully exonerated yet failing are unexplainable noise —
        # they are dropped (counted in the report via failing_paths).
        while uncovered:
            counts: Dict[str, int] = {}
            for path in uncovered:
                for link_id in path:
                    counts[link_id] = counts.get(link_id, 0) + 1
            best = max(sorted(counts), key=lambda lid: counts[lid])
            suspects.append(best)
            uncovered = [path for path in uncovered
                         if best not in path]
        return LocalizationReport(
            suspects=suspects, exonerated=exonerated,
            observations=len(observations),
            failing_paths=len(failing))

    def localize_between(self, endpoints: Sequence[str],
                         probes_per_pair: int = 2) -> LocalizationReport:
        """Probe a mesh and localize in one call."""
        return self.localize(self.probe_mesh(endpoints,
                                             probes_per_pair))
