"""Telemetry & symptom detection (S6)."""

from dcrobot.telemetry.detectors import DetectorParams, LinkDetector
from dcrobot.telemetry.events import Symptom, TelemetryEvent
from dcrobot.telemetry.localization import (
    LocalizationReport,
    ProbeLocalizer,
    ProbeObservation,
)
from dcrobot.telemetry.monitor import TelemetryMonitor

__all__ = [
    "Symptom",
    "TelemetryEvent",
    "DetectorParams",
    "LinkDetector",
    "TelemetryMonitor",
    "ProbeLocalizer",
    "ProbeObservation",
    "LocalizationReport",
]
