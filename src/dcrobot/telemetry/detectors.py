"""Symptom detectors over the link state timeline.

Production services "are already good at detecting hardware failures"
(§2); these detectors reproduce the standard signals: hard-down beyond a
grace period, flap counting in a sliding window, and loss-rate
thresholds.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from dcrobot.network.enums import LinkState
from dcrobot.network.link import Link
from dcrobot.telemetry.events import Symptom, TelemetryEvent


@dataclasses.dataclass
class DetectorParams:
    """Detection thresholds.

    Grace/persistence values debounce *transient* disturbances (a
    technician brushing the bundle disturbs a link for minutes, §1);
    ticketing every such blip would storm the maintenance plane.
    """

    #: Seconds a link must be continuously down before LINK_DOWN fires.
    down_grace_seconds: float = 900.0
    #: Transitions within the window that classify a link as flapping.
    flap_transitions: int = 4
    #: Sliding window for flap counting (seconds).
    flap_window_seconds: float = 3600.0
    #: Loss rate above which HIGH_LOSS fires for a carrying link.
    loss_threshold: float = 1e-5
    #: Seconds the loss must persist before HIGH_LOSS fires.
    loss_persistence_seconds: float = 1800.0

    def __post_init__(self) -> None:
        if self.down_grace_seconds < 0:
            raise ValueError("down_grace_seconds must be >= 0")
        if self.flap_transitions < 2:
            raise ValueError("flap_transitions must be >= 2")
        if self.flap_window_seconds <= 0:
            raise ValueError("flap_window_seconds must be > 0")
        if self.loss_persistence_seconds < 0:
            raise ValueError("loss_persistence_seconds must be >= 0")


class LinkDetector:
    """Evaluates one link against all symptom rules.

    Stateful: tracks when each link first showed elevated loss so the
    HIGH_LOSS symptom only fires for *persistent* lossiness.
    """

    def __init__(self, params: Optional[DetectorParams] = None) -> None:
        self.params = params or DetectorParams()
        self._lossy_since: dict = {}

    def _down_since(self, link: Link) -> Optional[float]:
        """Time the link entered its current DOWN stretch, if down."""
        if link.state is not LinkState.DOWN:
            return None
        down_since = None
        for when, state in reversed(link.history):
            if state is LinkState.DOWN:
                down_since = when
            else:
                break
        return down_since

    def check(self, link: Link, now: float) -> Optional[TelemetryEvent]:
        """The most severe symptom currently presented, if any.

        Severity order: hard down > flapping > high loss.  Flapping is
        checked before high loss because it subsumes it operationally:
        a flapping link is already ticket-worthy regardless of its
        instantaneous loss.
        """
        params = self.params
        if link.state is LinkState.MAINTENANCE:
            return None

        down_since = self._down_since(link)
        if (down_since is not None
                and now - down_since >= params.down_grace_seconds):
            # A down link that has been bouncing recently is a flapping
            # link currently in a bad phase — report the flap, which is
            # the more actionable diagnosis.
            transitions = link.transitions_in_window(
                now - params.flap_window_seconds, now)
            if transitions >= params.flap_transitions:
                return TelemetryEvent(
                    now, link.id, Symptom.LINK_FLAPPING,
                    detail=f"{transitions} transitions/"
                           f"{params.flap_window_seconds:.0f}s (now down)")
            return TelemetryEvent(
                now, link.id, Symptom.LINK_DOWN,
                detail=f"down for {now - down_since:.0f}s")

        transitions = link.transitions_in_window(
            now - params.flap_window_seconds, now)
        if transitions >= params.flap_transitions:
            return TelemetryEvent(
                now, link.id, Symptom.LINK_FLAPPING,
                detail=f"{transitions} transitions/"
                       f"{params.flap_window_seconds:.0f}s")

        lossy = (link.state.carries_traffic
                 and link.loss_rate > params.loss_threshold)
        if not lossy:
            self._lossy_since.pop(link.id, None)
            return None
        since = self._lossy_since.setdefault(link.id, now)
        if now - since >= params.loss_persistence_seconds:
            return TelemetryEvent(
                now, link.id, Symptom.HIGH_LOSS,
                detail=f"loss={link.loss_rate:.2e} "
                       f"for {now - since:.0f}s")
        return None
