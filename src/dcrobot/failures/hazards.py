"""Hazard (failure-time) models.

Component faults arrive according to these processes.  Exponential
hazards model memoryless faults (firmware wedges, random dirt events);
Weibull hazards with shape > 1 model wear-out (transceiver electronics
aging).
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

SECONDS_PER_YEAR = 365.25 * 24 * 3600.0
SECONDS_PER_HOUR = 3600.0


def per_year(events: float) -> float:
    """Convert an events-per-year figure to events-per-second."""
    return events / SECONDS_PER_YEAR


class Hazard(Protocol):
    """Anything that can sample a time-to-next-event."""

    def sample(self, rng: np.random.Generator) -> float:
        """Draw the next inter-event time in seconds."""
        ...  # pragma: no cover


class ExponentialHazard:
    """Memoryless hazard with a constant rate (events/second)."""

    def __init__(self, rate_per_second: float) -> None:
        if rate_per_second <= 0:
            raise ValueError(f"rate must be > 0, got {rate_per_second}")
        self.rate = float(rate_per_second)

    def __repr__(self) -> str:
        return f"<ExponentialHazard rate={self.rate:.3e}/s>"

    @classmethod
    def per_year(cls, events: float) -> "ExponentialHazard":
        """Hazard with ``events`` expected per year."""
        return cls(per_year(events))

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(1.0 / self.rate))

    @property
    def mean(self) -> float:
        """Mean time between events (seconds)."""
        return 1.0 / self.rate


class WeibullHazard:
    """Weibull-distributed inter-event times.

    ``shape`` > 1 gives increasing hazard (wear-out); < 1 infant
    mortality; == 1 reduces to exponential.  ``scale`` is the
    characteristic life in seconds.
    """

    def __init__(self, shape: float, scale_seconds: float) -> None:
        if shape <= 0:
            raise ValueError(f"shape must be > 0, got {shape}")
        if scale_seconds <= 0:
            raise ValueError(f"scale must be > 0, got {scale_seconds}")
        self.shape = float(shape)
        self.scale = float(scale_seconds)

    def __repr__(self) -> str:
        return f"<WeibullHazard shape={self.shape} scale={self.scale:.3e}s>"

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.scale * rng.weibull(self.shape))

    @property
    def mean(self) -> float:
        """Mean time between events (seconds)."""
        from math import gamma
        return self.scale * gamma(1.0 + 1.0 / self.shape)


class FixedHazard:
    """Deterministic inter-event time — for tests and calibration."""

    def __init__(self, interval_seconds: float) -> None:
        if interval_seconds <= 0:
            raise ValueError(
                f"interval must be > 0, got {interval_seconds}")
        self.interval = float(interval_seconds)

    def sample(self, rng: np.random.Generator) -> float:  # noqa: ARG002
        return self.interval

    @property
    def mean(self) -> float:
        return self.interval
