"""Failure physics (substrate S4): hazards, environment, link health,
fault injection, and touch-induced cascading failures."""

from dcrobot.failures.cascade import (
    HUMAN_HANDS,
    ROBOT_GRIPPER,
    CascadeModel,
    ContactProfile,
    TouchReport,
)
from dcrobot.failures.aging import OxidationAging
from dcrobot.failures.dust import DustProcess
from dcrobot.failures.environment import Environment
from dcrobot.failures.hazards import (
    SECONDS_PER_HOUR,
    SECONDS_PER_YEAR,
    ExponentialHazard,
    FixedHazard,
    WeibullHazard,
    per_year,
)
from dcrobot.failures.health import HealthModel, HealthParams
from dcrobot.failures.trace import FaultTrace, TraceEntry
from dcrobot.failures.injector import (
    FailureRates,
    FaultInjector,
    InjectedFault,
)

__all__ = [
    "Environment",
    "DustProcess",
    "OxidationAging",
    "HealthModel",
    "HealthParams",
    "FaultInjector",
    "FailureRates",
    "InjectedFault",
    "FaultTrace",
    "TraceEntry",
    "CascadeModel",
    "ContactProfile",
    "TouchReport",
    "HUMAN_HANDS",
    "ROBOT_GRIPPER",
    "ExponentialHazard",
    "WeibullHazard",
    "FixedHazard",
    "per_year",
    "SECONDS_PER_YEAR",
    "SECONDS_PER_HOUR",
]
