"""Gradual contact oxidation of seated transceivers.

"Gold is not immune from oxidation and corrosion" (§3.2): contacts
corrode slowly while a transceiver sits in its cage, at unit-specific
rates (plating quality, micro-environment).  This is the slow process
that proactive reseat sweeps pre-empt: reseating wipes the contacts and
resets the clock *before* the link ever misbehaves.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from dcrobot.failures.health import HealthModel
from dcrobot.network.inventory import Fabric
from dcrobot.sim.engine import Simulation


class OxidationAging:
    """Per-transceiver heterogeneous oxidation growth."""

    def __init__(self, fabric: Fabric, health: HealthModel,
                 mean_rate_per_day: float = 0.002,
                 unit_sigma: float = 1.0,
                 tick_seconds: float = 6 * 3600.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        if mean_rate_per_day < 0:
            raise ValueError("mean_rate_per_day must be >= 0")
        if tick_seconds <= 0:
            raise ValueError("tick_seconds must be > 0")
        self.fabric = fabric
        self.health = health
        self.mean_rate_per_day = mean_rate_per_day
        self.unit_sigma = unit_sigma
        self.tick_seconds = tick_seconds
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._rate: Dict[str, float] = {}
        #: Row-aligned rate cache for :meth:`step_all` (NaN = unsampled),
        #: rebuilt from ``_rate`` whenever the fabric's row layout moves.
        self._rate_rows = np.zeros((2, 0))
        self._rate_rows_generation = -1

    def rate_for(self, unit_id: str) -> float:
        """The unit's (lazily sampled) oxidation rate per day."""
        rate = self._rate.get(unit_id)
        if rate is None:
            rate = self.mean_rate_per_day * float(
                self.rng.lognormal(0.0, self.unit_sigma))
            self._rate[unit_id] = rate
        return rate

    def tick(self, now: float) -> None:
        """Advance corrosion on every seated transceiver."""
        fraction_of_day = self.tick_seconds / 86400.0
        for link in self.fabric.links.values():
            for unit in link.transceivers():
                if not unit.seated:
                    continue
                growth = self.rate_for(unit.id) * fraction_of_day
                unit.oxidation = min(1.0, unit.oxidation + growth)

    # -- vectorized sweep ------------------------------------------------------

    def _rebuild_rate_rows(self, state) -> None:
        """Re-align the cached per-row rates after a structural change."""
        n = state.n_links
        rates = np.full((2, n), np.nan)
        known = self._rate.get
        for row, link in enumerate(state.links_by_row):
            rate_a = known(link.transceiver_a.id)
            if rate_a is not None:
                rates[0, row] = rate_a
            rate_b = known(link.transceiver_b.id)
            if rate_b is not None:
                rates[1, row] = rate_b
        self._rate_rows = rates
        self._rate_rows_generation = state.generation

    def step_all(self, now: float) -> None:
        """Advance corrosion on every seated transceiver, columnarily.

        Bit-identical to :meth:`tick`: units whose rate has not been
        sampled yet draw from the RNG lazily, batched in the exact
        (link, side a→b) encounter order of the legacy loop — and only
        while seated, which is when the legacy loop first reaches
        ``rate_for``.  Growth is then one masked array update.
        """
        state = getattr(self.fabric, "state", None)
        if state is None:
            self.tick(now)
            return
        n = state.n_links
        if n == 0:
            return
        if self._rate_rows_generation != state.generation:
            self._rebuild_rate_rows(state)
        rates = self._rate_rows
        seated = state.seated[:, :n]
        missing = seated & np.isnan(rates)
        if missing.any():
            rows = state.rows_in_insertion_order(
                np.nonzero(missing.any(axis=0))[0])
            pending = []
            for row in rows:
                link = state.links_by_row[row]
                for side, unit in enumerate(link.transceivers()):
                    if missing[side, row]:
                        pending.append((side, row, unit.id))
            draws = self.rng.lognormal(0.0, self.unit_sigma,
                                       size=len(pending))
            for (side, row, unit_id), draw in zip(pending, draws):
                rate = self.mean_rate_per_day * float(draw)
                self._rate[unit_id] = rate
                rates[side, row] = rate
        fraction_of_day = self.tick_seconds / 86400.0
        ox = state.ox[:, :n]
        ox[seated] = np.minimum(1.0, ox[seated]
                                + rates[seated] * fraction_of_day)

    def run(self, sim: Simulation):
        """Generator process: corrode on a fixed cadence."""
        while True:
            yield sim.timeout(self.tick_seconds)
            self.tick(sim.now)

    def run_vectorized(self, sim: Simulation):
        """Generator process around :meth:`step_all` (same event
        structure as :meth:`run`)."""
        while True:
            yield sim.timeout(self.tick_seconds)
            self.step_all(sim.now)
