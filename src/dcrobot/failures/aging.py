"""Gradual contact oxidation of seated transceivers.

"Gold is not immune from oxidation and corrosion" (§3.2): contacts
corrode slowly while a transceiver sits in its cage, at unit-specific
rates (plating quality, micro-environment).  This is the slow process
that proactive reseat sweeps pre-empt: reseating wipes the contacts and
resets the clock *before* the link ever misbehaves.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from dcrobot.failures.health import HealthModel
from dcrobot.network.inventory import Fabric
from dcrobot.sim.engine import Simulation


class OxidationAging:
    """Per-transceiver heterogeneous oxidation growth."""

    def __init__(self, fabric: Fabric, health: HealthModel,
                 mean_rate_per_day: float = 0.002,
                 unit_sigma: float = 1.0,
                 tick_seconds: float = 6 * 3600.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        if mean_rate_per_day < 0:
            raise ValueError("mean_rate_per_day must be >= 0")
        if tick_seconds <= 0:
            raise ValueError("tick_seconds must be > 0")
        self.fabric = fabric
        self.health = health
        self.mean_rate_per_day = mean_rate_per_day
        self.unit_sigma = unit_sigma
        self.tick_seconds = tick_seconds
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._rate: Dict[str, float] = {}

    def rate_for(self, unit_id: str) -> float:
        """The unit's (lazily sampled) oxidation rate per day."""
        rate = self._rate.get(unit_id)
        if rate is None:
            rate = self.mean_rate_per_day * float(
                self.rng.lognormal(0.0, self.unit_sigma))
            self._rate[unit_id] = rate
        return rate

    def tick(self, now: float) -> None:
        """Advance corrosion on every seated transceiver."""
        fraction_of_day = self.tick_seconds / 86400.0
        for link in self.fabric.links.values():
            for unit in link.transceivers():
                if not unit.seated:
                    continue
                growth = self.rate_for(unit.id) * fraction_of_day
                unit.oxidation = min(1.0, unit.oxidation + growth)

    def run(self, sim: Simulation):
        """Generator process: corrode on a fixed cadence."""
        while True:
            yield sim.timeout(self.tick_seconds)
            self.tick(sim.now)
