"""Fault traces: record, save, load, and replay failure campaigns.

Experiments that compare maintenance modes want *identical* fault
environments ("the same fault trace replayed across Levels 0–4", E6).
Seeded injectors achieve that implicitly; traces make it explicit and
portable: record a campaign once (or synthesize one), save it as JSON,
and replay it against any world whose fabric has the same link ids.
"""

from __future__ import annotations

import dataclasses
import json
from typing import List, Optional

import numpy as np

from dcrobot.failures.injector import FaultInjector, InjectedFault
from dcrobot.network.enums import DegradationKind
from dcrobot.network.inventory import Fabric
from dcrobot.sim.engine import Simulation


@dataclasses.dataclass(frozen=True)
class TraceEntry:
    """One scheduled fault."""

    time: float
    kind: DegradationKind
    link_id: str

    def to_dict(self) -> dict:
        return {"time": self.time, "kind": self.kind.value,
                "link_id": self.link_id}

    @classmethod
    def from_dict(cls, data: dict) -> "TraceEntry":
        return cls(time=float(data["time"]),
                   kind=DegradationKind(data["kind"]),
                   link_id=str(data["link_id"]))


class FaultTrace:
    """An ordered fault campaign."""

    def __init__(self, entries: Optional[List[TraceEntry]] = None) -> None:
        self.entries = sorted(entries or [], key=lambda e: e.time)

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        horizon = self.entries[-1].time if self.entries else 0.0
        return f"<FaultTrace n={len(self)} horizon={horizon:.0f}s>"

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_injector_log(cls, log: List[InjectedFault]) -> "FaultTrace":
        """Capture a completed run's ground-truth log as a trace."""
        return cls([TraceEntry(fault.time, fault.kind, fault.link_id)
                    for fault in log])

    @classmethod
    def synthesize(cls, fabric: Fabric, horizon_seconds: float,
                   rates, rng: Optional[np.random.Generator] = None
                   ) -> "FaultTrace":
        """Draw a campaign up-front from per-cause exponential clocks —
        statistically identical to running the injector live."""
        from dcrobot.failures.hazards import per_year

        rng = rng if rng is not None else np.random.default_rng(0)
        link_ids = list(fabric.links)
        entries: List[TraceEntry] = []
        for kind in DegradationKind:
            per_link = per_year(rates.rate_of(kind))
            aggregate = per_link * len(link_ids)
            if aggregate <= 0:
                continue
            now = 0.0
            while True:
                now += float(rng.exponential(1.0 / aggregate))
                if now >= horizon_seconds:
                    break
                victim = link_ids[int(rng.integers(len(link_ids)))]
                entries.append(TraceEntry(now, kind, victim))
        return cls(entries)

    # -- persistence ----------------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps([entry.to_dict() for entry in self.entries])

    @classmethod
    def from_json(cls, text: str) -> "FaultTrace":
        return cls([TraceEntry.from_dict(item)
                    for item in json.loads(text)])

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "FaultTrace":
        with open(path, encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    # -- replay ----------------------------------------------------------------------

    def replay(self, sim: Simulation, injector: FaultInjector):
        """Generator process: inject each entry at its recorded time.

        Entries whose link no longer exists (removed by rewiring) are
        skipped.  The injector's ground-truth log fills up exactly as
        it would have live.
        """
        for entry in self.entries:
            delay = entry.time - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            link = injector.fabric.links.get(entry.link_id)
            if link is None:
                continue
            injector.inject(entry.kind, link, sim.now)
