"""Slow environmental contamination (dust) of fiber end-faces.

Unlike the injector's discrete dirt events (a contaminated mating, a
technician's fingerprint), dust accumulates *gradually* — and unevenly:
cables routed near floor vents or high-traffic aisles collect dust much
faster.  This heterogeneous slow process is what makes failures
*predictable*: a link's optical margin trends down for days before the
flapping starts, exactly the signal §4's predictive maintenance exploits.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from dcrobot.failures.health import HealthModel
from dcrobot.network.inventory import Fabric
from dcrobot.sim.engine import Simulation


class DustProcess:
    """Per-cable heterogeneous dust accumulation."""

    def __init__(self, fabric: Fabric, health: HealthModel,
                 mean_rate_per_day: float = 0.004,
                 hotspot_sigma: float = 1.2,
                 tick_seconds: float = 6 * 3600.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        if mean_rate_per_day < 0:
            raise ValueError("mean_rate_per_day must be >= 0")
        if tick_seconds <= 0:
            raise ValueError("tick_seconds must be > 0")
        self.fabric = fabric
        self.health = health
        self.mean_rate_per_day = mean_rate_per_day
        self.hotspot_sigma = hotspot_sigma
        self.tick_seconds = tick_seconds
        self.rng = rng if rng is not None else np.random.default_rng(0)
        #: Per-cable dustiness multiplier (lognormal: most cables are
        #: clean-ish, a tail of hotspot cables collect dust fast).
        self._factor: Dict[str, float] = {}
        #: Cleanable-link cache for :meth:`step_all`, keyed by the
        #: fabric state's structural generation.
        self._cleanable_generation = -1
        self._cleanable_links: list = []

    def factor_for(self, cable_id: str) -> float:
        """The cable's (lazily sampled) dust-exposure multiplier."""
        factor = self._factor.get(cable_id)
        if factor is None:
            factor = float(self.rng.lognormal(0.0, self.hotspot_sigma))
            self._factor[cable_id] = factor
        return factor

    def tick(self, now: float) -> None:
        """Deposit one tick's dust on every separable end-face."""
        fraction_of_day = self.tick_seconds / 86400.0
        for link in self.fabric.links.values():
            cable = link.cable
            if not cable.cleanable:
                continue
            amount = (self.mean_rate_per_day
                      * self.factor_for(cable.id) * fraction_of_day
                      * float(self.rng.uniform(0.5, 1.5)))
            if amount <= 0:
                continue
            for end in (cable.end_a, cable.end_b):
                core = int(self.rng.integers(end.core_count))
                end.add_contamination(amount, cores=[core])

    # -- vectorized sweep ------------------------------------------------------

    def step_all(self, now: float) -> None:
        """One dust tick driven by the columnar cleanable mask.

        The RNG here cannot be batched bit-identically (``integers``
        uses Lemire rejection, whose draw count is data-dependent), so
        the loop body stays scalar and stream-identical to
        :meth:`tick`; the win is skipping every non-cleanable link via
        a cached, insertion-ordered candidate list instead of testing
        ``cable.cleanable`` across the whole fleet each tick.
        """
        state = getattr(self.fabric, "state", None)
        if state is None:
            self.tick(now)
            return
        if self._cleanable_generation != state.generation:
            n = state.n_links
            rows = state.rows_in_insertion_order(
                np.nonzero(state.cleanable[:n])[0])
            self._cleanable_links = [state.links_by_row[row]
                                     for row in rows]
            self._cleanable_generation = state.generation
        fraction_of_day = self.tick_seconds / 86400.0
        for link in self._cleanable_links:
            cable = link.cable
            amount = (self.mean_rate_per_day
                      * self.factor_for(cable.id) * fraction_of_day
                      * float(self.rng.uniform(0.5, 1.5)))
            if amount <= 0:
                continue
            for end in (cable.end_a, cable.end_b):
                core = int(self.rng.integers(end.core_count))
                end.add_contamination(amount, cores=[core])

    def run(self, sim: Simulation):
        """Generator process: deposit dust on a fixed cadence."""
        while True:
            yield sim.timeout(self.tick_seconds)
            self.tick(sim.now)

    def run_vectorized(self, sim: Simulation):
        """Generator process around :meth:`step_all` (same event
        structure as :meth:`run`)."""
        while True:
            yield sim.timeout(self.tick_seconds)
            self.step_all(sim.now)
