"""Hall environment: temperature cycles and vibration episodes.

Transient failures "are a function of ... environmental changes in
temperature, vibration and so forth" (§1).  The environment modulates
how strongly physical degradation (especially end-face dirt) manifests
as link impairment, and vibration episodes — raised by nearby physical
activity — temporarily push marginal links over the edge.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

SECONDS_PER_DAY = 86400.0


class Environment:
    """Deterministic diurnal temperature plus decaying vibration events."""

    def __init__(self, base_temperature_c: float = 24.0,
                 diurnal_amplitude_c: float = 2.0,
                 period_seconds: float = SECONDS_PER_DAY,
                 reference_temperature_c: float = 24.0) -> None:
        self.base_temperature_c = base_temperature_c
        self.diurnal_amplitude_c = diurnal_amplitude_c
        self.period_seconds = period_seconds
        self.reference_temperature_c = reference_temperature_c
        #: Active vibration episodes as (expires_at, magnitude) pairs.
        self._vibrations: List[Tuple[float, float]] = []

    def __repr__(self) -> str:
        return (f"<Environment base={self.base_temperature_c}C "
                f"amp={self.diurnal_amplitude_c}C>")

    def temperature_c(self, now: float) -> float:
        """Hall temperature at time ``now`` (deterministic sinusoid)."""
        phase = 2.0 * np.pi * (now % self.period_seconds) / self.period_seconds
        return (self.base_temperature_c
                + self.diurnal_amplitude_c * float(np.sin(phase)))

    def add_vibration(self, now: float, magnitude: float,
                      duration_seconds: float) -> None:
        """Register a vibration episode (e.g. someone working nearby)."""
        if magnitude < 0:
            raise ValueError(f"magnitude must be >= 0, got {magnitude}")
        if duration_seconds <= 0:
            raise ValueError(
                f"duration must be > 0, got {duration_seconds}")
        self._vibrations.append((now + duration_seconds, magnitude))

    def vibration_level(self, now: float) -> float:
        """Sum of magnitudes of vibration episodes still active."""
        self._vibrations = [(expiry, magnitude)
                            for expiry, magnitude in self._vibrations
                            if expiry > now]
        return sum(magnitude for _expiry, magnitude in self._vibrations)

    def stress_multiplier(self, now: float) -> float:
        """How much the current environment amplifies marginal faults.

        1.0 at reference conditions; grows with temperature deviation
        (0.1 per °C) and vibration (1.0 per unit magnitude).  This is the
        knob that makes contaminated links flap *intermittently over
        time* (§3.2) rather than failing cleanly.
        """
        temperature_dev = abs(self.temperature_c(now)
                              - self.reference_temperature_c)
        return 1.0 + 0.1 * temperature_dev + self.vibration_level(now)
