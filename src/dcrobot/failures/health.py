"""Link health: physical condition → operational state and loss rate.

This is where gray failures live.  Each link's *impairment score* in
[0, 1] is derived from component physics (oxidation, end-face dirt,
hardware faults, physical disturbance) and the environment.  The score
maps to behaviour:

* below ``marginal_threshold`` — clean UP, negligible loss;
* the marginal band — a Gilbert–Elliott chain oscillates the link
  between UP (elevated loss) and short DOWN episodes: a *flapping* link
  whose tail-latency poison §1 describes;
* above ``hard_down_threshold`` — persistent DOWN.

The :class:`HealthModel` owns a periodic process that re-evaluates every
link; maintenance executors consult it after repairs, and the cascade
model injects disturbances through it.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from dcrobot.failures.environment import Environment
from dcrobot.network.endface import IMPAIRMENT_THRESHOLD
from dcrobot.network.enums import LinkState
from dcrobot.network.inventory import Fabric
from dcrobot.network.link import Link
from dcrobot.network.state import (
    DOWN_CODE,
    MAINTENANCE_CODE,
    STATE_OF,
    UP_CODE,
)
from dcrobot.sim.engine import Simulation


@dataclasses.dataclass
class HealthParams:
    """Tunables of the impairment → behaviour mapping."""

    tick_seconds: float = 60.0
    marginal_threshold: float = 0.18
    hard_down_threshold: float = 0.75
    base_loss: float = 1e-9
    #: P(good→bad) per tick at unit severity and unit stress.
    flap_g2b_per_tick: float = 0.12
    #: P(bad→good) per tick: bad episodes last ~2 ticks.
    flap_b2g_per_tick: float = 0.5
    oxidation_onset: float = 0.15
    disturbance_score: float = 0.35
    max_marginal_loss: float = 0.02

    def __post_init__(self) -> None:
        if not 0 < self.marginal_threshold < self.hard_down_threshold <= 1:
            raise ValueError("thresholds must satisfy 0 < marginal < hard <= 1")
        if self.tick_seconds <= 0:
            raise ValueError("tick_seconds must be > 0")


class HealthModel:
    """Evaluates and drives the operational state of every link."""

    def __init__(self, fabric: Fabric, environment: Environment,
                 params: Optional[HealthParams] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.fabric = fabric
        self.environment = environment
        self.params = params or HealthParams()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        #: Gilbert-Elliott phase for links not bound to the fabric's
        #: columnar state (standalone test fixtures); bound links keep
        #: theirs in the registered column below.
        self._bad_state: Dict[str, bool] = {}
        self._disturbed_until: Dict[str, float] = {}
        state = getattr(fabric, "state", None)
        self._bad = (state.add_link_column(False)
                     if state is not None else None)

    # -- Gilbert-Elliott phase storage ---------------------------------------

    def _bad_row(self, link: Link) -> Optional[int]:
        if self._bad is not None and link._fs is self.fabric.state:
            return link._row
        return None

    def _get_bad(self, link: Link) -> bool:
        row = self._bad_row(link)
        if row is None:
            return self._bad_state.get(link.id, False)
        return bool(self._bad.values[row])

    def _set_bad(self, link: Link, value: bool) -> None:
        row = self._bad_row(link)
        if row is None:
            self._bad_state[link.id] = value
        else:
            self._bad.values[row] = value

    # -- disturbance (cascade hook) ------------------------------------------

    def disturb(self, link_id: str, until: float) -> None:
        """Mark a link physically disturbed until the given time."""
        current = self._disturbed_until.get(link_id, 0.0)
        self._disturbed_until[link_id] = max(current, until)

    def is_disturbed(self, link_id: str, now: float) -> bool:
        return self._disturbed_until.get(link_id, 0.0) > now

    # -- scoring -----------------------------------------------------------------

    def impairment_score(self, link: Link, now: float) -> float:
        """Physical impairment in [0, 1]; 1.0 means hard-down faults."""
        if self._has_hard_fault(link):
            return 1.0
        if not self._physically_connected(link):
            return 1.0

        score = 0.0
        oxidation = max(link.transceiver_a.oxidation,
                        link.transceiver_b.oxidation)
        score += max(0.0, oxidation - self.params.oxidation_onset)

        dirt = link.cable.worst_contamination
        for unit in link.transceivers():
            if unit.receptacle is not None:
                dirt = max(dirt, unit.receptacle.worst_contamination)
        stress = self.environment.stress_multiplier(now)
        score += max(0.0, dirt - IMPAIRMENT_THRESHOLD) * stress

        if self.is_disturbed(link.id, now):
            score += self.params.disturbance_score
        return float(min(score, 1.0))

    def _has_hard_fault(self, link: Link) -> bool:
        if link.cable.damaged:
            return True
        for unit in link.transceivers():
            if unit.hw_fault or unit.firmware_stuck:
                return True
        for port in link.ports():
            if port.hw_fault:
                return True
        for end in (link.cable.end_a, link.cable.end_b):
            if end is not None and end.scratched.any():
                return True
        return False

    def _physically_connected(self, link: Link) -> bool:
        if not (link.transceiver_a.seated and link.transceiver_b.seated):
            return False
        return link.cable.attached_a and link.cable.attached_b

    def marginal_loss(self, score: float) -> float:
        """Packet-loss probability for a marginal link in its good phase.

        Log-linear in the link's position within the marginal band:
        barely-marginal links lose ~1e-6, links about to go hard-down
        lose ~1e-2 (capped) — the measured range for gray optical links.
        """
        params = self.params
        severity = (score - params.marginal_threshold) / (
            params.hard_down_threshold - params.marginal_threshold)
        severity = min(max(severity, 0.0), 1.0)
        loss = 10.0 ** (-6.0 + 4.8 * severity)
        return float(min(loss, params.max_marginal_loss))

    # -- state machine ---------------------------------------------------------------

    def evaluate_link(self, link: Link, now: float) -> None:
        """Re-derive one link's state from its physical condition."""
        if link.state is LinkState.MAINTENANCE:
            return
        params = self.params
        score = self.impairment_score(link, now)

        if score >= params.hard_down_threshold:
            link.loss_rate = 1.0
            link.set_state(now, LinkState.DOWN)
            self._set_bad(link, True)
            return

        if score < params.marginal_threshold:
            link.loss_rate = params.base_loss
            link.set_state(now, LinkState.UP)
            self._set_bad(link, False)
            return

        # Marginal band: Gilbert-Elliott oscillation.
        severity = ((score - params.marginal_threshold)
                    / (params.hard_down_threshold
                       - params.marginal_threshold))
        stress = self.environment.stress_multiplier(now)
        in_bad = self._get_bad(link)
        if in_bad:
            if self.rng.random() < params.flap_b2g_per_tick:
                in_bad = False
        else:
            p_fail = min(0.95, params.flap_g2b_per_tick
                         * (0.25 + severity) * stress)
            if self.rng.random() < p_fail:
                in_bad = True
        self._set_bad(link, in_bad)
        if in_bad:
            link.loss_rate = 1.0
            link.set_state(now, LinkState.DOWN)
        else:
            # Good phase of a marginal link: carries traffic with elevated
            # loss.  The repeated UP<->DOWN transitions are what the flap
            # detector in telemetry classifies as "flapping".
            link.loss_rate = self.marginal_loss(score)
            link.set_state(now, LinkState.UP)

    def begin_maintenance(self, link: Link, now: float) -> None:
        """Administratively take a link out of service for repair."""
        link.set_state(now, LinkState.MAINTENANCE)
        link.loss_rate = 1.0

    def release_from_maintenance(self, link: Link, now: float) -> None:
        """Return a link to service and immediately re-derive its state."""
        link.set_state(now, LinkState.UP)
        self._set_bad(link, False)
        self.evaluate_link(link, now)

    def tick(self, now: float) -> None:
        """Re-evaluate every link (legacy per-link loop; kept as the
        oracle the vectorized path is parity-tested against)."""
        for link in self.fabric.links.values():
            self.evaluate_link(link, now)

    # -- vectorized sweep ------------------------------------------------------

    def tick_all(self, now: float) -> None:
        """Re-evaluate every link in one array sweep.

        Bit-identical to :meth:`tick`: scores and masks are computed
        columnarily, the Gilbert-Elliott draws are batched in
        ``fabric.links`` order (``rng.random(k)`` consumes the stream
        exactly like ``k`` sequential scalar draws), and the good-phase
        marginal loss is computed with scalar Python pow over the
        (small) marginal subset because ``10.0 ** ndarray`` is *not*
        bit-identical to the scalar power the legacy path uses.
        """
        state = getattr(self.fabric, "state", None)
        if state is None:
            self.tick(now)
            return
        n = state.n_links
        if n == 0:
            return
        params = self.params

        code = state.state_code[:n]
        active = code != MAINTENANCE_CODE
        hard_fault = (
            state.cable_damaged[:n]
            | state.unit_hw_fault[0, :n] | state.unit_hw_fault[1, :n]
            | state.unit_fw_stuck[0, :n] | state.unit_fw_stuck[1, :n]
            | state.port_hw_fault[0, :n] | state.port_hw_fault[1, :n]
            | state.cable_end_scratched[0, :n]
            | state.cable_end_scratched[1, :n]
            | ~state.seated[0, :n] | ~state.seated[1, :n]
            | ~state.cable_attached[0, :n] | ~state.cable_attached[1, :n])

        stress = self.environment.stress_multiplier(now)
        oxidation = np.maximum(state.ox[0, :n], state.ox[1, :n])
        score = np.maximum(0.0, oxidation - params.oxidation_onset)
        dirt = np.maximum(
            np.maximum(state.cable_end_worst[0, :n],
                       state.cable_end_worst[1, :n]),
            np.maximum(state.recept_worst[0, :n],
                       state.recept_worst[1, :n]))
        score = score + np.maximum(0.0, dirt - IMPAIRMENT_THRESHOLD) * stress
        for link_id, until in self._disturbed_until.items():
            if until > now:
                row = state.index_of.get(link_id)
                if row is not None:
                    score[row] += params.disturbance_score
        score = np.minimum(score, 1.0)
        score[hard_fault] = 1.0

        hard_down = active & (score >= params.hard_down_threshold)
        clean = active & (score < params.marginal_threshold)
        marginal = active & ~hard_down & ~clean

        bad = self._bad.values
        new_code = code.copy()
        new_code[hard_down] = DOWN_CODE
        new_code[clean] = UP_CODE
        bad[:n][hard_down] = True
        bad[:n][clean] = False

        loss = state.loss_rate[:n]
        loss[hard_down] = 1.0
        loss[clean] = params.base_loss

        marginal_rows = state.rows_in_insertion_order(
            np.nonzero(marginal)[0])
        if marginal_rows.size:
            draws = self.rng.random(marginal_rows.size)
            severity = ((score[marginal_rows] - params.marginal_threshold)
                        / (params.hard_down_threshold
                           - params.marginal_threshold))
            p_fail = np.minimum(0.95, params.flap_g2b_per_tick
                                * (0.25 + severity) * stress)
            was_bad = bad[marginal_rows]
            now_bad = np.where(was_bad,
                               draws >= params.flap_b2g_per_tick,
                               draws < p_fail)
            bad[marginal_rows] = now_bad
            new_code[marginal_rows] = np.where(now_bad, DOWN_CODE, UP_CODE)
            loss[marginal_rows] = 1.0
            for row, row_bad in zip(marginal_rows, now_bad):
                if not row_bad:
                    loss[row] = self.marginal_loss(float(score[row]))

        changed = state.rows_in_insertion_order(
            np.nonzero(active & (new_code != code))[0])
        links_by_row = state.links_by_row
        for row in changed:
            links_by_row[row].set_state(now, STATE_OF[new_code[row]])

    def run(self, sim: Simulation):
        """Generator process: evaluate all links every tick."""
        while True:
            self.tick(sim.now)
            yield sim.timeout(self.params.tick_seconds)

    def run_vectorized(self, sim: Simulation):
        """Generator process around :meth:`tick_all` (same event
        structure as :meth:`run`, used when batch ticks are not
        coalesced)."""
        while True:
            self.tick_all(sim.now)
            yield sim.timeout(self.params.tick_seconds)
