"""Link health: physical condition → operational state and loss rate.

This is where gray failures live.  Each link's *impairment score* in
[0, 1] is derived from component physics (oxidation, end-face dirt,
hardware faults, physical disturbance) and the environment.  The score
maps to behaviour:

* below ``marginal_threshold`` — clean UP, negligible loss;
* the marginal band — a Gilbert–Elliott chain oscillates the link
  between UP (elevated loss) and short DOWN episodes: a *flapping* link
  whose tail-latency poison §1 describes;
* above ``hard_down_threshold`` — persistent DOWN.

The :class:`HealthModel` owns a periodic process that re-evaluates every
link; maintenance executors consult it after repairs, and the cascade
model injects disturbances through it.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from dcrobot.failures.environment import Environment
from dcrobot.network.endface import IMPAIRMENT_THRESHOLD
from dcrobot.network.enums import LinkState
from dcrobot.network.inventory import Fabric
from dcrobot.network.link import Link
from dcrobot.sim.engine import Simulation


@dataclasses.dataclass
class HealthParams:
    """Tunables of the impairment → behaviour mapping."""

    tick_seconds: float = 60.0
    marginal_threshold: float = 0.18
    hard_down_threshold: float = 0.75
    base_loss: float = 1e-9
    #: P(good→bad) per tick at unit severity and unit stress.
    flap_g2b_per_tick: float = 0.12
    #: P(bad→good) per tick: bad episodes last ~2 ticks.
    flap_b2g_per_tick: float = 0.5
    oxidation_onset: float = 0.15
    disturbance_score: float = 0.35
    max_marginal_loss: float = 0.02

    def __post_init__(self) -> None:
        if not 0 < self.marginal_threshold < self.hard_down_threshold <= 1:
            raise ValueError("thresholds must satisfy 0 < marginal < hard <= 1")
        if self.tick_seconds <= 0:
            raise ValueError("tick_seconds must be > 0")


class HealthModel:
    """Evaluates and drives the operational state of every link."""

    def __init__(self, fabric: Fabric, environment: Environment,
                 params: Optional[HealthParams] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.fabric = fabric
        self.environment = environment
        self.params = params or HealthParams()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._bad_state: Dict[str, bool] = {}
        self._disturbed_until: Dict[str, float] = {}

    # -- disturbance (cascade hook) ------------------------------------------

    def disturb(self, link_id: str, until: float) -> None:
        """Mark a link physically disturbed until the given time."""
        current = self._disturbed_until.get(link_id, 0.0)
        self._disturbed_until[link_id] = max(current, until)

    def is_disturbed(self, link_id: str, now: float) -> bool:
        return self._disturbed_until.get(link_id, 0.0) > now

    # -- scoring -----------------------------------------------------------------

    def impairment_score(self, link: Link, now: float) -> float:
        """Physical impairment in [0, 1]; 1.0 means hard-down faults."""
        if self._has_hard_fault(link):
            return 1.0
        if not self._physically_connected(link):
            return 1.0

        score = 0.0
        oxidation = max(link.transceiver_a.oxidation,
                        link.transceiver_b.oxidation)
        score += max(0.0, oxidation - self.params.oxidation_onset)

        dirt = link.cable.worst_contamination
        for unit in link.transceivers():
            if unit.receptacle is not None:
                dirt = max(dirt, unit.receptacle.worst_contamination)
        stress = self.environment.stress_multiplier(now)
        score += max(0.0, dirt - IMPAIRMENT_THRESHOLD) * stress

        if self.is_disturbed(link.id, now):
            score += self.params.disturbance_score
        return float(min(score, 1.0))

    def _has_hard_fault(self, link: Link) -> bool:
        if link.cable.damaged:
            return True
        for unit in link.transceivers():
            if unit.hw_fault or unit.firmware_stuck:
                return True
        for port in link.ports():
            if port.hw_fault:
                return True
        for end in (link.cable.end_a, link.cable.end_b):
            if end is not None and end.scratched.any():
                return True
        return False

    def _physically_connected(self, link: Link) -> bool:
        if not (link.transceiver_a.seated and link.transceiver_b.seated):
            return False
        return link.cable.attached_a and link.cable.attached_b

    def marginal_loss(self, score: float) -> float:
        """Packet-loss probability for a marginal link in its good phase.

        Log-linear in the link's position within the marginal band:
        barely-marginal links lose ~1e-6, links about to go hard-down
        lose ~1e-2 (capped) — the measured range for gray optical links.
        """
        params = self.params
        severity = (score - params.marginal_threshold) / (
            params.hard_down_threshold - params.marginal_threshold)
        severity = min(max(severity, 0.0), 1.0)
        loss = 10.0 ** (-6.0 + 4.8 * severity)
        return float(min(loss, params.max_marginal_loss))

    # -- state machine ---------------------------------------------------------------

    def evaluate_link(self, link: Link, now: float) -> None:
        """Re-derive one link's state from its physical condition."""
        if link.state is LinkState.MAINTENANCE:
            return
        params = self.params
        score = self.impairment_score(link, now)

        if score >= params.hard_down_threshold:
            link.loss_rate = 1.0
            link.set_state(now, LinkState.DOWN)
            self._bad_state[link.id] = True
            return

        if score < params.marginal_threshold:
            link.loss_rate = params.base_loss
            link.set_state(now, LinkState.UP)
            self._bad_state[link.id] = False
            return

        # Marginal band: Gilbert-Elliott oscillation.
        severity = ((score - params.marginal_threshold)
                    / (params.hard_down_threshold
                       - params.marginal_threshold))
        stress = self.environment.stress_multiplier(now)
        in_bad = self._bad_state.get(link.id, False)
        if in_bad:
            if self.rng.random() < params.flap_b2g_per_tick:
                in_bad = False
        else:
            p_fail = min(0.95, params.flap_g2b_per_tick
                         * (0.25 + severity) * stress)
            if self.rng.random() < p_fail:
                in_bad = True
        self._bad_state[link.id] = in_bad
        if in_bad:
            link.loss_rate = 1.0
            link.set_state(now, LinkState.DOWN)
        else:
            # Good phase of a marginal link: carries traffic with elevated
            # loss.  The repeated UP<->DOWN transitions are what the flap
            # detector in telemetry classifies as "flapping".
            link.loss_rate = self.marginal_loss(score)
            link.set_state(now, LinkState.UP)

    def begin_maintenance(self, link: Link, now: float) -> None:
        """Administratively take a link out of service for repair."""
        link.set_state(now, LinkState.MAINTENANCE)
        link.loss_rate = 1.0

    def release_from_maintenance(self, link: Link, now: float) -> None:
        """Return a link to service and immediately re-derive its state."""
        link.set_state(now, LinkState.UP)
        self._bad_state[link.id] = False
        self.evaluate_link(link, now)

    def tick(self, now: float) -> None:
        """Re-evaluate every link."""
        for link in self.fabric.links.values():
            self.evaluate_link(link, now)

    def run(self, sim: Simulation):
        """Generator process: evaluate all links every tick."""
        while True:
            self.tick(sim.now)
            yield sim.timeout(self.params.tick_seconds)
