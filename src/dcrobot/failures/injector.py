"""Fault injection: turns hazard processes into physical degradation.

One generator process per root cause samples exponential inter-arrival
times scaled by fleet size, picks a victim link, and mutates the
corresponding component's physical state.  The injector also keeps the
**ground-truth log** of every injected fault — the controller never sees
it (it only sees symptoms), but experiments and ML labelling do.
Observers registered with :meth:`FaultInjector.subscribe` hear about
each fault as it lands (the chaos experiments use this to score
incident resolution against ground truth online instead of post hoc).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

import numpy as np

from dcrobot.failures.hazards import per_year
from dcrobot.failures.health import HealthModel
from dcrobot.network.enums import DegradationKind
from dcrobot.network.inventory import Fabric
from dcrobot.network.link import Link
from dcrobot.sim.engine import Simulation


@dataclasses.dataclass(frozen=True)
class FailureRates:
    """Expected fault events per link-year, by root cause.

    Defaults follow the paper's qualitative ordering: transient-class
    causes (dirt, oxidation, wedged firmware) dominate; genuine hardware
    death is comparatively rare (§1, §3.2: reseat is the *usual first
    step* precisely because it so often works).
    """

    oxidation: float = 0.6
    firmware_stuck: float = 0.5
    contamination: float = 0.9
    transceiver_hw: float = 0.12
    cable_damage: float = 0.05
    switch_hw: float = 0.03

    def scaled(self, factor: float) -> "FailureRates":
        """All rates multiplied by ``factor`` (failure-rate sweeps)."""
        if factor < 0:
            raise ValueError(f"factor must be >= 0, got {factor}")
        return FailureRates(
            **{field.name: getattr(self, field.name) * factor
               for field in dataclasses.fields(self)})

    def rate_of(self, kind: DegradationKind) -> float:
        """Events per link-year for one cause."""
        return {
            DegradationKind.OXIDATION: self.oxidation,
            DegradationKind.FIRMWARE_STUCK: self.firmware_stuck,
            DegradationKind.CONTAMINATION: self.contamination,
            DegradationKind.TRANSCEIVER_HW: self.transceiver_hw,
            DegradationKind.CABLE_DAMAGE: self.cable_damage,
            DegradationKind.SWITCH_HW: self.switch_hw,
        }[kind]

    @property
    def total(self) -> float:
        """Total events per link-year across causes."""
        return (self.oxidation + self.firmware_stuck + self.contamination
                + self.transceiver_hw + self.cable_damage + self.switch_hw)


@dataclasses.dataclass(frozen=True)
class InjectedFault:
    """Ground-truth record of one injected fault."""

    time: float
    kind: DegradationKind
    link_id: str
    detail: str


class FaultInjector:
    """Drives physical degradation of a fabric over simulated time."""

    def __init__(self, fabric: Fabric, health: HealthModel,
                 rates: Optional[FailureRates] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.fabric = fabric
        self.health = health
        self.rates = rates or FailureRates()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.log: List[InjectedFault] = []
        self.counts: Dict[DegradationKind, int] = {
            kind: 0 for kind in DegradationKind}
        self._subscribers: List[Callable[[InjectedFault], None]] = []

    def subscribe(self,
                  subscriber: Callable[[InjectedFault], None]) -> None:
        """Register an observer invoked with every injected fault."""
        self._subscribers.append(subscriber)

    # -- application ------------------------------------------------------------

    def inject(self, kind: DegradationKind, link: Link,
               now: float) -> InjectedFault:
        """Apply one fault of the given kind to the given link."""
        detail = self._apply(kind, link)
        self.health.evaluate_link(link, now)
        fault = InjectedFault(now, kind, link.id, detail)
        self.log.append(fault)
        self.counts[kind] += 1
        for subscriber in self._subscribers:
            subscriber(fault)
        return fault

    def _apply(self, kind: DegradationKind, link: Link) -> str:
        rng = self.rng
        side = "a" if rng.random() < 0.5 else "b"
        unit = link.transceiver_at(side)
        if kind is DegradationKind.CONTAMINATION and not link.cable.cleanable:
            # Sealed optics (AOC) / copper (DAC) cannot collect end-face
            # dirt; the field-equivalent degradation is connector-contact
            # corrosion.
            kind = DegradationKind.OXIDATION
        if kind is DegradationKind.OXIDATION:
            amount = float(rng.uniform(0.35, 0.8))
            unit.oxidation = min(1.0, unit.oxidation + amount)
            return f"oxidation+{amount:.2f} on {unit.id}"
        if kind is DegradationKind.FIRMWARE_STUCK:
            unit.firmware_stuck = True
            return f"firmware wedge on {unit.id}"
        if kind is DegradationKind.CONTAMINATION:
            end = link.cable.endface(side)
            core_count = min(
                end.core_count, 1 + int(rng.integers(0, 3)))
            cores = rng.choice(end.core_count, size=core_count,
                               replace=False)
            amount = float(rng.uniform(0.3, 0.7))
            end.add_contamination(amount, cores=[int(c) for c in cores])
            if unit.receptacle is not None and rng.random() < 0.3:
                unit.receptacle.add_contamination(amount * 0.5)
            return (f"dirt+{amount:.2f} on {link.cable.id}:{side} "
                    f"cores={sorted(int(c) for c in cores)}")
        if kind is DegradationKind.TRANSCEIVER_HW:
            unit.fail_hardware()
            return f"hardware death of {unit.id}"
        if kind is DegradationKind.CABLE_DAMAGE:
            link.cable.damage()
            return f"damage to {link.cable.id}"
        if kind is DegradationKind.SWITCH_HW:
            port = link.port_a if side == "a" else link.port_b
            port.hw_fault = True
            return f"port fault on {port.id}"
        raise ValueError(f"unknown degradation kind {kind!r}")

    # -- processes ----------------------------------------------------------------

    def run_cause(self, sim: Simulation, kind: DegradationKind,
                  link_filter: Optional[Callable[[Link], bool]] = None):
        """Generator process injecting ``kind`` faults fleet-wide.

        The fleet-aggregate rate is ``per-link rate x link count``; each
        event picks a victim uniformly (links are exchangeable for a
        given cause).
        """
        per_link_rate = per_year(self.rates.rate_of(kind))
        while True:
            links = [link for link in self.fabric.links.values()
                     if link_filter is None or link_filter(link)]
            if not links or per_link_rate <= 0:
                yield sim.timeout(3600.0)
                continue
            aggregate = per_link_rate * len(links)
            yield sim.timeout(float(self.rng.exponential(1.0 / aggregate)))
            victim = links[int(self.rng.integers(len(links)))]
            self.inject(kind, victim, sim.now)

    def start(self, sim: Simulation) -> List:
        """Spawn one process per cause; returns the process handles."""
        return [sim.process(self.run_cause(sim, kind))
                for kind in DegradationKind]

    # -- ground-truth queries ------------------------------------------------------

    def faults_for_link(self, link_id: str) -> List[InjectedFault]:
        return [fault for fault in self.log if fault.link_id == link_id]

    def faults_between(self, start: float,
                       end: float) -> List[InjectedFault]:
        return [fault for fault in self.log if start <= fault.time < end]
