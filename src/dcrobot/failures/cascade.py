"""Cascading failures from physical contact (§1, §2).

"When technicians move fiber optical cables to reach a component, the
movement of the cables can cause transient packet loss in the touched
cables" — and occasionally permanent damage.  Every maintenance action
that physically enters a cable bundle calls :meth:`CascadeModel.touch`
with a *contact profile*; neighbours of the touched cable then suffer
transient disturbances or (rarely) damage, scaled by how invasive the
actor is.

Robots built for the task apply less force to fewer cables than a human
hand working blind in a dense loom — that difference is exactly the
``transient_probability`` / ``damage_probability`` gap between the
profiles used by :mod:`dcrobot.humans` and :mod:`dcrobot.robots`.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from dcrobot.failures.environment import Environment
from dcrobot.failures.health import HealthModel
from dcrobot.network.inventory import Fabric
from dcrobot.network.link import Link


@dataclasses.dataclass(frozen=True)
class ContactProfile:
    """How invasively an actor manipulates cables near the work item."""

    #: Fraction of bundle neighbours that get physically contacted.
    neighbor_contact_fraction: float
    #: P(transient disturbance) for each contacted neighbour.
    transient_probability: float
    #: P(permanent damage) for each contacted neighbour.
    damage_probability: float
    #: How long a transient disturbance lasts (seconds).
    disturbance_duration: float = 600.0
    #: Vibration magnitude injected into the environment while working.
    vibration_magnitude: float = 0.2

    def __post_init__(self) -> None:
        for name in ("neighbor_contact_fraction", "transient_probability",
                     "damage_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name}={value} outside [0, 1]")


#: A technician's hands working blind inside a dense loom (§3.4: pulling
#: cables is often *easier* than reaching a transceiver — at a price).
HUMAN_HANDS = ContactProfile(
    neighbor_contact_fraction=0.45,
    transient_probability=0.25,
    damage_probability=0.004,
    disturbance_duration=900.0,
    vibration_magnitude=0.5,
)

#: The paper's minimal-surface gripper: slides between cables, parts them
#: gently, presses only on the transceiver where designated (§3.3.1).
ROBOT_GRIPPER = ContactProfile(
    neighbor_contact_fraction=0.08,
    transient_probability=0.04,
    damage_probability=0.0002,
    disturbance_duration=120.0,
    vibration_magnitude=0.05,
)


@dataclasses.dataclass
class TouchReport:
    """What one physical contact event did to the neighbourhood."""

    touched_links: List[str]
    disturbed_links: List[str]
    damaged_links: List[str]

    @property
    def secondary_failures(self) -> int:
        """Collateral events caused by this one repair touch."""
        return len(self.disturbed_links) + len(self.damaged_links)


class CascadeModel:
    """Applies contact side-effects to a link's bundle neighbourhood."""

    def __init__(self, fabric: Fabric, health: HealthModel,
                 environment: Environment,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.fabric = fabric
        self.health = health
        self.environment = environment
        self.rng = rng if rng is not None else np.random.default_rng(0)
        #: All touch reports, for repair-amplification accounting.
        self.reports: List[TouchReport] = []

    def predict_touched(self, link: Link,
                        profile: ContactProfile) -> List[str]:
        """Expected contacted neighbour links — the pre-maintenance
        announcement the paper's §2 calls for ("automation can report
        which network cables will be contacted before the maintenance
        occurs")."""
        neighbors = self.fabric.bundle_neighbor_links(link)
        expected = int(round(len(neighbors)
                             * profile.neighbor_contact_fraction))
        return [neighbor.id for neighbor in neighbors[:expected]]

    def touch(self, link: Link, profile: ContactProfile,
              now: float) -> TouchReport:
        """Perform the physical contact around ``link``'s cable.

        Samples which neighbours are contacted, then applies transient
        disturbances (via the health model) and permanent cable damage.
        Also injects a vibration episode for the disturbance duration.
        """
        neighbors = self.fabric.bundle_neighbor_links(link)
        touched, disturbed, damaged = [], [], []
        for neighbor in neighbors:
            if self.rng.random() >= profile.neighbor_contact_fraction:
                continue
            touched.append(neighbor.id)
            if self.rng.random() < profile.transient_probability:
                self.health.disturb(
                    neighbor.id, now + profile.disturbance_duration)
                self.health.evaluate_link(neighbor, now)
                disturbed.append(neighbor.id)
            if self.rng.random() < profile.damage_probability:
                neighbor.cable.damage()
                self.health.evaluate_link(neighbor, now)
                damaged.append(neighbor.id)
        if profile.vibration_magnitude > 0:
            self.environment.add_vibration(
                now, profile.vibration_magnitude,
                profile.disturbance_duration)
        report = TouchReport(touched, disturbed, damaged)
        self.reports.append(report)
        return report

    @property
    def total_secondary_failures(self) -> int:
        return sum(report.secondary_failures for report in self.reports)
