"""Traffic substrate (S5): flows, ECMP routing, and FCT/latency model."""

from dcrobot.traffic.flows import Flow, FlowGenerator
from dcrobot.traffic.latency import (
    MTU_BYTES,
    PROPAGATION_S_PER_M,
    LatencyModel,
    LatencyParams,
    percentile,
)
from dcrobot.traffic.routing import EcmpRouter, NoRouteError

__all__ = [
    "Flow",
    "FlowGenerator",
    "EcmpRouter",
    "NoRouteError",
    "LatencyModel",
    "LatencyParams",
    "percentile",
    "MTU_BYTES",
    "PROPAGATION_S_PER_M",
]
