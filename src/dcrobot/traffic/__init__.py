"""Traffic substrate (S5): flows, ECMP routing, and FCT/latency model.

The columnar engine (S17) lives in :mod:`dcrobot.traffic.state`; the
object-path modules stay the API for single-flow work and the parity
oracle (:mod:`dcrobot.traffic.legacy`) for the batch path.
"""

from dcrobot.traffic.driver import TrafficDriver, WindowStats
from dcrobot.traffic.flows import Flow, FlowGenerator, sample_sizes
from dcrobot.traffic.latency import (
    MTU_BYTES,
    PROPAGATION_S_PER_M,
    LatencyModel,
    LatencyParams,
    combined_loss,
    congestion_loss,
    percentile,
)
from dcrobot.traffic.legacy import LegacyTrafficModel
from dcrobot.traffic.patterns import (
    HotspotPattern,
    IncastPattern,
    UniformPattern,
)
from dcrobot.traffic.routing import (
    EcmpRouter,
    NoRouteError,
    lexicographic_shortest_paths,
)
from dcrobot.traffic.state import TrafficState, WindowResult

__all__ = [
    "Flow",
    "FlowGenerator",
    "sample_sizes",
    "EcmpRouter",
    "NoRouteError",
    "lexicographic_shortest_paths",
    "LatencyModel",
    "LatencyParams",
    "percentile",
    "congestion_loss",
    "combined_loss",
    "MTU_BYTES",
    "PROPAGATION_S_PER_M",
    "TrafficState",
    "WindowResult",
    "LegacyTrafficModel",
    "TrafficDriver",
    "WindowStats",
    "UniformPattern",
    "HotspotPattern",
    "IncastPattern",
]
