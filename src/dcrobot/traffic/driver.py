"""The traffic driver: offers synthetic windows as a sim process.

One process, one heap event per window: draw a traffic matrix sample
(pattern + mice/elephant sizes), offer it to the columnar engine, and
log per-window stats — p99 FCT, congestion drops, and whether
maintenance (drains or links under physical work) was active during
the window, which is what E16's naive-vs-impact-aware comparison
slices on.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Tuple

import numpy as np

from dcrobot.network.state import MAINTENANCE_CODE
from dcrobot.traffic.flows import sample_sizes
from dcrobot.traffic.patterns import UniformPattern
from dcrobot.traffic.state import TrafficState


@dataclasses.dataclass
class WindowStats:
    """One offered window, as the driver's log records it."""

    time: float
    flows: int
    unroutable: int
    p99_fct: float
    p50_fct: float
    offered_bytes: float
    congestion_lost_bytes: float
    #: Drains or in-progress physical work overlapped this window.
    maintenance_active: bool


class TrafficDriver:
    """Periodically offers traffic windows to a :class:`TrafficState`.

    ``schedule`` customizes intensity over simulated time: called with
    ``now``, it returns ``(flow_count, pattern)`` for the window that
    just elapsed.  The default offers ``flows_per_window`` uniform
    flows every window.
    """

    def __init__(self, traffic: TrafficState,
                 rng: Optional[np.random.Generator] = None,
                 window_seconds: float = 1800.0,
                 flows_per_window: int = 500,
                 pattern=None,
                 schedule: Optional[
                     Callable[[float], Tuple[int, object]]] = None,
                 sample_seconds: Optional[float] = None) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be > 0")
        if flows_per_window < 1:
            raise ValueError("flows_per_window must be >= 1")
        if sample_seconds is not None and sample_seconds <= 0:
            raise ValueError("sample_seconds must be > 0")
        self.traffic = traffic
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.window_seconds = window_seconds
        #: Accounting period each offered window represents.  Defaults
        #: to the cadence; set smaller to model each window as a short
        #: peak-rate sample taken every ``window_seconds`` (capacity
        #: and congestion are normalized over this, not the cadence).
        self.sample_seconds = (sample_seconds if sample_seconds
                               is not None else window_seconds)
        self.flows_per_window = flows_per_window
        self.pattern = pattern or UniformPattern()
        self.schedule = schedule
        self.windows: List[WindowStats] = []
        self._next_flow_id = 0

    def run(self, sim):
        """The generator process: one offered window per period."""
        while True:
            yield sim.timeout(self.window_seconds)
            self.offer(sim.now)

    def offer(self, now: float) -> WindowStats:
        """Offer one window at simulated time ``now``."""
        count, pattern = self.flows_per_window, self.pattern
        if self.schedule is not None:
            count, pattern = self.schedule(now)
        traffic = self.traffic
        n_endpoints = len(traffic.endpoints)
        src, dst = pattern.pairs(self.rng, count, n_endpoints)
        sizes = sample_sizes(self.rng, count)
        flow_ids = np.arange(self._next_flow_id,
                             self._next_flow_id + count,
                             dtype=np.int64)
        self._next_flow_id += count
        result = traffic.offer_window(src, dst, sizes, flow_ids,
                                      self.sample_seconds)
        stats = WindowStats(
            time=now,
            flows=count,
            unroutable=result.unroutable,
            p99_fct=result.fct_percentile(99),
            p50_fct=result.fct_percentile(50),
            offered_bytes=float(result.offered.sum()),
            congestion_lost_bytes=float(
                (result.offered * result.congestion).sum()),
            maintenance_active=self._maintenance_active())
        self.windows.append(stats)
        return stats

    def _maintenance_active(self) -> bool:
        fs = self.traffic.fabric.state
        if self.traffic.drained_links:
            return True
        return bool((fs.state_code[:fs.n_links]
                     == MAINTENANCE_CODE).any())

    # -- reporting -----------------------------------------------------------

    def p99_over(self, windows: List[WindowStats]) -> float:
        """p99 of the per-window p99s (NaN-free; NaN if none)."""
        samples = [w.p99_fct for w in windows
                   if not np.isnan(w.p99_fct)]
        if not samples:
            return float("nan")
        return float(np.percentile(samples, 99))

    def maintenance_windows(self) -> List[WindowStats]:
        return [w for w in self.windows if w.maintenance_active]
