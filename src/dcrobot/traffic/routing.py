"""ECMP routing over the operational fabric.

The router computes shortest paths on the *operational* graph (links in
a traffic-carrying state) and load-balances across equal-cost choices by
flow hash, as a datacenter ECMP dataplane would.  Paths are cached per
topology version; maintenance and failures bump the version.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from dcrobot.network.inventory import Fabric
from dcrobot.network.link import Link


class NoRouteError(Exception):
    """No operational path exists between the endpoints."""


class EcmpRouter:
    """Shortest-path ECMP with per-flow hashing and drain awareness."""

    def __init__(self, fabric: Fabric, max_equal_paths: int = 8) -> None:
        if max_equal_paths < 1:
            raise ValueError("max_equal_paths must be >= 1")
        self.fabric = fabric
        self.max_equal_paths = max_equal_paths
        self._version = 0
        self._cache: Dict[Tuple[str, str], List[List[str]]] = {}
        #: Links administratively removed from routing (pre-repair drain).
        self._drained: set = set()

    # -- topology versioning ------------------------------------------------

    def invalidate(self) -> None:
        """Drop cached paths (call after any link state change)."""
        self._version += 1
        self._cache.clear()

    def drain(self, link_id: str) -> None:
        """Remove a link from routing ahead of maintenance (§2's
        impact-aware repairs migrate load *before* touching hardware)."""
        self._drained.add(link_id)
        self.invalidate()

    def undrain(self, link_id: str) -> None:
        """Return a drained link to routing."""
        self._drained.discard(link_id)
        self.invalidate()

    @property
    def drained_links(self) -> set:
        return set(self._drained)

    # -- path computation -----------------------------------------------------

    def _operational_graph(self) -> nx.MultiGraph:
        graph = nx.MultiGraph()
        graph.add_nodes_from(self.fabric.switches)
        graph.add_nodes_from(self.fabric.hosts)
        for link in self.fabric.links.values():
            if not link.operational or link.id in self._drained:
                continue
            a, b = link.endpoint_ids
            graph.add_edge(a, b, key=link.id)
        return graph

    def equal_cost_paths(self, src: str, dst: str) -> List[List[str]]:
        """All shortest node-paths (capped at ``max_equal_paths``)."""
        key = (src, dst)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        graph = self._operational_graph()
        try:
            paths = []
            for path in nx.all_shortest_paths(graph, src, dst):
                paths.append(path)
                if len(paths) >= self.max_equal_paths:
                    break
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            paths = []
        self._cache[key] = paths
        return paths

    def links_on_path(self, path: List[str]) -> List[Link]:
        """Pick one operational link per hop of a node path.

        With parallel links, the least-lossy operational one is chosen
        (dataplanes hash across members; taking the best member gives
        the optimistic bound, which is consistent across policies).
        """
        hops = []
        for a, b in zip(path, path[1:]):
            candidates = [
                link for link in self.fabric.links_of(a)
                if set(link.endpoint_ids) == {a, b} and link.operational
                and link.id not in self._drained]
            if not candidates:
                raise NoRouteError(f"no operational link {a}<->{b}")
            hops.append(min(candidates, key=lambda link: link.loss_rate))
        return hops

    def route(self, src: str, dst: str,
              flow_hash: int = 0) -> List[Link]:
        """The link path a flow with the given hash takes."""
        paths = self.equal_cost_paths(src, dst)
        if not paths:
            raise NoRouteError(f"no path {src} -> {dst}")
        path = paths[flow_hash % len(paths)]
        return self.links_on_path(path)

    def has_route(self, src: str, dst: str) -> bool:
        return bool(self.equal_cost_paths(src, dst))

    # -- fabric-level summaries ---------------------------------------------------

    def connectivity_fraction(self, endpoints: List[str],
                              rng: Optional[np.random.Generator] = None,
                              sample_pairs: int = 200) -> float:
        """Fraction of endpoint pairs with an operational route.

        For large endpoint sets a uniform sample of pairs is used.
        """
        pairs = [(a, b) for i, a in enumerate(endpoints)
                 for b in endpoints[i + 1:]]
        if not pairs:
            return 1.0
        if len(pairs) > sample_pairs and rng is not None:
            indices = rng.choice(len(pairs), size=sample_pairs,
                                 replace=False)
            pairs = [pairs[int(i)] for i in indices]
        reachable = sum(1 for a, b in pairs if self.has_route(a, b))
        return reachable / len(pairs)
