"""ECMP routing over the operational fabric.

The router computes shortest paths on the *operational* graph (links in
a traffic-carrying state) and load-balances across equal-cost choices by
flow hash, as a datacenter ECMP dataplane would.  Paths are cached per
topology version; maintenance and failures bump the version.

Path enumeration is deterministic and *specified*: all shortest paths
in lexicographic node-id order, capped at ``max_equal_paths``.  The
columnar engine (:class:`dcrobot.traffic.state.TrafficState`) implements
the same spec over integer node indices, which is what lets the two
produce identical path sets — this per-pair object router stays the
parity oracle.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from dcrobot.network.inventory import Fabric
from dcrobot.network.link import Link


class NoRouteError(Exception):
    """No operational path exists between the endpoints."""


def lexicographic_shortest_paths(neighbors: Dict, src, dst,
                                 cap: int) -> List[List]:
    """All shortest ``src -> dst`` node paths, lexicographic, capped.

    ``neighbors`` maps node -> *sorted* sequence of neighbor nodes;
    nodes absent from the map have no operational adjacency.  This is
    the shared enumeration spec: BFS distances from both endpoints
    define the shortest-path DAG, and a DFS over sorted neighbors emits
    its paths in lexicographic order until ``cap`` are collected.
    """
    if src == dst:
        return [[src]]
    if src not in neighbors or dst not in neighbors:
        return []
    dist_src = _bfs_distances(neighbors, src)
    if dst not in dist_src:
        return []
    dist_dst = _bfs_distances(neighbors, dst)
    total = dist_src[dst]
    paths: List[List] = []
    stack = [src]

    def descend(node) -> bool:
        if node == dst:
            paths.append(list(stack))
            return len(paths) >= cap
        here = dist_src[node]
        for step in neighbors[node]:
            if dist_src.get(step) == here + 1 \
                    and dist_dst.get(step, -1) == total - here - 1:
                stack.append(step)
                if descend(step):
                    return True
                stack.pop()
        return False

    descend(src)
    return paths


def _bfs_distances(neighbors: Dict, origin) -> Dict:
    dist = {origin: 0}
    frontier = deque([origin])
    while frontier:
        node = frontier.popleft()
        here = dist[node]
        for step in neighbors.get(node, ()):
            if step not in dist:
                dist[step] = here + 1
                frontier.append(step)
    return dist


class EcmpRouter:
    """Shortest-path ECMP with per-flow hashing and drain awareness."""

    def __init__(self, fabric: Fabric, max_equal_paths: int = 8) -> None:
        if max_equal_paths < 1:
            raise ValueError("max_equal_paths must be >= 1")
        self.fabric = fabric
        self.max_equal_paths = max_equal_paths
        self._version = 0
        self._cache: Dict[Tuple[str, str], List[List[str]]] = {}
        self._neighbors: Optional[Dict[str, List[str]]] = None
        #: Links administratively removed from routing (pre-repair drain).
        self._drained: set = set()

    # -- topology versioning ------------------------------------------------

    def invalidate(self) -> None:
        """Drop cached paths (call after any link state change)."""
        self._version += 1
        self._cache.clear()
        self._neighbors = None

    def drain(self, link_id: str) -> None:
        """Remove a link from routing ahead of maintenance (§2's
        impact-aware repairs migrate load *before* touching hardware)."""
        self._drained.add(link_id)
        self.invalidate()

    def undrain(self, link_id: str) -> None:
        """Return a drained link to routing."""
        self._drained.discard(link_id)
        self.invalidate()

    @property
    def drained_links(self) -> set:
        return set(self._drained)

    # -- path computation -----------------------------------------------------

    def _operational_neighbors(self) -> Dict[str, List[str]]:
        """Node -> sorted distinct neighbors over usable links."""
        if self._neighbors is not None:
            return self._neighbors
        adjacency: Dict[str, set] = {}
        for link in self.fabric.links.values():
            if not link.operational or link.id in self._drained:
                continue
            a, b = link.endpoint_ids
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)
        self._neighbors = {node: sorted(peers)
                           for node, peers in adjacency.items()}
        return self._neighbors

    def equal_cost_paths(self, src: str, dst: str) -> List[List[str]]:
        """All shortest node-paths (capped at ``max_equal_paths``)."""
        key = (src, dst)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        paths = lexicographic_shortest_paths(
            self._operational_neighbors(), src, dst,
            self.max_equal_paths)
        self._cache[key] = paths
        return paths

    def links_on_path(self, path: List[str]) -> List[Link]:
        """Pick one operational link per hop of a node path.

        With parallel links, the least-lossy operational one is chosen
        (dataplanes hash across members; taking the best member gives
        the optimistic bound, which is consistent across policies).
        """
        hops = []
        for a, b in zip(path, path[1:]):
            candidates = [
                link for link in self.fabric.links_of(a)
                if set(link.endpoint_ids) == {a, b} and link.operational
                and link.id not in self._drained]
            if not candidates:
                raise NoRouteError(f"no operational link {a}<->{b}")
            hops.append(min(candidates, key=lambda link: link.loss_rate))
        return hops

    def route(self, src: str, dst: str,
              flow_hash: int = 0) -> List[Link]:
        """The link path a flow with the given hash takes."""
        paths = self.equal_cost_paths(src, dst)
        if not paths:
            raise NoRouteError(f"no path {src} -> {dst}")
        path = paths[flow_hash % len(paths)]
        return self.links_on_path(path)

    def has_route(self, src: str, dst: str) -> bool:
        return bool(self.equal_cost_paths(src, dst))

    # -- fabric-level summaries ---------------------------------------------------

    def connectivity_fraction(self, endpoints: Sequence[str],
                              rng: Optional[np.random.Generator] = None,
                              sample_pairs: int = 200) -> float:
        """Fraction of endpoint pairs with an operational route.

        For large endpoint sets a uniform sample of pairs is used.
        Sampled pairs are drawn directly from the combination index
        space — the O(n^2) pair list is never materialized, so
        hall-scale endpoint sets stay cheap.
        """
        n = len(endpoints)
        n_pairs = n * (n - 1) // 2
        if n_pairs == 0:
            return 1.0
        if n_pairs > sample_pairs and rng is not None:
            indices = rng.choice(n_pairs, size=sample_pairs,
                                 replace=False)
            # Linear index L in lexicographic (i, j>i) order: row i
            # starts at offset[i] = i*n - i*(i+1)/2.
            i_range = np.arange(n - 1, dtype=np.int64)
            offsets = i_range * n - i_range * (i_range + 1) // 2
            rows = np.searchsorted(offsets, indices, side="right") - 1
            cols = indices - offsets[rows] + rows + 1
            pairs = [(endpoints[int(i)], endpoints[int(j)])
                     for i, j in zip(rows, cols)]
            reachable = sum(1 for a, b in pairs if self.has_route(a, b))
            return reachable / len(pairs)
        reachable = sum(
            1 for a, b in itertools.combinations(endpoints, 2)
            if self.has_route(a, b))
        return reachable / n_pairs
