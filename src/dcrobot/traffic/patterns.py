"""Synthetic traffic matrices: uniform, hotspot, incast.

Each pattern emits one window of (src, dst) endpoint-index pairs as a
single blocked vectorized draw — the shapes datacenter traffic studies
use to stress fabrics (all-to-all baseline, a hot pod sourcing a
disproportionate share, and fan-in onto a few targets).  Endpoints are
addressed by index into the engine's endpoint list; "hot" and "target"
subsets are index prefixes, so a pattern composes with any endpoint
ordering the caller arranges.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np


def _distinct_dst(rng: np.random.Generator, src: np.ndarray,
                  n_endpoints: int) -> np.ndarray:
    """Uniform destinations distinct from ``src`` (offset trick)."""
    dst = rng.integers(n_endpoints - 1, size=len(src))
    return dst + (dst >= src)


@dataclasses.dataclass(frozen=True)
class UniformPattern:
    """Every ordered endpoint pair equally likely."""

    def pairs(self, rng: np.random.Generator, count: int,
              n_endpoints: int) -> Tuple[np.ndarray, np.ndarray]:
        src = rng.integers(n_endpoints, size=count)
        return src, _distinct_dst(rng, src, n_endpoints)


@dataclasses.dataclass(frozen=True)
class HotspotPattern:
    """A prefix of endpoints sources a disproportionate share.

    With probability ``hot_probability`` a flow's source is drawn from
    the first ``hot_endpoints`` endpoints; destinations stay uniform.
    """

    hot_endpoints: int
    hot_probability: float = 0.5

    def __post_init__(self) -> None:
        if self.hot_endpoints < 1:
            raise ValueError("need >= 1 hot endpoint")
        if not 0.0 <= self.hot_probability <= 1.0:
            raise ValueError("hot_probability must be in [0, 1]")

    def pairs(self, rng: np.random.Generator, count: int,
              n_endpoints: int) -> Tuple[np.ndarray, np.ndarray]:
        hot = rng.random(count) < self.hot_probability
        src = rng.integers(n_endpoints, size=count)
        hot_count = min(self.hot_endpoints, n_endpoints)
        src[hot] = rng.integers(hot_count, size=int(hot.sum()))
        return src, _distinct_dst(rng, src, n_endpoints)


@dataclasses.dataclass(frozen=True)
class IncastPattern:
    """Fan-in: flows converge on a prefix of target endpoints.

    With probability ``incast_probability`` a flow's destination is
    one of the first ``targets`` endpoints; sources stay uniform and
    distinct from the destination.
    """

    targets: int = 1
    incast_probability: float = 0.5

    def __post_init__(self) -> None:
        if self.targets < 1:
            raise ValueError("need >= 1 incast target")
        if not 0.0 <= self.incast_probability <= 1.0:
            raise ValueError("incast_probability must be in [0, 1]")

    def pairs(self, rng: np.random.Generator, count: int,
              n_endpoints: int) -> Tuple[np.ndarray, np.ndarray]:
        fan_in = rng.random(count) < self.incast_probability
        dst = rng.integers(n_endpoints, size=count)
        target_count = min(self.targets, n_endpoints)
        dst[fan_in] = rng.integers(target_count, size=int(fan_in.sum()))
        src = rng.integers(n_endpoints - 1, size=count)
        return src + (src >= dst), dst
