"""Flow workload model.

Flows are sampled, not individually simulated: experiments periodically
draw a batch of flows between attachment points and push them through
the routing + latency models to observe the fabric as applications
would.  Sizes follow the heavy-tailed mice/elephants mix standard in
datacenter measurement studies.

Batch sampling is vectorized: one blocked draw per quantity (sources,
destination offsets, mixture thresholds, lognormal sizes) instead of a
Python loop interleaving four scalar draws per flow.  The blocked
stream is the *defined* batch order — numpy fills array-parameter
distributions element by element, so a scalar loop making the same
blocked draws consumes the identical stream (see
``tests/traffic/test_traffic_parity.py``).
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import List, Optional, Sequence, Tuple

import numpy as np

#: Mice/elephant mixture: (probability, lognormal mean, sigma).
SIZE_MIX: Sequence[Tuple[float, float, float]] = (
    (0.8, np.log(20e3), 1.0),    # mice ~20 KB
    (0.2, np.log(10e6), 1.2),    # elephants ~10 MB
)

MIN_FLOW_BYTES = 64


@dataclasses.dataclass(frozen=True)
class Flow:
    """One application flow between two attachment nodes."""

    flow_id: int
    src: str
    dst: str
    size_bytes: int

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("flow endpoints must differ")
        if self.size_bytes <= 0:
            raise ValueError(f"size must be > 0, got {self.size_bytes}")


def sample_sizes(rng: np.random.Generator, count: int) -> np.ndarray:
    """``count`` flow sizes (int64 bytes) from the mice/elephant mix.

    Three blocked draws: mixture thresholds, then lognormals with
    array-valued (mean, sigma) selected per flow.
    """
    thresholds = rng.random(count)
    cumulative = np.cumsum([probability for probability, _, _
                            in SIZE_MIX])
    component = np.searchsorted(cumulative, thresholds, side="right")
    component = np.minimum(component, len(SIZE_MIX) - 1)
    means = np.array([mean for _, mean, _ in SIZE_MIX])[component]
    sigmas = np.array([sigma for _, _, sigma in SIZE_MIX])[component]
    sizes = rng.lognormal(means, sigmas).astype(np.int64)
    return np.maximum(MIN_FLOW_BYTES, sizes)


class FlowGenerator:
    """Draws flows between uniformly chosen distinct endpoints."""

    SIZE_MIX = SIZE_MIX

    def __init__(self, endpoints: Sequence[str],
                 rng: Optional[np.random.Generator] = None) -> None:
        if len(endpoints) < 2:
            raise ValueError("need at least two endpoints")
        self.endpoints = list(endpoints)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._counter = itertools.count()

    def sample_flow(self) -> Flow:
        """One flow with distinct uniform endpoints and mixed size."""
        src_index = int(self.rng.integers(len(self.endpoints)))
        dst_index = int(self.rng.integers(len(self.endpoints) - 1))
        if dst_index >= src_index:
            dst_index += 1
        threshold = self.rng.random()
        cumulative = 0.0
        mean, sigma = self.SIZE_MIX[-1][1:]
        for probability, mix_mean, mix_sigma in self.SIZE_MIX:
            cumulative += probability
            if threshold < cumulative:
                mean, sigma = mix_mean, mix_sigma
                break
        size = max(MIN_FLOW_BYTES, int(self.rng.lognormal(mean, sigma)))
        return Flow(next(self._counter), self.endpoints[src_index],
                    self.endpoints[dst_index], size)

    def sample_arrays(self, count: int):
        """``count`` flows as columns: (flow_ids, src_idx, dst_idx,
        sizes) — the columnar engine's native input shape."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        n = len(self.endpoints)
        src_index = self.rng.integers(n, size=count)
        dst_index = self.rng.integers(n - 1, size=count)
        dst_index = dst_index + (dst_index >= src_index)
        sizes = sample_sizes(self.rng, count)
        flow_ids = np.array([next(self._counter)
                             for _ in range(count)], dtype=np.int64)
        return flow_ids, src_index.astype(np.int64), \
            dst_index.astype(np.int64), sizes

    def sample_batch(self, count: int) -> List[Flow]:
        """``count`` independent flows (one vectorized blocked draw)."""
        flow_ids, src_index, dst_index, sizes = self.sample_arrays(count)
        endpoints = self.endpoints
        return [Flow(int(fid), endpoints[int(si)], endpoints[int(di)],
                     int(size))
                for fid, si, di, size
                in zip(flow_ids, src_index, dst_index, sizes)]
