"""Flow workload model.

Flows are sampled, not individually simulated: experiments periodically
draw a batch of flows between attachment points and push them through
the routing + latency models to observe the fabric as applications
would.  Sizes follow the heavy-tailed mice/elephants mix standard in
datacenter measurement studies.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclasses.dataclass(frozen=True)
class Flow:
    """One application flow between two attachment nodes."""

    flow_id: int
    src: str
    dst: str
    size_bytes: int

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("flow endpoints must differ")
        if self.size_bytes <= 0:
            raise ValueError(f"size must be > 0, got {self.size_bytes}")


class FlowGenerator:
    """Draws flows between uniformly chosen distinct endpoints."""

    #: Mice/elephant mixture: (probability, lognormal mean, sigma).
    SIZE_MIX: Sequence[Tuple[float, float, float]] = (
        (0.8, np.log(20e3), 1.0),    # mice ~20 KB
        (0.2, np.log(10e6), 1.2),    # elephants ~10 MB
    )

    def __init__(self, endpoints: Sequence[str],
                 rng: Optional[np.random.Generator] = None) -> None:
        if len(endpoints) < 2:
            raise ValueError("need at least two endpoints")
        self.endpoints = list(endpoints)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._counter = itertools.count()

    def sample_flow(self) -> Flow:
        """One flow with distinct uniform endpoints and mixed size."""
        src_index = int(self.rng.integers(len(self.endpoints)))
        dst_index = int(self.rng.integers(len(self.endpoints) - 1))
        if dst_index >= src_index:
            dst_index += 1
        threshold = self.rng.random()
        cumulative = 0.0
        mean, sigma = self.SIZE_MIX[-1][1:]
        for probability, mix_mean, mix_sigma in self.SIZE_MIX:
            cumulative += probability
            if threshold < cumulative:
                mean, sigma = mix_mean, mix_sigma
                break
        size = max(64, int(self.rng.lognormal(mean, sigma)))
        return Flow(next(self._counter), self.endpoints[src_index],
                    self.endpoints[dst_index], size)

    def sample_batch(self, count: int) -> List[Flow]:
        """``count`` independent flows."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return [self.sample_flow() for _ in range(count)]
