"""Columnar traffic engine: ECMP + congestion + FCT as array kernels.

The per-flow object path (:class:`~dcrobot.traffic.routing.EcmpRouter`
+ :class:`~dcrobot.traffic.latency.LatencyModel`) walks Python objects
per flow and caps traffic experiments at toy fabric sizes, exactly as
the per-link loops once capped the physics (PR 5).
:class:`TrafficState` is the traffic analogue of
:class:`~dcrobot.network.state.FabricState`: whole windows of flows are
offered as arrays, and every hot quantity — path membership, ECMP
member choice, per-link offered bytes, congestion loss, flow-completion
times — is computed by vectorized kernels.

Three structural ideas make it fast without changing the physics:

* **Class-cached paths.**  Endpoints whose *usable* neighbor sets are
  identical (pod twins in a fat-tree) are interchangeable for shortest
  paths: no shortest path can route *through* a twin of either
  endpoint (any such path admits a shortcut).  Paths are therefore
  enumerated once per ``(src_class, dst_class)`` — interiors only —
  and endpoint members are substituted in, collapsing the per-pair
  cache of the object router to a per-class-pair cache.
* **Generation-keyed invalidation.**  Instead of the object router's
  manual ``invalidate()`` protocol, caches key on
  ``FabricState.route_generation`` (bumped on structural changes and
  on carrier-crossing state transitions) plus a local drain epoch.
* **Unbuffered accumulation.**  Per-link offered bytes and flow counts
  are accumulated with ``np.add.at`` from flow-major flattened hop
  arrays, which performs the same float additions in the same order as
  the legacy per-flow loop — so utilization totals agree bit for bit
  with the :class:`~dcrobot.traffic.legacy.LegacyTrafficModel` oracle.

Path enumeration follows the shared lexicographic spec in
:func:`dcrobot.traffic.routing.lexicographic_shortest_paths`; member
selection per hop reproduces ``links_on_path`` (least-lossy usable
parallel link, insertion order breaking ties); FCT sampling reproduces
``LatencyModel.sample_fct`` including RNG stream order (retry draws
only for lossy routable flows, in flow order).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from dcrobot.network.inventory import Fabric
from dcrobot.network.state import FLAPPING_CODE
from dcrobot.obs import NULL_OBS
from dcrobot.traffic.latency import (
    MTU_BYTES,
    PROPAGATION_S_PER_M,
    LatencyParams,
    combined_loss,
    congestion_loss,
)

_NO_ROUTE = None


@dataclasses.dataclass
class WindowResult:
    """One offered traffic window, measured."""

    #: Per-flow completion time; NaN where no route existed.
    fct: np.ndarray
    #: Per-flow routability mask.
    routable: np.ndarray
    #: Per-row offered bytes this window (length ``n_links``).
    offered: np.ndarray
    #: Per-row congestion loss fraction this window.
    congestion: np.ndarray
    window_seconds: float

    @property
    def flows(self) -> int:
        return len(self.fct)

    @property
    def unroutable(self) -> int:
        return int(len(self.routable) - self.routable.sum())

    def fct_percentile(self, q: float) -> float:
        """Percentile over routable flows (NaN if none routed)."""
        samples = self.fct[self.routable]
        if len(samples) == 0:
            return float("nan")
        return float(np.percentile(samples, q))


class TrafficState:
    """Struct-of-arrays traffic engine over one fabric.

    ``endpoints`` are the attachment nodes flows run between (ToR
    switches in the fat-tree experiments); offered windows address them
    by index, which is what :meth:`FlowGenerator.sample_arrays` and the
    matrix samplers in :mod:`dcrobot.traffic.patterns` emit.
    """

    def __init__(self, fabric: Fabric, endpoints: Sequence[str],
                 params: Optional[LatencyParams] = None,
                 max_equal_paths: int = 8,
                 rng: Optional[np.random.Generator] = None,
                 obs=NULL_OBS) -> None:
        if max_equal_paths < 1:
            raise ValueError("max_equal_paths must be >= 1")
        if len(endpoints) < 2:
            raise ValueError("need at least two endpoints")
        self.fabric = fabric
        self.endpoints = list(endpoints)
        self.params = params or LatencyParams()
        self.max_equal_paths = max_equal_paths
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.obs = obs
        #: Cumulative per-link accounting, row-aligned through
        #: structural changes by the fabric state itself.
        fs = fabric.state
        self.util_bytes = fs.add_link_column(0.0)
        self.util_flows = fs.add_link_column(0.0)
        self.lost_bytes = fs.add_link_column(0.0)
        self._drained: set = set()
        self._drain_epoch = 0
        #: Last offered window, kept for impact scoring.
        self.last_offered: Optional[np.ndarray] = None
        self.last_congestion: Optional[np.ndarray] = None
        self.last_window_seconds = 0.0
        self._structure_gen = -1
        self._route_key = None
        self._loss_snapshot: Optional[np.ndarray] = None

    # -- drains (administrative removal ahead of maintenance) ---------------

    def drain(self, link_id: str) -> None:
        """Remove a link from routing ahead of maintenance."""
        if link_id not in self._drained:
            self._drained.add(link_id)
            self._drain_epoch += 1

    def undrain(self, link_id: str) -> None:
        """Return a drained link to routing."""
        if link_id in self._drained:
            self._drained.discard(link_id)
            self._drain_epoch += 1

    @property
    def drained_links(self) -> set:
        return set(self._drained)

    # -- copy-on-write forking ----------------------------------------------

    def fork(self, fabric, rng: Optional[np.random.Generator] = None) \
            -> "TrafficState":
        """A twin engine bound to a forked :class:`FabricState`.

        ``fabric`` is the twin's fabric handle — typically a proxy
        whose ``.state`` is ``FabricState.fork()`` of this engine's
        fabric and whose other attributes forward to the live fabric
        (structure is only re-read if the twin's generation moves).
        The fork shares every immutable routing artifact with the
        parent — structure snapshots, usable adjacency, twin classes,
        and the expensive per-class-pair path-interior cache — and
        resets only the loss-dependent member resolution, which is
        rebuilt lazily per side.  Cumulative accounting columns start
        at zero on the twin (they join the *forked* state's consumer
        column list, so the parent's accounting is untouched).
        """
        self._refresh()
        twin = TrafficState.__new__(TrafficState)
        twin.fabric = fabric
        twin.endpoints = list(self.endpoints)
        twin.params = self.params
        twin.max_equal_paths = self.max_equal_paths
        twin.rng = rng if rng is not None else np.random.default_rng(0)
        twin.obs = NULL_OBS
        fs = fabric.state
        twin.util_bytes = fs.add_link_column(0.0)
        twin.util_flows = fs.add_link_column(0.0)
        twin.lost_bytes = fs.add_link_column(0.0)
        twin._drained = set(self._drained)
        twin._drain_epoch = self._drain_epoch
        twin.last_offered = None
        twin.last_congestion = None
        twin.last_window_seconds = 0.0
        # Structure snapshot (read-only arrays, shared).
        twin._node_ids = self._node_ids
        twin._node_index = self._node_index
        twin.n_nodes = self.n_nodes
        twin._row_u = self._row_u
        twin._row_v = self._row_v
        twin._caps = self._caps
        twin._lengths = self._lengths
        twin._caps_ext = self._caps_ext
        twin._lengths_ext = self._lengths_ext
        twin._endpoint_nodes = self._endpoint_nodes
        twin._structure_gen = self._structure_gen
        # Routing artifacts (each side replaces, never mutates, these
        # on its own rebuild; cache fills into the shared interiors
        # dict are value-identical on both sides).
        twin._usable = self._usable
        twin._adj_indptr = self._adj_indptr
        twin._adj_indices = self._adj_indices
        twin._class_of = self._class_of
        twin._class_interiors = self._class_interiors
        twin._route_key = self._route_key
        # Member resolution depends on live loss rates: always rebuilt.
        twin._reset_resolution()
        return twin

    # -- cache maintenance ---------------------------------------------------

    def _refresh(self) -> None:
        fs = self.fabric.state
        if fs.generation != self._structure_gen:
            self._rebuild_structure()
        route_key = (fs.route_generation, self._drain_epoch)
        if route_key != self._route_key:
            self._rebuild_routing()
            self._route_key = route_key

    def _rebuild_structure(self) -> None:
        """Row-aligned endpoint/capacity/length snapshots (per
        ``FabricState.generation``)."""
        fabric = self.fabric
        fs = fabric.state
        node_ids = sorted(set(fabric.switches) | set(fabric.hosts))
        self._node_ids = node_ids
        self._node_index = {node: i for i, node in enumerate(node_ids)}
        self.n_nodes = len(node_ids)
        n = fs.n_links
        self._row_u = np.empty(n, dtype=np.int64)
        self._row_v = np.empty(n, dtype=np.int64)
        self._caps = np.empty(n, dtype=np.float64)
        self._lengths = np.empty(n, dtype=np.float64)
        for row, link in enumerate(fs.links_by_row):
            a, b = link.endpoint_ids
            self._row_u[row] = self._node_index[a]
            self._row_v[row] = self._node_index[b]
            self._caps[row] = link.capacity_gbps
            self._lengths[row] = link.cable.length_m
        self._caps_ext = np.append(self._caps, np.inf)
        self._lengths_ext = np.append(self._lengths, 0.0)
        self._endpoint_nodes = np.array(
            [self._node_index[node] for node in self.endpoints],
            dtype=np.int64)
        self._structure_gen = fs.generation
        self._route_key = None

    def _rebuild_routing(self) -> None:
        """Usable-adjacency, twin classes, and cleared path caches (per
        route_generation + drain epoch)."""
        fs = self.fabric.state
        n = fs.n_links
        usable = fs.state_code[:n] <= FLAPPING_CODE
        if self._drained:
            index_of = fs.index_of
            for link_id in self._drained:
                row = index_of.get(link_id)
                if row is not None:
                    usable[row] = False
        self._usable = usable
        # Simple usable adjacency as CSR over node ints; node ints are
        # assigned in sorted-id order, so ascending ints == the object
        # router's lexicographic neighbor order.
        u = self._row_u[:n][usable]
        v = self._row_v[:n][usable]
        heads = np.concatenate([u, v])
        tails = np.concatenate([v, u])
        edge_keys = np.unique(heads * self.n_nodes + tails)
        heads = edge_keys // self.n_nodes
        tails = edge_keys % self.n_nodes
        counts = np.bincount(heads, minlength=self.n_nodes)
        self._adj_indptr = np.concatenate(
            [[0], np.cumsum(counts)]).astype(np.int64)
        self._adj_indices = tails
        # Twin classes: identical usable-neighbor sets.
        signatures: Dict[tuple, int] = {}
        class_of = np.empty(self.n_nodes, dtype=np.int64)
        for node in range(self.n_nodes):
            lo, hi = self._adj_indptr[node], self._adj_indptr[node + 1]
            signature = tuple(self._adj_indices[lo:hi])
            class_of[node] = signatures.setdefault(
                signature, len(signatures))
        self._class_of = class_of
        self._class_interiors: Dict = {}
        self._reset_resolution()

    def _reset_resolution(self) -> None:
        """Drop loss-dependent member-to-row resolution."""
        self._pair_rows: Dict[int, Optional[np.ndarray]] = {}
        self._row_siblings: Optional[Dict[int, set]] = None
        #: Stacked member-row matrices, assembled lazily; slot 0 is the
        #: all-dummy row unroutable flows gather from.
        self._big_parts: List[np.ndarray] = []
        self._big_count = 1
        self._big_rows: Optional[np.ndarray] = None
        self._slot_of: Dict[int, int] = {}
        self._slot_offset = [0]
        self._slot_members = [0]
        self._slot_hops = [0]
        self._slot_arrays = None
        self._loss_snapshot = None
        self._best_keys = None

    def _check_loss_fresh(self) -> None:
        """Member choice depends on loss rates; re-resolve on change."""
        fs = self.fabric.state
        loss = fs.loss_rate[:fs.n_links]
        if self._loss_snapshot is not None \
                and np.array_equal(loss, self._loss_snapshot):
            return
        self._reset_resolution()
        self._loss_snapshot = loss.copy()
        self._build_best_rows()

    def _build_best_rows(self) -> None:
        """Per unordered node pair, the row ``links_on_path`` picks:
        least loss, insertion order breaking ties."""
        fs = self.fabric.state
        n = fs.n_links
        rows = np.nonzero(self._usable)[0]
        u, v = self._row_u[rows], self._row_v[rows]
        pair_keys = (np.minimum(u, v) * self.n_nodes
                     + np.maximum(u, v))
        order = np.lexsort((fs.lid_of_row[rows],
                            fs.loss_rate[:n][rows], pair_keys))
        sorted_keys = pair_keys[order]
        first = np.ones(len(order), dtype=bool)
        first[1:] = sorted_keys[1:] != sorted_keys[:-1]
        self._best_keys = sorted_keys[first]
        self._best_rows = rows[order][first]

    # -- path enumeration (shared lexicographic spec) -----------------------

    def _lex_paths(self, src: int, dst: int) -> List[List[int]]:
        """Shortest node-int paths, lexicographic, capped — the int
        twin of :func:`routing.lexicographic_shortest_paths`."""
        indptr, indices = self._adj_indptr, self._adj_indices
        dist_src = self._bfs(src)
        total = dist_src[dst]
        if total < 0:
            return []
        dist_dst = self._bfs(dst)
        paths: List[List[int]] = []
        stack = [src]
        cap = self.max_equal_paths

        def descend(node: int) -> bool:
            if node == dst:
                paths.append(list(stack))
                return len(paths) >= cap
            here = dist_src[node]
            for step in indices[indptr[node]:indptr[node + 1]]:
                if dist_src[step] == here + 1 \
                        and dist_dst[step] == total - here - 1:
                    stack.append(int(step))
                    if descend(int(step)):
                        return True
                    stack.pop()
            return False

        descend(src)
        return paths

    def _bfs(self, origin: int) -> np.ndarray:
        dist = np.full(self.n_nodes, -1, dtype=np.int64)
        dist[origin] = 0
        frontier = np.array([origin], dtype=np.int64)
        depth = 0
        indptr, indices = self._adj_indptr, self._adj_indices
        while len(frontier):
            depth += 1
            steps = np.concatenate(
                [indices[indptr[node]:indptr[node + 1]]
                 for node in frontier])
            fresh = np.unique(steps[dist[steps] < 0])
            dist[fresh] = depth
            frontier = fresh
        return dist

    def _interiors(self, src: int, dst: int) -> Optional[np.ndarray]:
        """Path interiors for (class(src), class(dst)), as an (M, L)
        int matrix; ``None`` when no route exists."""
        key = (int(self._class_of[src]), int(self._class_of[dst]))
        if key in self._class_interiors:
            return self._class_interiors[key]
        paths = self._lex_paths(src, dst)
        if not paths:
            interiors = _NO_ROUTE
        else:
            interiors = np.array([path[1:-1] for path in paths],
                                 dtype=np.int64)
            if interiors.size == 0:
                interiors = interiors.reshape(len(paths), 0)
        self._class_interiors[key] = interiors
        return interiors

    def _resolve_missing(self, new_keys: np.ndarray) -> None:
        """Resolve a batch of unseen (src, dst) pairs to their ECMP
        member row matrices, grouped by twin-class pair so one
        vectorized substitution covers every member pair of a class."""
        src = new_keys // self.n_nodes
        dst = new_keys % self.n_nodes
        class_pairs = np.where(
            src == dst, -1,
            self._class_of[src] * (self._class_of.max() + 1)
            + self._class_of[dst])
        order = np.argsort(class_pairs, kind="stable")
        boundaries = np.nonzero(np.diff(class_pairs[order]))[0] + 1
        for group in np.split(order, boundaries):
            self._resolve_class_group(new_keys[group], src[group],
                                      dst[group])
        self._slot_arrays = None
        self._row_siblings = None

    def _resolve_class_group(self, keys: np.ndarray, src: np.ndarray,
                             dst: np.ndarray) -> None:
        """Resolve every pair of one (src_class, dst_class) group."""
        interiors = _NO_ROUTE
        if src[0] != dst[0]:
            interiors = self._interiors(int(src[0]), int(dst[0]))
        if interiors is _NO_ROUTE:
            for key in keys:
                self._pair_rows[int(key)] = None
                self._slot_of[int(key)] = 0
            return
        members, length = interiors.shape
        pairs = len(keys)
        nodes = np.empty((pairs, members, length + 2), dtype=np.int64)
        nodes[:, :, 0] = src[:, None]
        if length:
            nodes[:, :, 1:-1] = interiors[None, :, :]
        nodes[:, :, -1] = dst[:, None]
        a, b = nodes[..., :-1], nodes[..., 1:]
        hop_keys = np.minimum(a, b) * self.n_nodes + np.maximum(a, b)
        positions = np.searchsorted(self._best_keys, hop_keys.ravel())
        rows = self._best_rows[positions].reshape(pairs, members, -1)
        hops = length + 1
        offset = self._big_count
        self._big_parts.append(rows.reshape(pairs * members, hops))
        self._big_rows = None
        self._big_count += pairs * members
        slot = len(self._slot_offset)
        for i, key in enumerate(keys):
            self._pair_rows[int(key)] = rows[i]
            self._slot_of[int(key)] = slot + i
            self._slot_offset.append(offset + i * members)
            self._slot_members.append(members)
            self._slot_hops.append(hops)

    def _assembled_big(self) -> np.ndarray:
        """The stacked member-row matrix, padded to a common width."""
        if self._big_rows is None:
            dummy = self.fabric.state.n_links
            width = max([1] + [part.shape[1]
                               for part in self._big_parts])
            big = np.full((self._big_count, width), dummy,
                          dtype=np.int64)
            cursor = 1
            for part in self._big_parts:
                big[cursor:cursor + part.shape[0],
                    :part.shape[1]] = part
                cursor += part.shape[0]
            self._big_rows = big
        return self._big_rows

    # -- the offered-window kernel ------------------------------------------

    def offer_window(self, src_index: np.ndarray, dst_index: np.ndarray,
                     sizes: np.ndarray, flow_ids: np.ndarray,
                     window_seconds: float) -> WindowResult:
        """Route and account one window of flows, vectorized.

        ``src_index``/``dst_index`` index :attr:`endpoints`;
        ``flow_ids`` double as ECMP flow hashes.  Returns per-flow FCTs
        and updates the cumulative utilization/loss columns.
        """
        if window_seconds <= 0:
            raise ValueError("window_seconds must be > 0")
        self._refresh()
        self._check_loss_fresh()
        fs = self.fabric.state
        n = fs.n_links
        count = len(sizes)
        src = self._endpoint_nodes[src_index]
        dst = self._endpoint_nodes[dst_index]
        pair_keys = src * self.n_nodes + dst
        unique_keys, inverse = np.unique(pair_keys,
                                         return_inverse=True)
        new_keys = unique_keys[np.fromiter(
            (int(key) not in self._slot_of for key in unique_keys),
            dtype=bool, count=len(unique_keys))]
        if len(new_keys):
            self._resolve_missing(new_keys)
        if self._slot_arrays is None:
            self._slot_arrays = (
                np.asarray(self._slot_offset, dtype=np.int64),
                np.asarray(self._slot_members, dtype=np.int64),
                np.asarray(self._slot_hops, dtype=np.int64))
        slot_offset, slot_members, slot_hops = self._slot_arrays
        slots = np.array([self._slot_of[int(key)]
                          for key in unique_keys],
                         dtype=np.int64)[inverse]
        members = slot_members[slots]
        routable = members > 0
        member = np.zeros(count, dtype=np.int64)
        np.mod(flow_ids, members, out=member, where=routable)
        rows = self._assembled_big()[slot_offset[slots] + member]
        rows[~routable] = n  # dummy scratch slot
        hops = slot_hops[slots]

        # Offered bytes + flow counts, flow-major so the unbuffered
        # np.add.at performs the oracle's additions in its order.
        width = rows.shape[1]
        flat = rows.ravel()
        offered = np.zeros(n + 1)
        np.add.at(offered, flat, np.repeat(sizes, width))
        flow_counts = np.zeros(n + 1)
        np.add.at(flow_counts, flat, 1.0)
        offered = offered[:n]
        congestion = congestion_loss(offered, self._caps,
                                     window_seconds)
        loss = combined_loss(fs.loss_rate[:n], congestion)
        loss_ext = np.append(loss, 0.0)

        # Per-flow path aggregates, hop-sequential to match the
        # oracle's left-to-right float order (pads are exact no-ops).
        survival = np.ones(count)
        propagation = np.zeros(count)
        bottleneck = np.full(count, np.inf)
        for hop in range(width):
            hop_rows = rows[:, hop]
            survival *= (1.0 - loss_ext[hop_rows])
            propagation += self._lengths_ext[hop_rows]
            bottleneck = np.minimum(bottleneck,
                                    self._caps_ext[hop_rows])
        path_loss = 1.0 - survival
        propagation = propagation * PROPAGATION_S_PER_M
        switching = hops * self.params.switch_hop_seconds
        serialization = sizes * 8 / (bottleneck * 1e9)
        base = propagation + switching + serialization

        fct = np.where(routable, base, np.nan)
        lossy = routable & (path_loss > 0.0)
        if lossy.any():
            packets = np.maximum(
                1, np.ceil(sizes[lossy] / MTU_BYTES).astype(np.int64))
            effective = np.minimum(path_loss[lossy], 0.5)
            retries = self.rng.negative_binomial(packets,
                                                 1.0 - effective)
            retries = np.minimum(
                retries, packets * self.params.max_retries_per_packet)
            fct[lossy] = base[lossy] + retries * \
                self.params.retransmission_timeout_seconds

        self.util_bytes.values[:n] += offered
        self.util_flows.values[:n] += flow_counts[:n]
        self.lost_bytes.values[:n] += offered * congestion
        self.last_offered = offered
        self.last_congestion = congestion
        self.last_window_seconds = window_seconds
        result = WindowResult(fct=fct, routable=routable,
                              offered=offered, congestion=congestion,
                              window_seconds=window_seconds)
        if self.obs.enabled:
            self.obs.count("dcrobot_traffic_flows_total", count)
            self.obs.count("dcrobot_traffic_unroutable_flows_total",
                           result.unroutable)
            self.obs.count("dcrobot_traffic_offered_bytes_total",
                           float(offered.sum()))
            self.obs.count(
                "dcrobot_traffic_congestion_lost_bytes_total",
                float((offered * congestion).sum()))
            if result.unroutable < count:
                self.obs.observe(
                    "dcrobot_traffic_window_p99_fct_seconds",
                    result.fct_percentile(99))
        return result

    # -- object-path views (tests, parity) ----------------------------------

    def equal_cost_paths(self, src_id: str, dst_id: str) -> List[List[str]]:
        """Node-id paths for one pair, reconstructed from the class
        cache — must match ``EcmpRouter.equal_cost_paths``."""
        self._refresh()
        src = self._node_index[src_id]
        dst = self._node_index[dst_id]
        if src == dst:
            return [[src_id]]
        interiors = self._interiors(src, dst)
        if interiors is _NO_ROUTE:
            return []
        ids = self._node_ids
        return [[src_id] + [ids[node] for node in row] + [dst_id]
                for row in interiors]

    # -- impact scoring (the congestion gate's question) --------------------

    def projected_group_utilization(self, link_id: str) -> float:
        """Utilization the link's ECMP sibling group would run at if
        this link were drained and its last-window bytes moved over.

        The group is the set of alternatives rehashing actually lands
        on: for every resolved flow pair, member paths align hop for
        hop, and the distinct links occupying the same hop position
        are the ECMP fan at that tier (a ToR's uplink group, an agg's
        core feeds).  Only those same-position links are siblings —
        links elsewhere on the paths *lose* traffic under a drain and
        must not dilute the projection.  Returns 0.0 for links no
        observed traffic used, and ``inf`` when traffic used the link
        but no sibling capacity exists.
        """
        self._refresh()
        fs = self.fabric.state
        row = fs.index_of.get(link_id)
        if row is None or self.last_offered is None \
                or row >= len(self.last_offered):
            return 0.0
        siblings = self._siblings_of(row)
        target_bytes = float(self.last_offered[row])
        if not siblings:
            return 0.0 if target_bytes == 0.0 else float("inf")
        sibling_rows = np.fromiter(siblings, dtype=np.int64)
        capacity_bytes = float(
            (self._caps[sibling_rows] * 1e9 / 8.0
             * self.last_window_seconds).sum())
        if capacity_bytes == 0.0:
            return float("inf")
        moved = float(self.last_offered[sibling_rows].sum()) \
            + target_bytes
        return moved / capacity_bytes

    def _siblings_of(self, row: int) -> set:
        if self._row_siblings is None:
            index: Dict[int, set] = {}
            for rows in self._pair_rows.values():
                if rows is None:
                    continue
                for hop in range(rows.shape[1]):
                    fan = set(int(r) for r in np.unique(rows[:, hop]))
                    for member_row in fan:
                        index.setdefault(member_row, set()).update(fan)
            self._row_siblings = index
        siblings = set(self._row_siblings.get(row, ()))
        siblings.discard(row)
        return siblings
