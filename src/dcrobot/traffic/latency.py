"""Flow-completion latency model: where flapping links poison the tail.

Per §1, layers above retransmit what a flapping link drops, so the
damage shows up as tail latency, not as hard unavailability.  The model
composes:

* propagation — 5 ns/m of fiber per hop;
* switching — per-hop forwarding latency;
* serialization — flow size over bottleneck link capacity;
* retransmissions — each packet independently lost with the path's
  aggregate loss rate; every loss costs a retransmission timeout.

Sampled per flow with real randomness so percentiles behave like
measured FCT distributions.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from dcrobot.network.link import Link
from dcrobot.traffic.flows import Flow

#: Speed of light in fiber: ~5 ns per metre.
PROPAGATION_S_PER_M = 5e-9

MTU_BYTES = 1500


@dataclasses.dataclass
class LatencyParams:
    """Latency model constants."""

    switch_hop_seconds: float = 1e-6
    retransmission_timeout_seconds: float = 0.005
    max_retries_per_packet: int = 6

    def __post_init__(self) -> None:
        if self.retransmission_timeout_seconds <= 0:
            raise ValueError("RTO must be > 0")
        if self.max_retries_per_packet < 0:
            raise ValueError("max_retries must be >= 0")


class LatencyModel:
    """Samples flow-completion times over a concrete link path."""

    def __init__(self, params: Optional[LatencyParams] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.params = params or LatencyParams()
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def path_loss_rate(self, path: Sequence[Link]) -> float:
        """Aggregate packet-loss probability along the path."""
        survival = 1.0
        for link in path:
            survival *= (1.0 - min(link.loss_rate, 1.0))
        return 1.0 - survival

    def base_latency(self, flow: Flow, path: Sequence[Link]) -> float:
        """Loss-free completion time for the flow on this path."""
        propagation = sum(link.cable.length_m for link in path) \
            * PROPAGATION_S_PER_M
        switching = len(path) * self.params.switch_hop_seconds
        bottleneck_gbps = min(link.capacity_gbps for link in path)
        serialization = flow.size_bytes * 8 / (bottleneck_gbps * 1e9)
        return propagation + switching + serialization

    def sample_fct(self, flow: Flow, path: Sequence[Link]) -> float:
        """One flow-completion-time sample including retransmissions."""
        if not path:
            raise ValueError("empty path")
        base = self.base_latency(flow, path)
        loss = self.path_loss_rate(path)
        if loss <= 0.0:
            return base
        packets = max(1, int(np.ceil(flow.size_bytes / MTU_BYTES)))
        # Each packet needs a geometric number of attempts; the total
        # number of retransmissions across the flow is negative binomial
        # (failures before ``packets`` successes), sampled in one draw.
        effective_loss = min(loss, 0.5)
        retries = int(self.rng.negative_binomial(
            packets, 1.0 - effective_loss))
        retries = min(retries,
                      packets * self.params.max_retries_per_packet)
        return base + retries * self.params.retransmission_timeout_seconds

    def sample_many(self, flows_and_paths) -> List[float]:
        """FCT samples for an iterable of (flow, path) pairs."""
        return [self.sample_fct(flow, path)
                for flow, path in flows_and_paths]


def congestion_loss(offered_bytes, capacity_gbps,
                    window_seconds: float) -> np.ndarray:
    """Fraction of offered bytes an overloaded link cannot carry.

    Shared by the columnar engine and the per-flow oracle — one float
    expression, scalar or array, so the two paths agree bit for bit.
    """
    offered = np.asarray(offered_bytes, dtype=np.float64)
    capacity_bytes = (np.asarray(capacity_gbps, dtype=np.float64)
                      * 1e9 / 8.0 * window_seconds)
    ratio = np.ones_like(offered)
    np.divide(capacity_bytes, offered, out=ratio,
              where=offered > capacity_bytes)
    return 1.0 - ratio


def combined_loss(physical, congestion) -> np.ndarray:
    """Independent physical + congestion loss composed per link."""
    physical = np.minimum(np.asarray(physical, dtype=np.float64), 1.0)
    return 1.0 - (1.0 - physical) * (1.0 - np.asarray(
        congestion, dtype=np.float64))


def percentile(samples: Sequence[float], q: float) -> float:
    """The q-th percentile (q in [0, 100]) of a non-empty sample set."""
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    if len(samples) == 0:
        raise ValueError("no samples")
    return float(np.percentile(np.asarray(samples, dtype=float), q))
