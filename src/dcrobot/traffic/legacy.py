"""The per-flow traffic oracle: object-path twin of ``TrafficState``.

This walks every flow through :class:`~dcrobot.traffic.routing.EcmpRouter`
and the :mod:`~dcrobot.traffic.latency` math one Python object at a
time — the pre-columnar modelling, kept as the correctness oracle the
parity suite (``tests/traffic/test_traffic_parity.py``) and the scale
bench (``benchmarks/bench_traffic_scale.py``) compare against.  Every
float expression here is shared with, or ordered identically to, the
vectorized kernels in :class:`~dcrobot.traffic.state.TrafficState`, so
agreement is bit-for-bit, not approximate.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

import numpy as np

from dcrobot.network.inventory import Fabric
from dcrobot.traffic.latency import (
    MTU_BYTES,
    PROPAGATION_S_PER_M,
    LatencyParams,
    combined_loss,
    congestion_loss,
)
from dcrobot.traffic.routing import EcmpRouter, NoRouteError


@dataclasses.dataclass
class LegacyWindowResult:
    """One offered window measured by the per-flow path."""

    fct: np.ndarray
    routable: np.ndarray
    #: link id -> offered bytes this window.
    offered: Dict[str, float]
    #: link id -> congestion loss fraction this window.
    congestion: Dict[str, float]
    window_seconds: float


class LegacyTrafficModel:
    """Per-flow routing + congestion + FCT over Python objects."""

    def __init__(self, fabric: Fabric, endpoints: Sequence[str],
                 params: Optional[LatencyParams] = None,
                 max_equal_paths: int = 8,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.fabric = fabric
        self.endpoints = list(endpoints)
        self.params = params or LatencyParams()
        self.router = EcmpRouter(fabric,
                                 max_equal_paths=max_equal_paths)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        #: Cumulative per-link accounting, keyed by link id.
        self.util_bytes: Dict[str, float] = {}
        self.util_flows: Dict[str, float] = {}
        self.lost_bytes: Dict[str, float] = {}
        self._topology_watch = None

    def drain(self, link_id: str) -> None:
        self.router.drain(link_id)

    def undrain(self, link_id: str) -> None:
        self.router.undrain(link_id)

    @property
    def drained_links(self) -> set:
        return self.router.drained_links

    def _refresh(self) -> None:
        fs = self.fabric.state
        watch = (fs.generation, fs.route_generation)
        if watch != self._topology_watch:
            self.router.invalidate()
            self._topology_watch = watch

    def offer_window(self, src_index: np.ndarray,
                     dst_index: np.ndarray, sizes: np.ndarray,
                     flow_ids: np.ndarray,
                     window_seconds: float) -> LegacyWindowResult:
        """Route and account one window of flows, one flow at a time."""
        if window_seconds <= 0:
            raise ValueError("window_seconds must be > 0")
        self._refresh()
        count = len(sizes)
        endpoints = self.endpoints
        paths = []
        offered: Dict[str, float] = {}
        flow_hops: Dict[str, float] = {}
        for i in range(count):
            try:
                path = self.router.route(endpoints[int(src_index[i])],
                                         endpoints[int(dst_index[i])],
                                         flow_hash=int(flow_ids[i]))
            except NoRouteError:
                paths.append(None)
                continue
            paths.append(path)
            size = int(sizes[i])
            for link in path:
                offered[link.id] = offered.get(link.id, 0.0) + size
                flow_hops[link.id] = flow_hops.get(link.id, 0.0) + 1.0

        congestion: Dict[str, float] = {}
        loss_of: Dict[str, float] = {}
        for link_id, offered_bytes in offered.items():
            link = self.fabric.links[link_id]
            cong = float(congestion_loss(offered_bytes,
                                         link.capacity_gbps,
                                         window_seconds))
            congestion[link_id] = cong
            loss_of[link_id] = float(combined_loss(link.loss_rate,
                                                   cong))

        fct = np.full(count, np.nan)
        routable = np.zeros(count, dtype=bool)
        for i in range(count):
            path = paths[i]
            if path is None:
                continue
            routable[i] = True
            survival = 1.0
            total_length = 0.0
            bottleneck = np.inf
            for link in path:
                survival *= (1.0 - loss_of[link.id])
                total_length += link.cable.length_m
                bottleneck = min(bottleneck, link.capacity_gbps)
            propagation = total_length * PROPAGATION_S_PER_M
            switching = len(path) * self.params.switch_hop_seconds
            serialization = int(sizes[i]) * 8 / (bottleneck * 1e9)
            base = propagation + switching + serialization
            loss = 1.0 - survival
            if loss <= 0.0:
                fct[i] = base
                continue
            packets = max(1, int(np.ceil(int(sizes[i]) / MTU_BYTES)))
            effective = min(loss, 0.5)
            retries = int(self.rng.negative_binomial(
                packets, 1.0 - effective))
            retries = min(retries,
                          packets * self.params.max_retries_per_packet)
            fct[i] = base + retries * \
                self.params.retransmission_timeout_seconds

        for link_id, offered_bytes in offered.items():
            self.util_bytes[link_id] = \
                self.util_bytes.get(link_id, 0.0) + offered_bytes
            self.util_flows[link_id] = \
                self.util_flows.get(link_id, 0.0) + flow_hops[link_id]
            self.lost_bytes[link_id] = (
                self.lost_bytes.get(link_id, 0.0)
                + offered_bytes * congestion[link_id])
        return LegacyWindowResult(fct=fct, routable=routable,
                                  offered=offered,
                                  congestion=congestion,
                                  window_seconds=window_seconds)
