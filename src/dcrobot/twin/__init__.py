"""Digital twins: copy-on-write world forks for what-if evaluation."""

from dcrobot.twin.world import TwinFabric, TwinWorld

__all__ = ["TwinFabric", "TwinWorld"]
