"""Digital-twin world forking: cheap what-if copies of a live world.

The paper's §4 predictive-maintenance agenda needs the control plane to
ask "what would the fabric look like if I executed *this* repair plan?"
without perturbing production.  :class:`TwinWorld` answers it on the
columnar substrate:

* ``FabricState.fork()`` snapshots every per-link column lazily
  (copy-on-write — O(1) until the first write, and only the touched
  column splits);
* ``TrafficState.fork()`` shares the routing structure and the
  per-class-pair path-interior cache, resetting only loss-dependent
  member resolution;
* a forked RNG substream keeps the twin's stochastic draws independent
  of — and reproducible against — the live world;
* an optional journal snapshot (``controller.snapshot_state()`` from
  S14) pins the controller's exact logical state at fork time;
* an optional :meth:`~dcrobot.topology.smi.SmiTracker.fork` aggregate
  snapshot makes predicted-SMI queries O(1) inside the twin.

A forked state's bound view objects (``Link`` etc.) still belong to
the live world, so the twin is mutated **column-wise only** through
the vocabulary here (:meth:`set_link_state`, :meth:`drain`,
:meth:`repair_link`, :meth:`replace_transceiver`, ...), never through
object setters.  :meth:`TwinWorld.wrap` builds the same vocabulary
around an ordinary (e.g. deep-copied) world, which is what lets the
property suite prove fork-vs-deepcopy bit-identity with one code path.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from dcrobot.network.enums import LinkState
from dcrobot.network.state import CODE_OF, STATE_OF, FabricState
from dcrobot.traffic.driver import WindowStats
from dcrobot.traffic.flows import sample_sizes
from dcrobot.traffic.patterns import UniformPattern
from dcrobot.traffic.state import TrafficState, WindowResult


class TwinFabric:
    """A fabric handle whose columnar state is a fork.

    Everything except ``state`` forwards to the live fabric: node
    positions, switch/host registries and bound link objects are
    structural reference data the twin reads but never writes.
    """

    def __init__(self, fabric, state: FabricState) -> None:
        self._fabric = fabric
        self.state = state

    def __getattr__(self, name):
        return getattr(self._fabric, name)


class TwinWorld:
    """One forked world: mutate it, roll it forward, read predictions.

    Build with :meth:`fork` (copy-on-write twin of a live world) or
    :meth:`wrap` (same vocabulary over an independently owned world,
    e.g. a deep copy).  Use as a context manager — :meth:`close`
    releases the copy-on-write shares so a long-lived parent stops
    paying write barriers once its twins are gone.
    """

    def __init__(self, fabric, fabric_state: FabricState,
                 traffic: Optional[TrafficState],
                 rng: np.random.Generator,
                 now: float = 0.0,
                 window_seconds: float = 1800.0,
                 sample_seconds: Optional[float] = None,
                 flows_per_window: int = 500,
                 pattern=None,
                 schedule=None,
                 next_flow_id: int = 0,
                 controller_snapshot: Optional[dict] = None,
                 smi=None,
                 owns_fork: bool = False) -> None:
        self.fabric = fabric
        self.state = fabric_state
        self.traffic = traffic
        self.rng = rng
        self.now = float(now)
        self.window_seconds = float(window_seconds)
        self.sample_seconds = (float(sample_seconds)
                               if sample_seconds is not None
                               else float(window_seconds))
        self.flows_per_window = int(flows_per_window)
        self.pattern = pattern or UniformPattern()
        self.schedule = schedule
        self.next_flow_id = int(next_flow_id)
        #: The controller's logical state at fork time (S14 journal
        #: snapshot) — incidents, orders, counters, fencing token.
        self.controller_snapshot = controller_snapshot
        #: Detached SMI aggregates (``SmiTracker.fork()``), advanced by
        #: the replace vocabulary below.
        self.smi_tracker = smi
        self.windows: List[WindowStats] = []
        self._owns_fork = owns_fork
        self._closed = False

    # -- constructors ---------------------------------------------------------

    @classmethod
    def fork(cls, fabric, traffic: Optional[TrafficState] = None,
             driver=None, rng: Optional[np.random.Generator] = None,
             now: float = 0.0, controller=None,
             smi_tracker=None, **overrides) -> "TwinWorld":
        """Copy-on-write twin of a live world.

        ``driver`` (a :class:`~dcrobot.traffic.driver.TrafficDriver`)
        donates the live traffic-matrix parameters — window cadence,
        flow counts, pattern, schedule, and the flow-id watermark — so
        :meth:`roll` continues the live workload; pass ``overrides``
        to diverge from it.  ``rng`` should be a dedicated substream
        (e.g. ``streams.stream("twin:plan-3")``) so twin draws never
        consume the live world's streams.
        """
        fs_child = fabric.state.fork()
        twin_fabric = TwinFabric(fabric, fs_child)
        twin_rng = rng if rng is not None else np.random.default_rng(0)
        twin_traffic = (traffic.fork(twin_fabric, rng=twin_rng)
                        if traffic is not None else None)
        params = dict(
            window_seconds=1800.0, sample_seconds=None,
            flows_per_window=500, pattern=None, schedule=None,
            next_flow_id=0)
        if driver is not None:
            params.update(
                window_seconds=driver.window_seconds,
                sample_seconds=driver.sample_seconds,
                flows_per_window=driver.flows_per_window,
                pattern=driver.pattern,
                schedule=driver.schedule,
                next_flow_id=driver._next_flow_id)
        params.update(overrides)
        snapshot = (controller.snapshot_state()
                    if controller is not None else None)
        smi = smi_tracker.fork() if smi_tracker is not None else None
        return cls(twin_fabric, fs_child, twin_traffic, twin_rng,
                   now=now, controller_snapshot=snapshot, smi=smi,
                   owns_fork=True, **params)

    @classmethod
    def wrap(cls, fabric, traffic: Optional[TrafficState] = None,
             rng: Optional[np.random.Generator] = None,
             now: float = 0.0, **params) -> "TwinWorld":
        """The twin vocabulary over a world owned outright (no fork)."""
        return cls(fabric, fabric.state, traffic,
                   rng if rng is not None else np.random.default_rng(0),
                   now=now, owns_fork=False, **params)

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Release the copy-on-write shares (idempotent)."""
        if self._owns_fork and not self._closed:
            self.state.cow_release()
        self._closed = True

    def __enter__(self) -> "TwinWorld":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- link addressing ------------------------------------------------------

    def _row(self, link_id: str) -> int:
        return self.state.index_of[link_id]

    def link_state(self, link_id: str) -> LinkState:
        return STATE_OF[int(self.state.state_code[self._row(link_id)])]

    # -- the mutation vocabulary (column-wise, object setters stay out) -------

    def set_link_state(self, link_id: str, new_state: LinkState,
                       now: Optional[float] = None) -> bool:
        """Column-wise twin of ``Link.set_state`` (same flap rule)."""
        when = self.now if now is None else float(now)
        row = self._row(link_id)
        old_state = STATE_OF[int(self.state.state_code[row])]
        if new_state is old_state:
            return False
        administrative = (LinkState.MAINTENANCE
                          in (old_state, new_state))
        was_up = old_state is LinkState.UP
        is_up = new_state is LinkState.UP
        flapped = was_up != is_up and not administrative
        self.state.state_code[row] = CODE_OF[new_state]
        self.state.on_transition(row, when, old_state, new_state,
                                 flapped)
        return True

    def drain(self, link_id: str) -> None:
        if self.traffic is not None:
            self.traffic.drain(link_id)

    def undrain(self, link_id: str) -> None:
        if self.traffic is not None:
            self.traffic.undrain(link_id)

    def set_loss_rate(self, link_id: str, loss: float) -> None:
        self.state.loss_rate[self._row(link_id)] = float(loss)

    def begin_maintenance(self, link_id: str,
                          now: Optional[float] = None) -> None:
        """Drain, then take the link out of service for work."""
        self.drain(link_id)
        self.set_link_state(link_id, LinkState.MAINTENANCE, now=now)

    def repair_link(self, link_id: str,
                    now: Optional[float] = None) -> None:
        """A completed repair: link healthy, faults gone, undrained."""
        row = self._row(link_id)
        fs = self.state
        fs.loss_rate[row] = 0.0
        fs.cable_damaged[row] = False
        fs.ox[:, row] = 0.0
        fs.seated[:, row] = True
        fs.unit_hw_fault[:, row] = False
        fs.unit_fw_stuck[:, row] = False
        fs.port_hw_fault[:, row] = False
        fs.cable_attached[:, row] = True
        fs.cable_end_worst[:, row] = 0.0
        fs.cable_end_scratched[:, row] = False
        fs.recept_worst[:, row] = 0.0
        self.set_link_state(link_id, LinkState.UP, now=now)
        self.undrain(link_id)

    def replace_transceiver(self, link_id: str, side: str,
                            model_id: Optional[str] = None) -> None:
        """Simulate a unit swap: fresh per-side physics, new model.

        Columns reset like ``FabricState.rebind_transceiver``; the SMI
        uniformity aggregate moves from the live unit's model to
        ``model_id`` (omit it for a like-for-like spare).
        """
        row = self._row(link_id)
        side_index = 0 if side == "a" else 1
        fs = self.state
        fs.ox[side_index, row] = 0.0
        fs.seated[side_index, row] = True
        fs.unit_hw_fault[side_index, row] = False
        fs.unit_fw_stuck[side_index, row] = False
        fs.recept_worst[side_index, row] = 0.0
        if self.smi_tracker is not None and model_id is not None:
            link = self.state.links_by_row[row]
            old_model = link.transceiver_at(side).model.model_id
            self.smi_tracker.apply_transceiver_swap(old_model,
                                                    model_id)

    def replace_cable(self, link_id: str,
                      cleanable: Optional[bool] = None) -> None:
        """Simulate a cable swap: fresh end faces, new separability."""
        row = self._row(link_id)
        fs = self.state
        fs.cable_damaged[row] = False
        fs.cable_end_worst[:, row] = 0.0
        fs.cable_end_scratched[:, row] = False
        fs.cable_attached[:, row] = True
        if self.smi_tracker is not None and cleanable is not None:
            old_cleanable = bool(fs.cleanable[row])
            fs.cleanable[row] = bool(cleanable)
            self.smi_tracker.apply_cable_swap(old_cleanable,
                                              bool(cleanable))
        elif cleanable is not None:
            fs.cleanable[row] = bool(cleanable)

    # -- rolling the twin forward ---------------------------------------------

    def offer_window(self) -> WindowResult:
        """One traffic window at the twin's clock (driver semantics:
        same pattern/size/flow-id draw order as ``TrafficDriver.offer``)."""
        if self.traffic is None:
            raise RuntimeError("twin has no traffic engine")
        self.now += self.window_seconds
        count, pattern = self.flows_per_window, self.pattern
        if self.schedule is not None:
            count, pattern = self.schedule(self.now)
        n_endpoints = len(self.traffic.endpoints)
        src, dst = pattern.pairs(self.rng, count, n_endpoints)
        sizes = sample_sizes(self.rng, count)
        flow_ids = np.arange(self.next_flow_id,
                             self.next_flow_id + count,
                             dtype=np.int64)
        self.next_flow_id += count
        result = self.traffic.offer_window(src, dst, sizes, flow_ids,
                                           self.sample_seconds)
        self.windows.append(WindowStats(
            time=self.now,
            flows=count,
            unroutable=result.unroutable,
            p99_fct=result.fct_percentile(99),
            p50_fct=result.fct_percentile(50),
            offered_bytes=float(result.offered.sum()),
            congestion_lost_bytes=float(
                (result.offered * result.congestion).sum()),
            maintenance_active=self._maintenance_active()))
        return result

    def roll(self, windows: int) -> List[WindowResult]:
        """Advance ``windows`` traffic windows; returns their results."""
        return [self.offer_window() for _ in range(windows)]

    def _maintenance_active(self) -> bool:
        from dcrobot.network.state import MAINTENANCE_CODE
        fs = self.state
        if self.traffic is not None and self.traffic.drained_links:
            return True
        return bool((fs.state_code[:fs.n_links]
                     == MAINTENANCE_CODE).any())

    # -- predictions ----------------------------------------------------------

    def predicted_smi(self) -> float:
        """The twin's SMI from the forked aggregates."""
        if self.smi_tracker is None:
            raise RuntimeError("twin was forked without an SmiTracker")
        return self.smi_tracker.report().smi

    def p99_fct(self, windows: Optional[List[WindowStats]] = None) \
            -> float:
        """p99 of per-window p99 FCTs over the rolled windows."""
        pool = self.windows if windows is None else windows
        samples = [w.p99_fct for w in pool
                   if not np.isnan(w.p99_fct)]
        if not samples:
            return float("nan")
        return float(np.percentile(samples, 99))
