"""Shared-resource primitives: resources, stores, and containers.

These model contention: a pool of technicians is a :class:`PriorityResource`,
a robot's cleaning-tape reservoir is a :class:`Container`, a queue of repair
tasks is a :class:`Store`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Tuple

from dcrobot.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from dcrobot.sim.engine import Simulation


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Usable as a context manager so the slot is always released::

        with resource.request() as req:
            yield req
            ... hold the resource ...
    """

    def __init__(self, resource: "Resource", priority: float = 0.0) -> None:
        super().__init__(resource.sim)
        self.resource = resource
        self.priority = priority
        resource._add_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release the slot if held, or withdraw from the wait queue."""
        self.resource._remove_request(self)


class Resource:
    """A pool of ``capacity`` identical slots with a FIFO wait queue."""

    def __init__(self, sim: "Simulation", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.users: List[Request] = []
        self._queue: List[Tuple[float, int, Request]] = []
        self._counter = itertools.count()

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} capacity={self.capacity} "
                f"in_use={len(self.users)} queued={len(self._queue)}>")

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    @property
    def queued(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self, priority: float = 0.0) -> Request:
        """Claim a slot.  The returned event fires when the slot is granted.

        ``priority`` only matters for :class:`PriorityResource`; the base
        class serves strictly FIFO.
        """
        return Request(self, priority)

    def release(self, request: Request) -> None:
        """Release a previously granted slot."""
        self._remove_request(request)

    # -- internal --------------------------------------------------------

    def _sort_key(self, request: Request) -> float:
        return 0.0  # FIFO: heap orders by insertion sequence only

    def _add_request(self, request: Request) -> None:
        heapq.heappush(
            self._queue,
            (self._sort_key(request), next(self._counter), request))
        self._dispatch()

    def _remove_request(self, request: Request) -> None:
        if request in self.users:
            self.users.remove(request)
            self._dispatch()
        else:
            # Lazy removal from the wait queue.
            self._queue = [entry for entry in self._queue
                           if entry[2] is not request]
            heapq.heapify(self._queue)

    def _dispatch(self) -> None:
        while self._queue and len(self.users) < self.capacity:
            _key, _seq, request = heapq.heappop(self._queue)
            self.users.append(request)
            request.succeed(request)


class PriorityResource(Resource):
    """Resource whose queue is served lowest-``priority``-value first."""

    def _sort_key(self, request: Request) -> float:
        return request.priority


class StorePut(Event):
    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.sim)
        self.item = item
        store._puts.append(self)
        store._dispatch()


class StoreGet(Event):
    def __init__(self, store: "Store",
                 predicate: Optional[Callable[[Any], bool]] = None) -> None:
        super().__init__(store.sim)
        self.predicate = predicate
        store._gets.append(self)
        store._dispatch()


class Store:
    """An unbounded-or-bounded buffer of arbitrary items.

    ``get`` accepts an optional predicate: the request is fulfilled by the
    oldest stored item matching it (a lightweight filter-store).
    """

    def __init__(self, sim: "Simulation",
                 capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.items: List[Any] = []
        self._puts: List[StorePut] = []
        self._gets: List[StoreGet] = []

    def __repr__(self) -> str:
        return (f"<Store items={len(self.items)} "
                f"waiting_get={len(self._gets)}>")

    def put(self, item: Any) -> StorePut:
        """Deposit ``item``.  Fires immediately unless the store is full."""
        return StorePut(self, item)

    def get(self, predicate: Optional[Callable[[Any], bool]] = None
            ) -> StoreGet:
        """Withdraw the oldest (matching) item; waits until one exists."""
        return StoreGet(self, predicate)

    def cancel_get(self, request: StoreGet) -> None:
        """Withdraw an unfulfilled get request from the wait list."""
        if request in self._gets:
            self._gets.remove(request)

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            # Admit pending puts while there is room.
            while self._puts and len(self.items) < self.capacity:
                put = self._puts.pop(0)
                self.items.append(put.item)
                put.succeed()
                progress = True
            # Serve waiting gets.
            for get in list(self._gets):
                index = self._match(get)
                if index is None:
                    continue
                item = self.items.pop(index)
                self._gets.remove(get)
                get.succeed(item)
                progress = True

    def _match(self, get: StoreGet) -> Optional[int]:
        for index, item in enumerate(self.items):
            if get.predicate is None or get.predicate(item):
                return index
        return None


class ContainerPut(Event):
    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError(f"amount must be > 0, got {amount}")
        super().__init__(container.sim)
        self.amount = amount
        container._puts.append(self)
        container._dispatch()


class ContainerGet(Event):
    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError(f"amount must be > 0, got {amount}")
        super().__init__(container.sim)
        self.amount = amount
        container._gets.append(self)
        container._dispatch()


class Container:
    """A continuous quantity (fuel, cleaning consumables, spare stock)."""

    def __init__(self, sim: "Simulation", capacity: float = float("inf"),
                 init: float = 0.0) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init {init} outside [0, {capacity}]")
        self.sim = sim
        self.capacity = capacity
        self.level = float(init)
        self._puts: List[ContainerPut] = []
        self._gets: List[ContainerGet] = []

    def __repr__(self) -> str:
        return f"<Container level={self.level}/{self.capacity}>"

    def put(self, amount: float) -> ContainerPut:
        """Add ``amount``; waits while it would overflow capacity."""
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        """Remove ``amount``; waits until that much is available."""
        return ContainerGet(self, amount)

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            for put in list(self._puts):
                if self.level + put.amount <= self.capacity:
                    self.level += put.amount
                    self._puts.remove(put)
                    put.succeed()
                    progress = True
            for get in list(self._gets):
                if get.amount <= self.level:
                    self.level -= get.amount
                    self._gets.remove(get)
                    get.succeed()
                    progress = True
