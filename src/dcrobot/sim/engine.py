"""The simulation engine: event heap, clock, and run loop."""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Callable, Generator, List, Optional, Tuple, Union

from dcrobot.sim.errors import SimulationError, StopSimulation
from dcrobot.sim.events import NORMAL, Condition, Event, Timeout, all_of, any_of
from dcrobot.sim.process import Process


class Simulation:
    """A discrete-event simulation.

    Time is a float in user-chosen units; throughout ``dcrobot`` the
    convention is **seconds**.  Typical usage::

        sim = Simulation()

        def worker(sim):
            yield sim.timeout(5.0)
            return "done"

        proc = sim.process(worker(sim))
        sim.run()
        assert sim.now == 5.0 and proc.value == "done"
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.now: float = float(start_time)
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._counter = itertools.count()
        self._active_process: Optional[Process] = None
        #: Observers invoked with ``now`` after every processed event
        #: (see :meth:`add_step_hook`); empty in normal operation.
        self._step_hooks: List[Callable[[float], None]] = []
        #: Optional :class:`dcrobot.obs.profile.SimProfiler` (duck
        #: typed: anything with ``record_event``/``record_callback``).
        #: ``None`` keeps the hot path branch-predictable and free.
        self.profiler = None

    def __repr__(self) -> str:
        return f"<Simulation now={self.now} pending={len(self._heap)}>"

    # -- factories ----------------------------------------------------------

    def event(self) -> Event:
        """A fresh pending event, triggered manually via succeed()/fail()."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """An event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, object, object]) -> Process:
        """Register ``generator`` as a process starting at the current time."""
        return Process(self, generator)

    def all_of(self, events) -> Condition:
        """Composite event firing when every event in ``events`` succeeds."""
        return all_of(self, events)

    def any_of(self, events) -> Condition:
        """Composite event firing when any event in ``events`` succeeds."""
        return any_of(self, events)

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- step hooks ----------------------------------------------------------

    def add_step_hook(self, hook: Callable[[float], None]) -> None:
        """Register an observer called with ``now`` after every step.

        This is the attachment point for runtime invariant checkers
        (e.g. the chaos safety monitor): they see the world after each
        state change, not just at their own polling cadence.  Hooks must
        not schedule events or mutate simulation state.
        """
        self._step_hooks.append(hook)

    def remove_step_hook(self, hook: Callable[[float], None]) -> None:
        """Unregister a hook added with :meth:`add_step_hook`."""
        self._step_hooks.remove(hook)

    # -- scheduling ----------------------------------------------------------

    def _enqueue(self, event: Event, delay: float = 0.0,
                 priority: int = NORMAL) -> None:
        """Put a triggered event on the heap ``delay`` from now."""
        heapq.heappush(
            self._heap,
            (self.now + delay, priority, next(self._counter), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        when, _priority, _seq, event = heapq.heappop(self._heap)
        if when < self.now:
            raise SimulationError(
                f"time went backwards: {when} < {self.now}")
        advance = when - self.now
        self.now = when
        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        if self.profiler is None:
            for callback in callbacks:
                callback(event)
        else:
            step_started = time.perf_counter()
            for callback in callbacks:
                started = time.perf_counter()
                callback(event)
                self.profiler.record_callback(
                    _callback_label(callback),
                    time.perf_counter() - started)
            self.profiler.record_event(
                type(event).__name__,
                time.perf_counter() - step_started, advance)
        if not callbacks and event.triggered and not event.ok \
                and not getattr(event, "defused", False):
            # A failure nobody is waiting on would otherwise vanish
            # silently; crash loudly instead (set event.defused = True
            # to opt out for expected failures).
            raise event.value  # type: ignore[misc]
        for hook in self._step_hooks:
            hook(self.now)

    # -- run loop --------------------------------------------------------------

    def run(self, until: Union[None, float, int, Event] = None) -> object:
        """Run the simulation.

        * ``until=None`` — run until no events remain.
        * ``until=<number>`` — run until simulated time reaches the given
          value.  Events scheduled exactly at ``until`` are *not* processed
          (matching SimPy semantics); ``now`` equals ``until`` afterwards.
        * ``until=<Event>`` — run until the event is processed and return its
          value; raises if the event failed, or :class:`SimulationError` if
          the schedule empties first.
        """
        if until is None:
            while self._heap:
                self.step()
            return None

        if isinstance(until, Event):
            return self._run_until_event(until)

        horizon = float(until)
        if horizon < self.now:
            raise ValueError(
                f"until={horizon} lies in the past (now={self.now})")
        while self._heap and self._heap[0][0] < horizon:
            self.step()
        self.now = horizon
        return None

    def _run_until_event(self, until: Event) -> object:
        if until.sim is not self:
            raise SimulationError("event belongs to a different simulation")
        if until.processed:
            if until.ok:
                return until.value
            raise until.value  # type: ignore[misc]
        marker = _StopMarker(self)
        until.callbacks.append(marker._stop)
        try:
            while self._heap:
                self.step()
        except StopSimulation:
            if until.ok:
                return until.value
            raise until.value  # type: ignore[misc]
        raise SimulationError(
            "schedule ran dry before the awaited event triggered")


def _callback_label(callback) -> str:
    """A stable human-readable label for a step callback.

    ``Process._resume`` bound methods are attributed to the process
    generator's function name (the thing a profiler reader actually
    recognises); everything else falls back to the callable's
    qualified name.
    """
    owner = getattr(callback, "__self__", None)
    generator = getattr(owner, "_generator", None)
    if generator is not None:
        return getattr(generator, "__name__", type(owner).__name__)
    return getattr(callback, "__qualname__", repr(callback))


class _StopMarker:
    """Stops the run loop when a watched event is processed."""

    def __init__(self, sim: Simulation) -> None:
        self.sim = sim

    def _stop(self, event: Event) -> None:
        raise StopSimulation(event)
