"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot occurrence in simulated time.  Events move
through three states:

* *pending* — created but not yet triggered,
* *triggered* — a value (or exception) has been set and the event is queued
  on the simulation heap,
* *processed* — the simulation has reached the event's time and run its
  callbacks.

Processes (see :mod:`dcrobot.sim.process`) suspend by yielding events and are
resumed when the yielded event is processed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

from dcrobot.sim.errors import EventAlreadyTriggered, SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from dcrobot.sim.engine import Simulation

#: Scheduling priorities.  Lower sorts first at equal timestamps.
URGENT = 0
NORMAL = 1

_PENDING = object()


class Event:
    """A one-shot occurrence that callbacks (and processes) can wait on."""

    def __init__(self, sim: "Simulation") -> None:
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: object = _PENDING
        self._ok: Optional[bool] = None

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once a value or exception has been set."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (callbacks list is consumed)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return bool(self._ok)

    @property
    def value(self) -> object:
        """The event's value (or the exception instance if it failed)."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: object = None, priority: int = NORMAL) -> "Event":
        """Set the event's value and schedule it at the current time."""
        if self.triggered:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(self, delay=0.0, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Set the event to failed; waiting processes receive ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self.triggered:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.sim._enqueue(self, delay=0.0, priority=priority)
        return self


class Timeout(Event):
    """An event that fires ``delay`` units of simulated time after creation."""

    def __init__(self, sim: "Simulation", delay: float, value: object = None,
                 priority: int = NORMAL) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(sim)
        self.delay = float(delay)
        self._ok = True
        self._value = value
        sim._enqueue(self, delay=self.delay, priority=priority)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay} at {id(self):#x}>"


class ConditionValue:
    """Mapping of events to values for fired :class:`Condition` events."""

    def __init__(self, events: Sequence[Event]) -> None:
        self.events = list(events)

    def __getitem__(self, event: Event) -> object:
        if event not in self.events:
            raise KeyError(event)
        return event.value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __len__(self) -> int:
        return len(self.events)

    def todict(self) -> dict:
        return {event: event.value for event in self.events}

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Composite event over a set of child events.

    ``evaluate`` receives (events, triggered_count) and returns True when the
    condition is satisfied.  Child failures propagate immediately.
    """

    def __init__(self, sim: "Simulation", events: Sequence[Event],
                 evaluate: Callable[[Sequence[Event], int], bool]) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._evaluate = evaluate
        self._count = 0
        for event in self._events:
            if event.sim is not sim:
                raise SimulationError("events belong to different simulations")
        if not self._events:
            self.succeed(ConditionValue([]))
            return
        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)  # type: ignore[arg-type]
            return
        self._count += 1
        if self._evaluate(self._events, self._count):
            done = [e for e in self._events if e.processed and e.ok]
            self.succeed(ConditionValue(done))


def defer(sim: "Simulation", event: Event, delay: float) -> Event:
    """An event mirroring ``event``, delivered ``delay`` after it fires.

    The relay for chaos-injected acknowledgement latency: the underlying
    operation completes on time, but whoever waits on the returned event
    hears about it late.  Failures propagate immediately (a late failure
    notification would outlive the process that could handle it).
    """
    if delay < 0:
        raise ValueError(f"negative delay {delay!r}")
    out = Event(sim)

    def relay(inner: Event) -> None:
        if inner.ok:
            timer = sim.timeout(delay)
            timer.callbacks.append(lambda _t: out.succeed(inner.value))
        else:
            out.fail(inner.value)  # type: ignore[arg-type]

    if event.processed:
        relay(event)
    else:
        event.callbacks.append(relay)
    return out


def all_of(sim: "Simulation", events: Sequence[Event]) -> Condition:
    """Event that fires once *all* ``events`` have succeeded."""
    return Condition(sim, events, lambda evs, count: count == len(evs))


def any_of(sim: "Simulation", events: Sequence[Event]) -> Condition:
    """Event that fires once *any* of ``events`` has succeeded."""
    return Condition(sim, events, lambda evs, count: count >= 1)
