"""Generator-based simulation processes.

A process is a Python generator that yields :class:`~dcrobot.sim.events.Event`
instances.  Each yield suspends the process until the yielded event is
processed; the event's value is sent back into the generator (or its
exception thrown in, if the event failed).

A :class:`Process` is itself an event: it fires with the generator's return
value when the generator finishes, so processes can wait on each other.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from dcrobot.sim.errors import Interrupt, SimulationError
from dcrobot.sim.events import NORMAL, URGENT, Event

if TYPE_CHECKING:  # pragma: no cover
    from dcrobot.sim.engine import Simulation


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    def __init__(self, sim: "Simulation", process: "Process") -> None:
        super().__init__(sim)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        sim._enqueue(self, delay=0.0, priority=URGENT)


class _InterruptTrigger(Event):
    """Internal event that throws an Interrupt into a process generator."""

    def __init__(self, sim: "Simulation", process: "Process",
                 cause: object) -> None:
        super().__init__(sim)
        self._ok = False
        self._value = Interrupt(cause)
        self.callbacks.append(process._resume)
        sim._enqueue(self, delay=0.0, priority=URGENT)


class Process(Event):
    """Wraps a generator and drives it through the simulation."""

    def __init__(self, sim: "Simulation",
                 generator: Generator[Event, object, object]) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self._generator = generator
        self._target: Optional[Event] = Initialize(sim, self)

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", str(self._generator))
        return f"<Process {name} at {id(self):#x}>"

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event this process currently waits on (None if finished)."""
        return self._target

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process stops waiting on its current target (the target still
        fires, but no longer resumes this process) and instead receives the
        interrupt.  Interrupting a finished process is an error.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        if self._target is not None and not self._target.processed:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        _InterruptTrigger(self.sim, self, cause)

    # -- internal ----------------------------------------------------------

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        self.sim._active_process = self
        try:
            if event.ok:
                result = self._generator.send(event.value)
            else:
                # The event's exception is thrown inside the generator.  If
                # the generator does not catch it, it propagates out of
                # ``throw`` and fails this process below.
                result = self._generator.throw(event.value)
        except StopIteration as stop:
            self._target = None
            self.succeed(stop.value, priority=NORMAL)
            return
        except BaseException as exc:
            self._target = None
            self.fail(exc, priority=NORMAL)
            return
        finally:
            self.sim._active_process = None

        if not isinstance(result, Event):
            raise SimulationError(
                f"process {self!r} yielded non-event {result!r}")
        if result.sim is not self.sim:
            raise SimulationError(
                f"process {self!r} yielded event from another simulation")
        self._target = result
        if result.processed:
            # Already-fired event: resume again at the current instant.
            redo = Event(self.sim)
            redo._ok = result._ok
            redo._value = result._value
            redo.callbacks.append(self._resume)
            self.sim._enqueue(redo, delay=0.0, priority=URGENT)
            self._target = redo
        else:
            result.callbacks.append(self._resume)
