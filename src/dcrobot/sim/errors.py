"""Exception types used by the discrete-event simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all kernel-level errors."""


class EventAlreadyTriggered(SimulationError):
    """Raised when ``succeed``/``fail`` is called on a triggered event."""


class StopSimulation(Exception):
    """Internal control-flow exception used by ``Simulation.run(until=event)``.

    Not a :class:`SimulationError`: user code should never catch it.
    """

    def __init__(self, value: object = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process generator when it is interrupted.

    The interrupting party supplies ``cause`` which the interrupted process
    can inspect to decide how to react (e.g. a technician preempted by a
    higher-priority ticket, or a robot recalled mid-travel).
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> object:
        """The value passed to :meth:`Process.interrupt`."""
        return self.args[0]
