"""Discrete-event simulation kernel (substrate S1).

A minimal, dependency-free engine in the style of SimPy: generator
processes, an event heap, shared resources, and deterministic random
streams.  Everything else in ``dcrobot`` runs on top of this.
"""

from dcrobot.sim.engine import Simulation
from dcrobot.sim.errors import (
    EventAlreadyTriggered,
    Interrupt,
    SimulationError,
)
from dcrobot.sim.events import (
    NORMAL,
    URGENT,
    Condition,
    ConditionValue,
    Event,
    Timeout,
    all_of,
    any_of,
    defer,
)
from dcrobot.sim.process import Process
from dcrobot.sim.resources import (
    Container,
    PriorityResource,
    Request,
    Resource,
    Store,
)
from dcrobot.sim.rng import RandomStreams, make_rng, trial_rng, trial_seed

__all__ = [
    "Simulation",
    "Event",
    "Timeout",
    "Condition",
    "ConditionValue",
    "Process",
    "Interrupt",
    "SimulationError",
    "EventAlreadyTriggered",
    "Resource",
    "PriorityResource",
    "Request",
    "Store",
    "Container",
    "RandomStreams",
    "make_rng",
    "trial_rng",
    "trial_seed",
    "all_of",
    "any_of",
    "defer",
    "NORMAL",
    "URGENT",
]
