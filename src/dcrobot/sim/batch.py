"""Coalesced periodic ticking for the fleet-wide batch kernels.

At hall scale the periodic processes (health, telemetry, dust, aging)
dominate the event heap: four generator resumes plus four heap pushes
per shared boundary, every boundary, forever.  :class:`BatchTicker`
replaces them with *one* process that wakes at the earliest due
boundary and runs every due callback — one heap event per distinct
time, however many cadences share it.

Equivalence with the one-process-per-cadence layout is deliberate and
exact: due callbacks fire ordered by ``(last fire time, registration
index)``, which reproduces the engine's FIFO tie-break for the separate
legacy processes (a process that last ran earlier enqueued its next
timeout earlier, so it resumes earlier at the shared boundary), and the
next wake-up is scheduled only after the due callbacks have run, just
as each legacy process schedules its next timeout after its tick.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional

from dcrobot.sim.engine import Simulation


@dataclasses.dataclass
class _Entry:
    """One registered periodic callback."""

    callback: Callable[[float], None]
    period: float
    next_at: float
    #: Time this entry last fired (registration time before the first
    #: fire) — the primary key of the due-order sort.
    last_fired: float
    index: int


class BatchTicker:
    """One simulation process multiplexing every periodic batch kernel."""

    def __init__(self, sim: Simulation) -> None:
        self.sim = sim
        self._entries: List[_Entry] = []

    def __repr__(self) -> str:
        return f"<BatchTicker entries={len(self._entries)}>"

    def add(self, callback: Callable[[float], None], period: float,
            first_at: Optional[float] = None) -> None:
        """Register ``callback(now)`` every ``period`` seconds.

        ``first_at`` defaults to one full period from now; pass
        ``sim.now`` for a callback that must run immediately on start
        (the health model's tick-then-sleep loop).
        """
        if period <= 0:
            raise ValueError(f"period must be > 0, got {period}")
        now = self.sim.now
        if first_at is None:
            first_at = now + period
        if first_at < now:
            raise ValueError(f"first_at={first_at} lies in the past")
        self._entries.append(_Entry(callback, period, first_at, now,
                                    len(self._entries)))

    def run(self, sim: Simulation):
        """Generator process: wake at each due boundary, fire, repeat."""
        if sim is not self.sim:
            raise ValueError("ticker bound to a different simulation")
        while self._entries:
            next_time = min(entry.next_at for entry in self._entries)
            if next_time > sim.now:
                yield sim.timeout(next_time - sim.now)
            now = sim.now
            # <= rather than == so a non-integer period whose boundary
            # lands an ulp early can never strand its entry in the past.
            due = [entry for entry in self._entries
                   if entry.next_at <= now]
            due.sort(key=lambda entry: (entry.last_fired, entry.index))
            for entry in due:
                entry.next_at = now + entry.period
                entry.last_fired = now
            for entry in due:
                entry.callback(now)
