"""Deterministic random-stream management.

Every stochastic component in ``dcrobot`` draws from its own named
sub-stream of a single root seed, so simulations are reproducible and
component behaviour is stable when unrelated components are added or
removed (a common pitfall when sharing one generator).
"""

from __future__ import annotations

import hashlib
from typing import Optional

import numpy as np


class RandomStreams:
    """Factory of independent, named ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def stream(self, name: str) -> np.random.Generator:
        """A generator seeded by (root seed, name) — stable across runs."""
        digest = hashlib.sha256(
            f"{self.seed}:{name}".encode("utf-8")).digest()
        child_seed = int.from_bytes(digest[:8], "little")
        return np.random.default_rng(child_seed)

    def spawn(self, name: str) -> "RandomStreams":
        """A child factory whose streams are namespaced under ``name``."""
        digest = hashlib.sha256(
            f"{self.seed}/{name}".encode("utf-8")).digest()
        return RandomStreams(int.from_bytes(digest[:8], "little"))


def trial_seed(experiment_id: str, base_seed: int, trial_index: int) -> int:
    """The deterministic RNG substream seed for one experiment trial.

    Derived purely from ``(experiment_id, base_seed, trial_index)`` via
    SHA-256, so a trial's stream is identical whether it runs serially,
    in a process pool, or alone — and independent of every other trial.
    """
    digest = hashlib.sha256(
        f"trial:{experiment_id}:{int(base_seed)}:{int(trial_index)}"
        .encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def trial_rng(experiment_id: str, base_seed: int,
              trial_index: int) -> np.random.Generator:
    """A generator on the :func:`trial_seed` substream."""
    return np.random.default_rng(
        trial_seed(experiment_id, base_seed, trial_index))


def make_rng(seed_or_rng: Optional[object] = None) -> np.random.Generator:
    """Coerce ``None`` / int / Generator into a ``numpy.random.Generator``."""
    if seed_or_rng is None:
        return np.random.default_rng(0)
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)
