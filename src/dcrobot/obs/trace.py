"""Deterministic structured tracing on the simulation clock.

Spans form one tree per world run: a ``world`` root span, one
``incident`` span per incident, and instant child spans for each stage
of the lifecycle (``detect``, ``plan``, ``dispatch``, ``execute``,
``verify``, ``conclude``) plus control-plane events (journal appends,
recovery replay, failover promotion).

Determinism rules — these make traces golden-testable:

* Timestamps are **sim time** read from an injected ``clock`` callable;
  wall-clock never enters a span.
* Span ids come from a monotonically increasing per-tracer counter, so
  ids depend only on the order of instrumented events.
* The trace id is derived from the trial seed via SHA-256
  (:func:`trace_id_from_seed`), mirroring the
  :func:`dcrobot.sim.rng.trial_seed` substream idiom.
* Attribute values are coerced to plain JSON scalars at record time
  (numpy scalars become Python numbers, enums their ``value``).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import itertools
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional


def trace_id_from_seed(seed: int) -> str:
    """A 64-bit hex trace id derived from the trial seed.

    Same SHA-256 derivation idiom as ``sim.rng.trial_seed`` so the
    trace id is a stable function of the trial's RNG substream root.
    """
    digest = hashlib.sha256(f"dcrobot-trace:{int(seed)}".encode())
    return digest.hexdigest()[:16]


def _plain(value: Any) -> Any:
    """Coerce an attribute value to a deterministic JSON scalar."""
    if isinstance(value, enum.Enum):
        value = value.value
    # Exact-type check: np.float64 subclasses float but should still
    # be unwrapped to the plain Python scalar below.
    if value is None or type(value) in (bool, int, float, str):
        return value
    item = getattr(value, "item", None)  # numpy scalars
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    if isinstance(value, float):
        return float(value)
    if isinstance(value, int):
        return int(value)
    return str(value)


@dataclasses.dataclass
class Span:
    """One node of the trace tree.  ``end is None`` means still open
    (or never concluded — e.g. an incident lost to a crash)."""

    trace_id: str
    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: Optional[float] = None
    status: str = "ok"
    attributes: Dict[str, Any] = dataclasses.field(default_factory=dict)

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attributes": {key: self.attributes[key]
                           for key in sorted(self.attributes)},
        }


class NullRecorder:
    """The no-op tracer: every instrumentation site's default.

    ``enabled`` is a class attribute so the hot-path guard
    ``if obs.enabled:`` costs one attribute load and a branch.
    """

    enabled = False
    trace_id = ""
    root: Optional[Span] = None
    spans: List[Span] = []

    def open_root(self, name: str, **attributes: Any) -> None:
        return None

    def start_span(self, name: str, parent: Optional[Span] = None,
                   **attributes: Any) -> None:
        return None

    def end_span(self, span: Optional[Span], status: str = "ok",
                 **attributes: Any) -> None:
        return None

    def record(self, name: str, parent: Optional[Span] = None,
               **attributes: Any) -> None:
        return None

    @contextmanager
    def span(self, name: str, parent: Optional[Span] = None,
             **attributes: Any):
        yield None

    def finish(self, status: str = "ok") -> None:
        return None


NULL_RECORDER = NullRecorder()


class Tracer:
    """Records :class:`Span` trees against an injected sim clock."""

    enabled = True

    def __init__(self, trace_id: str = "trace",
                 clock: Optional[Callable[[], float]] = None):
        self.trace_id = trace_id
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.spans: List[Span] = []
        self.root: Optional[Span] = None
        self._ids = itertools.count()

    def open_root(self, name: str, **attributes: Any) -> Span:
        """Create (and remember) the root span all parentless spans
        hang off."""
        self.root = self._make(name, parent_id=None,
                               attributes=attributes)
        return self.root

    def _make(self, name: str, parent_id: Optional[int],
              attributes: Dict[str, Any]) -> Span:
        span = Span(trace_id=self.trace_id, span_id=next(self._ids),
                    parent_id=parent_id, name=name, start=self.clock(),
                    attributes={key: _plain(value)
                                for key, value in attributes.items()})
        self.spans.append(span)
        return span

    def start_span(self, name: str, parent: Optional[Span] = None,
                   **attributes: Any) -> Span:
        """Open a span.  ``parent=None`` parents it to the root span
        (if one was opened)."""
        if parent is None:
            parent = self.root
        parent_id = parent.span_id if parent is not None else None
        return self._make(name, parent_id, attributes)

    def end_span(self, span: Optional[Span], status: str = "ok",
                 **attributes: Any) -> None:
        """Close a span at the current sim time (idempotent: a span
        already ended keeps its first end time)."""
        if span is None:
            return
        if span.end is None:
            span.end = self.clock()
            span.status = status
        if attributes:
            span.attributes.update(
                {key: _plain(value)
                 for key, value in attributes.items()})

    def record(self, name: str, parent: Optional[Span] = None,
               **attributes: Any) -> Span:
        """An instant (zero-duration) span at the current sim time."""
        span = self.start_span(name, parent=parent, **attributes)
        span.end = span.start
        return span

    @contextmanager
    def span(self, name: str, parent: Optional[Span] = None,
             **attributes: Any):
        """Context manager form; closes with status ``error`` if the
        body raises."""
        span = self.start_span(name, parent=parent, **attributes)
        try:
            yield span
        except BaseException:
            self.end_span(span, status="error")
            raise
        self.end_span(span)

    def finish(self, status: str = "ok") -> None:
        """Close the root span (idempotent); call at end of run."""
        self.end_span(self.root, status=status)
