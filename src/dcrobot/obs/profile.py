"""Sim hot-path profiling: per-event-type wall-clock accounting.

A :class:`SimProfiler` plugs into ``Simulation.profiler`` (default
``None`` — the engine pays one ``is None`` check per step when
profiling is off).  While attached, every step records:

* per **event type** (``Timeout``, ``Event``, …): callback wall-clock,
  sim-time advanced, and step count;
* per **callback** (attributed to the process generator's function
  name for ``Process._resume`` bound methods): wall-clock and calls.

Wall-clock numbers are measurement, not simulation state: attaching a
profiler never changes world behaviour and never enters a trace.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from dcrobot.metrics.report import Table


@dataclasses.dataclass
class ProfileEntry:
    """Accumulated cost of one event type or callback."""

    count: int = 0
    wall_seconds: float = 0.0
    sim_seconds: float = 0.0


class SimProfiler:
    """Accumulates per-event-type and per-callback step costs."""

    def __init__(self):
        self.event_stats: Dict[str, ProfileEntry] = {}
        self.callback_stats: Dict[str, ProfileEntry] = {}
        self.steps = 0
        self.wall_seconds = 0.0
        self.sim_seconds = 0.0

    # -- engine-facing hooks (called from Simulation.step) ------------

    def record_event(self, name: str, wall: float,
                     sim_advance: float) -> None:
        entry = self.event_stats.get(name)
        if entry is None:
            entry = self.event_stats[name] = ProfileEntry()
        entry.count += 1
        entry.wall_seconds += wall
        entry.sim_seconds += sim_advance
        self.steps += 1
        self.wall_seconds += wall
        self.sim_seconds += sim_advance

    def record_callback(self, name: str, wall: float) -> None:
        entry = self.callback_stats.get(name)
        if entry is None:
            entry = self.callback_stats[name] = ProfileEntry()
        entry.count += 1
        entry.wall_seconds += wall

    # -- reporting ----------------------------------------------------

    def attach(self, sim) -> "SimProfiler":
        sim.profiler = self
        return self

    def detach(self, sim) -> None:
        if getattr(sim, "profiler", None) is self:
            sim.profiler = None

    def hotspots(self, top: int = 10,
                 which: str = "callback") -> List[Tuple[str,
                                                        ProfileEntry]]:
        """The ``top`` costliest entries by wall-clock (ties broken by
        name for deterministic ordering)."""
        stats = (self.callback_stats if which == "callback"
                 else self.event_stats)
        ranked = sorted(stats.items(),
                        key=lambda item: (-item[1].wall_seconds,
                                          item[0]))
        return ranked[:top]

    def report(self, top: int = 10) -> str:
        """Two tables: event-type accounting, then the top-N callback
        hotspots."""
        events = Table(
            ["event type", "steps", "wall ms", "sim hours", "us/step"],
            title="sim step accounting by event type")
        for name, entry in self.hotspots(top, which="event"):
            per_step = (1e6 * entry.wall_seconds / entry.count
                        if entry.count else 0.0)
            events.add_row(name, entry.count,
                           f"{1e3 * entry.wall_seconds:.2f}",
                           f"{entry.sim_seconds / 3600.0:.1f}",
                           f"{per_step:.1f}")
        hot = Table(["callback", "calls", "wall ms", "% wall"],
                    title=f"top {top} callback hotspots")
        total = self.wall_seconds or 1.0
        for name, entry in self.hotspots(top, which="callback"):
            hot.add_row(name, entry.count,
                        f"{1e3 * entry.wall_seconds:.2f}",
                        f"{100.0 * entry.wall_seconds / total:.1f}")
        summary = (f"{self.steps} steps, "
                   f"{1e3 * self.wall_seconds:.1f} ms wall, "
                   f"{self.sim_seconds / 86400.0:.2f} sim-days")
        return "\n\n".join([summary, events.render(), hot.render()])
