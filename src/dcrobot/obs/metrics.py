"""Process-local metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` hands out named instruments on demand
(create-or-get, so instrumentation sites never coordinate).  Every
instrument supports labels via keyword arguments; a label set is
canonicalised to a sorted ``(key, value)`` tuple so snapshots are
deterministic regardless of call order.

Histograms use *fixed* upper bounds chosen at creation time (no dynamic
rebucketing), which keeps exports bit-stable for golden tests and makes
:meth:`Histogram.merge` associative — a property the hypothesis suite
pins down.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Dict, Iterable, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: Default bucket upper bounds (seconds) for repair-time style
#: histograms: 10 min, 30 min, 1 h, 2 h, 4 h, 8 h, 24 h, 48 h, +Inf.
MTTR_BUCKETS = (600.0, 1800.0, 3600.0, 7200.0, 14400.0, 28800.0,
                86400.0, 172800.0)

#: Small-count buckets (attempts, queue depths).
COUNT_BUCKETS = (1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0)

#: Flow-completion-time buckets (seconds): sub-ms mice through
#: retransmission-dominated seconds under congestion.
FCT_BUCKETS = (0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0,
               5.0, 30.0, 120.0)

#: Service-plane request-latency buckets (wall seconds): snapshot
#: reads land sub-ms; queueing under overload pushes into seconds.
SERVICE_LATENCY_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
                           0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0)

#: Well-known histogram names → bucket bounds, so call sites can say
#: ``registry.histogram("dcrobot_incident_mttr_seconds")`` without
#: repeating the bounds everywhere.
BUCKETS_BY_NAME = {
    "dcrobot_incident_mttr_seconds": MTTR_BUCKETS,
    "dcrobot_incident_attempts": COUNT_BUCKETS,
    "dcrobot_traffic_window_p99_fct_seconds": FCT_BUCKETS,
    "dcrobot_service_request_latency_seconds": SERVICE_LATENCY_BUCKETS,
}

#: Fallback bounds when a histogram name is not pre-registered.
DEFAULT_BUCKETS = (1.0, 5.0, 15.0, 60.0, 300.0, 1800.0, 3600.0,
                   14400.0, 86400.0)


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((key, str(value))
                        for key, value in labels.items()))


def _number(value: Any) -> float:
    """Coerce numpy scalars (and bools) to a plain float."""
    item = getattr(value, "item", None)
    if callable(item) and not isinstance(value, (int, float)):
        value = item()
    return float(value)


class Counter:
    """A monotonically increasing sum per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._values: Dict[LabelKey, float] = {}

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        value = _number(value)
        if value < 0:
            raise ValueError(
                f"counter {self.name} cannot decrease (got {value})")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + value

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across all label sets."""
        return sum(self._values.values())

    def samples(self) -> List[Tuple[LabelKey, float]]:
        return sorted(self._values.items())


class Gauge:
    """A point-in-time value per label set (last write wins)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._values[_label_key(labels)] = _number(value)

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + _number(value)

    def dec(self, value: float = 1.0, **labels: Any) -> None:
        self.inc(-_number(value), **labels)

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> List[Tuple[LabelKey, float]]:
        return sorted(self._values.items())


@dataclasses.dataclass
class HistogramState:
    """Per-label-set accumulation: one count per finite bucket plus
    the implicit +Inf bucket at the end."""

    bucket_counts: List[int]
    count: int = 0
    sum: float = 0.0


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, name: str,
                 buckets: Optional[Iterable[float]] = None,
                 help: str = ""):
        if buckets is None:
            buckets = BUCKETS_BY_NAME.get(name, DEFAULT_BUCKETS)
        uppers = tuple(sorted(float(b) for b in buckets))
        if not uppers:
            raise ValueError(f"histogram {name} needs >= 1 bucket")
        if any(math.isinf(b) or math.isnan(b) for b in uppers):
            raise ValueError(
                f"histogram {name}: +Inf bucket is implicit; bounds "
                "must be finite")
        if len(set(uppers)) != len(uppers):
            raise ValueError(f"histogram {name}: duplicate bounds")
        self.name = name
        self.help = help
        self.uppers = uppers
        self._states: Dict[LabelKey, HistogramState] = {}

    def _state(self, key: LabelKey) -> HistogramState:
        state = self._states.get(key)
        if state is None:
            state = HistogramState(
                bucket_counts=[0] * (len(self.uppers) + 1))
            self._states[key] = state
        return state

    def observe(self, value: float, **labels: Any) -> None:
        value = _number(value)
        state = self._state(_label_key(labels))
        index = len(self.uppers)  # +Inf bucket by default
        for i, upper in enumerate(self.uppers):
            if value <= upper:
                index = i
                break
        state.bucket_counts[index] += 1
        state.count += 1
        state.sum += value

    def count(self, **labels: Any) -> int:
        state = self._states.get(_label_key(labels))
        return state.count if state is not None else 0

    def sum(self, **labels: Any) -> float:
        state = self._states.get(_label_key(labels))
        return state.sum if state is not None else 0.0

    def cumulative_counts(self, **labels: Any) -> List[int]:
        """Prometheus-style cumulative bucket counts, one per finite
        bound plus the trailing +Inf (== total count)."""
        state = self._states.get(_label_key(labels))
        counts = (state.bucket_counts if state is not None
                  else [0] * (len(self.uppers) + 1))
        out, running = [], 0
        for bucket in counts:
            running += bucket
            out.append(running)
        return out

    def merge(self, other: "Histogram") -> "Histogram":
        """Combine two histograms with identical bounds into a new
        one.  Associative and commutative — property-tested."""
        if not isinstance(other, Histogram):
            raise TypeError("can only merge Histogram with Histogram")
        if other.uppers != self.uppers:
            raise ValueError(
                f"cannot merge {self.name}: bucket bounds differ")
        merged = Histogram(self.name, self.uppers, help=self.help)
        for source in (self, other):
            for key, state in source._states.items():
                target = merged._state(key)
                for i, bucket in enumerate(state.bucket_counts):
                    target.bucket_counts[i] += bucket
                target.count += state.count
                target.sum += state.sum
        return merged

    def samples(self) -> List[Tuple[LabelKey, HistogramState]]:
        return sorted(self._states.items())


class MetricsRegistry:
    """Create-or-get instrument registry.

    Re-requesting a name returns the existing instrument; requesting
    it as a different kind (or a histogram with different bounds) is a
    programming error and raises.
    """

    enabled = True

    def __init__(self):
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, cls, factory):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{instrument.kind}, not {cls.kind}")
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name, help))

    def histogram(self, name: str,
                  buckets: Optional[Iterable[float]] = None,
                  help: str = "") -> Histogram:
        histogram = self._get(
            name, Histogram, lambda: Histogram(name, buckets, help))
        if buckets is not None:
            wanted = tuple(sorted(float(b) for b in buckets))
            if wanted != histogram.uppers:
                raise ValueError(
                    f"histogram {name!r} already registered with "
                    f"bounds {histogram.uppers}")
        return histogram

    def instruments(self) -> List[Tuple[str, object]]:
        """All instruments sorted by name (deterministic export
        order)."""
        return sorted(self._instruments.items())

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)


class NullRegistry:
    """No-op registry backing ``NULL_OBS``; hands out shared no-op
    instruments so even unguarded call sites stay cheap."""

    enabled = False

    class _NullInstrument:
        kind = "null"
        name = ""
        help = ""
        uppers = ()

        def inc(self, value: float = 1.0, **labels: Any) -> None:
            return None

        def dec(self, value: float = 1.0, **labels: Any) -> None:
            return None

        def set(self, value: float, **labels: Any) -> None:
            return None

        def observe(self, value: float, **labels: Any) -> None:
            return None

        def value(self, **labels: Any) -> float:
            return 0.0

        def total(self) -> float:
            return 0.0

        def count(self, **labels: Any) -> int:
            return 0

        def sum(self, **labels: Any) -> float:
            return 0.0

        def samples(self) -> list:
            return []

    _INSTRUMENT = _NullInstrument()

    def counter(self, name: str, help: str = ""):
        return self._INSTRUMENT

    def gauge(self, name: str, help: str = ""):
        return self._INSTRUMENT

    def histogram(self, name: str, buckets=None, help: str = ""):
        return self._INSTRUMENT

    def instruments(self) -> list:
        return []

    def __contains__(self, name: str) -> bool:
        return False

    def __len__(self) -> int:
        return 0


NULL_REGISTRY = NullRegistry()
