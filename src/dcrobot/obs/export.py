"""Exporters: JSON-lines traces, JSON + Prometheus-text metrics.

Everything here operates on *plain data* (span dicts, metric
snapshots) as well as live tracers/registries, so worker processes can
ship exports across a process boundary and the experiments CLI can
write them without holding the world.

``OBS_SCHEMA_VERSION`` stamps every export and participates in the
trial cache key (same pattern as ``JOURNAL_SCHEMA_VERSION``): bump it
whenever the export shape changes so cached trials with stale exports
are invalidated.
"""

from __future__ import annotations

import json
from typing import Dict, List, Union

from dcrobot.obs.metrics import Histogram, MetricsRegistry
from dcrobot.obs.trace import Span, Tracer

#: Bump on any change to the trace/metrics export shape.
OBS_SCHEMA_VERSION = 1

SpanData = Union[Span, dict]


def span_dicts(spans: List[SpanData]) -> List[dict]:
    """Normalise a span list (Span objects or dicts) to plain dicts."""
    return [span.to_dict() if isinstance(span, Span) else span
            for span in spans]


def trace_to_jsonl(trace: Union[Tracer, List[SpanData]]) -> str:
    """One JSON object per line: a header, then every span in
    span-id order.  ``sort_keys`` + compact separators make the bytes
    a pure function of the span data (golden-testable)."""
    spans = span_dicts(trace.spans if isinstance(trace, Tracer)
                       else trace)
    spans = sorted(spans, key=lambda span: span["span_id"])
    trace_id = spans[0]["trace_id"] if spans else ""
    header = {"kind": "trace", "schema_version": OBS_SCHEMA_VERSION,
              "trace_id": trace_id, "span_count": len(spans)}
    lines = [json.dumps(header, sort_keys=True,
                        separators=(",", ":"))]
    lines.extend(json.dumps(span, sort_keys=True,
                            separators=(",", ":"))
                 for span in spans)
    return "\n".join(lines) + "\n"


def write_trace_jsonl(trace: Union[Tracer, List[SpanData]],
                      path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(trace_to_jsonl(trace))


def metrics_snapshot(registry: MetricsRegistry) -> dict:
    """A plain, deterministic dict of every instrument's samples."""
    metrics: Dict[str, dict] = {}
    for name, instrument in registry.instruments():
        entry: dict = {"kind": instrument.kind, "help": instrument.help}
        if isinstance(instrument, Histogram):
            entry["buckets"] = list(instrument.uppers)
            entry["samples"] = [
                {"labels": dict(key), "count": state.count,
                 "sum": state.sum,
                 "bucket_counts": list(state.bucket_counts)}
                for key, state in instrument.samples()]
        else:
            entry["samples"] = [
                {"labels": dict(key), "value": value}
                for key, value in instrument.samples()]
        metrics[name] = entry
    return {"kind": "metrics", "schema_version": OBS_SCHEMA_VERSION,
            "metrics": metrics}


def metrics_to_json(snapshot: Union[MetricsRegistry, dict]) -> str:
    if isinstance(snapshot, MetricsRegistry):
        snapshot = metrics_snapshot(snapshot)
    return json.dumps(snapshot, sort_keys=True, indent=2) + "\n"


def _format_value(value: float) -> str:
    """Prometheus float formatting: integers render bare."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{str(value)}"' for key, value in sorted(labels.items()))
    return "{" + inner + "}"


def metrics_to_prometheus(
        snapshot: Union[MetricsRegistry, dict]) -> str:
    """The Prometheus text exposition format (v0.0.4)."""
    if isinstance(snapshot, MetricsRegistry):
        snapshot = metrics_snapshot(snapshot)
    lines: List[str] = []
    for name in sorted(snapshot["metrics"]):
        entry = snapshot["metrics"][name]
        if entry.get("help"):
            lines.append(f"# HELP {name} {entry['help']}")
        lines.append(f"# TYPE {name} {entry['kind']}")
        if entry["kind"] == "histogram":
            uppers = [*entry["buckets"], float("inf")]
            for sample in entry["samples"]:
                labels = sample["labels"]
                running = 0
                for upper, bucket in zip(uppers,
                                         sample["bucket_counts"]):
                    running += bucket
                    le = "+Inf" if upper == float("inf") \
                        else _format_value(upper)
                    text = _label_text({**labels, "le": le})
                    lines.append(f"{name}_bucket{text} {running}")
                base = _label_text(labels)
                lines.append(
                    f"{name}_sum{base} "
                    f"{_format_value(sample['sum'])}")
                lines.append(f"{name}_count{base} {sample['count']}")
        else:
            for sample in entry["samples"]:
                text = _label_text(sample["labels"])
                lines.append(
                    f"{name}{text} {_format_value(sample['value'])}")
    return "\n".join(lines) + "\n"


def write_metrics(snapshot: Union[MetricsRegistry, dict],
                  path: str) -> None:
    """Write a metrics snapshot; ``.prom``/``.txt`` suffixes get the
    Prometheus text format, everything else JSON."""
    if path.endswith((".prom", ".txt")):
        text = metrics_to_prometheus(snapshot)
    else:
        text = metrics_to_json(snapshot)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
