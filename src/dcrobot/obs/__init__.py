"""Observability: tracing, metrics, export, and sim profiling.

The control plane is instrumented through one tiny facade,
:class:`Observability`, which bundles a tracer and a metrics registry.
Every instrumented component takes ``obs=NULL_OBS`` and guards each
site with ``if self.obs.enabled:`` — a single class-attribute load —
so the disabled path adds (measurably) nothing to a trial.

Design rules the golden-trace tests enforce:

* instrumentation consumes **no RNG** and schedules **no sim events**,
  so observed and unobserved runs are behaviourally identical;
* spans and metrics are keyed off sim time and deterministic ids, so
  a fixed seed exports bit-identical bytes run over run.
"""

from __future__ import annotations

from typing import Any, Optional

from dcrobot.obs.metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
)
from dcrobot.obs.trace import (
    NULL_RECORDER,
    NullRecorder,
    Tracer,
    trace_id_from_seed,
)

__all__ = [
    "Observability",
    "NullObservability",
    "NULL_OBS",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Tracer",
    "NullRecorder",
    "NULL_RECORDER",
    "trace_id_from_seed",
    "observability_for_seed",
]


class Observability:
    """A live tracer + metrics registry pair."""

    enabled = True

    def __init__(self, tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = (metrics if metrics is not None
                        else MetricsRegistry())
        #: kind -> {process-global id -> stable 1-based ordinal}.
        self._ordinals: dict = {}

    def ordinal(self, kind: str, key: Any) -> int:
        """A per-trace ordinal for a process-global identifier.

        Work-order ids come from a process-wide counter, so their raw
        values depend on everything that ran earlier in the process.
        Spans record this first-seen ordinal instead, keeping exports a
        pure function of the world.  The table lives on the shared
        facade, so failover successor controllers keep the numbering.
        """
        table = self._ordinals.setdefault(kind, {})
        return table.setdefault(key, len(table) + 1)

    # Convenience shorthands for one-line instrumentation sites.

    def count(self, name: str, value: float = 1.0,
              **labels: Any) -> None:
        self.metrics.counter(name).inc(value, **labels)

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        self.metrics.gauge(name).set(value, **labels)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        self.metrics.histogram(name).observe(value, **labels)


class NullObservability:
    """The default at every instrumentation site: does nothing."""

    enabled = False
    tracer = NULL_RECORDER
    metrics = NULL_REGISTRY

    def ordinal(self, kind: str, key: Any) -> int:
        return 0

    def count(self, name: str, value: float = 1.0,
              **labels: Any) -> None:
        return None

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        return None

    def observe(self, name: str, value: float, **labels: Any) -> None:
        return None


NULL_OBS = NullObservability()


def observability_for_seed(seed: int, clock) -> Observability:
    """An enabled bundle whose trace id derives from the trial seed
    and whose spans are timestamped by ``clock`` (the sim clock)."""
    return Observability(
        tracer=Tracer(trace_id=trace_id_from_seed(seed), clock=clock))
