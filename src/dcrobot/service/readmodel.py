"""The service plane's materialized read model (S21).

Every query the old facade served walked live world state: ``status()``
rescanned all link objects and re-summed every repair time per call.
That is fine for one dashboard and fatal for "heavy traffic from
millions of users" (ROADMAP north star).  :class:`ReadModel` is the
query-path half of the refactor: a materialized view refreshed once
per sim-bridge slice, so any number of queries between slices are O(1)
snapshot reads.

The view is fed incrementally:

* **incident counters** — O(1) ``len()`` reads off the live
  controller's ledgers;
* **MTTR** — the closed-incident list is append-only, so the running
  ``(count, sum)`` pair only folds in the tail appended since the last
  refresh (never a rescan);
* **link-state counts** — one vectorized ``bincount`` over the
  columnar :class:`~dcrobot.network.state.FabricState` state codes;
* **SMI** — the incremental :class:`~dcrobot.topology.smi.SmiTracker`
  (S18), O(changed links) since the last structural event;
* **external telemetry** — last-report-per-source materialized from
  the ingest stream (:meth:`record_external`), never touching the sim.

``full_scan_status`` (:mod:`dcrobot.core.api`) stays the parity
oracle: :meth:`verify_status_parity` asserts a refreshed snapshot
equals the legacy full scan exactly, and the server's ``audit_every``
knob re-runs that comparison on live traffic.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Union

import numpy as np

from dcrobot.core.api import MaintenanceStatus, full_scan_status
from dcrobot.network.state import (
    DOWN_CODE,
    FLAPPING_CODE,
    MAINTENANCE_CODE,
    STATE_OF,
)

__all__ = ["ReadSnapshot", "ReadModel", "ReadModelParityError"]


class ReadModelParityError(AssertionError):
    """A materialized snapshot diverged from the full-scan oracle."""


@dataclasses.dataclass(frozen=True)
class ReadSnapshot:
    """One immutable point-in-time view; queries read only this."""

    time: float
    refresh_seq: int
    open_incidents: int
    closed_incidents: int
    unresolved_incidents: int
    proactive_operations: int
    repair_count: int
    repair_seconds_total: float
    links_down: int
    links_flapping: int
    links_maintenance: int
    links_total: int
    smi: Optional[float] = None

    @property
    def mean_time_to_repair_seconds(self) -> Optional[float]:
        if self.repair_count == 0:
            return None
        return self.repair_seconds_total / self.repair_count

    def status(self) -> MaintenanceStatus:
        """The snapshot as the classic facade status (O(1))."""
        return MaintenanceStatus(
            open_incidents=self.open_incidents,
            closed_incidents=self.closed_incidents,
            unresolved_incidents=self.unresolved_incidents,
            proactive_operations=self.proactive_operations,
            mean_time_to_repair_seconds=(
                self.mean_time_to_repair_seconds),
            links_down=self.links_down,
            links_total=self.links_total,
        )


class ReadModel:
    """Materialized maintenance-plane view over one live world."""

    def __init__(self, controller, fabric,
                 smi_tracker=None) -> None:
        """``controller`` may be the controller itself or a zero-arg
        callable returning the *live* controller (failover-aware, the
        way :class:`~dcrobot.experiments.runner.RunResult` resolves
        it)."""
        self._controller_fn: Callable = (
            controller if callable(controller)
            else (lambda: controller))
        self.fabric = fabric
        self.smi_tracker = smi_tracker
        #: Closed incidents already folded into the MTTR accumulators.
        self._closed_seen = 0
        self._repair_seconds = 0.0
        self.refresh_count = 0
        self.snapshot: Optional[ReadSnapshot] = None
        #: source id -> last ingested telemetry report (plain data).
        self.external_last: Dict[str, object] = {}
        self.external_ingested = 0

    @property
    def controller(self):
        return self._controller_fn()

    # -- refresh (called once per bridge slice) -------------------------------

    def _fold_closed_tail(self, controller) -> None:
        closed = controller.closed_incidents
        for incident in closed[self._closed_seen:]:
            self._repair_seconds += incident.time_to_repair
        self._closed_seen = len(closed)

    def refresh(self, now: Optional[float] = None) -> ReadSnapshot:
        """Re-materialize the snapshot; O(new closed incidents) plus
        one vectorized pass over the state codes."""
        controller = self.controller
        if self._closed_seen > len(controller.closed_incidents):
            # A failover successor may restart its ledgers; re-fold.
            self._closed_seen = 0
            self._repair_seconds = 0.0
        self._fold_closed_tail(controller)
        state = self.fabric.state
        n = state.n_links
        counts = np.bincount(state.state_code[:n].astype(np.int64),
                             minlength=len(STATE_OF))
        self.refresh_count += 1
        self.snapshot = ReadSnapshot(
            time=(now if now is not None else controller.sim.now),
            refresh_seq=self.refresh_count,
            open_incidents=len(controller.open_incidents),
            closed_incidents=len(controller.closed_incidents),
            unresolved_incidents=len(controller.unresolved_incidents),
            proactive_operations=len(controller.proactive_outcomes),
            repair_count=self._closed_seen,
            repair_seconds_total=self._repair_seconds,
            links_down=int(counts[DOWN_CODE]),
            links_flapping=int(counts[FLAPPING_CODE]),
            links_maintenance=int(counts[MAINTENANCE_CODE]),
            links_total=int(n),
            smi=(self.smi_tracker.report().smi
                 if self.smi_tracker is not None else None))
        return self.snapshot

    def _snapshot(self) -> ReadSnapshot:
        if self.snapshot is None:
            return self.refresh()
        return self.snapshot

    # -- queries (all O(1) against the snapshot) ------------------------------

    def status(self) -> MaintenanceStatus:
        return self._snapshot().status()

    def smi(self) -> Optional[float]:
        return self._snapshot().smi

    def incident(self, link_id: str):
        """The open incident on a link, if any (O(1) dict lookup)."""
        return self.controller.open_incidents.get(link_id)

    def link_health(self, link_id: str) -> Dict[str, object]:
        """Per-link health row straight from the columns (O(1))."""
        state = self.fabric.state
        row = state.index_of.get(link_id)
        if row is None:
            raise KeyError(f"unknown link {link_id}")
        down_since = float(state.down_since[row])
        report = self.external_last.get(link_id)
        return {
            "link_id": link_id,
            "state": STATE_OF[int(state.state_code[row])].value,
            "loss_rate": float(state.loss_rate[row]),
            "down_since": (None if np.isnan(down_since)
                           else down_since),
            "oxidation": float(state.ox[:, row].max()),
            "cable_damaged": bool(state.cable_damaged[row]),
            "external_report": report,
        }

    # -- external telemetry materialization -----------------------------------

    def record_external(self, report) -> None:
        """Fold one ingested telemetry report into the view.

        Reports are keyed by ``source_id`` (falling back to
        ``link_id``) and only the latest per source is kept — the
        service plane materializes device streams for queries, it
        never feeds them into the simulation (so a served world stays
        bit-identical to an unserved one).
        """
        key = (getattr(report, "source_id", None)
               or getattr(report, "link_id", None))
        if key is None and isinstance(report, dict):
            key = report.get("source_id") or report.get("link_id")
        if key is None:
            key = "anonymous"
        self.external_last[key] = report
        self.external_ingested += 1

    # -- parity oracle ---------------------------------------------------------

    def verify_status_parity(self) -> MaintenanceStatus:
        """Assert the refreshed snapshot equals the legacy full scan.

        Must be called at a refresh point (the server audits between
        bridge slices, where no sim event can have run since the last
        refresh).  Returns the oracle status on success.
        """
        oracle = full_scan_status(self.controller)
        got = self._snapshot().status()
        if got != oracle:
            raise ReadModelParityError(
                f"read model diverged from full scan: {got} != "
                f"{oracle}")
        return oracle


class CampusReadModel:
    """Aggregated O(1) status over per-hall read models (S20 x S21)."""

    def __init__(self, hall_models: Dict[int, ReadModel]) -> None:
        self.halls = dict(hall_models)

    def hall(self, hall_id: int) -> ReadModel:
        return self.halls[hall_id]

    def refresh(self, now: Optional[float] = None) -> None:
        for model in self.halls.values():
            model.refresh(now)

    def status(self) -> MaintenanceStatus:
        """Campus-wide sum of every hall's snapshot (link-weighted
        MTTR, matching how a federated scan would aggregate)."""
        snaps = [model._snapshot() for model in self.halls.values()]
        repair_count = sum(snap.repair_count for snap in snaps)
        repair_sum = sum(snap.repair_seconds_total for snap in snaps)
        return MaintenanceStatus(
            open_incidents=sum(s.open_incidents for s in snaps),
            closed_incidents=sum(s.closed_incidents for s in snaps),
            unresolved_incidents=sum(s.unresolved_incidents
                                     for s in snaps),
            proactive_operations=sum(s.proactive_operations
                                     for s in snaps),
            mean_time_to_repair_seconds=(
                repair_sum / repair_count if repair_count else None),
            links_down=sum(s.links_down for s in snaps),
            links_total=sum(s.links_total for s in snaps))

    def verify_status_parity(self) -> None:
        for model in self.halls.values():
            model.verify_status_parity()


ReadModelLike = Union[ReadModel, CampusReadModel]
