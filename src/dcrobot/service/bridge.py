"""Cooperative sim stepping inside an asyncio event loop (S21).

The service plane must keep two promises at once: the simulation makes
progress toward its horizon, and a thundering herd of queries gets
served between events.  :class:`SimBridge` keeps both by slicing the
engine's run loop: at most ``max_events_per_slice`` events are
processed per slice, then the coroutine yields so every pending query
task (and the telemetry ingest drain) runs, then the next slice
starts.  Everything the engine does inside a slice is exactly what
``sim.run(until=...)`` would have done — same heap order, same final
``now`` — so a served world is bit-identical to an unserved one (the
determinism suite pins this).

Sim clock and wall clock are decoupled:

* ``pace=None`` (default) free-runs: the sim advances as fast as the
  hardware allows, queries interleave at slice boundaries.
* ``pace=R`` throttles the sim to ``R`` sim-seconds per wall-second —
  the always-on mode, where a 30-day horizon is *served* over a chosen
  wall window instead of racing to the end.

The bridge also measures how well the loop protected the sim: every
yield records how long the event loop kept the bridge off the CPU
beyond what it asked for.  A gap exceeding ``stall_budget_seconds`` is
a **stall** — the observable the admission layer exists to drive to
zero (``bench_service_load`` gates on it).
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from typing import Callable, List, Optional, Sequence, Union

from dcrobot.sim.engine import Simulation

__all__ = ["BridgeConfig", "SimBridge"]


@dataclasses.dataclass
class BridgeConfig:
    """Slice budgets and clock coupling for one bridge."""

    #: Max engine events processed per sim per slice.
    max_events_per_slice: int = 512
    #: Sim-seconds advanced per wall-second; ``None`` free-runs.
    pace: Optional[float] = None
    #: A yield that keeps the bridge off the CPU longer than this
    #: (beyond any sleep it asked for) counts as a sim-loop stall.
    stall_budget_seconds: float = 0.25

    def __post_init__(self) -> None:
        if self.max_events_per_slice < 1:
            raise ValueError("max_events_per_slice must be >= 1")
        if self.pace is not None and self.pace <= 0:
            raise ValueError("pace must be > 0 sim-seconds per "
                             "wall-second when set")
        if self.stall_budget_seconds <= 0:
            raise ValueError("stall_budget_seconds must be > 0")


class SimBridge:
    """Steps one or more simulations cooperatively to a target time."""

    def __init__(self, sims: Union[Simulation, Sequence[Simulation]],
                 config: Optional[BridgeConfig] = None,
                 clock: Callable[[], float] = time.perf_counter,
                 sleep=asyncio.sleep) -> None:
        if isinstance(sims, Simulation):
            sims = [sims]
        self.sims: List[Simulation] = list(sims)
        if not self.sims:
            raise ValueError("need at least one simulation")
        self.config = config or BridgeConfig()
        self.clock = clock
        self.sleep = sleep
        #: Called with ``sim_now`` after every round of slices (the
        #: server hangs read-model refresh + ingest drain here).
        self.on_slice: List[Callable[[float], None]] = []
        # -- telemetry ----------------------------------------------------
        self.slices = 0
        self.events_processed = 0
        self.stalls = 0
        self.max_gap_seconds = 0.0
        self.max_slice_seconds = 0.0
        self.wall_seconds = 0.0

    @property
    def sim_now(self) -> float:
        return min(sim.now for sim in self.sims)

    def add_slice_hook(self, hook: Callable[[float], None]) -> None:
        self.on_slice.append(hook)

    # -- the serve loop --------------------------------------------------------

    def _slice(self, sim: Simulation, target: float) -> int:
        """Process up to the slice budget of events strictly before
        ``target`` — the exact loop body of ``Simulation.run``."""
        budget = self.config.max_events_per_slice
        done = 0
        heap = sim._heap
        while done < budget and heap and heap[0][0] < target:
            sim.step()
            done += 1
        return done

    def _pending(self, target: float) -> bool:
        return any(sim._heap and sim._heap[0][0] < target
                   for sim in self.sims)

    async def run_until(self, target: float) -> None:
        """Serve the sims to ``target``, yielding between slices.

        Equivalent to ``sim.run(until=target)`` on every sim (events
        scheduled exactly at ``target`` are not processed and ``now``
        ends equal to ``target``), except the event loop breathes
        between slices.
        """
        target = float(target)
        for sim in self.sims:
            if target < sim.now:
                raise ValueError(
                    f"until={target} lies in the past "
                    f"(now={sim.now})")
        config = self.config
        started = self.clock()
        sim_start = self.sim_now
        while self._pending(target):
            slice_started = self.clock()
            for sim in self.sims:
                self.events_processed += self._slice(sim, target)
            self.slices += 1
            slice_ended = self.clock()
            self.max_slice_seconds = max(
                self.max_slice_seconds, slice_ended - slice_started)
            for hook in self.on_slice:
                hook(self.sim_now)
            intended = 0.0
            if config.pace is not None:
                # Do not let the sim run ahead of the wall clock.
                ahead = ((self.sim_now - sim_start) / config.pace
                         - (slice_ended - started))
                if ahead > 0:
                    intended = ahead
            yielded = self.clock()
            await self.sleep(intended)
            gap = self.clock() - yielded - intended
            if gap > self.max_gap_seconds:
                self.max_gap_seconds = gap
            if gap > config.stall_budget_seconds:
                self.stalls += 1
        for sim in self.sims:
            sim.now = target
        for hook in self.on_slice:
            hook(self.sim_now)
        self.wall_seconds += self.clock() - started

    def __repr__(self) -> str:
        return (f"<SimBridge sims={len(self.sims)} "
                f"slices={self.slices} events={self.events_processed} "
                f"stalls={self.stalls}>")
