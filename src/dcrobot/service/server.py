"""The always-on service front-end over a live world (S21).

This is the layer that turns a batch simulation into a *service*: one
asyncio event loop hosts the simulation (stepped cooperatively by the
:class:`~dcrobot.service.bridge.SimBridge`), a materialized
:class:`~dcrobot.service.readmodel.ReadModel` per hall, streaming
telemetry ingestion under explicit backpressure, and the
:class:`~dcrobot.service.admission.AdmissionController` that decides
who gets served when demand exceeds capacity.

Separation of concerns, per the ISSUE's four layers:

* **queries** (``status`` / ``link_health`` / ``incident`` / ``smi`` /
  ``planned_touches``) are admission-guarded snapshot reads — they run
  at bridge yield points, immediately after a refresh, so what they
  see is exactly current and the ``audit_every`` parity oracle can be
  exact-match;
* **commands** (``request_maintenance``) route verbatim through the
  classic :class:`~dcrobot.core.api.MaintenanceServiceAPI` facade —
  authorizer and hash-chained audit log included — against the *live*
  (failover-aware) controller;
* **telemetry ingestion** (``offer_telemetry``) lands only in the read
  model's materialized stores, never in the simulation, so a served
  world stays bit-identical to an unserved one (the determinism suite
  pins ``summarize_world`` equality);
* **the wire** (``start_tcp``) is a minimal JSON-lines front door so
  "millions of users" is an actual socket, not a metaphor.

:func:`serve_world` is the one-call entry point: it dispatches on
``WorldConfig.halls`` to a :class:`ServedWorld` (one hall) or a
:class:`ServedCampus` (one bridge over every hall shard's sim, then
the normal S20 federation pass), reading service knobs from
``WorldConfig.service``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import time
from collections import deque
from typing import Deque, Dict, Optional, Tuple, Union

from dcrobot.core.actions import Priority, RepairAction
from dcrobot.core.api import MaintenanceServiceAPI, MaintenanceStatus
from dcrobot.core.audit import AuthorizationError
from dcrobot.experiments.runner import (
    RunResult,
    WorldConfig,
    WorldSummary,
    build_world,
    summarize_world,
)
from dcrobot.obs.metrics import MetricsRegistry
from dcrobot.service.admission import (
    AdmissionConfig,
    AdmissionController,
    RequestKind,
)
from dcrobot.service.bridge import BridgeConfig, SimBridge
from dcrobot.service.readmodel import (
    CampusReadModel,
    ReadModel,
    ReadModelParityError,
)
from dcrobot.topology.smi import SmiTracker, compute_smi

__all__ = ["ServiceConfig", "ServiceOverloadError", "TelemetryReport",
           "MaintenanceService", "ServedWorld", "ServedCampus",
           "serve_world"]

#: SMI audit tolerance: incremental tracker vs full rescan.
SMI_ATOL = 1e-12


class ServiceOverloadError(RuntimeError):
    """The request was shed by admission control (retry later)."""


@dataclasses.dataclass(frozen=True)
class TelemetryReport:
    """One device-stream report offered to the ingestion path."""

    source_id: str
    link_id: Optional[str] = None
    kind: str = "metric"
    value: float = 0.0
    time: float = 0.0
    hall: int = 0


@dataclasses.dataclass
class ServiceConfig:
    """Everything that defines one service plane instance."""

    #: Admission policy; ``None`` serves everything (the uncontrolled
    #: baseline ``e20_service_load`` measures against).
    admission: Optional[AdmissionConfig] = dataclasses.field(
        default_factory=AdmissionConfig)
    bridge: BridgeConfig = dataclasses.field(
        default_factory=BridgeConfig)
    #: Telemetry reports buffered between slices; beyond this the
    #: offer is refused (backpressure, counted — never silent).
    ingest_queue_limit: int = 1024
    #: Reports folded into the read model per bridge slice.
    ingest_budget_per_slice: int = 256
    #: Re-verify every Nth served status query against the full-scan
    #: oracle (0 = only when a caller asks with ``audit=True``).
    audit_every: int = 0
    #: Capability checking for the command path (see
    #: :class:`~dcrobot.core.audit.MaintenanceAuthorizer`); ``None``
    #: is trusted-environment mode.
    authorizer: Optional[object] = None

    def __post_init__(self) -> None:
        if self.ingest_queue_limit < 1:
            raise ValueError("ingest_queue_limit must be >= 1")
        if self.ingest_budget_per_slice < 1:
            raise ValueError("ingest_budget_per_slice must be >= 1")
        if self.audit_every < 0:
            raise ValueError("audit_every must be >= 0")


def _as_plain(value):
    """Best-effort JSON-safe projection for wire responses."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {k: _as_plain(v) for k, v
                in dataclasses.asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): _as_plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_as_plain(v) for v in value]
    return repr(value)


class MaintenanceService:
    """One service plane over one or more live hall worlds.

    ``worlds`` maps hall id -> built :class:`RunResult`; a lone
    :class:`RunResult` is accepted as hall 0.  All hall sims are
    stepped by a single :class:`SimBridge`, and every slice boundary
    drains the ingest queue then refreshes every hall's read model —
    so queries between slices see a coherent, current snapshot.
    """

    def __init__(self, worlds: Union[RunResult, Dict[int, RunResult]],
                 config: Optional[ServiceConfig] = None,
                 smi_trackers: Optional[Dict[int, SmiTracker]] = None,
                 clock=time.perf_counter,
                 sleep=asyncio.sleep) -> None:
        if isinstance(worlds, RunResult):
            worlds = {0: worlds}
        if not worlds:
            raise ValueError("need at least one world to serve")
        self.worlds: Dict[int, RunResult] = dict(sorted(worlds.items()))
        self.config = config or ServiceConfig()
        self.clock = clock
        self.metrics = MetricsRegistry()
        smi_trackers = smi_trackers or {}
        self.readmodels: Dict[int, ReadModel] = {
            hall: ReadModel(
                (lambda world=world: world.live_controller),
                world.fabric, smi_tracker=smi_trackers.get(hall))
            for hall, world in self.worlds.items()}
        self.read = (CampusReadModel(self.readmodels)
                     if len(self.readmodels) > 1
                     else self.readmodels[next(iter(self.readmodels))])
        self.bridge = SimBridge(
            [world.sim for world in self.worlds.values()],
            self.config.bridge, clock=clock, sleep=sleep)
        self.bridge.add_slice_hook(self._on_slice)
        self.admission: Optional[AdmissionController] = None
        if self.config.admission is not None:
            self.admission = AdmissionController(
                self.config.admission, metrics=self.metrics,
                clock=clock)
        self._latency = self.metrics.histogram(
            "dcrobot_service_request_latency_seconds",
            help="Wall-clock latency of served requests")
        self._ingest_counter = self.metrics.counter(
            "dcrobot_service_ingest_total",
            help="Telemetry reports by ingest outcome")
        # -- ingestion state ----------------------------------------------
        self._ingest: Deque[Tuple[int, object]] = deque()
        self.ingest_offered = 0
        self.ingest_accepted = 0
        self.ingest_shed = 0
        self.ingest_applied = 0
        # -- parity-audit accounting --------------------------------------
        self.parity_audits = 0
        self.parity_failures = 0
        self._status_served = 0

    # -- bridge hook ----------------------------------------------------------

    def _on_slice(self, sim_now: float) -> None:
        """Runs at every bridge yield point: fold buffered telemetry
        into the read models, then refresh every snapshot."""
        budget = self.config.ingest_budget_per_slice
        drained = 0
        while self._ingest and drained < budget:
            hall, report = self._ingest.popleft()
            model = self.readmodels.get(hall)
            if model is not None:
                model.record_external(report)
            drained += 1
        self.ingest_applied += drained
        for model in self.readmodels.values():
            model.refresh(sim_now)

    def _hall(self, hall: int) -> ReadModel:
        model = self.readmodels.get(hall)
        if model is None:
            raise KeyError(f"unknown hall {hall}")
        return model

    # -- admission plumbing ---------------------------------------------------

    def _admit(self, kind: RequestKind,
               priority: Priority = Priority.NORMAL) -> None:
        if self.admission is not None \
                and not self.admission.admit(kind, priority):
            raise ServiceOverloadError(
                f"{kind.value} shed by admission control")

    def _observe(self, kind: RequestKind, started: float) -> None:
        self._latency.observe(self.clock() - started, cls=kind.value)

    # -- query path (snapshot reads) ------------------------------------------

    async def status(self, audit: bool = False) -> MaintenanceStatus:
        """Fleet-wide maintenance summary from the current snapshot.

        ``audit=True`` (or every ``config.audit_every``-th served
        call) re-derives the status via the legacy full scan and
        raises :class:`ReadModelParityError` on any divergence.
        """
        started = self.clock()
        self._admit(RequestKind.QUERY)
        self._status_served += 1
        every = self.config.audit_every
        if every and self._status_served % every == 0:
            audit = True
        if audit:
            self._audited(self.read.verify_status_parity)
        result = self.read.status()
        self._observe(RequestKind.QUERY, started)
        return result

    async def link_health(self, link_id: str,
                          hall: int = 0) -> Dict[str, object]:
        started = self.clock()
        self._admit(RequestKind.QUERY)
        result = self._hall(hall).link_health(link_id)
        self._observe(RequestKind.QUERY, started)
        return result

    async def incident(self, link_id: str, hall: int = 0):
        started = self.clock()
        self._admit(RequestKind.QUERY)
        result = self._hall(hall).incident(link_id)
        self._observe(RequestKind.QUERY, started)
        return result

    async def smi(self, hall: int = 0,
                  audit: bool = False) -> Optional[float]:
        """The hall's incremental SMI; ``audit=True`` re-runs the full
        :func:`compute_smi` rescan and holds parity to 1e-12."""
        started = self.clock()
        self._admit(RequestKind.QUERY)
        value = self._hall(hall).smi()
        if audit and value is not None:
            self._audited(
                lambda: self._audit_smi(hall, value))
        self._observe(RequestKind.QUERY, started)
        return value

    async def planned_touches(self, link_id: str,
                              action: RepairAction = RepairAction.RESEAT,
                              hall: int = 0):
        started = self.clock()
        self._admit(RequestKind.QUERY)
        world = self.worlds[hall]
        api = MaintenanceServiceAPI(world.live_controller)
        result = api.planned_touches(link_id, action)
        self._observe(RequestKind.QUERY, started)
        return result

    def _audit_smi(self, hall: int, value: float) -> None:
        oracle = compute_smi(self.worlds[hall].topology).smi
        if abs(value - oracle) > SMI_ATOL:
            raise ReadModelParityError(
                f"hall {hall} incremental SMI {value!r} diverged "
                f"from rescan {oracle!r}")

    def _audited(self, check) -> None:
        self.parity_audits += 1
        try:
            check()
        except ReadModelParityError:
            self.parity_failures += 1
            raise

    # -- command path (authorized, audited, mutating) -------------------------

    async def request_maintenance(self, link_id: str,
                                  action: Optional[RepairAction] = None,
                                  urgent: bool = False,
                                  principal: str = "anonymous",
                                  hall: int = 0) -> bool:
        """Forward a maintenance command to the live controller.

        Urgent commands are HIGH priority and (by default policy)
        exempt from admission — an emergency repair window is never
        shed.  Authorization and the tamper-evident audit trail happen
        inside the classic facade, exactly as before the refactor.
        """
        started = self.clock()
        priority = Priority.HIGH if urgent else Priority.NORMAL
        self._admit(RequestKind.COMMAND, priority)
        world = self.worlds[hall]
        api = MaintenanceServiceAPI(world.live_controller,
                                    authorizer=self.config.authorizer)
        accepted = api.request_maintenance(
            link_id, action=action, urgent=urgent, principal=principal)
        self._observe(RequestKind.COMMAND, started)
        return accepted

    # -- telemetry ingestion (backpressured) ----------------------------------

    def offer_telemetry(self, report) -> bool:
        """Offer one report to the ingest queue; False = shed.

        The queue is bounded: when producers outrun the per-slice
        drain budget, offers are refused *here*, visibly, instead of
        growing an unbounded buffer that stalls the sim loop.
        """
        self.ingest_offered += 1
        if len(self._ingest) >= self.config.ingest_queue_limit:
            self.ingest_shed += 1
            self._ingest_counter.inc(outcome="shed")
            return False
        hall = getattr(report, "hall", 0)
        if isinstance(report, dict):
            hall = report.get("hall", 0)
        self._ingest.append((int(hall), report))
        self.ingest_accepted += 1
        self._ingest_counter.inc(outcome="accepted")
        return True

    @property
    def ingest_depth(self) -> int:
        return len(self._ingest)

    # -- the serve loop -------------------------------------------------------

    async def serve(self, until: float) -> None:
        """Step every hall sim to ``until`` while queries, commands and
        ingestion interleave at slice boundaries."""
        await self.bridge.run_until(until)

    # -- JSON-lines front door ------------------------------------------------

    async def start_tcp(self, host: str = "127.0.0.1",
                        port: int = 0):
        """Serve the API over newline-delimited JSON on a TCP socket.

        Request: ``{"op": ..., ...params}``; response:
        ``{"ok": true, "result": ...}`` or
        ``{"ok": false, "error": <class>, "detail": ...}``.
        Returns the ``asyncio.Server`` (bind port via
        ``server.sockets[0].getsockname()[1]``).
        """
        return await asyncio.start_server(self._handle_client,
                                          host, port)

    async def _handle_client(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = await self._dispatch_line(line)
                writer.write(json.dumps(response,
                                        sort_keys=True).encode()
                             + b"\n")
                await writer.drain()
        finally:
            writer.close()

    async def _dispatch_line(self, line: bytes) -> dict:
        try:
            request = json.loads(line)
            result = await self._dispatch(request)
            return {"ok": True, "result": _as_plain(result)}
        except ServiceOverloadError as error:
            return {"ok": False, "error": "overload",
                    "detail": str(error)}
        except AuthorizationError as error:
            return {"ok": False, "error": "denied",
                    "detail": str(error)}
        except KeyError as error:
            return {"ok": False, "error": "not-found",
                    "detail": str(error)}
        except (json.JSONDecodeError, TypeError,
                ValueError) as error:
            return {"ok": False, "error": "bad-request",
                    "detail": str(error)}

    async def _dispatch(self, request: dict):
        op = request.get("op")
        hall = int(request.get("hall", 0))
        if op == "status":
            return await self.status(
                audit=bool(request.get("audit", False)))
        if op == "link_health":
            return await self.link_health(request["link_id"],
                                          hall=hall)
        if op == "incident":
            return await self.incident(request["link_id"], hall=hall)
        if op == "smi":
            return await self.smi(
                hall=hall, audit=bool(request.get("audit", False)))
        if op == "planned_touches":
            action = RepairAction[request.get("action", "RESEAT")]
            return await self.planned_touches(request["link_id"],
                                              action=action,
                                              hall=hall)
        if op == "request_maintenance":
            action = request.get("action")
            return await self.request_maintenance(
                request["link_id"],
                action=RepairAction[action] if action else None,
                urgent=bool(request.get("urgent", False)),
                principal=request.get("principal", "anonymous"),
                hall=hall)
        if op == "telemetry":
            return self.offer_telemetry(TelemetryReport(
                source_id=request.get("source_id", "anonymous"),
                link_id=request.get("link_id"),
                kind=request.get("kind", "metric"),
                value=float(request.get("value", 0.0)),
                time=float(request.get("time", 0.0)),
                hall=hall))
        raise ValueError(f"unknown op {op!r}")


class ServedWorld:
    """A single-hall world hosted behind a service plane.

    Build-time spares are captured here (not at serve time) and the
    consumed-spares accounting is finalized once the horizon is
    reached, mirroring :func:`~dcrobot.experiments.runner.run_world`
    exactly — so ``summarize()`` of a served world is bit-identical to
    ``summarize_world(run_world(config))`` for the same seed.
    """

    def __init__(self, config: WorldConfig,
                 service: Optional[ServiceConfig] = None) -> None:
        if config.halls != 1:
            raise ValueError("ServedWorld hosts one hall; use "
                             "ServedCampus for halls > 1")
        self.config = config
        self.world = build_world(config)
        self.smi_tracker = SmiTracker(self.world.topology)
        self._initial_transceivers = sum(
            self.world.fabric.spare_transceivers.values())
        self._initial_cables = self.world.fabric.spare_cables
        self._finalized = False
        self.service = MaintenanceService(
            self.world, _resolve_service(config, service),
            smi_trackers={0: self.smi_tracker})

    async def serve(self, until: Optional[float] = None) -> None:
        """Serve to ``until`` (default: the config horizon)."""
        if until is None:
            until = self.config.horizon_seconds
        await self.service.serve(until)
        if until >= self.config.horizon_seconds \
                and not self._finalized:
            fabric = self.world.fabric
            self.world.spares_consumed_transceivers = (
                self._initial_transceivers
                - sum(fabric.spare_transceivers.values()))
            self.world.spares_consumed_cables = (
                self._initial_cables - fabric.spare_cables)
            self._finalized = True

    def summarize(self) -> WorldSummary:
        if not self._finalized:
            raise RuntimeError("serve() to the horizon first")
        return summarize_world(self.world)


class ServedCampus:
    """An S20 campus where every hall shard is served by one bridge.

    All hall sims are assembled in-process (``CampusWorld.build``),
    stepped cooperatively by a single service plane, then finalized
    exactly the way :meth:`HallShard.run` would have (spares, SMI,
    hall-stamped summary) before the normal federation pass produces
    the :class:`~dcrobot.shard.campus.CampusSummary`.
    """

    def __init__(self, config: WorldConfig,
                 service: Optional[ServiceConfig] = None) -> None:
        from dcrobot.shard.campus import CampusWorld

        if config.halls < 2:
            raise ValueError("ServedCampus needs halls >= 2; use "
                             "ServedWorld for a single hall")
        self.config = config
        self.campus = CampusWorld(config).build()
        self._initial_spares: Dict[int, Tuple[int, int]] = {}
        worlds: Dict[int, RunResult] = {}
        trackers: Dict[int, SmiTracker] = {}
        for shard in self.campus.shards:
            worlds[shard.hall_id] = shard.result
            trackers[shard.hall_id] = shard.smi_tracker
            self._initial_spares[shard.hall_id] = (
                sum(shard.result.fabric.spare_transceivers.values()),
                shard.result.fabric.spare_cables)
        self._finalized = False
        self.service = MaintenanceService(
            worlds, _resolve_service(config, service),
            smi_trackers=trackers)

    async def serve(self, until: Optional[float] = None) -> None:
        if until is None:
            until = self.config.horizon_seconds
        await self.service.serve(until)
        if until >= self.config.horizon_seconds \
                and not self._finalized:
            self._finalize()

    def _finalize(self) -> None:
        """Stamp each shard the way ``HallShard.run`` would have, so
        ``campus.run()`` short-circuits to federation."""
        wall = self.service.bridge.wall_seconds
        for shard in self.campus.shards:
            result = shard.result
            transceivers, cables = self._initial_spares[shard.hall_id]
            result.spares_consumed_transceivers = (
                transceivers
                - sum(result.fabric.spare_transceivers.values()))
            result.spares_consumed_cables = (
                cables - result.fabric.spare_cables)
            # The serve window is shared by every hall; record it as
            # each shard's run wall so campus telemetry stays honest
            # about the single-loop mode.
            shard.run_wall_seconds = wall
            shard.smi = shard.smi_tracker.report().smi
            shard.summary = dataclasses.replace(
                summarize_world(result),
                hall=shard.hall_id, halls=self.config.halls)
        self._finalized = True

    def summarize(self):
        """The federated :class:`CampusSummary` for the served run."""
        if not self._finalized:
            raise RuntimeError("serve() to the horizon first")
        return self.campus.run()


def _resolve_service(config: WorldConfig,
                     service: Optional[ServiceConfig]) -> ServiceConfig:
    if service is not None:
        return service
    configured = getattr(config, "service", None)
    if configured is not None:
        if not isinstance(configured, ServiceConfig):
            raise TypeError("config.service must be a ServiceConfig")
        return configured
    return ServiceConfig()


def serve_world(config: WorldConfig,
                service: Optional[ServiceConfig] = None
                ) -> Union[ServedWorld, ServedCampus]:
    """Host ``config`` behind a service plane (halls decide the shape).

    The service knobs come from ``service`` or ``config.service``
    (defaulting to a stock :class:`ServiceConfig`)."""
    if config.halls > 1:
        return ServedCampus(config, service)
    return ServedWorld(config, service)
