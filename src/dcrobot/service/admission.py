"""Token-bucket + priority admission control for the service plane.

The service plane sits between "millions of users" and one simulation
loop; without admission, an open-loop query flood queues without bound
and both the query tail *and* the sim loop drown.  The policy here is
deliberately small:

* **queries are sheddable** — a token bucket caps the sustained query
  rate (with a burst allowance); excess queries are refused
  immediately (cheap) instead of queued (expensive for everyone).
* **commands are precious** — maintenance commands get their own
  bucket, and HIGH-priority (urgent) commands are *exempt*: a human
  asking for an emergency repair window is never shed, no matter what
  the query plane is doing.  (``bench_service_load`` holds
  ``high_shed == 0`` as a tripwire.)

Every decision lands in the S15 metrics registry
(``dcrobot_service_admitted_total`` / ``dcrobot_service_shed_total``
by request class, and a ``dcrobot_service_request_latency_seconds``
histogram for served requests), so the experiment/bench layer reads
accept/shed/latency straight from the same instruments a Prometheus
scrape would.
"""

from __future__ import annotations

import dataclasses
import enum
import time
from typing import Callable, Optional

from dcrobot.core.actions import Priority
from dcrobot.obs.metrics import MetricsRegistry

__all__ = ["RequestKind", "AdmissionConfig", "TokenBucket",
           "AdmissionController"]


class RequestKind(enum.Enum):
    """The two service-plane request classes."""

    QUERY = "query"
    COMMAND = "command"


@dataclasses.dataclass(frozen=True)
class AdmissionConfig:
    """Sustained rates (tokens/second) and burst depths per class."""

    query_rate: float = 500.0
    query_burst: float = 50.0
    command_rate: float = 20.0
    command_burst: float = 10.0
    #: HIGH-priority commands bypass the buckets entirely.
    exempt_high_priority: bool = True

    def __post_init__(self) -> None:
        for name in ("query_rate", "query_burst", "command_rate",
                     "command_burst"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")


class TokenBucket:
    """A classic token bucket on an injectable clock."""

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float]) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.clock = clock
        self.tokens = float(burst)
        self._last: Optional[float] = None

    def _refill(self, now: float) -> None:
        if self._last is not None and now > self._last:
            self.tokens = min(self.burst,
                              self.tokens + (now - self._last)
                              * self.rate)
        self._last = now

    def try_take(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        self._refill(self.clock())
        if self.tokens >= tokens:
            self.tokens -= tokens
            return True
        return False


class AdmissionController:
    """Admit-or-shed decisions plus their S15 accounting."""

    def __init__(self, config: Optional[AdmissionConfig] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config or AdmissionConfig()
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry()
        self.clock = clock
        self._buckets = {
            RequestKind.QUERY: TokenBucket(
                self.config.query_rate, self.config.query_burst,
                clock),
            RequestKind.COMMAND: TokenBucket(
                self.config.command_rate, self.config.command_burst,
                clock),
        }
        self._admitted = self.metrics.counter(
            "dcrobot_service_admitted_total",
            help="Service requests admitted, by class")
        self._shed = self.metrics.counter(
            "dcrobot_service_shed_total",
            help="Service requests shed by admission control")
        self._latency = self.metrics.histogram(
            "dcrobot_service_request_latency_seconds",
            help="Wall-clock latency of served requests")

    def _class_label(self, kind: RequestKind,
                     priority: Priority) -> str:
        if kind is RequestKind.COMMAND \
                and priority is Priority.HIGH:
            return "command-high"
        return kind.value

    def admit(self, kind: RequestKind,
              priority: Priority = Priority.NORMAL) -> bool:
        """True to serve the request, False to shed it."""
        label = self._class_label(kind, priority)
        if (kind is RequestKind.COMMAND
                and priority is Priority.HIGH
                and self.config.exempt_high_priority):
            self._admitted.inc(cls=label)
            return True
        if self._buckets[kind].try_take():
            self._admitted.inc(cls=label)
            return True
        self._shed.inc(cls=label)
        return False

    def observe_latency(self, kind: RequestKind,
                        seconds: float) -> None:
        self._latency.observe(seconds, cls=kind.value)

    # -- accounting reads ------------------------------------------------------

    def admitted(self, cls: Optional[str] = None) -> float:
        if cls is None:
            return self._admitted.total()
        return self._admitted.value(cls=cls)

    def shed(self, cls: Optional[str] = None) -> float:
        if cls is None:
            return self._shed.total()
        return self._shed.value(cls=cls)
