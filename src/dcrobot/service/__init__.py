"""The always-on async service plane (S21).

Layered per the ISSUE's refactor: a materialized read model
(:mod:`~dcrobot.service.readmodel`) makes queries O(1) snapshots, the
sim bridge (:mod:`~dcrobot.service.bridge`) steps the world
cooperatively inside an asyncio loop, admission control
(:mod:`~dcrobot.service.admission`) sheds load before it queues, and
the front-end (:mod:`~dcrobot.service.server`) ties them into a
servable :func:`serve_world` over a single hall or a whole campus.
"""

from dcrobot.service.admission import (
    AdmissionConfig,
    AdmissionController,
    RequestKind,
    TokenBucket,
)
from dcrobot.service.bridge import BridgeConfig, SimBridge
from dcrobot.service.readmodel import (
    CampusReadModel,
    ReadModel,
    ReadModelParityError,
    ReadSnapshot,
)
from dcrobot.service.server import (
    MaintenanceService,
    ServedCampus,
    ServedWorld,
    ServiceConfig,
    ServiceOverloadError,
    TelemetryReport,
    serve_world,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "BridgeConfig",
    "CampusReadModel",
    "MaintenanceService",
    "ReadModel",
    "ReadModelParityError",
    "ReadSnapshot",
    "RequestKind",
    "ServedCampus",
    "ServedWorld",
    "ServiceConfig",
    "ServiceOverloadError",
    "SimBridge",
    "TelemetryReport",
    "TokenBucket",
    "serve_world",
]
