"""Audit and authorization for the maintenance plane (§4 "Network
security").

"An exciting area is the development of robust, integrated security
frameworks and advanced monitoring systems to protect against the
complex and dynamic threats introduced by robotics and automation."

A robot that can unplug any transceiver in the hall is an attack
surface.  Two minimal defenses are provided:

* :class:`MaintenanceAuthorizer` — capability tokens scoping which
  principals may request which actions on which links; physical actions
  above a token's ceiling are denied.
* :class:`AuditLog` — an append-only, hash-chained record of every
  authorization decision and physical action, so tampering with history
  is detectable.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
from typing import Dict, List, Optional, Sequence

from dcrobot.core.actions import RepairAction

_TOKEN_IDS = itertools.count()


@dataclasses.dataclass(frozen=True)
class CapabilityToken:
    """Grants a principal a bounded set of maintenance powers."""

    principal: str
    allowed_actions: frozenset
    #: Link-id prefixes the token covers; empty means all links.
    link_scope: tuple = ()
    expires_at: Optional[float] = None
    token_id: int = dataclasses.field(
        default_factory=lambda: next(_TOKEN_IDS))

    def covers_link(self, link_id: str) -> bool:
        if not self.link_scope:
            return True
        return any(link_id.startswith(prefix)
                   for prefix in self.link_scope)

    def valid_at(self, now: float) -> bool:
        return self.expires_at is None or now < self.expires_at


@dataclasses.dataclass(frozen=True)
class AuditRecord:
    """One entry in the hash chain."""

    index: int
    time: float
    principal: str
    action: str
    link_id: str
    allowed: bool
    detail: str
    previous_hash: str
    entry_hash: str


def _hash_entry(index: int, time: float, principal: str, action: str,
                link_id: str, allowed: bool, detail: str,
                previous_hash: str) -> str:
    payload = (f"{index}|{time:.6f}|{principal}|{action}|{link_id}|"
               f"{allowed}|{detail}|{previous_hash}")
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class AuditLog:
    """Append-only hash-chained action log."""

    GENESIS = "0" * 64

    def __init__(self) -> None:
        self.records: List[AuditRecord] = []

    def append(self, time: float, principal: str, action: str,
               link_id: str, allowed: bool, detail: str = "") -> AuditRecord:
        previous = (self.records[-1].entry_hash if self.records
                    else self.GENESIS)
        index = len(self.records)
        record = AuditRecord(
            index=index, time=time, principal=principal, action=action,
            link_id=link_id, allowed=allowed, detail=detail,
            previous_hash=previous,
            entry_hash=_hash_entry(index, time, principal, action,
                                   link_id, allowed, detail, previous))
        self.records.append(record)
        return record

    def verify_chain(self) -> bool:
        """Recompute the chain; False if any record was altered."""
        previous = self.GENESIS
        for record in self.records:
            if record.previous_hash != previous:
                return False
            expected = _hash_entry(
                record.index, record.time, record.principal,
                record.action, record.link_id, record.allowed,
                record.detail, record.previous_hash)
            if record.entry_hash != expected:
                return False
            previous = record.entry_hash
        return True

    def entries_for(self, link_id: str) -> List[AuditRecord]:
        return [record for record in self.records
                if record.link_id == link_id]


class AuthorizationError(PermissionError):
    """The principal's tokens do not cover the requested action."""


class MaintenanceAuthorizer:
    """Checks maintenance requests against issued capability tokens."""

    def __init__(self, audit_log: Optional[AuditLog] = None) -> None:
        self.audit = audit_log or AuditLog()
        self._tokens: Dict[str, List[CapabilityToken]] = {}

    def issue(self, principal: str,
              actions: Sequence[RepairAction],
              link_scope: Sequence[str] = (),
              expires_at: Optional[float] = None) -> CapabilityToken:
        """Grant a principal a capability token."""
        token = CapabilityToken(
            principal=principal,
            allowed_actions=frozenset(actions),
            link_scope=tuple(link_scope),
            expires_at=expires_at)
        self._tokens.setdefault(principal, []).append(token)
        return token

    def revoke(self, token: CapabilityToken) -> None:
        tokens = self._tokens.get(token.principal, [])
        if token in tokens:
            tokens.remove(token)

    def check(self, now: float, principal: str, action: RepairAction,
              link_id: str) -> bool:
        """Whether the principal may perform the action (audited)."""
        allowed = any(
            token.valid_at(now)
            and action in token.allowed_actions
            and token.covers_link(link_id)
            for token in self._tokens.get(principal, []))
        self.audit.append(now, principal, action.value, link_id,
                          allowed)
        return allowed

    def authorize(self, now: float, principal: str,
                  action: RepairAction, link_id: str) -> None:
        """Like :meth:`check` but raises on denial."""
        if not self.check(now, principal, action, link_id):
            raise AuthorizationError(
                f"{principal} may not {action.value} on {link_id}")
